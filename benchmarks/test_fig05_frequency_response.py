"""Figure 5: frequency response of the second-order supply model.

The paper's sketch: impedance equals the DC resistance at low frequency,
rises to a resonant peak at w0, and falls beyond it.  This bench prints
the curve and asserts the bandpass shape, the peak location, and that the
discrete (simulated) response realizes the same curve.
"""

import numpy as np

from repro.power import (
    discrete_impedance_magnitude,
    impedance_magnitude,
    resonant_peak,
    response_curve,
)


def _figure5(net):
    freqs, mags = response_curve(net, points=160)
    peak_f, peak_z = resonant_peak(net)
    return freqs, mags, peak_f, peak_z


def test_fig05_frequency_response(benchmark, net100):
    freqs, mags, peak_f, peak_z = benchmark.pedantic(
        _figure5, args=(net100,), rounds=1, iterations=1
    )

    print("\n--- Figure 5: supply impedance vs frequency ---")
    marks = np.array([10e6, 30e6, 50e6, 100e6, 200e6, 400e6, 1e9])
    zs = impedance_magnitude(net100, marks)
    for f, z in zip(marks, zs):
        bar = "#" * int(60 * z / peak_z)
        print(f"  {f / 1e6:7.0f} MHz  {z * 1e3:7.3f} mOhm  {bar}")
    print(f"  peak: {peak_z * 1e3:.3f} mOhm at {peak_f / 1e6:.0f} MHz "
          f"(DC: {net100.dc_resistance * 1e3:.3f} mOhm)")

    # Bandpass shape with resonance at the configured frequency.
    assert np.isfinite(peak_f) and np.isfinite(peak_z)
    assert abs(peak_f - net100.resonant_hz) / net100.resonant_hz < 0.05
    z_dc = impedance_magnitude(net100, [1e4])[0]
    z_hi = impedance_magnitude(net100, [net100.clock_hz / 3])[0]
    assert peak_z > 5 * z_dc
    assert peak_z > 5 * z_hi

    # The discrete kernel used in every simulation realizes this curve.
    sample = np.array([30e6, 100e6, 250e6])
    np.testing.assert_allclose(
        discrete_impedance_magnitude(net100, sample, taps=4096),
        impedance_magnitude(net100, sample),
        rtol=0.08,
    )

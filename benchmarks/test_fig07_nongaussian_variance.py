"""Figure 7: current variance of the windows that fail the Gaussian test.

The paper's pivotal observation: the non-Gaussian execution windows have
much lower current variance than the suite average, so an estimator that
models only the Gaussian windows still captures the dI/dt-relevant
behaviour.

Reproduction note (recorded in EXPERIMENTS.md): in our traces the
deliberately resonant benchmarks (mgrid, gcc, galgel, apsi) produce
*periodic* windows that are simultaneously non-Gaussian and high-variance,
which dilutes the paper's contrast when averaged over the whole suite.
On the non-resonant majority — where non-Gaussianity comes from stalls,
the paper's mechanism — the claim reproduces cleanly, and the estimator's
Figure-9 accuracy shows the overall method is unharmed.
"""


from conftest import print_series
from repro.experiments import figure7

WINDOWS = (32, 64, 128)
SAMPLES = 80


def test_fig07_nongaussian_variance(benchmark, traces):
    result = benchmark.pedantic(
        figure7,
        args=(traces,),
        kwargs={"windows": WINDOWS, "samples_per_size": SAMPLES},
        rounds=1,
        iterations=1,
    )
    rows = result.rows

    print_series(
        "Figure 7: mean current variance (A^2): non-Gaussian vs overall",
        {
            f"{w}cyc": [
                rows[w]["int"][0],
                rows[w]["fp"][0],
                rows[w]["all"][0],
                rows[w]["all"][1],
            ]
            for w in WINDOWS
        },
        fmt="{:9.1f}",
    )
    print("  (columns: INT non-Gaussian, FP non-Gaussian, all non-Gaussian, "
          "all overall)")
    print_series(
        "  non-resonant benchmarks only (the paper's stall mechanism)",
        {
            f"{w}cyc": [rows[w]["non_resonant"][0], rows[w]["non_resonant"][1]]
            for w in WINDOWS
        },
        fmt="{:9.1f}",
    )
    print("  (columns: non-Gaussian variance, overall variance)")

    for w in WINDOWS:
        non_gauss_all, overall_all = rows[w]["all"]
        # Weak suite-wide form: non-Gaussian windows are not the
        # high-variance outliers.
        assert non_gauss_all < 1.15 * overall_all
    # The paper's claim, on the benchmarks where non-Gaussianity comes
    # from stalls rather than deliberate resonance pumping.  The contrast
    # is sharpest at the dI/dt-relevant window sizes (32/64 cycles);
    # 128-cycle windows mix stall and burst phases and wash it out.
    for w in (32, 64):
        non_gauss, overall = rows[w]["non_resonant"]
        assert non_gauss < 0.95 * overall, (
            f"stall-driven non-Gaussian windows should be low-variance "
            f"at {w} cycles ({non_gauss:.1f} vs {overall:.1f})"
        )
    non_gauss, overall = rows[128]["non_resonant"]
    assert non_gauss < 1.05 * overall

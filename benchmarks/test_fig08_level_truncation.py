"""Figure 8: error from estimating voltage variance with 4 of 8 levels.

Because the supply amplifies only the scales near its resonance, the
paper drops half the decomposition levels and loses only 0.1-1.6 % of the
estimated voltage variance.  This bench computes the same per-benchmark
relative error on the simulated traces.
"""

import numpy as np

from conftest import print_series
from repro.experiments import figure8


def test_fig08_level_truncation(benchmark, net150, traces):
    result = benchmark.pedantic(
        figure8, args=(net150, traces), rounds=1, iterations=1
    )
    errors = result.variance_error
    shifts = result.estimate_shift
    kept_sets = result.kept_levels

    print_series(
        "Figure 8: relative error of 4-of-8-level variance estimate (%)",
        {name: err * 100 for name, err in errors.items()},
        fmt="{:6.2f}",
    )
    print_series(
        "  effect on the final estimate (abs shift in % cycles < 0.97 V)",
        {name: s * 100 for name, s in shifts.items()},
        fmt="{:6.2f}",
    )
    from collections import Counter

    common = Counter(tuple(k) for k in kept_sets.values()).most_common(1)[0]
    print(f"  most common kept-level set: {list(common[0])} "
          f"({common[1]}/26 benchmarks)")

    # Shape claims.  Haar subbands leak across bands, so the raw
    # variance error runs a few percent for low-variance benchmarks; the
    # paper's claim — truncation is harmless — is checked on both the
    # variance (dominant benchmarks lose ~1-2 %) and the bottom-line
    # Figure-9 estimate (all benchmarks move by under 2 percentage
    # points, most far less — the paper's 0.1-1.6 % band).
    values = np.array(list(errors.values()))
    assert values.max() < 0.12, "level truncation lost too much variance"
    assert values.mean() < 0.06
    shift_values = np.array(list(shifts.values()))
    assert shift_values.max() < 0.02
    assert shift_values.mean() < 0.008
    # The kept levels bracket the resonance (30-cycle period -> levels 4-5).
    for kept in kept_sets.values():
        assert 4 in kept or 5 in kept

"""Figure 13: max voltage-estimation error vs. wavelet term count.

The paper plots, for 125/150/200 % target impedance, the worst-case
monitor error as the number of retained wavelet convolution terms grows:
errors start large, fall steadily, approach ~0.02 V with tens of terms
(more terms needed at higher impedance), and stay far below the hundreds
of terms full convolution requires.
"""

import numpy as np

from repro.experiments import figure13

TERM_COUNTS = list(range(1, 31))
GOOD_ENOUGH = 0.025  # the paper's ~0.02 V accuracy target


def test_fig13_coefficient_error(benchmark, net125, net150, net200, traces):
    # Evaluate on a dI/dt-stressing trace (gcc) — worst-case errors need
    # resonant content to show up.
    trace = traces["gcc"].current[:8192]
    curves = benchmark.pedantic(
        figure13,
        args=({125: net125, 150: net150, 200: net200}, trace),
        kwargs={"term_counts": TERM_COUNTS},
        rounds=1,
        iterations=1,
    )

    print("\n--- Figure 13: max voltage error (V) vs wavelet term count ---")
    print("  K    125%     150%     200%")
    for k in TERM_COUNTS:
        print(f"  {k:2d} {curves[125][k]:8.4f} {curves[150][k]:8.4f} "
              f"{curves[200][k]:8.4f}")

    for pct in (125, 150, 200):
        errs = [curves[pct][k] for k in TERM_COUNTS]
        # Decreasing trend: keeping more terms never hurts much (on one
        # specific trace the max error can wiggle up slightly when a new
        # term changes cancellation patterns) and the curve falls at a
        # reasonable rate overall, as in the figure.
        assert all(b <= 1.2 * a for a, b in zip(errs, errs[1:]))
        assert all(e <= errs[0] + 1e-12 for e in errs[1:])
        # Large error with one term, small with thirty.
        assert errs[0] > 2 * errs[-1]

    # Errors scale with impedance: at fixed K the 200% curve sits above
    # the 125% curve by the impedance ratio.
    for k in (5, 13, 25):
        assert curves[200][k] == np.float64(
            curves[200][k]
        )  # finite
        assert curves[200][k] > 1.4 * curves[125][k]

    # The paper's crossover structure: the K needed to reach the accuracy
    # target grows with target impedance.
    def first_k(pct):
        for k in TERM_COUNTS:
            if curves[pct][k] <= GOOD_ENOUGH:
                return k
        return TERM_COUNTS[-1] + 1

    k125, k150, k200 = first_k(125), first_k(150), first_k(200)
    print(f"\n  terms to reach {GOOD_ENOUGH} V: 125%={k125}, "
          f"150%={k150}, 200%={k200}  (paper: 9/13/20 for 0.02 V)")
    assert k125 <= k150 <= k200
    assert k200 <= 30, "even 200% impedance must be summarizable in <=30 terms"

"""Figure 6: chi-squared Gaussianity acceptance of current windows.

The paper samples 32/64/128-cycle windows at random over all 26 SPEC
benchmarks and finds 27-39 % pass a chi-squared normality test at 95 %
significance, with acceptance growing with window size (more for INT than
FP).  This bench reruns that experiment on the simulated traces.
"""

import numpy as np

from conftest import BENCH_CYCLES, print_series
from repro.experiments import figure6
from repro.stats import jarque_bera_test

WINDOWS = (32, 64, 128)
SAMPLES = 80


def _jb_rate(traces, window=64, samples=60, seed=7):
    """Jarque-Bera acceptance on the same window population (robustness)."""
    rng = np.random.default_rng(seed)
    rates = []
    for result in traces.values():
        starts = rng.integers(0, len(result.current) - window, samples)
        hits = sum(
            jarque_bera_test(result.current[s : s + window]).accepted
            for s in starts
        )
        rates.append(hits / samples)
    return float(np.mean(rates))


def test_fig06_gaussian_windows(benchmark, traces):
    result = benchmark.pedantic(
        figure6,
        args=(traces,),
        kwargs={"windows": WINDOWS, "samples_per_size": SAMPLES},
        rounds=1,
        iterations=1,
    )
    summary = result.rates

    print_series(
        "Figure 6: Gaussian acceptance rate (chi-sq @95%) by window size",
        {
            suite: [summary[suite][w] for w in WINDOWS]
            for suite in ("int", "fp", "all")
        },
    )
    print(f"  (columns: {WINDOWS} cycle windows, {SAMPLES} windows per "
          f"benchmark, {BENCH_CYCLES}-cycle traces)")

    # Robustness: a second normality test sees the same picture — a
    # sizeable minority of Gaussian windows, not ~0 and not ~95 %.
    jb = _jb_rate(traces)
    print(f"  Jarque-Bera 64-cycle acceptance (robustness check): "
          f"{jb * 100:.1f}%")

    # Shape claims: a sizeable minority of windows is Gaussian (paper:
    # 27-39 %), and the rate is far from both 0 and the ~95 % a pure
    # Gaussian process would give — execution is a mix of smooth and
    # bursty intervals.
    for w in WINDOWS:
        assert 0.10 < summary["all"][w] < 0.75
    assert 0.10 < jb < 0.90
    # Windows exist in both suites.
    assert summary["int"][64] > 0.05
    assert summary["fp"][64] > 0.05

"""Figure 4: current waveform and scalogram for a 256-cycle gzip window.

The paper's point: the scalogram exposes large-scale current variation
and a frequency composition that changes over time.  This bench extracts
a 256-cycle window from the simulated gzip trace, renders the scalogram,
and asserts the figure's qualitative content — significant energy at
coarse scales (not just cycle-to-cycle noise) and time-varying band
occupancy.
"""

import numpy as np

from repro.wavelets import (
    dominant_period,
    render_ascii,
    scalogram,
    wavelet_variances,
)


def _figure4(trace: np.ndarray):
    window = trace[4096 : 4096 + 256]
    mag = scalogram(window)
    return window, mag


def test_fig04_scalogram(benchmark, traces):
    window, mag = benchmark.pedantic(
        _figure4, args=(traces["gzip"].current,), rounds=1, iterations=1
    )

    print("\n--- Figure 4: gzip current window + scalogram ---")
    print(f"  window current: {window.mean():.1f} A mean, "
          f"{window.min():.1f}..{window.max():.1f} A range")
    for line in render_ascii(mag, width=64).split("\n"):
        print("  " + line)

    variances = wavelet_variances(window)
    total = sum(variances.values())
    coarse = sum(variances[lvl] for lvl in range(3, 9))
    print(f"  coarse-scale (levels 3-8) share of variance: "
          f"{coarse / total * 100:.0f}%")

    # Shape claims: the window really varies, and not only at the finest
    # scale — "in addition to cycle-by-cycle fluctuations, there are also
    # some larger scale features".
    assert np.ptp(window) > 10.0
    assert coarse > 0.15 * total

    # The frequency composition changes with time: the dominant scale of
    # the first half differs in energy from the second half at some level.
    first = wavelet_variances(window[:128])
    second = wavelet_variances(window[128:])
    ratios = [
        first[lvl] / max(second[lvl], 1e-12) for lvl in range(1, 8)
    ]
    assert max(ratios) > 1.5 or min(ratios) < 0.67

    # Continuous-scale companion: the CWT pins the burst periodicity to a
    # specific cycle count inside the DWT's octave bands.
    period = dominant_period(traces["gzip"].current[:8192], min_period=6.0,
                             max_period=512.0)
    print(f"  CWT dominant period over 8K cycles: {period:.0f} cycles")
    assert 6.0 <= period <= 512.0

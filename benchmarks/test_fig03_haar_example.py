"""Figure 3: the worked Haar analysis example.

The paper decomposes an 8-sample waveform into an approximation plus two
detail subbands, showing the exact coefficient matrix.  This bench runs
the library's transform on the same kind of staircase signal, prints the
matrix, and checks the hand-computable identities (values in multiples of
sqrt(2), subband superposition, Parseval).
"""

import numpy as np

from repro.wavelets import decompose, subband_signals

SIGNAL = np.array([2.0, 2.0, 4.0, 0.0, 2.0, 2.0, 0.0, 4.0])


def _figure3(signal: np.ndarray):
    dec = decompose(signal, "haar", level=2)
    bands = subband_signals(dec)
    return dec, bands


def test_fig03_haar_example(benchmark):
    dec, bands = benchmark.pedantic(
        _figure3, args=(SIGNAL,), rounds=1, iterations=1
    )

    print("\n--- Figure 3: Haar worked example ---")
    print(f"  signal            : {SIGNAL.tolist()}")
    print(f"  approximation a[k]: {np.round(dec.approx, 4).tolist()}")
    print(f"  detail level 2    : {np.round(dec.detail(2), 4).tolist()}")
    print(f"  detail level 1    : {np.round(dec.detail(1), 4).tolist()}")
    for name, band in bands.items():
        print(f"  subband {name:3s}       : {np.round(band, 4).tolist()}")

    # Hand-checkable values: a[k] over 4-sample windows = 2*mean(window).
    np.testing.assert_allclose(dec.approx, [2.0 * 2.0, 2.0 * 2.0])
    # Level-1 details: (x[2k] - x[2k+1]) / sqrt(2).
    expected_d1 = (SIGNAL[0::2] - SIGNAL[1::2]) / np.sqrt(2.0)
    np.testing.assert_allclose(dec.detail(1), expected_d1)
    # Superposition (Eq. 4 + Eq. 5 recreate the signal).
    np.testing.assert_allclose(sum(bands.values()), SIGNAL, atol=1e-12)
    # Parseval.
    np.testing.assert_allclose(dec.energy(), np.sum(SIGNAL**2))

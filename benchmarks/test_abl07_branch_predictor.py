"""Ablation 7: the branch predictor as a dI/dt actor.

A finding of this reproduction worth its own ablation: on a deep machine,
*branch misprediction recovery is a first-order dI/dt mechanism* — every
flush empties the pipeline for ~the penalty, collapsing the current to
its floor and injecting energy into the resonance band.  This bench:

(a) swaps the Table-1 combined predictor for its weaker components on a
    deliberately branchy kernel (periodic + biased + data-dependent
    branches) and shows emergency exposure track prediction quality, and
(b) checks the timing structure: undervoltage emergencies cluster in the
    cycles right after a recovery window ends (the current step back up
    is what rings the supply), not inside the window itself.
"""

import numpy as np

from repro.power import simulate_voltage
from repro.uarch import Pipeline, ProcessorConfig
from repro.workloads import PhaseSpec, WorkloadProfile, generate
from repro.workloads.generator import prewarm_caches

CYCLES = 16384

#: A branchy loop kernel: one third of branches periodic (gshare food),
#: a few truly random, the rest biased.
BRANCHY = WorkloadProfile(
    "branchy-kernel",
    "int",
    phases=(
        PhaseSpec(
            "compute",
            4000.0,
            branch_fraction=0.20,
            load_fraction=0.20,
            store_fraction=0.08,
            hard_branch=0.03,
            pattern_branch=0.30,
            easy_bias=(0.97, 0.999),
            serial=0.10,
            warm=0.01,
        ),
    ),
    seed=777,
)


def _run(kind: str):
    cfg = ProcessorConfig(predictor_kind=kind)
    pipe = Pipeline(cfg, iter(generate(BRANCHY)))
    prewarm_caches(pipe.caches, BRANCHY)
    for _ in range(2048):
        pipe.tick()
    current = np.empty(CYCLES)
    recovery = np.empty(CYCLES, dtype=bool)
    for k in range(CYCLES):
        current[k] = pipe.tick()
        recovery[k] = pipe.branch_recovery
    return current, recovery, pipe.stats


def _aftermath_mask(recovery: np.ndarray, horizon: int = 30) -> np.ndarray:
    """Cycles within ``horizon`` after a recovery window ended."""
    mask = np.zeros(len(recovery), dtype=bool)
    ends = np.where(recovery[:-1] & ~recovery[1:])[0] + 1
    for e in ends:
        mask[e : e + horizon] = True
    return mask & ~recovery


def _ablation(net):
    rows = {}
    for kind in ("combined", "bimodal", "gshare"):
        current, recovery, stats = _run(kind)
        v = simulate_voltage(net, current)[1024:]
        rec = recovery[1024:]
        below = v < 0.97
        aftermath = _aftermath_mask(rec)
        quiet = ~rec & ~aftermath
        rows[kind] = {
            "bmr": stats.misprediction_rate,
            "ipc": stats.ipc,
            "below": float(below.mean()),
            "below_aftermath": (
                float(below[aftermath].mean()) if aftermath.any() else 0.0
            ),
            "below_quiet": float(below[quiet].mean()) if quiet.any() else 0.0,
        }
    return rows


def test_abl07_branch_predictor(benchmark, net150):
    rows = benchmark.pedantic(_ablation, args=(net150,), rounds=1, iterations=1)

    print("\n--- Ablation 7: predictor choice vs dI/dt (branchy kernel, "
          "150%) ---")
    print(f"  {'kind':9s} {'mispred':>8s} {'IPC':>6s} {'%<0.97V':>8s} "
          f"{'post-recovery':>14s} {'quiet cycles':>13s}")
    for kind, row in rows.items():
        print(f"  {kind:9s} {row['bmr'] * 100:7.2f}% {row['ipc']:6.2f} "
              f"{row['below'] * 100:7.2f}% "
              f"{row['below_aftermath'] * 100:13.2f}% "
              f"{row['below_quiet'] * 100:12.2f}%")

    # (a) The history-based predictors beat bimodal on periodic branches,
    # and prediction quality translates to dI/dt exposure: worse
    # prediction -> more flush/refill pumping -> more emergencies.
    assert rows["gshare"]["bmr"] < rows["bimodal"]["bmr"]
    assert rows["combined"]["bmr"] < rows["bimodal"]["bmr"]
    worst = max(rows.values(), key=lambda r: r["bmr"])
    best = min(rows.values(), key=lambda r: r["bmr"])
    assert worst["below"] > best["below"]
    assert worst["ipc"] < best["ipc"]

    # (b) Emergencies concentrate in the resumption window right after a
    # flush: the current step-up is what rings the supply.
    for kind, row in rows.items():
        if row["below"] > 0.002:
            assert row["below_aftermath"] > 1.5 * row["below_quiet"], kind

"""Ablation 6: the characterization window size.

§4.1 picks a 256-cycle window "because it could capture current
variations on the range of tens to hundreds of cycles".  This ablation
sweeps the window across 128/256/512/1024 cycles and measures the
Figure-9 accuracy at each, confirming 256 is a sound (and not a fragile)
choice: accuracy is flat across the sweep, degrading only when the
window gets too short to resolve the coarse scales the supply amplifies.
"""

import numpy as np

from repro.core import WaveletVoltageEstimator, predict_trace

WINDOWS = (128, 256, 512, 1024)
SUBSET = ("gzip", "mcf", "mgrid", "galgel", "vpr", "gcc", "eon", "swim")


def _ablation(net, traces):
    out = {}
    for window in WINDOWS:
        estimator = WaveletVoltageEstimator(net, window=window)
        errs = []
        for name in SUBSET:
            p = predict_trace(
                net, traces[name].current, name=name, estimator=estimator
            )
            errs.append(p.error)
        out[window] = {
            "rms": float(np.sqrt(np.mean(np.array(errs) ** 2))),
            "levels": estimator.levels,
        }
    return out


def test_abl06_window_size(benchmark, net150, traces):
    rows = benchmark.pedantic(
        _ablation, args=(net150, traces), rounds=1, iterations=1
    )

    print("\n--- Ablation 6: characterization window size ---")
    print(f"  {'window':>8s} {'levels':>7s} {'RMS err':>8s}")
    for window, row in rows.items():
        print(f"  {window:7d} {row['levels']:7d} {row['rms'] * 100:7.2f}%")

    # The method is not fragile in the window choice: every size in the
    # sweep stays within the paper-grade accuracy band on this stressing
    # subset, and the paper's 256 is within 1.5x of the best.
    best = min(row["rms"] for row in rows.values())
    for window, row in rows.items():
        assert row["rms"] < 0.035, window
    assert rows[256]["rms"] < 1.5 * best

    # Deeper windows add levels (the supply's coarse response is better
    # resolved), never fewer.
    levels = [rows[w]["levels"] for w in WINDOWS]
    assert levels == sorted(levels)

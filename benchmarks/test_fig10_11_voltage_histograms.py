"""Figures 10 and 11: voltage histograms by L2-miss behaviour.

Figure 10: benchmarks with few L2 misses (gzip, mesa, crafty, eon) show
approximately Gaussian voltage distributions.  Figure 11: benchmarks with
many L2 misses (swim, lucas, mcf, art) instead spike at the nominal 1.0 V
— long stalls pin the machine at its idle current.  This bench prints
both sets of histograms and separates the groups by their nominal-voltage
spike mass and a chi-squared Gaussianity test on the voltage itself.
"""

import numpy as np

from conftest import HIGH_L2_MISS, LOW_L2_MISS
from repro.experiments import figures10_11
from repro.stats import chi_square_gaussian_test


def _voltage_gaussian_rate(net, result) -> float:
    """Gaussianity of the *whole-run* voltage distribution.

    Figures 10/11 compare run-level histograms, so the test draws random
    subsamples of the full trace (a 64-cycle window of a memory-bound
    benchmark is locally flat and trivially Gaussian — the spike only
    shows at run scale).
    """
    from repro.power import ConvolutionVoltageSimulator

    sim = ConvolutionVoltageSimulator(net)
    v = sim.voltage(result.current)[sim.taps :]
    rng = np.random.default_rng(5)
    hits = 0
    for _ in range(40):
        sample = rng.choice(v, size=256, replace=False)
        hits += chi_square_gaussian_test(sample).accepted
    return hits / 40


def test_fig10_11_voltage_histograms(benchmark, net150, traces):
    result = benchmark.pedantic(
        figures10_11, args=(net150, traces), rounds=1, iterations=1
    )
    hists = result.histograms
    spikes = result.spike_ratios

    for group, names in (("Fig 10 (few L2 misses)", LOW_L2_MISS),
                         ("Fig 11 (many L2 misses)", HIGH_L2_MISS)):
        print(f"\n--- {group}: voltage histograms ---")
        for name in names:
            h = hists[name]
            peak_v, peak_pct = h.peak_bin()
            top = h.percent.max()
            bars = "".join(
                "#" if p > top / 2 else ("+" if p > top / 8 else ".")
                for p in h.percent
            )
            print(f"  {name:7s} [{bars}] peak {peak_pct:4.1f}% at "
                  f"{peak_v:.3f} V, spike ratio {spikes[name]:5.1f}")

    # Shape claim 1: every high-miss benchmark spikes harder at nominal
    # voltage than every low-miss benchmark.
    worst_low = max(spikes[n] for n in LOW_L2_MISS)
    best_high = min(spikes[n] for n in HIGH_L2_MISS)
    assert best_high > worst_low, (
        f"nominal-voltage spike does not separate the groups "
        f"({best_high:.1f} vs {worst_low:.1f})"
    )

    # Shape claim 2: low-miss voltage is the more Gaussian of the two.
    low_rate = np.mean(
        [_voltage_gaussian_rate(net150, traces[n]) for n in LOW_L2_MISS]
    )
    high_rate = np.mean(
        [_voltage_gaussian_rate(net150, traces[n]) for n in HIGH_L2_MISS]
    )
    print(f"\n  run-level voltage subsamples accepted as Gaussian: "
          f"low-miss {low_rate * 100:.0f}%, high-miss {high_rate * 100:.0f}%")
    assert low_rate > high_rate

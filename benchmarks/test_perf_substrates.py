"""Performance benchmarks for the library's hot paths.

Unlike the figure benches (which reproduce the paper's results once),
these time the substrates themselves over repeated rounds — the numbers a
downstream user cares about when sizing their own experiments: wavelet
transform throughput, voltage simulation, monitor updates, and simulator
cycles per second.
"""

import numpy as np
import pytest

from repro.core import ShiftRegisterMonitor, WaveletVoltageEstimator
from repro.power import ConvolutionVoltageSimulator, StreamingVoltageModel
from repro.uarch import Pipeline, TABLE_1
from repro.wavelets import modwt, wavedec, waverec
from repro.workloads import generate


@pytest.fixture(scope="module")
def signal_4k():
    return np.random.default_rng(0).normal(30.0, 8.0, size=4096)


def test_perf_wavedec_4k(benchmark, signal_4k):
    """Full-depth Haar analysis of a 4K-cycle trace."""
    coeffs = benchmark(wavedec, signal_4k)
    assert len(coeffs) == 13


def test_perf_waverec_4k(benchmark, signal_4k):
    """Full-depth Haar synthesis."""
    coeffs = wavedec(signal_4k)
    out = benchmark(waverec, coeffs)
    np.testing.assert_allclose(out, signal_4k, atol=1e-9)


def test_perf_modwt_4k(benchmark, signal_4k):
    """Undecimated transform (8 levels) of a 4K-cycle trace."""
    details, approx = benchmark(modwt, signal_4k, "haar", 8)
    assert len(details) == 8


def test_perf_voltage_simulation_64k(benchmark, net150):
    """FFT convolution of a 64K-cycle trace (the offline truth path)."""
    trace = np.random.default_rng(1).normal(30.0, 8.0, size=65536)
    sim = ConvolutionVoltageSimulator(net150)
    v = benchmark(sim.voltage, trace)
    assert v.shape == trace.shape


def test_perf_streaming_voltage_64k(benchmark, net150):
    """Biquad recursion over a 64K-cycle trace (the control-loop truth)."""
    trace = np.random.default_rng(2).normal(30.0, 8.0, size=65536)
    model = StreamingVoltageModel(net150)
    v = benchmark(model.run, trace)
    assert v.shape == trace.shape


def test_perf_window_characterization(benchmark, net150):
    """One 256-cycle window through the §4.1 five-step method."""
    estimator = WaveletVoltageEstimator(net150)
    window = np.random.default_rng(3).normal(30.0, 8.0, size=256)
    ch = benchmark(estimator.characterize_window, window)
    assert ch.voltage_model.variance >= 0


def test_perf_hardware_monitor_cycle(benchmark, net150):
    """One shift-register monitor update (the per-cycle hardware model)."""
    hw = ShiftRegisterMonitor(net150, terms=13)

    def step():
        return hw.observe(35.0)

    v = benchmark(step)
    assert 0.5 < v < 1.5


def test_perf_pipeline_kilocycle(benchmark):
    """One thousand simulated machine cycles (gzip workload)."""
    def run_1k():
        pipe = Pipeline(TABLE_1, iter(generate("gzip")))
        for _ in range(1000):
            pipe.tick()
        return pipe.stats.cycles

    cycles = benchmark.pedantic(run_1k, rounds=3, iterations=1)
    assert cycles == 1000

"""Ablation 2: conditional clocking style vs. dI/dt severity.

Wattch's clock-gating spectrum changes the *dynamic range* of the current
and hence the dI/dt problem itself: with no gating (idle units burn full
power) the current is nearly flat and voltage emergencies vanish; ideal
gating maximizes the swing.  The paper's setting (cc3: idle units draw a
fraction) sits between.  This ablation reruns a stressing benchmark under
all three styles.
"""

import numpy as np

from repro.power import simulate_voltage
from repro.uarch import ClockGating, TABLE_1, WattchPowerModel
from repro.workloads import generate
from repro.workloads.generator import prewarm_caches

CYCLES = 12288


def _run_with_gating(gating):
    from repro.uarch.pipeline import Pipeline

    pipe = Pipeline(TABLE_1, iter(generate("mgrid")),
                    WattchPowerModel(gating=gating))
    prewarm_caches(pipe.caches, "mgrid")
    for _ in range(2048):
        pipe.tick()
    return np.array([pipe.tick() for _ in range(CYCLES)])


def _ablation(net):
    rows = {}
    for gating in (ClockGating.NONE, ClockGating.CC3, ClockGating.IDEAL):
        current = _run_with_gating(gating)
        v = simulate_voltage(net, current)[1024:]
        rows[gating.value] = {
            "mean_current": float(current.mean()),
            "current_std": float(current.std()),
            "below_097": float(np.mean(v < 0.97)),
            "v_min": float(v.min()),
        }
    return rows


def test_abl02_clock_gating(benchmark, net150):
    rows = benchmark.pedantic(_ablation, args=(net150,), rounds=1, iterations=1)

    print("\n--- Ablation 2: clock gating style vs dI/dt (mgrid, 150%) ---")
    print(f"  {'style':6s} {'mean I':>8s} {'std I':>7s} {'%<0.97V':>8s} "
          f"{'v_min':>7s}")
    for style, row in rows.items():
        print(f"  {style:6s} {row['mean_current']:7.1f}A "
              f"{row['current_std']:6.1f}A {row['below_097'] * 100:7.2f}% "
              f"{row['v_min']:7.3f}")

    # No gating -> fixed current -> essentially no variation or emergencies.
    assert rows["none"]["current_std"] < 1e-9
    assert rows["none"]["below_097"] == 0.0
    # Aggressive gating widens the swing and (at least) matches cc3's
    # emergency exposure; cc3 — the paper's setting — is the middle ground.
    assert rows["ideal"]["current_std"] > rows["cc3"]["current_std"]
    assert rows["ideal"]["below_097"] >= rows["cc3"]["below_097"]
    assert rows["cc3"]["below_097"] > 0.0
    # Gating also changes mean power (that's its purpose).
    assert rows["none"]["mean_current"] > rows["cc3"]["mean_current"] > (
        rows["ideal"]["mean_current"]
    )

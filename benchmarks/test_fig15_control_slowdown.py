"""Figure 15: performance loss under wavelet dI/dt control.

The paper's closed-loop result: across SPEC with the wavelet monitor
driving stall/no-op actuation, optimistic thresholds cost ~0.01 % mean
slowdown and even conservative ones stay within a few percent (max ~2 %
at the settings shown; the Table-2 row allows 1-6.5 %) — versus up to
22 % for pipeline damping.  This bench sweeps the three target-impedance
points over a representative benchmark subset.
"""

import os

import numpy as np

from repro.experiments import figure15

# A representative subset spanning quiet, middling and problematic
# benchmarks (the full 26-benchmark sweep is minutes of simulation; set
# REPRO_FULL_FIG15=1 to run it all).
SUBSET = ("gzip", "vpr", "mcf", "eon", "swim", "mgrid", "gcc", "galgel",
          "equake", "apsi")
CYCLES = 10240
MARGIN = 0.012  # 12 mV control tolerance


def test_fig15_control_slowdown(benchmark, net125, net150, net200):
    names = SUBSET
    if os.environ.get("REPRO_FULL_FIG15"):
        from repro.workloads import SPEC2000

        names = tuple(SPEC2000)
    fig = benchmark.pedantic(
        figure15,
        args=({125.0: net125, 150.0: net150, 200.0: net200}, names),
        kwargs={"cycles": CYCLES, "margin": MARGIN},
        rounds=1,
        iterations=1,
    )
    results = {(int(p), n): r for (p, n), r in fig.results.items()}

    print("\n--- Figure 15: slowdown under wavelet dI/dt control ---")
    print(f"  {'benchmark':10s} {'125%':>8s} {'150%':>8s} {'200%':>8s}"
          f"   faults(150%): before -> after")
    for name in names:
        r125, r150, r200 = (results[(p, name)] for p in (125, 150, 200))
        print(f"  {name:10s} {r125.slowdown * 100:7.2f}% "
              f"{r150.slowdown * 100:7.2f}% {r200.slowdown * 100:7.2f}%"
              f"   {r150.baseline_faults:5d} -> {r150.controlled_faults}")

    slowdowns = {
        pct: [results[(pct, n)].slowdown for n in names]
        for pct in (125, 150, 200)
    }
    means = {pct: float(np.mean(s)) for pct, s in slowdowns.items()}
    print(f"\n  mean slowdown: 125%={means[125] * 100:.2f}%  "
          f"150%={means[150] * 100:.2f}%  200%={means[200] * 100:.2f}%")

    # Shape claims (paper §5.3 and Table 2):
    # 1. Mean slowdown stays in the low single digits at every impedance.
    for pct in (125, 150, 200):
        assert means[pct] < 0.065, f"mean slowdown too high at {pct}%"
    # 2. The worst benchmark stays within the paper's qualitative bound
    #    (a few percent; far below damping's 22%).
    worst = max(max(s) for s in slowdowns.values())
    assert worst < 0.15
    # 3. Control substantially suppresses faults where faults existed.
    for name in ("mgrid", "gcc", "galgel", "apsi"):
        r = results[(150, name)]
        if r.baseline_faults >= 20:
            assert r.controlled_faults < 0.5 * r.baseline_faults, name
    # 4. Quiet benchmarks are (almost) untouched.
    for name in ("vpr", "mcf"):
        assert results[(150, name)].slowdown < 0.02, name

"""Ablation 1: choice of wavelet basis for the online monitor.

The paper (§2.1): "there is no known optimal wavelet basis, and there is
no way to know a priori which wavelet basis is the best match" — it picks
Haar for its hardware regularity.  This ablation quantifies the trade:
term-efficiency of Haar vs. higher-order Daubechies vs. adaptive packet
best-basis, against the hardware cost only Haar enjoys (Figure 14's
shift registers).
"""


from repro.core import (
    PacketVoltageMonitor,
    ShiftRegisterMonitor,
    coefficient_error_curve,
)

TERMS = (5, 9, 13, 20, 30)


def _ablation(net, trace):
    curves = {
        "haar": coefficient_error_curve(net, trace, TERMS),
        "db2": coefficient_error_curve(net, trace, TERMS, wavelet="db2"),
        "db4": coefficient_error_curve(net, trace, TERMS, wavelet="db4"),
        "packet": coefficient_error_curve(
            net, trace, TERMS, monitor_cls=PacketVoltageMonitor
        ),
    }
    return curves


def test_abl01_wavelet_basis(benchmark, net150, traces):
    trace = traces["gcc"].current[:6144]
    curves = benchmark.pedantic(
        _ablation, args=(net150, trace), rounds=1, iterations=1
    )

    print("\n--- Ablation 1: monitor max error (mV) by basis and K ---")
    print("  basis   " + "".join(f"  K={k:<4d}" for k in TERMS))
    for basis, curve in curves.items():
        row = "".join(f"  {curve[k] * 1e3:6.1f}" for k in TERMS)
        print(f"  {basis:7s}{row}")
    hw = ShiftRegisterMonitor(net150, terms=13)
    print(f"\n  Haar hardware (Figure 14): {hw.adds_per_cycle} adds/cycle; "
          f"db filters need true multipliers and irregular taps.")

    # Every basis is usable: errors fall with K and end below ~25 mV.
    for basis, curve in curves.items():
        errs = [curve[k] for k in TERMS]
        assert errs[-1] < 0.025, basis
        assert errs[-1] < errs[0], basis

    # The paper's design point is rational: at its K = 13 operating point
    # Haar is within ~2x of the best basis tried, while being the only
    # one with an O(1)-adds-per-term hardware story.
    best13 = min(curve[13] for curve in curves.values())
    assert curves["haar"][13] < 2.0 * best13

    # Negative result worth recording: entropy best-basis packets do NOT
    # dominate the fixed dyadic tree on this kernel at small K.
    assert curves["packet"][9] > 0.8 * curves["haar"][9]

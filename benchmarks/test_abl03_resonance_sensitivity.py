"""Ablation 3: estimator robustness across supply designs.

The paper's method calibrates per-scale factors for one supply network;
a designer will ask how the approach fares as the resonance point and
sharpness move (package/decap choices shift both).  This ablation
recalibrates and re-validates the Figure-9 estimate across a grid of
(resonant frequency, Q), checking that accuracy is a property of the
method rather than of one lucky operating point.
"""

import numpy as np

from repro.core import WaveletVoltageEstimator, predict_trace
from repro.power import PowerSupplyNetwork, calibrate_peak_impedance
from repro.uarch import Simulator
from repro.workloads import stressmark_stream

BENCHES = ("gzip", "mcf", "mgrid", "galgel")
GRID = (
    (60e6, 5.0),
    (100e6, 8.0),  # the paper-point used everywhere else
    (150e6, 8.0),
    (100e6, 12.0),
)


def _calibrated(res_hz, q, percent=150.0):
    base = PowerSupplyNetwork(resonant_hz=res_hz, quality_factor=q)
    half = max(1, int(round(base.resonant_period_cycles / 2)))
    run = Simulator().run(stressmark_stream(half), 12288, name="stress")
    z100 = calibrate_peak_impedance(base, run.current[1024:])
    return base.with_peak_impedance(z100).with_scale(percent / 100.0)


def _ablation(traces):
    rows = {}
    for res_hz, q in GRID:
        net = _calibrated(res_hz, q)
        estimator = WaveletVoltageEstimator(net)
        errs = []
        for name in BENCHES:
            p = predict_trace(
                net, traces[name].current, name=name, estimator=estimator
            )
            errs.append(p.error)
        rows[(res_hz, q)] = {
            "rms": float(np.sqrt(np.mean(np.array(errs) ** 2))),
            "peak_level": estimator.factors.peak_level(),
        }
    return rows


def test_abl03_resonance_sensitivity(benchmark, traces):
    rows = benchmark.pedantic(_ablation, args=(traces,), rounds=1, iterations=1)

    print("\n--- Ablation 3: estimator RMS error across supply designs ---")
    print(f"  {'resonance':>10s} {'Q':>5s} {'RMS err':>8s} {'peak level':>11s}")
    for (res_hz, q), row in rows.items():
        print(f"  {res_hz / 1e6:8.0f}MHz {q:5.1f} {row['rms'] * 100:7.2f}% "
              f"{row['peak_level']:11d}")

    # The method holds up across designs, with a caveat worth recording:
    # accuracy is best when the resonant period sits near a dyadic Haar
    # scale (100 MHz -> 30 cycles ~ level 5's 32) and degrades when it
    # falls between scales (60 MHz -> 50 cycles straddles levels 5 and 6),
    # because the per-scale factors then split a coherent tone across two
    # bands whose correlations are modelled independently.
    for key, row in rows.items():
        assert row["rms"] < 0.08, key
    assert rows[(100e6, 8.0)]["rms"] < 0.03
    assert rows[(100e6, 12.0)]["rms"] < 0.03
    assert rows[(60e6, 5.0)]["rms"] > rows[(100e6, 8.0)]["rms"]

    # And the calibration tracks the physics: the dominant wavelet scale
    # moves with the resonant frequency (higher resonance -> finer scale).
    lvl_60 = rows[(60e6, 5.0)]["peak_level"]
    lvl_150 = rows[(150e6, 8.0)]["peak_level"]
    assert lvl_150 < lvl_60

"""Table 2: quantitative comparison of the dI/dt control proposals.

The paper's Table 2 compares four schemes qualitatively; this bench runs
all four in closed loop on the same workloads at 150 % target impedance
and quantifies the table's columns: false-positive rate, performance
impact, and implementation complexity (digital ops per cycle).

Expected ordering (the paper's argument):
  analog sensing   — accurate, near-zero digital cost, needs analog IP;
  full convolution — accurate but hundreds of ops/cycle;
  pipeline damping — cheap but false-positive-prone and slow;
  wavelet (ours)   — near-convolution accuracy at tens of ops/cycle.
"""


from repro.experiments import table2

WORKLOADS = ("mgrid", "gcc", "gzip")
CYCLES = 10240
MARGIN = 0.012


def test_tab02_scheme_comparison(benchmark, net150):
    rows = benchmark.pedantic(
        table2,
        args=(net150,),
        kwargs={"workloads": WORKLOADS, "cycles": CYCLES, "margin": MARGIN},
        rounds=1,
        iterations=1,
    )
    ops = {scheme: row.ops_per_cycle for scheme, row in rows.items()}

    print("\n--- Table 2: dI/dt scheme comparison (150% target impedance) ---")
    print(f"  {'scheme':10s} {'mean slow':>10s} {'max slow':>9s} "
          f"{'FP rate':>8s} {'fault cut':>9s} {'ops/cycle':>10s}")
    for scheme, row in rows.items():
        print(f"  {scheme:10s} {row.mean_slowdown * 100:9.2f}% "
              f"{row.max_slowdown * 100:8.2f}% "
              f"{row.false_positive_rate * 100:7.0f}% "
              f"{row.fault_reduction * 100:8.0f}% "
              f"{ops[scheme]:10d}")

    # Column: implementation complexity.  Wavelet sits between damping
    # and full convolution, well below full convolution.
    assert ops["damping"] < ops["wavelet"] < ops["full_conv"] / 5
    assert ops["analog"] == 0

    # Column: performance impact.  Damping is the costly outlier; the
    # voltage-based schemes (analog / full conv / wavelet) are all cheap.
    assert rows["damping"].mean_slowdown > 2 * rows["wavelet"].mean_slowdown
    assert rows["wavelet"].mean_slowdown < 0.07
    assert rows["full_conv"].mean_slowdown < 0.07
    assert rows["analog"].mean_slowdown < 0.07

    # Column: false positives.  Damping intervenes on current slew alone
    # and wastes most of its interventions; wavelet's rate is far lower.
    assert rows["damping"].false_positive_rate > 0.5
    assert (
        rows["wavelet"].false_positive_rate
        < rows["damping"].false_positive_rate
    )

    # All schemes actually suppress faults on the stressing workloads.
    for scheme in rows:
        assert rows[scheme].fault_reduction > 0.4, scheme

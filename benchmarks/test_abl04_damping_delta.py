"""Ablation 4: the pipeline-damping trade-off frontier.

Pipeline damping's single knob is the allowed current delta.  Sweeping it
maps the scheme's whole fault-suppression-vs-slowdown frontier; the point
of the paper's comparison is that the wavelet controller sits strictly
inside it (comparable suppression at a fraction of the cost).
"""


from repro.core import (
    PipelineDampingController,
    ThresholdController,
    WaveletVoltageMonitor,
    run_control_experiment,
)

DELTAS = (4.0, 8.0, 16.0, 32.0)
CYCLES = 8192
BENCH = "galgel"


def _ablation(net):
    frontier = {}
    for delta in DELTAS:
        frontier[delta] = run_control_experiment(
            BENCH,
            net,
            lambda delta=delta: PipelineDampingController(
                net, delta=delta, window=8
            ),
            cycles=CYCLES,
        )
    wavelet = run_control_experiment(
        BENCH,
        net,
        lambda: ThresholdController(
            WaveletVoltageMonitor(net, terms=13), net, margin=0.012
        ),
        cycles=CYCLES,
    )
    return frontier, wavelet


def test_abl04_damping_delta(benchmark, net150):
    frontier, wavelet = benchmark.pedantic(
        _ablation, args=(net150,), rounds=1, iterations=1
    )

    print(f"\n--- Ablation 4: damping delta sweep on {BENCH} (150%) ---")
    print(f"  {'scheme':14s} {'slowdown':>9s} {'faults':>14s} {'FP rate':>8s}")
    for delta, r in frontier.items():
        print(f"  damping d={delta:4.0f} {r.slowdown * 100:8.2f}% "
              f"{r.baseline_faults:5d} -> {r.controlled_faults:5d} "
              f"{r.false_positive_rate * 100:7.0f}%")
    print(f"  wavelet K=13   {wavelet.slowdown * 100:8.2f}% "
          f"{wavelet.baseline_faults:5d} -> {wavelet.controlled_faults:5d} "
          f"{wavelet.false_positive_rate * 100:7.0f}%")

    slowdowns = [frontier[d].slowdown for d in DELTAS]
    faults = [frontier[d].controlled_faults for d in DELTAS]
    # Tighter delta -> more intervention -> slower but safer.
    assert slowdowns[0] > slowdowns[-1]
    assert faults[0] <= faults[-1]

    # The wavelet point dominates the frontier: any damping setting that
    # suppresses at least as many faults as the wavelet controller costs
    # several times the slowdown.  (Loose settings are cheaper but leave
    # nearly all faults in place — they are not on the same frontier arm.)
    matching = [
        frontier[d]
        for d in DELTAS
        if frontier[d].controlled_faults <= wavelet.controlled_faults
    ]
    assert matching, "some damping point should match the suppression"
    cheapest = min(r.slowdown for r in matching)
    assert wavelet.slowdown < 0.5 * cheapest, (
        f"wavelet {wavelet.slowdown:.3f} vs cheapest matching damping "
        f"{cheapest:.3f}"
    )

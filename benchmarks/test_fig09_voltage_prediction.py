"""Figure 9: estimated vs. observed percent of cycles below 0.97 V.

The headline offline result: across 26 benchmarks the wavelet-variance
estimator predicts the fraction of cycles spent below the 0.97 V control
point with ~0.94 % RMS error, correctly flagging mgrid/gcc/galgel/apsi as
dI/dt-problematic (>= 3 %) and vpr/mcf/equake/gap as quiet (<= 0.5 %).
"""


from conftest import PROBLEMATIC, QUIET
from repro.experiments import figure9

THRESHOLD = 0.97


def test_fig09_voltage_prediction(benchmark, net150, traces):
    result = benchmark.pedantic(
        figure9,
        args=(net150, traces),
        kwargs={"threshold": THRESHOLD},
        rounds=1,
        iterations=1,
    )
    predictions = result.predictions

    print("\n--- Figure 9: % of cycles below 0.97 V (150% target impedance)"
          " ---")
    print(f"  {'benchmark':10s} {'estimated':>9s} {'observed':>9s} "
          f"{'error':>7s}")
    for name, p in predictions.items():
        print(f"  {name:10s} {p.estimated * 100:8.2f}% {p.observed * 100:8.2f}%"
              f" {p.error * 100:+6.2f}%")
    rms = result.rms_error
    print(f"  RMS error: {rms * 100:.2f}%  (paper: 0.94%)")

    # Shape claim 1: overall accuracy in the paper's ballpark.
    assert rms < 0.02, f"RMS error {rms * 100:.2f}% too large"

    # Shape claim 2: the problematic group is identified (paper: these
    # spend at least 3% of execution below 0.97 V, estimated and observed).
    for name in PROBLEMATIC:
        assert predictions[name].observed >= 0.03, name
        assert predictions[name].estimated >= 0.02, name

    # Shape claim 3: the quiet group is identified (paper: < 0.5%).
    for name in QUIET:
        assert predictions[name].observed <= 0.01, name
        assert predictions[name].estimated <= 0.01, name

    # Shape claim 4: estimates rank benchmarks usefully — the estimated
    # ordering correlates strongly with the observed one.
    assert result.rank_correlation > 0.85

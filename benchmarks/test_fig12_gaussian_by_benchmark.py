"""Figure 12: per-benchmark Gaussianity of 64-cycle current windows.

The paper plots, for each of the 26 benchmarks, the percentage of
64-cycle windows whose per-cycle current passes the chi-squared test —
and observes that the benchmarks with high L2 miss rates are the least
Gaussian (they alternate long stalls with return bursts).  This bench
reproduces the full bar chart and the correlation with L2 misses.
"""

import numpy as np

from conftest import suite_of
from repro.experiments import figure12


def test_fig12_gaussian_by_benchmark(benchmark, traces):
    result = benchmark.pedantic(
        figure12, args=(traces,), rounds=1, iterations=1
    )
    rates, mpki = result.rates, result.l2_mpki

    print("\n--- Figure 12: % of 64-cycle current windows Gaussian "
          "(chi-sq @95%) ---")
    for suite in ("int", "fp"):
        print(f"  [{suite.upper()}]")
        for name, rate in rates.items():
            if suite_of(name) != suite:
                continue
            bar = "#" * int(rate * 40)
            print(f"    {name:9s} {rate * 100:5.1f}%  (L2 "
                  f"{mpki[name]:6.1f} MPKI)  {bar}")

    # Shape claim: high-L2-miss benchmarks are the least Gaussian.  Split
    # the suite at 5 MPKI and compare group means.
    heavy = [rates[n] for n in rates if mpki[n] > 5.0]
    light = [rates[n] for n in rates if mpki[n] <= 5.0]
    assert heavy and light
    assert float(np.mean(heavy)) < 0.6 * float(np.mean(light)), (
        "L2-miss-heavy benchmarks should be markedly less Gaussian"
    )

    # And the rank correlation between MPKI and Gaussianity is negative.
    rank_corr = result.rank_correlation
    print(f"\n  rank correlation (L2 MPKI vs Gaussianity): {rank_corr:+.2f}")
    assert rank_corr < -0.3

"""Shared fixtures for the figure/table reproduction benches.

Each bench regenerates one table or figure from the paper's evaluation:
it computes the same rows/series the paper plots, prints them, and
asserts the *shape* claims (who wins, by roughly what factor, where the
crossovers fall).  Absolute values differ from the paper's testbed — see
EXPERIMENTS.md for the side-by-side record.

``REPRO_BENCH_CYCLES`` scales the simulated trace length (default 24576
cycles per benchmark after warm-up).
"""

import os

import numpy as np
import pytest

from repro.core import calibrated_supply
from repro.experiments import (
    simulate_suite,
)
from repro.workloads import SPEC_INT

BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "24576"))


@pytest.fixture(scope="session")
def net100():
    return calibrated_supply(100)


@pytest.fixture(scope="session")
def net125():
    return calibrated_supply(125)


@pytest.fixture(scope="session")
def net150():
    return calibrated_supply(150)


@pytest.fixture(scope="session")
def net200():
    return calibrated_supply(200)


@pytest.fixture(scope="session")
def traces():
    """Per-benchmark simulation results, shared across every bench."""
    return simulate_suite(cycles=BENCH_CYCLES)


def print_series(title: str, rows: dict, fmt: str = "{:8.3f}") -> None:
    """Print one figure's data as aligned rows."""
    print(f"\n--- {title} ---")
    for key, value in rows.items():
        if isinstance(value, (tuple, list, np.ndarray)):
            body = "  ".join(fmt.format(v) for v in value)
        else:
            body = fmt.format(value)
        print(f"  {str(key):10s} {body}")


def suite_of(name: str) -> str:
    return "int" if name in SPEC_INT else "fp"

"""Ablation 5: how a prefetcher reshapes the dI/dt problem.

Prior dI/dt work treats the machine as fixed; a designer adding a
sequential prefetcher changes the current waveform itself — memory-bound
benchmarks stall less (the Figure-11 nominal-voltage spike shrinks) and
draw more sustained current.  This ablation quantifies the shift and
confirms the offline estimator (recalibrated for nothing — the supply is
unchanged) still tracks the truth on the new machine.
"""


from repro.core import WaveletVoltageEstimator, benchmark_voltage_histogram, predict_trace
from repro.uarch import ProcessorConfig, simulate_benchmark

BENCHES = ("swim", "art", "mcf")
CYCLES = 16384


def _ablation(net):
    pf_cfg = ProcessorConfig(prefetch_next_line=True)
    estimator = WaveletVoltageEstimator(net)
    rows = {}
    for name in BENCHES:
        base = simulate_benchmark(name, cycles=CYCLES)
        pf = simulate_benchmark(name, cycles=CYCLES, config=pf_cfg,
                                use_cache=False)
        h_base = benchmark_voltage_histogram(net, base)
        h_pf = benchmark_voltage_histogram(net, pf)
        p = predict_trace(net, pf.current, name=name, estimator=estimator)
        rows[name] = {
            "ipc": (base.stats.ipc, pf.stats.ipc),
            "mean_current": (base.mean_current, pf.mean_current),
            "spike": (
                h_base.spike_ratio(net.vdd, 0.004),
                h_pf.spike_ratio(net.vdd, 0.004),
            ),
            "estimator_error": p.error,
        }
    return rows


def test_abl05_prefetching(benchmark, net150):
    rows = benchmark.pedantic(_ablation, args=(net150,), rounds=1, iterations=1)

    print("\n--- Ablation 5: next-line prefetching on memory-bound "
          "benchmarks ---")
    print(f"  {'bench':6s} {'IPC':>13s} {'mean I (A)':>14s} "
          f"{'nominal spike':>15s} {'est err':>8s}")
    for name, row in rows.items():
        print(f"  {name:6s} {row['ipc'][0]:5.2f}->{row['ipc'][1]:5.2f} "
              f"{row['mean_current'][0]:6.1f}->{row['mean_current'][1]:6.1f} "
              f"{row['spike'][0]:6.1f}->{row['spike'][1]:6.1f} "
              f"{row['estimator_error'] * 100:+7.2f}%")

    for name, row in rows.items():
        # Prefetching helps throughput and raises sustained current...
        assert row["ipc"][1] > row["ipc"][0], name
        assert row["mean_current"][1] > row["mean_current"][0], name
        # ...and the estimator still works on the reshaped machine.
        assert abs(row["estimator_error"]) < 0.02, name
    # The stall signature weakens on at least the streaming benchmarks.
    assert rows["swim"]["spike"][1] < rows["swim"]["spike"][0]

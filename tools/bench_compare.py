#!/usr/bin/env python
"""Diff bench results against a committed baseline; exit 1 on regression.

The CI perf gate::

    PYTHONPATH=src python tools/bench_compare.py \
        --baseline benchmarks/baselines/BENCH_kernels.json \
        --current BENCH_kernels.json

compares every shared numeric metric with noise-aware thresholds (see
:mod:`repro.benchtrack`): speedups and throughputs must not drop, raw
timings must not grow, by more than ``--threshold`` (default 25%) —
widened for sub-noise-floor timings.  Each run appends its verdict to
``BENCH_history.jsonl`` (``--history`` to relocate, ``--no-history`` to
skip), building a queryable perf trajectory across commits.

Exit codes: 0 ok, 1 regression (or quick/full mode mismatch), 2 usage.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchtrack import (  # noqa: E402
    DEFAULT_NOISE_FLOOR_S,
    DEFAULT_THRESHOLD,
    append_history,
    compare_files,
    render_comparison,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on benchmark regressions vs a committed baseline"
    )
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON"
    )
    parser.add_argument(
        "--current", required=True, help="freshly measured (or committed) JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression threshold (default %(default)s)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=DEFAULT_NOISE_FLOOR_S,
        metavar="SECONDS",
        help="timings at/below this get a widened threshold "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--allow-quick-mismatch",
        action="store_true",
        help="permit comparing quick-mode against full-mode numbers",
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="append the verdict here (default %(default)s)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append to the history trajectory",
    )
    args = parser.parse_args(argv)

    for path in (args.baseline, args.current):
        if not Path(path).is_file():
            parser.error(f"no such file: {path}")

    result = compare_files(
        args.baseline,
        args.current,
        threshold=args.threshold,
        noise_floor_s=args.noise_floor,
        allow_quick_mismatch=args.allow_quick_mismatch,
    )
    print(render_comparison(result))
    if not args.no_history:
        append_history(args.history, result)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Regenerate (or verify) the golden kernel fixture.

``tests/fixtures/golden_kernels.npz`` pins the end-to-end numerical
outputs of the kernel layer on one seeded 4096-cycle trace:

* per-(level, window) wavelet variances and correlations (§4.1 steps
  1-3 over sixteen 256-cycle windows),
* the 13-term compressed-monitor voltage estimate for every cycle
  (§5.1),
* the Gaussian-model emergency fraction at the 0.97 V control point
  (§4.1 step 5).

All golden values are produced by the **reference** backend — the
scalar oracle — so the fixture detects numerical drift in either
backend.  Regenerate only when an intentional numerical change lands::

    PYTHONPATH=src python tools/regen_golden.py

``--check`` recomputes and compares against the committed fixture
without writing, exiting non-zero on drift (useful in CI).
"""

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (  # noqa: E402
    WaveletVoltageEstimator,
    WaveletVoltageMonitor,
    calibrated_supply,
)
from repro.kernels import KernelConfig, get_kernel  # noqa: E402

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "fixtures"
    / "golden_kernels.npz"
)

SEED = 2004
CYCLES = 4096
THRESHOLD = 0.97
TERMS = 13
IMPEDANCE = 150


def golden_trace() -> np.ndarray:
    """The seeded synthetic current trace every golden value derives from."""
    rng = np.random.default_rng(SEED)
    t = np.arange(CYCLES)
    phases = 8.0 * np.sin(2 * np.pi * t / 512.0)
    return 40.0 + phases + rng.normal(0.0, 5.0, CYCLES)


def compute_golden() -> dict:
    """Every golden array, computed via the reference backend."""
    trace = golden_trace()
    network = calibrated_supply(IMPEDANCE)
    estimator = WaveletVoltageEstimator(network)
    monitor = WaveletVoltageMonitor(network, terms=TERMS)
    with KernelConfig(backend="reference"):
        windows = estimator.tile_windows(trace)
        stats = get_kernel("window_stats")(windows, estimator.levels)
        fraction = estimator.estimate_fraction_below(trace, THRESHOLD)
        voltage = monitor.estimate_trace(trace)
    return {
        "trace": trace,
        "wavelet_variances": stats.variances,
        "wavelet_correlations": stats.correlations,
        "voltage_estimate": voltage,
        "emergency_fraction": np.array(fraction),
        "threshold": np.array(THRESHOLD),
        "terms": np.array(TERMS),
        "impedance": np.array(IMPEDANCE),
        "seed": np.array(SEED),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed fixture instead of rewriting it",
    )
    args = parser.parse_args()
    golden = compute_golden()
    if args.check:
        if not FIXTURE.exists():
            print(f"missing fixture: {FIXTURE}")
            return 1
        with np.load(FIXTURE) as stored:
            drift = []
            for key, value in golden.items():
                if key not in stored:
                    drift.append(f"{key}: missing from fixture")
                    continue
                diff = float(np.max(np.abs(stored[key] - value)))
                if diff > 1e-12:
                    drift.append(f"{key}: max |diff| = {diff:.3e}")
        if drift:
            print("golden fixture drift:")
            for line in drift:
                print(f"  {line}")
            return 1
        print(f"ok: {FIXTURE} matches recomputation")
        return 0
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(FIXTURE, **golden)
    print(f"wrote {FIXTURE}")
    for key, value in golden.items():
        print(f"  {key:<22} {np.asarray(value).shape}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Unit tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro import viz


class TestBarChart:
    def test_rows_and_scaling(self):
        out = viz.bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.split("\n")
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # the peak fills the width
        assert lines[0].count("#") == 5

    def test_title(self):
        out = viz.bar_chart({"a": 1.0}, title="T")
        assert out.startswith("--- T ---")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            viz.bar_chart({})

    def test_all_zero_safe(self):
        out = viz.bar_chart({"a": 0.0})
        assert "#" not in out


class TestLinePlot:
    def test_dimensions(self):
        out = viz.line_plot(np.sin(np.linspace(0, 7, 500)), height=8, width=40)
        lines = out.split("\n")
        assert len(lines) == 8
        assert all("*" in line or "|" in line or "+" in line for line in lines)

    def test_extremes_labelled(self):
        y = np.array([1.0, 5.0, 3.0])
        out = viz.line_plot(y, height=5, width=10)
        assert "5.000" in out
        assert "1.000" in out

    def test_constant_signal(self):
        out = viz.line_plot(np.full(50, 2.0), height=4, width=20)
        assert out.count("*") == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            viz.line_plot(np.array([]))
        with pytest.raises(ValueError):
            viz.line_plot(np.ones(10), height=1)


class TestHistogram:
    def test_bin_count(self):
        out = viz.histogram(np.random.default_rng(0).normal(size=500), bins=10)
        assert len(out.split("\n")) == 10

    def test_peak_fills_width(self):
        out = viz.histogram(np.zeros(100), bins=4, width=20)
        assert max(line.count("#") for line in out.split("\n")) == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            viz.histogram(np.array([]))


class TestWaveform:
    def test_ternary_marks(self):
        y = np.concatenate([np.zeros(30), np.full(30, 5.0), np.full(30, 10.0)])
        out = viz.waveform(y, thresholds=(2.0, 8.0), width=30)
        assert set(out) <= {"#", "+", "."}
        assert out[0] == "." and out[-1] == "#"

    def test_default_thresholds(self):
        out = viz.waveform(np.linspace(0, 1, 90), width=30)
        assert "." in out and "#" in out

    def test_bad_thresholds(self):
        with pytest.raises(ValueError):
            viz.waveform(np.ones(10), thresholds=(2.0, 1.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            viz.waveform(np.array([]))


class TestTable:
    def test_alignment(self):
        out = viz.table(
            {"gzip": [1.0, 2.0], "mcf": [3.0, 4.0]},
            headers=["est", "obs"],
        )
        lines = out.split("\n")
        assert len(lines) == 3
        assert "est" in lines[0] and "obs" in lines[0]

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            viz.table({"a": [1.0]}, headers=["x", "y"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            viz.table({}, headers=["x"])

"""Spans, events and the enabled/disabled gate."""

import pytest

from repro import obs
from repro.obs import trace


@pytest.fixture
def enabled():
    obs.enable("summary")
    yield
    obs.disable()


class TestSpans:
    def test_nesting_builds_a_tree(self, enabled):
        with obs.span("outer") as outer:
            with obs.span("mid") as mid:
                with obs.span("leaf"):
                    pass
        assert [c.name for c in outer.children] == ["mid"]
        assert [c.name for c in mid.children] == ["leaf"]
        assert mid.depth == 1 and mid.parent_name == "outer"
        assert "outer" in outer.tree() and "leaf" in outer.tree()

    def test_timing_monotonicity(self, enabled):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                sum(range(10_000))
        assert outer.wall_s >= inner.wall_s >= 0.0
        assert outer.cpu_s >= inner.cpu_s >= 0.0

    def test_spans_feed_the_collector(self, enabled):
        with obs.span("stage.simulate"):
            pass
        with obs.span("stage.simulate"):
            pass
        rows = obs.span_collector().rows()
        assert rows["stage.simulate"]["count"] == 2
        assert rows["stage.simulate"]["wall_s"] >= 0.0
        assert (
            rows["stage.simulate"]["max_s"]
            <= rows["stage.simulate"]["wall_s"]
        )

    def test_attrs_and_error_annotation(self, enabled):
        with pytest.raises(RuntimeError):
            with obs.span("job", benchmark="gzip") as s:
                s.set(windows=16)
                raise RuntimeError("boom")
        assert s.attrs["benchmark"] == "gzip"
        assert s.attrs["windows"] == 16
        assert s.attrs["error"] == "RuntimeError"

    def test_current_span(self, enabled):
        assert obs.current_span() is None
        with obs.span("outer"):
            with obs.span("inner"):
                assert obs.current_span().name == "inner"
            assert obs.current_span().name == "outer"
        assert obs.current_span() is None


class TestDisabledMode:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        s1 = obs.span("a", x=1)
        s2 = obs.span("b")
        assert s1 is s2  # one shared null object: nothing allocates
        with s1 as inside:
            inside.set(anything="goes")
        assert inside.tree() == ""

    def test_disabled_helpers_record_nothing(self):
        obs.counter_inc("x_total", 5)
        obs.gauge_set("g", 1.0)
        obs.histogram_observe("h", 0.1)
        obs.event("emergency_onset", cycle=1)
        assert obs.registry().families() == []
        assert len(obs.span_collector()) == 0

    def test_finish_when_disabled_returns_none(self):
        assert obs.finish() is None

    def test_enable_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown obs mode"):
            obs.enable("xml")


class TestEvents:
    def test_events_count_by_name(self, enabled):
        obs.event("emergency_onset", cycle=10)
        obs.event("emergency_onset", cycle=55)
        obs.event("actuation_summary", stalls=3)
        counter = obs.registry().counter("events_total")
        assert counter.value(event="emergency_onset") == 2
        assert counter.value(event="actuation_summary") == 1


class TestWorkerCapture:
    def test_captured_records_absorb_into_parent(self):
        # worker side: capture without an exporter
        obs.worker_mode(True)
        try:
            with obs.span("stage.simulate"):
                pass
            obs.event("emergency_onset", cycle=3)
            before = {}
            delta = trace.snapshot_delta(before)
            records = obs.drain_records()
        finally:
            obs.disable()
        assert {r["type"] for r in records} == {"span", "event"}
        assert obs.drain_records() == []  # drained exactly once

        # parent side: fold the shipped payloads in
        obs.enable("summary")
        try:
            obs.absorb(delta, records)
            rows = obs.span_collector().rows()
            assert rows["stage.simulate"]["count"] == 1
            counter = obs.registry().counter("events_total")
            assert counter.value(event="emergency_onset") == 1
        finally:
            obs.disable()

    def test_worker_mode_off_disables(self):
        obs.worker_mode(False)
        assert not obs.enabled()

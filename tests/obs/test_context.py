"""Trace-context propagation: ids, wire format, tree reconstruction."""

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.context import TraceContext, new_span_id, new_trace_id


@pytest.fixture
def enabled():
    obs.enable("summary")
    yield
    obs.disable()


class TestIds:
    def test_id_shapes(self):
        tid, sid = new_trace_id(), new_span_id()
        assert len(tid) == 32 and int(tid, 16) >= 0
        assert len(sid) == 16 and int(sid, 16) >= 0

    def test_ids_are_unique(self):
        assert len({new_span_id() for _ in range(256)}) == 256

    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id="a" * 32, parent_span_id="b" * 16)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) == TraceContext()


class TestSpanIds:
    def test_every_span_gets_ids_under_one_trace(self, enabled):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert outer.trace_id == inner.trace_id == obs.current_trace_id()
        assert outer.span_id != inner.span_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_trace_id_survives_across_root_spans(self, enabled):
        with obs.span("a") as a:
            pass
        with obs.span("b") as b:
            pass
        assert a.trace_id == b.trace_id

    def test_disabled_spans_have_no_ids(self):
        obs.disable()
        with obs.span("x") as s:
            pass
        assert s.span_id is None and s.trace_id is None


class TestBoundary:
    def test_set_trace_context_adopts_trace_and_parent(self, enabled):
        wire = ("f" * 32, "e" * 16)
        obs.set_trace_context(wire)
        with obs.span("root") as root:
            with obs.span("child") as child:
                pass
        assert root.trace_id == "f" * 32
        assert root.parent_id == "e" * 16  # boundary parent
        assert child.parent_id == root.span_id  # normal nesting inside

    def test_propagation_context_names_the_open_span(self, enabled):
        with obs.span("pipeline.batch") as batch:
            wire = obs.propagation_context()
        assert wire == (batch.trace_id, batch.span_id)

    def test_propagation_context_none_when_disabled(self):
        obs.disable()
        assert obs.propagation_context() is None

    def test_worker_round_trip_parents_on_supervisor_span(self, enabled):
        with obs.span("pipeline.batch") as batch:
            wire = obs.propagation_context()
        # simulate the forked worker
        obs.worker_mode(True)
        obs.set_trace_context(wire)
        with obs.span("pipeline.job"):
            pass
        records = obs.drain_records()
        (job,) = [r for r in records if r["name"] == "pipeline.job"]
        assert job["trace_id"] == batch.trace_id
        assert job["parent_id"] == batch.span_id


class TestSpanTree:
    def test_tree_reconstruction(self):
        records = [
            {"type": "span", "span_id": "b1", "parent_id": None, "name": "batch"},
            {"type": "span", "span_id": "j1", "parent_id": "b1", "name": "job"},
            {"type": "span", "span_id": "s1", "parent_id": "j1", "name": "stage"},
            {"type": "span", "span_id": "x1", "parent_id": "gone", "name": "lost"},
            {"type": "event", "name": "not-a-span"},
        ]
        tree = obs.span_tree(records)
        assert [r["name"] for r in tree["roots"]] == ["batch"]
        assert [r["name"] for r in tree["children"]["b1"]] == ["job"]
        assert [r["name"] for r in tree["children"]["j1"]] == ["stage"]
        assert [r["name"] for r in tree["orphans"]] == ["lost"]
        assert set(tree["by_id"]) == {"b1", "j1", "s1", "x1"}

    def test_records_carry_pid_and_tid(self, enabled):
        obs.disable()
        obs.enable("jsonl", path="/dev/null")
        captured = []
        trace.add_subscriber(captured.append)
        with obs.span("x"):
            pass
        (record,) = captured
        assert record["pid"] > 0 and record["tid"] > 0
        assert record["span_id"] and record["trace_id"]

"""Metrics registry: labels, buckets, snapshots, merge, Prometheus."""

import pytest

from repro.obs import (
    MetricsRegistry,
    diff_snapshots,
    exponential_buckets,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_label_series_accumulate_independently(self, registry):
        c = registry.counter("cache_hits_total")
        c.inc(stage="simulate")
        c.inc(2, stage="simulate")
        c.inc(5, stage="voltage")
        assert c.value(stage="simulate") == 3
        assert c.value(stage="voltage") == 5
        assert c.value(stage="characterize") == 0

    def test_label_order_is_irrelevant(self, registry):
        c = registry.counter("x_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_counters_reject_negative(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("x_total").inc(-1)

    def test_same_family_is_shared(self, registry):
        registry.counter("x_total").inc(3)
        assert registry.counter("x_total").value() == 3

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")


class TestGauge:
    def test_last_write_wins(self, registry):
        g = registry.gauge("engagement_rate")
        g.set(0.25, benchmark="gzip")
        g.set(0.75, benchmark="gzip")
        assert g.value(benchmark="gzip") == 0.75
        assert g.value(benchmark="mcf") is None


class TestHistogram:
    def test_exponential_buckets(self):
        edges = exponential_buckets(1e-3, 10.0, 4)
        assert edges == pytest.approx((1e-3, 1e-2, 1e-1, 1.0))
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 10.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1e-3, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1e-3, 10.0, 0)

    def test_bucket_edges_are_inclusive_upper_bounds(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)   # lands in the first bucket (le="1")
        h.observe(1.001)  # second bucket
        h.observe(10.0)  # second bucket
        h.observe(11.0)  # +Inf overflow
        state = h.value()
        assert state["counts"] == [1, 2, 1]
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(23.001)

    def test_unseen_labels_return_none(self, registry):
        assert registry.histogram("lat").value(stage="x") is None

    def test_misordered_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="ascending"):
            registry.histogram("bad", buckets=(2.0, 1.0))


class TestSnapshotMerge:
    def test_cross_process_delta_merges_additively(self, registry):
        # the worker flow: snapshot, work, diff, merge into the parent
        registry.counter("hits_total").inc(2, stage="simulate")
        before = registry.snapshot()
        registry.counter("hits_total").inc(3, stage="simulate")
        registry.gauge("rate").set(0.5)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        delta = diff_snapshots(before, registry.snapshot())

        parent = MetricsRegistry()
        parent.counter("hits_total").inc(10, stage="simulate")
        parent.merge(delta)
        assert parent.counter("hits_total").value(stage="simulate") == 13
        assert parent.gauge("rate").value() == 0.5
        assert parent.histogram("lat").value()["count"] == 1

    def test_unchanged_series_are_dropped_from_delta(self, registry):
        registry.counter("hits_total").inc(2)
        registry.histogram("lat").observe(0.5)
        before = registry.snapshot()
        registry.counter("hits_total").inc(0.0)  # no change
        delta = diff_snapshots(before, registry.snapshot())
        assert delta == {}

    def test_merge_is_idempotent_on_empty(self, registry):
        registry.merge({})
        assert registry.families() == []


class TestPrometheus:
    def test_text_format(self, registry):
        registry.counter("cache_hits_total", "cache hits").inc(
            4, stage="simulate"
        )
        registry.gauge("rate").set(0.25)
        text = registry.to_prometheus()
        assert "# HELP repro_cache_hits_total cache hits" in text
        assert "# TYPE repro_cache_hits_total counter" in text
        assert 'repro_cache_hits_total{stage="simulate"} 4' in text
        assert "repro_rate 0.25" in text

    def test_histogram_buckets_are_cumulative(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = registry.to_prometheus()
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="10"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text

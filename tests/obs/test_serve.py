"""The live obs endpoint: parse_listen, /metrics, /healthz, /events."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.serve import ObsServer, parse_listen


@pytest.fixture
def enabled():
    obs.enable("summary")
    yield
    obs.disable()


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


class TestParseListen:
    def test_host_port(self):
        assert parse_listen("0.0.0.0:9100") == ("0.0.0.0", 9100)
        assert parse_listen("localhost:8080") == ("localhost", 8080)

    def test_bare_port_binds_loopback(self):
        assert parse_listen("9100") == ("127.0.0.1", 9100)

    @pytest.mark.parametrize("bad", ["", ":", "host:", "host:abc", "host:-1",
                                     "host:70000", "a:b:c"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_listen(bad)


class TestEndpoints:
    def test_metrics_and_healthz(self, enabled):
        with obs.span("pipeline.batch"):
            pass
        obs.counter_inc("pipeline_jobs_total", status="ok")
        with ObsServer("127.0.0.1", 0) as server:
            status, ctype, body = _get(f"{server.url}/metrics")
            assert status == 200 and "text/plain" in ctype
            text = body.decode()
            assert 'repro_spans_total{name="pipeline.batch"} 1' in text
            assert 'repro_pipeline_jobs_total{status="ok"} 1' in text
            assert "# TYPE repro_spans_total counter" in text

            status, ctype, body = _get(f"{server.url}/healthz")
            assert status == 200 and "application/json" in ctype
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["pid"] > 0 and health["uptime_s"] >= 0
            assert health["obs_mode"] == "summary"

    def test_events_backlog_and_filters(self, enabled):
        with ObsServer("127.0.0.1", 0) as server:
            obs.event("emergency", benchmark="mcf")
            obs.event("retry", benchmark="gcc")
            with obs.span("stage.x"):
                pass
            status, _, body = _get(f"{server.url}/events")
            lines = [json.loads(l) for l in body.splitlines() if l]
            assert status == 200
            types = [r["type"] for r in lines]
            assert types.count("event") == 2 and "span" in types

            _, _, body = _get(f"{server.url}/events?type=event&n=1")
            lines = [json.loads(l) for l in body.splitlines() if l]
            assert len(lines) == 1
            assert lines[0]["name"] == "retry"

    def test_unknown_path_404(self, enabled):
        with ObsServer("127.0.0.1", 0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/nope")
            assert err.value.code == 404

    def test_root_points_at_endpoints(self, enabled):
        with ObsServer("127.0.0.1", 0) as server:
            status, _, body = _get(f"{server.url}/")
            assert status == 200
            assert b"/metrics" in body and b"/healthz" in body

    def test_log_serving_mode_uses_fed_records(self):
        # `repro obs serve --log`: a standalone registry built from a log,
        # no subscription to the live trace stream.
        from repro.obs import registry_from_records

        records = [
            {"type": "metric", "kind": "counter",
             "name": "pipeline_jobs_total", "value": 4,
             "labels": {"status": "ok"}},
            {"type": "event", "name": "emergency"},
        ]
        registry = registry_from_records(records)
        server = ObsServer(
            "127.0.0.1", 0, registry=registry, subscribe=False
        ).start()
        try:
            server.feed(records)
            _, _, body = _get(f"{server.url}/metrics")
            assert b'repro_pipeline_jobs_total{status="ok"} 4' in body
            _, _, body = _get(f"{server.url}/events?type=event")
            assert json.loads(body.splitlines()[0])["name"] == "emergency"
        finally:
            server.stop()

    def test_ephemeral_port_is_reported(self, enabled):
        server = ObsServer("127.0.0.1", 0).start()
        try:
            assert server.port > 0
            assert str(server.port) in server.url
        finally:
            server.stop()


class TestLiveStream:
    def test_subscriber_sees_spans_opened_after_start(self, enabled):
        with ObsServer("127.0.0.1", 0) as server:
            assert len(server.backlog()) == 0
            with obs.span("late"):
                pass
            names = [r.get("name") for r in server.backlog()]
            assert "late" in names

"""JSONL round-trip, ``repro obs report``, and the CLI ``--obs`` flag."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main


@pytest.fixture
def jsonl_path(tmp_path):
    return tmp_path / "run.jsonl"


class TestJsonlRoundTrip:
    def _record_some_work(self):
        with obs.span("pipeline.job", benchmark="gzip"):
            with obs.span("stage.simulate", benchmark="gzip"):
                pass
        obs.event("emergency_onset", cycle=42)
        obs.counter_inc("pipeline_cache_hits_total", 3, stage="simulate")
        obs.counter_inc("pipeline_cache_misses_total", 1, stage="simulate")

    def test_log_replays_to_the_same_totals(self, jsonl_path):
        obs.enable("jsonl", str(jsonl_path))
        try:
            self._record_some_work()
        finally:
            pointer = obs.finish()
        assert "repro obs report" in pointer

        records = obs.load_records(jsonl_path)
        by_type = {}
        for r in records:
            by_type.setdefault(r["type"], []).append(r)
        assert len(by_type["span"]) == 2
        assert len(by_type["event"]) == 1
        # finish() appended final totals, one metric record per series
        metric_names = {r["name"] for r in by_type["metric"]}
        assert "pipeline_cache_hits_total" in metric_names
        assert "events_total" in metric_names

        report = obs.render_report(jsonl_path)
        assert f"{len(records)} records" in report
        assert "(2 spans, 1 events)" in report
        assert "pipeline.job" in report and "stage.simulate" in report
        assert "cache: 3 hits / 1 misses (75% hit rate)" in report
        assert "events: 1 logged" in report

    def test_nested_span_records_carry_structure(self, jsonl_path):
        obs.enable("jsonl", str(jsonl_path))
        try:
            self._record_some_work()
        finally:
            obs.finish()
        spans = {
            r["name"]: r
            for r in obs.load_records(jsonl_path)
            if r["type"] == "span"
        }
        inner = spans["stage.simulate"]
        assert inner["parent"] == "pipeline.job"
        assert inner["depth"] == 1
        assert inner["attrs"]["benchmark"] == "gzip"
        assert spans["pipeline.job"]["parent"] is None

    def test_malformed_line_is_rejected_with_location(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": "a"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            obs.load_records(bad)

    def test_non_record_json_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n[1, 2, 3]\n')
        with pytest.raises(ValueError, match="not an obs record"):
            obs.load_records(bad)


class TestObsFlagParsing:
    def test_flag_after_subcommand(self):
        args = build_parser().parse_args(
            ["pipeline", "run", "--suite", "int", "--obs", "summary"]
        )
        assert args.obs == "summary"

    def test_flag_before_subcommand(self):
        args = build_parser().parse_args(
            ["--obs", "jsonl", "--obs-path", "x.jsonl", "characterize", "gzip"]
        )
        assert args.obs == "jsonl"
        assert args.obs_path == "x.jsonl"

    def test_default_is_off(self):
        args = build_parser().parse_args(["simulate", "gzip"])
        assert args.obs == "off"

    def test_obs_report_parses(self):
        args = build_parser().parse_args(["obs", "report", "run.jsonl"])
        assert args.command == "obs"
        assert args.obs_command == "report"
        assert args.log == "run.jsonl"

    def test_obs_report_requires_a_log(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "report"])


class TestCliEndToEnd:
    def _run_pipeline(self, extra, tmp_path):
        return main(
            [
                "pipeline", "run",
                "--benchmarks", "gzip",
                "--cycles", "4096",
                "--cache-dir", str(tmp_path / "cache"),
                *extra,
            ]
        )

    def test_summary_mode_prints_latency_table(self, tmp_path, capsys):
        assert self._run_pipeline(["--obs", "summary"], tmp_path) == 0
        out = capsys.readouterr().out
        assert "observability summary — spans" in out
        for name in ("pipeline.batch", "pipeline.job", "stage.simulate"):
            assert name in out
        assert "cache:" in out and "misses" in out

    def test_jsonl_mode_round_trips_through_obs_report(
        self, tmp_path, capsys
    ):
        log = tmp_path / "run.jsonl"
        assert (
            self._run_pipeline(
                ["--obs", "jsonl", "--obs-path", str(log)], tmp_path
            )
            == 0
        )
        pointer = capsys.readouterr().out
        assert "observability log:" in pointer

        lines = [
            json.loads(line)
            for line in log.read_text().splitlines()
            if line.strip()
        ]
        span_names = {r["name"] for r in lines if r["type"] == "span"}
        # uarch.simulate is absent when the in-process memo already
        # holds the trace, so only the pipeline spans are guaranteed
        assert {
            "pipeline.batch",
            "pipeline.job",
            "stage.simulate",
            "stage.voltage",
            "stage.characterize",
        } <= span_names

        assert main(["obs", "report", str(log)]) == 0
        report = capsys.readouterr().out
        assert f"{len(lines)} records" in report
        assert "stage.characterize" in report
        # the batch ran 3 stages fresh: report shows the same cache totals
        assert "cache: 0 hits / 3 misses" in report

    def test_prom_mode_dumps_exposition_text(self, tmp_path, capsys):
        assert self._run_pipeline(["--obs", "prom"], tmp_path) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_pipeline_jobs_total counter" in out
        assert 'repro_pipeline_jobs_total{status="ok"} 1' in out
        assert "repro_pipeline_stage_seconds_bucket" in out

    def test_off_mode_emits_no_telemetry(self, tmp_path, capsys):
        assert self._run_pipeline([], tmp_path) == 0
        out = capsys.readouterr().out
        assert "observability" not in out
        assert not obs.enabled()

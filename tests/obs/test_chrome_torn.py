"""Chrome trace-event export and torn-tail JSONL tolerance (satellite 1)."""

import json

import pytest

from repro import obs
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.report import load_records, render_report, scan_records


RECORDS = [
    {"type": "span", "name": "pipeline.batch", "t_start": 10.0,
     "wall_s": 2.0, "cpu_s": 1.5, "pid": 100, "tid": 1,
     "trace_id": "t" * 32, "span_id": "b" * 16, "parent_id": None},
    {"type": "span", "name": "pipeline.job", "t_start": 10.1,
     "wall_s": 1.0, "cpu_s": 0.9, "pid": 200, "tid": 1,
     "trace_id": "t" * 32, "span_id": "j" * 16, "parent_id": "b" * 16},
    {"type": "event", "name": "emergency", "t": 10.5, "pid": 200, "tid": 1},
    {"type": "sample", "t": 10.6, "rss_bytes": 50 << 20, "cpu_s": 0.4,
     "pid": 200, "open_spans": ["pipeline.job"]},
]


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        doc = chrome_trace(RECORDS)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"pipeline.batch", "pipeline.job"}
        job = next(e for e in xs if e["name"] == "pipeline.job")
        assert job["pid"] == 200
        assert job["dur"] == pytest.approx(1.0 * 1e6)
        # span identity rides in args so span_tree() can rebuild the tree
        assert job["args"]["span_id"] == "j" * 16
        assert job["args"]["parent_id"] == "b" * 16

    def test_events_and_samples_map_to_instant_and_counter(self):
        doc = chrome_trace(RECORDS)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "i", "C"} <= phases
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert counter["args"]["rss_mb"] == pytest.approx(
            (50 << 20) / 1e6, abs=0.01
        )

    def test_trace_ids_recorded_in_other_data(self):
        doc = chrome_trace(RECORDS)
        assert doc["otherData"]["trace_ids"] == ["t" * 32]
        assert doc["displayTimeUnit"] == "ms"

    def test_write_returns_event_count(self, tmp_path):
        out = tmp_path / "trace.json"
        count = write_chrome_trace(RECORDS, out)
        doc = json.loads(out.read_text())
        assert count == len(doc["traceEvents"]) == 4

    def test_chrome_mode_writes_on_finish(self, tmp_path):
        out = tmp_path / "trace.json"
        obs.enable("chrome", path=str(out))
        try:
            with obs.span("pipeline.batch"):
                with obs.span("pipeline.job", benchmark="gzip"):
                    pass
            obs.event("emergency", benchmark="gzip")
        finally:
            obs.finish()
            obs.disable()
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert names == {"pipeline.batch", "pipeline.job"}
        tree = obs.span_tree(
            [e["args"] | {"type": "span", "name": e["name"]}
             for e in doc["traceEvents"] if e["ph"] == "X"]
        )
        assert [r["name"] for r in tree["roots"]] == ["pipeline.batch"]


class TestTornTail:
    def _torn_log(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        good = json.dumps({"type": "event", "name": "ok"})
        path.write_text(good + "\n" + good + "\n" + '{"type": "spa')
        return path

    def test_scan_records_skips_and_counts(self, tmp_path):
        records, skipped = scan_records(self._torn_log(tmp_path))
        assert len(records) == 2 and skipped == 1

    def test_load_records_stays_strict(self, tmp_path):
        with pytest.raises(ValueError, match="torn.jsonl:3"):
            load_records(self._torn_log(tmp_path))

    def test_render_report_announces_skips(self, tmp_path):
        text = render_report(self._torn_log(tmp_path))
        assert "2 records" in text
        assert "skipped 1 malformed line(s)" in text

    def test_clean_log_reports_no_skips(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text(json.dumps({"type": "event", "name": "x"}) + "\n")
        assert "skipped" not in render_report(path)

    def test_obs_report_cli_survives_torn_log(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["obs", "report", str(self._torn_log(tmp_path))])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped 1 malformed line(s)" in out


class TestObsChromeCli:
    def test_obs_chrome_converts_a_log(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "run.jsonl"
        lines = [json.dumps(r) for r in RECORDS]
        lines.append('{"type": "spa')  # torn tail must not block it
        log.write_text("\n".join(lines) + "\n")
        out = tmp_path / "trace.json"
        code = main(["obs", "chrome", str(log), "--output", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == 4
        assert "trace.json" in capsys.readouterr().out

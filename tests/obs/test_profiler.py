"""Resource profiler: /proc sampling, span attribution, gauge peaks."""

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.profiler import ResourceProfiler, read_resources


@pytest.fixture
def enabled():
    obs.enable("summary")
    yield
    obs.disable()


class TestReadResources:
    def test_sample_has_all_fields(self):
        sample = read_resources()
        assert set(sample) == {"rss_bytes", "cpu_s", "read_bytes", "write_bytes"}
        assert sample["rss_bytes"] > 0  # a live interpreter is tens of MB
        assert sample["cpu_s"] >= 0.0
        assert sample["read_bytes"] >= 0 and sample["write_bytes"] >= 0

    def test_rss_is_plausible(self):
        # more than one page, less than a terabyte
        rss = read_resources()["rss_bytes"]
        assert 4096 < rss < 1 << 40


class TestSampleOnce:
    def test_noop_when_disabled(self):
        obs.disable()
        profiler = ResourceProfiler(0.05)
        sample = profiler.sample_once()
        assert profiler.samples == 1
        assert sample["rss_bytes"] > 0
        # no registry side effects while disabled
        obs.enable("summary")
        try:
            reg = trace.registry()
            assert reg.gauge("process_rss_bytes", "").value() is None
        finally:
            obs.disable()

    def test_sets_process_gauges_and_counter(self, enabled):
        profiler = ResourceProfiler(0.05)
        profiler.sample_once(emit=False)
        reg = trace.registry()
        assert reg.gauge("process_rss_bytes", "").value() > 0
        assert reg.gauge("process_rss_peak_bytes", "").value() > 0
        assert reg.counter("profiler_samples_total").value() == 1
        profiler.sample_once(emit=False)
        assert reg.counter("profiler_samples_total").value() == 2

    def test_attributes_peak_to_open_spans(self, enabled):
        profiler = ResourceProfiler(0.05)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                profiler.sample_once(emit=False)
                assert outer.rss_peak > 0
                assert inner.rss_peak == outer.rss_peak
        with obs.span("later") as later:
            pass
        assert later.rss_peak == 0  # no sample while it was open

    def test_job_peak_gauge_tracks_max_per_benchmark(self, enabled):
        profiler = ResourceProfiler(0.05)
        reg = trace.registry()
        with obs.span("pipeline.job", benchmark="mcf"):
            profiler.sample_once(emit=False)
            first = reg.gauge("job_peak_rss_bytes", "").value(job="mcf")
            assert first > 0
            # a lower reading must not lower the recorded peak
            gauge = reg.gauge("job_peak_rss_bytes", "")
            gauge.set(first * 100, job="mcf")
            profiler.sample_once(emit=False)
            assert gauge.value(job="mcf") == first * 100

    def test_emits_sample_record_with_open_span_names(self, enabled):
        captured = []
        trace.add_subscriber(captured.append)
        try:
            profiler = ResourceProfiler(0.05)
            with obs.span("pipeline.batch"):
                profiler.sample_once()
        finally:
            trace.remove_subscriber(captured.append)
        samples = [r for r in captured if r["type"] == "sample"]
        assert len(samples) == 1
        assert "pipeline.batch" in samples[0]["open_spans"]
        assert samples[0]["rss_bytes"] > 0
        assert samples[0]["trace_id"] == obs.current_trace_id()


class TestThread:
    def test_start_stop_collects_samples(self, enabled):
        profiler = ResourceProfiler(0.01)
        profiler.start()
        profiler.start()  # idempotent
        import time

        deadline = time.time() + 2.0
        while profiler.samples < 3 and time.time() < deadline:
            time.sleep(0.01)
        profiler.stop()
        assert profiler.samples >= 3
        assert profiler.rss_peak > 0
        profiler.stop()  # idempotent

    def test_enable_with_interval_starts_profiler(self):
        obs.enable("summary", profile_interval=0.01)
        try:
            assert obs.profile_interval() == 0.01
            import time

            time.sleep(0.05)
            reg = trace.registry()
            assert reg.counter("profiler_samples_total").value() >= 1
        finally:
            obs.disable()

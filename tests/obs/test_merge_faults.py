"""Cross-process metric merge under fault paths (no double-counting).

Worker telemetry travels back on each :class:`JobOutcome` as a registry
delta plus captured records; the supervisor absorbs it exactly once —
including for retried attempts, whose stale results are folded in at the
supervisor and then nulled so ``collect()`` cannot absorb them again.
These tests pin the exact counter values after injected faults, so any
double-count (or drop) fails loudly.
"""

import pytest

from repro import obs
from repro.obs import trace
from repro.pipeline import JobSpec, RetryPolicy, run_batch
from repro.pipeline import faults
from repro.pipeline.stages import register_stage

FAST = 0.02
# generous: under a loaded machine (the full suite) a worker respawn plus
# a retry dispatch can eat seconds, and a tight budget turns scheduling
# delay into a spurious timeout that changes the counters under test
TIMEOUT_S = 10.0


@register_stage("t-merge", fields=("benchmark",))
def _stage_t_merge(ctx):
    return {"bench": ctx.spec.benchmark}


@register_stage("t-merge-slow", fields=("benchmark",))
def _stage_t_merge_slow(ctx):
    # long enough for a 10 ms profiler to tick several times inside the
    # worker's pipeline.job span
    import time

    time.sleep(0.08)
    return {"bench": ctx.spec.benchmark}


def specs_for(*names):
    return [JobSpec(name, stages=("t-merge",)) for name in names]


@pytest.fixture
def plan(monkeypatch):
    def activate(text):
        monkeypatch.setenv(faults.ENV_VAR, text)
        return text

    yield activate


@pytest.fixture
def enabled():
    obs.enable("summary")
    yield
    obs.disable()


class TestAbsorb:
    """The merge primitive itself, exercised with hand-built deltas."""

    def _delta_with(self, build):
        """Run ``build`` against a scratch registry, return its snapshot
        diffed against empty (i.e. exactly what a worker would ship)."""
        from repro.obs.registry import MetricsRegistry, diff_snapshots

        scratch = MetricsRegistry()
        build(scratch)
        return diff_snapshots(MetricsRegistry().snapshot(), scratch.snapshot())

    def test_counters_add(self, enabled):
        reg = trace.registry()
        reg.counter("pipeline_jobs_total", "").inc(1, status="ok")
        delta = self._delta_with(
            lambda r: r.counter("pipeline_jobs_total", "").inc(2, status="ok")
        )
        trace.absorb(delta, None)
        assert reg.counter("pipeline_jobs_total").value(status="ok") == 3

    def test_job_peak_rss_merges_max_wise(self, enabled):
        reg = trace.registry()
        gauge = reg.gauge("job_peak_rss_bytes", "")
        gauge.set(500.0, job="mcf")
        # a cheaper retry reporting a lower peak must not lower it ...
        low = self._delta_with(
            lambda r: r.gauge("job_peak_rss_bytes", "").set(100.0, job="mcf")
        )
        trace.absorb(low, None)
        assert gauge.value(job="mcf") == 500.0
        # ... but a higher peak wins
        high = self._delta_with(
            lambda r: r.gauge("job_peak_rss_bytes", "").set(900.0, job="mcf")
        )
        trace.absorb(high, None)
        assert gauge.value(job="mcf") == 900.0

    def test_other_gauges_stay_last_writer_wins(self, enabled):
        reg = trace.registry()
        reg.gauge("process_rss_bytes", "").set(500.0)
        delta = self._delta_with(
            lambda r: r.gauge("process_rss_bytes", "").set(100.0)
        )
        trace.absorb(delta, None)
        assert reg.gauge("process_rss_bytes", "").value() == 100.0

    def test_absorbed_records_reach_subscribers(self, enabled):
        captured = []
        trace.add_subscriber(captured.append)
        try:
            trace.absorb(None, [{"type": "event", "name": "from-worker"}])
        finally:
            trace.remove_subscriber(captured.append)
        assert [r["name"] for r in captured] == ["from-worker"]

    def test_absorb_is_a_noop_when_disabled(self):
        obs.disable()
        trace.absorb(
            {"x_total": {"kind": "counter", "help": "", "series": {(): 5.0}}},
            [{"type": "event", "name": "late"}],
        )  # must not raise, must not resurrect state


class TestInlineFaultCounters:
    """Single-process path: attempt counters must match the fault plan."""

    def test_raise_then_retry_counts_each_attempt_once(self, plan, enabled):
        plan("t-merge@gzip:raise:1")
        batch = run_batch(
            specs_for("gzip", "mcf"),
            policy=RetryPolicy(max_attempts=2, backoff_s=FAST),
        )
        assert batch.ok
        reg = trace.registry()
        jobs = reg.counter("pipeline_jobs_total")
        assert jobs.value(status="ok") == 2  # one per job, retries converge
        assert jobs.value(status="error") == 1  # exactly the injected raise
        assert reg.counter("pipeline_retries_total").value(
            kind="exception"
        ) == 1


class TestPoolFaultMerge:
    """Pool path: killed workers and requeues must not double-count."""

    def test_kill_and_requeue_counts_jobs_exactly_once(self, plan, enabled):
        plan("t-merge@gzip:kill:1")
        batch = run_batch(
            specs_for("gzip", "mcf"),
            jobs=2,
            policy=RetryPolicy(max_attempts=2, backoff_s=FAST),
        )
        assert batch.ok
        reg = trace.registry()
        jobs = reg.counter("pipeline_jobs_total")
        # the killed attempt died before reporting; the requeued attempt
        # and the bystander each count exactly once
        assert jobs.value(status="ok") == 2
        assert jobs.value(status="error") == 0
        assert reg.counter("pipeline_retries_total").value(kind="crash") == 1
        assert reg.counter("pipeline_requeues_total").value(kind="crash") == 1
        assert reg.counter("pipeline_worker_crashes_total").value() == 1
        # worker-side pipeline.job spans merged back exactly once each
        assert trace.registry().counter("spans_total").value(
            name="pipeline.job"
        ) == 2

    def test_mixed_fault_batch_counters_are_exact(self, plan, enabled):
        # ci-plan grammar: one raise, one hang-kill, one worker kill
        plan(
            "t-merge@gzip:raise:1,"
            "t-merge@mcf:hang(300):1,"
            "t-merge@vpr:kill:1"
        )
        names = ("gzip", "mcf", "vpr", "gcc")
        batch = run_batch(
            specs_for(*names),
            jobs=2,
            policy=RetryPolicy(
                max_attempts=3, timeout_s=TIMEOUT_S, backoff_s=FAST
            ),
        )
        assert batch.ok
        assert batch.retries == 3
        reg = trace.registry()
        jobs = reg.counter("pipeline_jobs_total")
        # 4 jobs eventually succeed; only the raise produced a reported
        # failed attempt (hang and kill attempts die unreported)
        assert jobs.value(status="ok") == 4
        assert jobs.value(status="error") == 1
        retries = reg.counter("pipeline_retries_total")
        assert retries.value(kind="exception") == 1
        assert retries.value(kind="timeout") == 1
        assert retries.value(kind="crash") == 1
        requeues = reg.counter("pipeline_requeues_total")
        assert sum(
            requeues.value(kind=kind)
            for kind in ("exception", "timeout", "crash")
        ) == 3

    def test_peak_rss_survives_the_boundary(self, plan, enabled):
        batch = run_batch(specs_for("gzip"), jobs=1)
        (outcome,) = batch.outcomes
        assert outcome.ok
        # the job span's sampled peak rides back on the outcome; with no
        # profiler running it stays 0 but must exist and be an int
        assert isinstance(outcome.peak_rss_bytes, int)

    def test_profiled_pool_run_reports_job_peaks(self, plan):
        obs.enable("summary", profile_interval=0.01)
        try:
            specs = [
                JobSpec(name, stages=("t-merge-slow",))
                for name in ("gzip", "mcf")
            ]
            batch = run_batch(specs, jobs=2)
            assert batch.ok
            gauge = trace.registry().gauge("job_peak_rss_bytes", "")
            for outcome in batch.outcomes:
                job = outcome.spec.benchmark
                peak = gauge.value(job=job)
                assert peak is not None and peak > 0, job
                assert outcome.peak_rss_bytes > 0, job
        finally:
            obs.disable()

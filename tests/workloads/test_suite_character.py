"""Regression harness for the SPEC2000 workload models' characters.

The figure reproductions depend on each synthetic benchmark keeping its
qualitative role: the memory-bound four stay L2-miss heavy and slow, the
steady four stay smooth and predictable, the resonant four keep pumping
the 15-60-cycle band, and the quiet four stay out of trouble.  These
tests pin those roles down with generous margins, so profile edits that
would silently invalidate Figures 9-12 fail loudly here instead.

They simulate at reduced length (12K cycles) to stay test-suite friendly;
the benches re-verify at full length.
"""

import numpy as np
import pytest

from repro.experiments import HIGH_L2_MISS, LOW_L2_MISS, PROBLEMATIC, QUIET
from repro.uarch import simulate_benchmark
from repro.wavelets import wavelet_variances
from repro.workloads import SPEC2000

CYCLES = 12288


@pytest.fixture(scope="module")
def suite():
    return {
        name: simulate_benchmark(name, cycles=CYCLES) for name in SPEC2000
    }


def band_variance(trace: np.ndarray) -> float:
    """Resonance-band (levels 4-6) current variance."""
    n = 1 << int(np.log2(len(trace)))
    variances = wavelet_variances(trace[:n])
    return sum(variances[lvl] for lvl in (4, 5, 6))


class TestGlobalSanity:
    def test_all_benchmarks_make_progress(self, suite):
        for name, r in suite.items():
            assert r.stats.ipc > 0.05, name
            assert r.stats.committed > 500, name

    def test_current_envelope(self, suite):
        for name, r in suite.items():
            assert 14.0 < r.mean_current < 45.0, name
            assert r.current.std() > 1.0, name

    def test_ipc_spread_exists(self, suite):
        ipcs = [r.stats.ipc for r in suite.values()]
        assert max(ipcs) > 3 * min(ipcs)


class TestMemoryBoundGroup:
    def test_l2_heavy(self, suite):
        for name in HIGH_L2_MISS:
            assert suite[name].stats.l2_mpki > 10.0, name

    def test_mostly_waiting_on_memory(self, suite):
        for name in HIGH_L2_MISS:
            assert suite[name].l2_outstanding.mean() > 0.4, name

    def test_low_throughput(self, suite):
        for name in HIGH_L2_MISS:
            assert suite[name].stats.ipc < 0.6, name


class TestSteadyGroup:
    def test_nearly_no_l2_misses(self, suite):
        for name in LOW_L2_MISS:
            assert suite[name].stats.l2_mpki < 2.0, name

    def test_well_predicted(self, suite):
        for name in LOW_L2_MISS:
            assert suite[name].stats.misprediction_rate < 0.05, name

    def test_decent_throughput(self, suite):
        for name in LOW_L2_MISS:
            assert suite[name].stats.ipc > 0.8, name


class TestResonantGroup:
    def test_band_variance_dominates_quiet_group(self, suite):
        resonant = min(band_variance(suite[n].current) for n in PROBLEMATIC)
        quiet = max(band_variance(suite[n].current) for n in QUIET)
        assert resonant > 1.5 * quiet

    def test_not_memory_bound(self, suite):
        for name in PROBLEMATIC:
            assert suite[name].stats.l2_mpki < 5.0, name


class TestQuietGroup:
    def test_low_band_variance_relative_to_suite(self, suite):
        suite_band = np.median(
            [band_variance(r.current) for r in suite.values()]
        )
        for name in QUIET:
            assert band_variance(suite[name].current) < 1.2 * suite_band, name


class TestSuiteStructure:
    def test_int_fp_split(self, suite):
        from repro.workloads import SPEC_FP, SPEC_INT

        assert len(SPEC_INT) == 12 and len(SPEC_FP) == 14

    def test_determinism_across_cache(self, suite):
        fresh = simulate_benchmark("twolf", cycles=CYCLES, use_cache=False)
        np.testing.assert_array_equal(fresh.current, suite["twolf"].current)

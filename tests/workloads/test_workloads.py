"""Unit tests for workload profiles, generation and the stressmark."""

import itertools

import numpy as np
import pytest

from repro.uarch import CacheHierarchy, OpClass, TABLE_1
from repro.workloads import (
    SPEC2000,
    SPEC_FP,
    SPEC_INT,
    PhaseScheduler,
    PhaseSpec,
    WorkloadProfile,
    get_profile,
    instruction_stream,
    stressmark_stream,
)
from repro.workloads.generator import prewarm_caches


class TestProfiles:
    def test_suite_sizes(self):
        assert len(SPEC2000) == 26
        assert len(SPEC_INT) == 12
        assert len(SPEC_FP) == 14

    def test_all_paper_benchmarks_present(self):
        expected = {
            "gzip", "wupwise", "swim", "mgrid", "applu", "vpr", "gcc",
            "mesa", "galgel", "art", "mcf", "equake", "crafty", "facerec",
            "ammp", "lucas", "fma3d", "parser", "sixtrack", "eon",
            "perlbmk", "gap", "vortex", "bzip2", "twolf", "apsi",
        }
        assert set(SPEC2000) == expected

    def test_get_profile(self):
        assert get_profile("gzip").name == "gzip"
        with pytest.raises(KeyError):
            get_profile("quake3")

    def test_unique_seeds(self):
        seeds = [p.seed for p in SPEC2000.values()]
        assert len(seeds) == len(set(seeds))

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            PhaseSpec("bad", 100, load_fraction=0.6, store_fraction=0.5)
        with pytest.raises(ValueError):
            PhaseSpec("bad", 100, cold=0.8, warm=0.5)
        with pytest.raises(ValueError):
            PhaseSpec("bad", 0.5)
        with pytest.raises(ValueError):
            PhaseSpec("bad", 100, easy_bias=(0.999, 0.9))

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "int", phases=())
        with pytest.raises(ValueError):
            WorkloadProfile("x", "vector", phases=(PhaseSpec("p", 100),))

    def test_membound_group_has_cold_traffic(self):
        for name in ("mcf", "swim", "art", "lucas"):
            profile = get_profile(name)
            assert any(ph.cold >= 0.05 for ph in profile.phases), name

    def test_steady_group_has_little_cold_traffic(self):
        for name in ("gzip", "mesa", "crafty", "eon"):
            profile = get_profile(name)
            assert all(ph.cold <= 0.005 for ph in profile.phases), name


class TestPhaseScheduler:
    def test_cycles_through_phases(self):
        rng = np.random.default_rng(0)
        phases = (PhaseSpec("a", 5), PhaseSpec("b", 5))
        sched = PhaseScheduler(phases, rng)
        seen = {sched.advance().name for _ in range(200)}
        assert seen == {"a", "b"}

    def test_mean_duration(self):
        rng = np.random.default_rng(1)
        phases = (PhaseSpec("a", 50), PhaseSpec("b", 50))
        sched = PhaseScheduler(phases, rng)
        runs = []
        current = sched.advance().name
        length = 1
        for _ in range(30_000):
            ph = sched.advance().name
            if ph == current:
                length += 1
            else:
                runs.append(length)
                current, length = ph, 1
        assert np.mean(runs) == pytest.approx(50, rel=0.2)

    def test_needs_phases(self):
        with pytest.raises(ValueError):
            PhaseScheduler((), np.random.default_rng(0))


class TestGenerator:
    def test_deterministic(self):
        a = [i.pc for i in instruction_stream("gzip", 2000)]
        b = [i.pc for i in instruction_stream("gzip", 2000)]
        assert a == b

    def test_seed_override(self):
        a = [i.pc for i in instruction_stream("gzip", 2000, seed=7)]
        b = [i.pc for i in instruction_stream("gzip", 2000)]
        assert a != b

    def test_instruction_mix_roughly_matches_profile(self):
        profile = get_profile("gzip")
        insts = list(instruction_stream(profile, 20_000))
        loads = sum(i.op is OpClass.LOAD for i in insts) / len(insts)
        # Loop back-edges add branches beyond the phase mix; loads should
        # still be near the requested fraction.
        assert 0.15 < loads < 0.35

    def test_fp_benchmark_issues_fp_ops(self):
        insts = list(instruction_stream("swim", 20_000))
        fp = sum(
            i.op in (OpClass.FPALU, OpClass.FPMULT, OpClass.FPDIV) for i in insts
        )
        assert fp > 0.1 * len(insts)

    def test_int_benchmark_mostly_integer(self):
        insts = list(instruction_stream("gzip", 20_000))
        fp = sum(
            i.op in (OpClass.FPALU, OpClass.FPMULT, OpClass.FPDIV) for i in insts
        )
        assert fp < 0.02 * len(insts)

    def test_membound_touches_fresh_lines(self):
        insts = list(instruction_stream("mcf", 20_000))
        cold = [i.addr for i in insts if i.is_mem and i.addr >= 0x4000_0000]
        assert len(cold) > 100
        assert len(set(a >> 6 for a in cold)) == len(cold)  # all new lines

    def test_loop_pcs_repeat(self):
        insts = list(instruction_stream("gzip", 20_000))
        pcs = [i.pc for i in insts]
        assert len(set(pcs)) < len(pcs) / 10  # heavy reuse of loop bodies

    def test_negative_count(self):
        with pytest.raises(ValueError):
            list(instruction_stream("gzip", -1))

    def test_composite_benchmarks_have_periodic_streams(self):
        # Resonant profiles use one composite loop body; consecutive
        # iterations must reuse identical PC sequences.
        insts = list(instruction_stream("mgrid", 5000))
        pcs = [i.pc for i in insts]
        first = pcs[:200]
        assert any(
            pcs[k : k + 200] == first for k in range(1, 2000)
        ), "no repeating loop structure found"


class TestPrewarm:
    def test_hot_set_resident_after_prewarm(self):
        h = CacheHierarchy(TABLE_1)
        prewarm_caches(h, "gzip")
        profile = get_profile("gzip")
        hot_lines = range(0x1000_0000, 0x1000_0000 + profile.hot_bytes, 64)
        assert all(h.l1d.probe(a) for a in hot_lines)

    def test_counters_reset(self):
        h = CacheHierarchy(TABLE_1)
        prewarm_caches(h, "gzip")
        assert h.l1d.accesses == 0
        assert h.l2.accesses == 0
        assert h.memory_accesses == 0


class TestStressmark:
    def test_alternates_burst_and_chain(self):
        stream = stressmark_stream(15)
        insts = list(itertools.islice(stream, 500))
        ops = [i.op for i in insts]
        assert OpClass.FPMULT in ops
        assert OpClass.IALU in ops

    def test_pcs_loop(self):
        insts = list(itertools.islice(stressmark_stream(15), 2000))
        assert len(set(i.pc for i in insts)) < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            next(stressmark_stream(0))
        with pytest.raises(ValueError):
            next(stressmark_stream(15, burst_ipc=0))

    def test_produces_large_current_swings(self):
        from repro.uarch import Simulator

        res = Simulator().run(stressmark_stream(15), 6000, name="stress")
        settled = res.current[1000:]
        assert np.ptp(settled) > 30.0  # worst-case swing dwarfs SPEC's


class TestExplicitGenerator:
    """Seeding flows through an explicitly passed numpy Generator."""

    def test_int_seed_and_generator_agree(self):
        a = [(i.op, i.pc) for i in instruction_stream("gzip", 200, seed=9)]
        b = [
            (i.op, i.pc)
            for i in instruction_stream(
                "gzip", 200, seed=np.random.default_rng(9)
            )
        ]
        assert a == b

    def test_spawned_streams_are_reproducible_across_workers(self):
        # Parallel pipeline workers derive per-job generators from one
        # SeedSequence; re-running any job in any order must reproduce
        # its stream exactly.
        def stream(child_seed):
            rng = np.random.default_rng(child_seed)
            return [(i.op, i.pc) for i in instruction_stream("mcf", 150, seed=rng)]

        children = np.random.SeedSequence(1234).spawn(3)
        first_order = [stream(s) for s in children]
        reversed_order = [stream(s) for s in reversed(children)][::-1]
        assert first_order == reversed_order
        assert first_order[0] != first_order[1]  # distinct streams

    def test_generator_state_advances(self):
        rng = np.random.default_rng(7)
        one = [(i.op, i.pc) for i in instruction_stream("vpr", 50, seed=rng)]
        two = [(i.op, i.pc) for i in instruction_stream("vpr", 50, seed=rng)]
        assert one != two  # same generator continues, never resets

"""Unit tests for the Jarque-Bera normality test."""

import numpy as np
import pytest

from repro.stats import jarque_bera_test


class TestJarqueBera:
    def test_gaussian_acceptance_near_significance(self):
        rng = np.random.default_rng(0)
        accepted = sum(
            jarque_bera_test(rng.normal(30, 5, 64)).accepted
            for _ in range(500)
        )
        assert 0.90 <= accepted / 500 <= 0.99

    def test_bimodal_rejected(self):
        rng = np.random.default_rng(1)
        x = np.concatenate([rng.normal(0, 0.3, 48), rng.normal(10, 0.3, 48)])
        assert not jarque_bera_test(x).accepted

    def test_heavy_tails_rejected(self):
        rng = np.random.default_rng(2)
        rejected = sum(
            not jarque_bera_test(rng.standard_t(df=2, size=128)).accepted
            for _ in range(100)
        )
        assert rejected > 60  # strong power against leptokurtic data

    def test_skewed_rejected(self):
        rng = np.random.default_rng(3)
        rejected = sum(
            not jarque_bera_test(rng.exponential(1.0, 128)).accepted
            for _ in range(100)
        )
        assert rejected > 90

    def test_flat_window_degenerate(self):
        res = jarque_bera_test(np.full(64, 40.0))
        assert res.degenerate and not res.accepted

    def test_moments_reported(self):
        rng = np.random.default_rng(4)
        res = jarque_bera_test(rng.exponential(1.0, 4096))
        assert res.skewness == pytest.approx(2.0, rel=0.2)
        assert res.excess_kurtosis > 2.0

    def test_matches_scipy(self):
        from scipy import stats as sstats

        rng = np.random.default_rng(5)
        x = rng.normal(size=256)
        ours = jarque_bera_test(x)
        theirs = sstats.jarque_bera(x)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            jarque_bera_test(np.zeros(4))
        with pytest.raises(ValueError):
            jarque_bera_test(np.zeros(64), significance=2.0)

    def test_agreement_with_chi2_on_clear_cases(self):
        from repro.stats import chi_square_gaussian_test

        rng = np.random.default_rng(6)
        gauss = rng.normal(10, 2, 128)
        bimodal = np.concatenate(
            [rng.normal(0, 0.2, 64), rng.normal(5, 0.2, 64)]
        )
        assert jarque_bera_test(gauss).accepted
        assert chi_square_gaussian_test(gauss).accepted
        assert not jarque_bera_test(bimodal).accepted
        assert not chi_square_gaussian_test(bimodal).accepted

"""Unit tests for the statistics substrate (Gaussian model, χ² test, windows)."""

import numpy as np
import pytest

from repro.stats import (
    GaussianModel,
    chi_square_gaussian_test,
    extract_windows,
    is_gaussian_window,
    normal_cdf,
    normal_quantile,
    random_window_starts,
    study_windows,
    voltage_histogram,
    window_variances,
)


class TestNormalFunctions:
    def test_cdf_symmetry(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(1.0) + normal_cdf(-1.0) == pytest.approx(1.0)

    def test_cdf_known_value(self):
        assert normal_cdf(1.96) == pytest.approx(0.975, abs=1e-3)

    def test_quantile_inverts_cdf(self):
        for p in (0.025, 0.5, 0.9, 0.999):
            assert normal_cdf(normal_quantile(p)) == pytest.approx(p)

    def test_quantile_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestGaussianModel:
    def test_fit_moments(self):
        x = np.random.default_rng(0).normal(3.0, 2.0, 100_000)
        g = GaussianModel.fit(x)
        assert g.mean == pytest.approx(3.0, abs=0.05)
        assert g.std == pytest.approx(2.0, abs=0.05)

    def test_prob_below_matches_empirical(self):
        x = np.random.default_rng(1).normal(0.99, 0.01, 200_000)
        g = GaussianModel.fit(x)
        empirical = float(np.mean(x < 0.97))
        assert g.prob_below(0.97) == pytest.approx(empirical, abs=0.002)

    def test_prob_outside(self):
        g = GaussianModel(1.0, 0.01**2)
        assert g.prob_outside(0.98, 1.02) == pytest.approx(
            2 * g.prob_below(0.98), rel=1e-9
        )

    def test_zero_variance_degenerate(self):
        g = GaussianModel(1.0, 0.0)
        assert g.prob_below(0.9) == 0.0
        assert g.prob_below(1.1) == 1.0

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            GaussianModel(0.0, -1.0)

    def test_quantile(self):
        g = GaussianModel(10.0, 4.0)
        assert g.quantile(0.5) == pytest.approx(10.0)
        assert g.quantile(0.975) == pytest.approx(10.0 + 2 * 1.959964, abs=1e-3)

    def test_fit_needs_samples(self):
        with pytest.raises(ValueError):
            GaussianModel.fit(np.array([1.0]))


class TestChiSquare:
    def test_gaussian_acceptance_near_significance(self):
        rng = np.random.default_rng(2)
        accepted = sum(
            chi_square_gaussian_test(rng.normal(40, 5, 64)).accepted
            for _ in range(500)
        )
        # At 95% significance roughly 95% of truly Gaussian windows pass.
        assert 0.88 <= accepted / 500 <= 0.99

    def test_uniform_rejected(self):
        rng = np.random.default_rng(3)
        accepted = sum(
            chi_square_gaussian_test(rng.uniform(0, 1, 128)).accepted
            for _ in range(200)
        )
        assert accepted / 200 < 0.55  # uniform is clearly non-normal

    def test_bimodal_rejected(self):
        rng = np.random.default_rng(4)
        x = np.concatenate([rng.normal(0, 0.3, 32), rng.normal(10, 0.3, 32)])
        assert not chi_square_gaussian_test(x).accepted

    def test_flat_window_degenerate(self):
        res = chi_square_gaussian_test(np.full(64, 40.0))
        assert res.degenerate
        assert not res.accepted

    def test_too_small_window(self):
        with pytest.raises(ValueError):
            chi_square_gaussian_test(np.zeros(8))

    def test_bad_significance(self):
        with pytest.raises(ValueError):
            chi_square_gaussian_test(np.random.default_rng(0).normal(size=64), 1.5)

    def test_result_fields(self):
        res = chi_square_gaussian_test(np.random.default_rng(5).normal(size=64))
        assert res.dof == res.bins - 3
        assert res.accepted == (res.statistic <= res.critical)

    def test_predicate_wrapper(self):
        rng = np.random.default_rng(6)
        assert isinstance(is_gaussian_window(rng.normal(size=64)), bool)


class TestWindows:
    def test_starts_in_range(self):
        rng = np.random.default_rng(0)
        starts = random_window_starts(1000, 64, 200, rng)
        assert starts.min() >= 0
        assert starts.max() <= 1000 - 64

    def test_extract_shape(self):
        t = np.arange(100.0)
        w = extract_windows(t, np.array([0, 10, 36]), 64)
        assert w.shape == (3, 64)
        np.testing.assert_allclose(w[1], np.arange(10.0, 74.0))

    def test_extract_bounds_checked(self):
        with pytest.raises(ValueError):
            extract_windows(np.arange(10.0), np.array([8]), 4)

    def test_window_variances(self):
        w = np.array([[1.0, 1.0, 1.0], [0.0, 3.0, 0.0]])
        v = window_variances(w)
        assert v[0] == 0.0
        assert v[1] == pytest.approx(2.0)

    def test_window_too_large(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_window_starts(10, 64, 5, rng)

    def test_study_gaussian_trace(self):
        rng = np.random.default_rng(7)
        st = study_windows(rng.normal(40, 5, 20_000), 64, 150, rng)
        assert st.total == 150
        assert st.acceptance_rate > 0.85
        assert st.overall_variance == pytest.approx(25.0, rel=0.2)

    def test_study_spiky_trace_rejects_and_flags_low_variance(self):
        rng = np.random.default_rng(8)
        # Mostly-flat trace with rare bursts: windows are flat (degenerate,
        # low variance) or burst-laden (non-Gaussian) — paper's Figure 7 story.
        trace = np.full(20_000, 20.0)
        bursts = rng.integers(0, 20_000, 60)
        trace[bursts] = 90.0
        st = study_windows(trace, 64, 150, rng)
        assert st.acceptance_rate < 0.2
        assert st.non_gaussian_variance < st.overall_variance + 1e-9


class TestVoltageHistogram:
    def test_sums_to_100(self):
        v = np.random.default_rng(0).normal(0.99, 0.01, 10_000)
        h = voltage_histogram(v)
        assert h.percent.sum() == pytest.approx(100.0)

    def test_out_of_range_clipped(self):
        v = np.array([0.5, 2.0, 1.0])
        h = voltage_histogram(v)
        assert h.percent.sum() == pytest.approx(100.0)
        assert h.percent[0] > 0  # clipped low sample
        assert h.percent[-1] > 0  # clipped high sample

    def test_peak_bin(self):
        v = np.full(100, 1.0)
        c, p = voltage_histogram(v).peak_bin()
        assert p == pytest.approx(100.0)
        assert c == pytest.approx(1.0, abs=0.01)

    def test_spike_ratio_discriminates(self):
        rng = np.random.default_rng(1)
        gaussian = rng.normal(0.99, 0.015, 50_000)
        spiky = np.concatenate(
            [np.full(40_000, 1.0), rng.normal(0.97, 0.02, 10_000)]
        )
        h_g = voltage_histogram(gaussian)
        h_s = voltage_histogram(spiky)
        assert h_s.spike_ratio(1.0, 0.005) > 3 * h_g.spike_ratio(1.0, 0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            voltage_histogram(np.array([]))
        with pytest.raises(ValueError):
            voltage_histogram(np.ones(4), v_lo=1.0, v_hi=0.9)
        with pytest.raises(ValueError):
            voltage_histogram(np.ones(4), bins=0)

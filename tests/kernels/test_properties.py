"""Property tests for kernel invariants, plus pinned edge semantics.

Uses hypothesis when installed; otherwise each property falls back to a
seeded sweep over deterministic random signals, so the invariants stay
tested in minimal environments.

Invariants: Parseval energy preservation of ``wavedec``, exact
``waverec(wavedec(x))`` roundtrips, linearity of subband convolution,
and the analytic truncation-error bound of the K-term convolver.

Edge semantics (the latent-bug satellite): empty inputs raise clear
``ValueError``s, signals shorter than the wavelet's filter support still
convolve exactly, and a monitor's zero-history warm-up makes streaming
``observe`` agree with batch ``estimate_trace`` from cycle 0.
"""

import numpy as np
import pytest

from repro.kernels import KernelConfig, available_backends, get_kernel
from repro.wavelets import WaveletConvolver, convolve_via_subbands

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    from hypothesis.extra.numpy import arrays

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an extra
    HAVE_HYPOTHESIS = False

BACKENDS = available_backends()


def _seeded_signal(size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Mix scales so the sweep exercises cancellation-heavy inputs too.
    return rng.normal(0.0, 1.0, size) * rng.choice(
        [1.0, 1e3, 1e-3], size=size
    )


def fuzz(**sizes: int):
    """Property decorator: hypothesis ``@given`` or a seeded sweep.

    ``@fuzz(x=64, h=8)`` supplies the named arguments as float arrays of
    those lengths — drawn by hypothesis when it is installed, otherwise
    swept over eight deterministic seeded signals per argument.  Binding
    is by keyword, so it composes with ``pytest.mark.parametrize`` on
    the test's other arguments.
    """
    if HAVE_HYPOTHESIS:
        finite = st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, width=64
        )
        strategies = {
            name: arrays(np.float64, size, elements=finite)
            for name, size in sizes.items()
        }

        def deco(func):
            return settings(max_examples=25, deadline=None)(
                given(**strategies)(func)
            )

        return deco

    names = list(sizes)
    cases = [
        tuple(
            _seeded_signal(size, 101 * seed + 7 * k)
            for k, size in enumerate(sizes.values())
        )
        for seed in range(8)
    ]
    if len(names) == 1:
        cases = [case[0] for case in cases]

    def deco(func):
        return pytest.mark.parametrize(",".join(names), cases)(func)

    return deco


# -- invariants ---------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@fuzz(x=256)
def test_parseval_energy_preservation(x, backend):
    """Orthonormality: coefficient energy equals signal energy."""
    coeffs = get_kernel("wavedec", backend=backend)(x, "haar")
    energy = sum(float(np.sum(c**2)) for c in coeffs)
    assert energy == pytest.approx(float(np.sum(x**2)), rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("backend", BACKENDS)
@fuzz(x=256)
def test_roundtrip_is_exact(x, backend):
    """waverec(wavedec(x)) == x to 1e-10 (scaled by signal magnitude)."""
    dec = get_kernel("wavedec", backend=backend)
    rec = get_kernel("waverec", backend=backend)
    out = rec(dec(x, "haar"), "haar")
    np.testing.assert_allclose(
        out, x, atol=1e-10 * (1.0 + np.abs(x).max()), rtol=1e-10
    )


@fuzz(x=64, y=64, h=8)
def test_subband_convolution_is_linear(x, y, h):
    """C(ax + by, h) == a C(x, h) + b C(y, h)."""
    a, b = 0.75, -1.5
    combined = convolve_via_subbands(a * x + b * y, h)
    separate = a * convolve_via_subbands(x, h) + b * convolve_via_subbands(
        y, h
    )
    scale = 1.0 + np.abs(separate).max()
    np.testing.assert_allclose(combined, separate, atol=1e-9 * scale)


@pytest.mark.parametrize("backend", BACKENDS)
@fuzz(x=128)
def test_truncation_error_within_analytic_bound(x, backend):
    """Empirical K-term error never exceeds error_bound(max|x|)."""
    rng = np.random.default_rng(42)
    h = np.exp(-np.arange(64) / 9.0) * np.cos(np.arange(64) / 3.0)
    h += 0.01 * rng.normal(size=64)
    conv = WaveletConvolver(h, "haar", keep=8)
    with KernelConfig(backend=backend):
        err = conv.max_error_on(x)
    bound = conv.error_bound(float(np.abs(x).max()))
    assert err <= bound * (1.0 + 1e-9) + 1e-12


# -- pinned edge semantics ----------------------------------------------------


def test_convolve_via_subbands_rejects_empty_inputs():
    with pytest.raises(ValueError, match="empty signal"):
        convolve_via_subbands(np.empty(0), np.ones(3))
    with pytest.raises(ValueError, match="non-empty"):
        convolve_via_subbands(np.ones(3), np.empty(0))


@pytest.mark.parametrize("wavelet", ["haar", "db2", "db4"])
@pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
def test_convolve_via_subbands_short_inputs_match_direct(n, wavelet):
    """Signals shorter than the filter support still convolve exactly."""
    rng = np.random.default_rng(n)
    x = rng.normal(size=n)
    h = rng.normal(size=12)  # longer than the signal
    out = convolve_via_subbands(x, h, wavelet)
    np.testing.assert_allclose(out, np.convolve(x, h), atol=1e-9)


@pytest.mark.parametrize("backend", BACKENDS)
def test_convolver_apply_empty_trace(backend):
    conv = WaveletConvolver(np.ones(8), "haar", keep=4)
    with KernelConfig(backend=backend):
        out = conv.apply(np.empty(0))
    assert out.shape == (0,)


@pytest.mark.parametrize("backend", BACKENDS)
def test_monitor_warmup_streaming_matches_batch(backend):
    """Zero-history warm-up: observe agrees with estimate_trace from t=0."""
    from repro.core import WaveletVoltageMonitor, calibrated_supply

    monitor = WaveletVoltageMonitor(calibrated_supply(150), terms=13)
    rng = np.random.default_rng(3)
    # Shorter than the monitor's tap count: entirely warm-up territory.
    trace = rng.normal(40.0, 5.0, monitor.taps // 2)
    with KernelConfig(backend=backend):
        batch = monitor.estimate_trace(trace)
        monitor.reset()
        streamed = np.array([monitor.observe(i) for i in trace])
        # estimate_trace must not have advanced the streaming history:
        # interleaving it changes nothing.
        monitor.reset()
        interleaved = []
        for i in trace:
            monitor.estimate_trace(trace[:4])
            interleaved.append(monitor.observe(i))
    np.testing.assert_allclose(streamed, batch, atol=1e-9)
    np.testing.assert_allclose(np.array(interleaved), batch, atol=1e-9)

"""The ``repro bench`` harness: structure always, speedups when slow.

The fast test shrinks every input (the structural contract — one
speedup entry per registered kernel, a parseable JSON artifact — does
not need real sizes).  The full-size run asserting the headline
speedup targets is ``-m slow``; CI's ``bench-smoke`` job covers the
real ``repro bench --quick`` CLI path instead.
"""

import json

import pytest

from repro.kernels import available_kernels
from repro.kernels import bench as kbench


@pytest.fixture()
def tiny_sizes(monkeypatch):
    """Shrink every bench input so the structural test runs in seconds."""
    monkeypatch.setattr(
        kbench,
        "_SIZES",
        {
            "wavedec_n": (1 << 10, 1 << 10),
            "stats_cycles": (1 << 11, 1 << 11),
            "gaussian_n": (1 << 8, 1 << 8),
            "convolver_n": (1 << 8, 1 << 8),
            "monitor_n": (1 << 9, 1 << 9),
            "block_traces": (2, 2),
            "block_cycles": (1 << 10, 1 << 10),
            "batch_benchmarks": (2, 2),
            "batch_cycles": (1 << 11, 1 << 11),
            "obs_benchmarks": (2, 2),
            "obs_cycles": (1 << 10, 1 << 10),
            "repeats": (1, 1),
        },
    )


def test_bench_writes_speedup_entry_per_kernel(tiny_sizes, tmp_path):
    out = tmp_path / "bench.json"
    results = kbench.run_bench(quick=True, output=out)
    data = json.loads(out.read_text())
    for payload in (results, data):
        assert set(payload["kernels"]) == set(available_kernels())
        for name, row in payload["kernels"].items():
            assert row["speedup"] > 0, name
            assert row["reference_s"] > 0 and row["vectorized_s"] > 0
            assert row["max_abs_diff"] < 1e-6, name
        batch = payload["end_to_end"]["characterize_batch"]
        assert batch["speedup"] > 0
        assert batch["benchmarks"] == 2
        char = payload["throughput"]["characterize"]
        assert char["vectorized_traces_per_s"] > 0
        assert char["batched_traces_per_s"] > 0
        assert char["batched_speedup"] > 0
        assert char["max_abs_diff"] < 1e-12
        block = payload["throughput"]["pipeline_block"]
        assert block["per_trace_traces_per_s"] > 0
        assert block["block_traces_per_s"] > 0
        overhead = payload["obs_overhead"]
        assert overhead["off_s"] > 0 and overhead["stripped_s"] > 0
        assert overhead["overhead_pct"] >= 0
        assert overhead["budget_pct"] == kbench.OBS_OVERHEAD_BUDGET_PCT


def test_bench_formats_human_table(tiny_sizes):
    results = kbench.run_bench(quick=True, output=None)
    text = kbench.format_results(results)
    for name in available_kernels():
        assert name in text
    assert "characterize_batch" in text


def test_bench_cli_flags_parse():
    from repro.cli import build_parser

    args = build_parser().parse_args(["bench", "--quick"])
    assert args.command == "bench" and args.quick
    args = build_parser().parse_args(
        ["--kernel-backend", "reference", "bench"]
    )
    assert args.kernel_backend == "reference"
    args = build_parser().parse_args(
        ["bench", "--kernel-backend", "reference"]
    )
    assert args.kernel_backend == "reference"


@pytest.mark.slow
def test_full_bench_meets_speedup_targets(tmp_path):
    """The ISSUE's headline targets: >=10x wavedec, >=5x end-to-end."""
    # Best-of-two attempts guards against a loaded machine skewing one run.
    for attempt in range(2):
        results = kbench.run_bench(
            quick=False, output=tmp_path / "bench.json"
        )
        wavedec = results["kernels"]["wavedec"]["speedup"]
        batch = results["end_to_end"]["characterize_batch"]["speedup"]
        if wavedec >= 10.0 and batch >= 5.0:
            break
    assert wavedec >= 10.0, results["kernels"]["wavedec"]
    assert batch >= 5.0, results["end_to_end"]["characterize_batch"]


@pytest.mark.slow
def test_full_bench_obs_overhead_within_budget(tmp_path):
    """The obs ENABLED=off fast path must cost <5% on a characterize run."""
    from repro.core import calibrated_supply

    network = calibrated_supply(150)
    # Best-of-three guards against scheduler noise skewing one run; the
    # committed BENCH_kernels.json records the canonical number.
    best = float("inf")
    for attempt in range(3):
        row = kbench._bench_obs_overhead(False, network, repeats=3)
        best = min(best, row["overhead_pct"])
        if best < kbench.OBS_OVERHEAD_BUDGET_PCT:
            break
    assert best < kbench.OBS_OVERHEAD_BUDGET_PCT, row

"""The tier-2 batched backend: fused block kernel and FFT convolution.

Three batteries: (1) the fused ``characterize_block`` kernel must be
*bit-identical* to the per-trace vectorized path over an N x length
grid (that identity is what lets a block job share cache entries with
single jobs); (2) the convolution planner must be deterministic and
every plan must agree with direct convolution to tight tolerance;
(3) the ``KernelConfig`` resolution order and the deprecation shims it
replaced.
"""

import os
import warnings

import numpy as np
import pytest

from repro import kernels
from repro.core import WaveletVoltageEstimator, calibrated_supply
from repro.kernels import KernelConfig, get_kernel, resolve_backend
from repro.kernels.batched import (
    DIRECT_LIMIT,
    OVERLAP_RATIO,
    convolution_plan,
)


@pytest.fixture(scope="module")
def network():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def estimator(network):
    return WaveletVoltageEstimator(network)


def _traces(n_traces: int, cycles: int, dtype=np.float64, seed: int = 0):
    rng = np.random.default_rng(seed)
    return (40.0 + rng.normal(0.0, 5.0, (n_traces, cycles))).astype(dtype)


# -- fused characterize_block vs the per-trace path --------------------------


@pytest.mark.parametrize("n_traces", (1, 2, 5, 16))
@pytest.mark.parametrize("cycles", (256, 512, 1000))
def test_batched_bit_identical_to_per_trace(estimator, n_traces, cycles):
    """The fused pass must reproduce per-trace results *exactly* —
    byte-for-byte, not just within tolerance — so block jobs and single
    jobs can share cache entries."""
    traces = _traces(n_traces, cycles, seed=n_traces * 100 + cycles)
    fused = get_kernel("characterize_block", backend="batched")
    probs, terms = fused(estimator, traces, 0.97)
    assert probs.shape == (n_traces, cycles // estimator.window)
    assert terms.shape == (n_traces, estimator.levels, probs.shape[1])
    for i, trace in enumerate(traces):
        with KernelConfig(backend="vectorized"):
            probs_i, terms_i = estimator.characterize_windows(
                estimator.tile_windows(trace), 0.97
            )
        assert np.array_equal(probs[i], probs_i)
        assert np.array_equal(terms[i], terms_i)


@pytest.mark.parametrize("dtype", (np.float32, np.float64))
def test_batched_dtype_upcast_is_exact(estimator, dtype):
    """float32 traces upcast once to float64; the result must equal the
    per-trace path fed the same upcast values."""
    traces = _traces(3, 512, dtype=dtype, seed=9)
    fused = get_kernel("characterize_block", backend="batched")
    probs, _ = fused(estimator, traces, 0.97)
    est = estimator.estimate_traces(traces, 0.97)
    for i, trace in enumerate(traces):
        with KernelConfig(backend="vectorized"):
            expect = estimator.estimate_fraction_below(
                np.asarray(trace, dtype=float), 0.97
            )
        assert est[i] == expect
        assert probs.dtype == np.float64


@pytest.mark.parametrize("backend", ("reference", "vectorized", "batched"))
def test_ragged_and_malformed_matrices_rejected(estimator, backend):
    fused = get_kernel("characterize_block", backend=backend)
    with pytest.raises(ValueError, match="rectangular"):
        fused(estimator, [[1.0, 2.0], [3.0]], 0.97)
    with pytest.raises(ValueError, match="2-D"):
        fused(estimator, np.zeros(512), 0.97)
    with pytest.raises(ValueError, match="window"):
        fused(estimator, np.zeros((2, estimator.window - 1)), 0.97)


def test_estimate_traces_matches_estimate_fraction_below(estimator):
    traces = _traces(4, 1024, seed=3)
    with KernelConfig(backend="batched"):
        est = estimator.estimate_traces(traces, 0.97)
    with KernelConfig(backend="vectorized"):
        expect = [
            estimator.estimate_fraction_below(t, 0.97) for t in traces
        ]
    assert est.tolist() == expect


# -- FFT convolution: planner + tolerance ------------------------------------


def test_convolution_plan_is_deterministic_and_total():
    """Same (n, m) always maps to the same plan, and every plan is one
    of the three implemented strategies."""
    rng = np.random.default_rng(11)
    for _ in range(200):
        n = int(rng.integers(0, 1 << 18))
        m = int(rng.integers(0, 1 << 12))
        plan = convolution_plan(n, m)
        assert plan in ("direct", "fft", "overlap_add")
        assert plan == convolution_plan(n, m)


def test_convolution_plan_crossovers():
    assert convolution_plan(0, 5) == "direct"
    assert convolution_plan(5, 0) == "direct"
    assert convolution_plan(100, 100) == "direct"  # n*m under the limit
    small = int(DIRECT_LIMIT**0.5)
    assert convolution_plan(small * 4, small * 4) == "fft"
    assert (
        convolution_plan(small * OVERLAP_RATIO * 8, small) == "overlap_add"
    )


@pytest.mark.parametrize(
    "n,m",
    [
        (1, 1),
        (7, 3),
        (200, 180),  # fft regime
        (1 << 15, 37),  # overlap-add regime
        (4096, 3000),
    ],
)
def test_planned_convolution_matches_direct(n, m):
    from repro.kernels.batched import _planned_convolve

    rng = np.random.default_rng(n * 31 + m)
    x = rng.normal(0.0, 1.0, n)
    h = rng.normal(0.0, 1.0, m)
    got = _planned_convolve(x, h)
    want = np.convolve(x, h)
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_batched_monitor_matches_vectorized(network):
    from repro.core import WaveletVoltageMonitor

    monitor = WaveletVoltageMonitor(network, terms=13)
    rng = np.random.default_rng(6)
    trace = 40.0 + rng.normal(0.0, 5.0, 1 << 14)
    vec = get_kernel("monitor_estimate_trace", backend="vectorized")(
        monitor, trace
    )
    bat = get_kernel("monitor_estimate_trace", backend="batched")(
        monitor, trace
    )
    assert bat.shape == vec.shape
    np.testing.assert_allclose(bat, vec, rtol=1e-9, atol=1e-9)


# -- KernelConfig resolution and the deprecation shims -----------------------


def test_kernel_config_resolution_order(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    assert resolve_backend() == kernels.DEFAULT_BACKEND
    monkeypatch.setenv(kernels.ENV_VAR, "reference")
    assert resolve_backend() == "reference"  # env beats default
    config = KernelConfig(backend="batched")
    with config:
        assert resolve_backend() == "batched"  # context beats env
        with KernelConfig(backend="vectorized"):
            assert resolve_backend() == "vectorized"  # innermost wins
        assert resolve_backend() == "batched"
        assert resolve_backend(explicit="reference") == "reference"
    assert resolve_backend() == "reference"  # context popped


def test_kernel_config_activate_beats_env(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "reference")
    monkeypatch.setattr(kernels, "_PROCESS", None)
    KernelConfig(backend="batched").activate()
    try:
        assert resolve_backend() == "batched"
    finally:
        kernels._PROCESS = None


def test_kernel_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        KernelConfig(backend="cuda")


def test_bad_env_backend_raises(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "cuda")
    with pytest.raises(ValueError, match="is not one of"):
        resolve_backend()


def test_deprecated_shims_still_work(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    monkeypatch.setattr(kernels, "_PROCESS", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        kernels.set_backend("reference")
        assert resolve_backend() == "reference"
        with kernels.use_backend("batched"):
            assert resolve_backend() == "batched"
        assert resolve_backend() == "reference"
    kinds = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(kinds) == 2
    kernels._PROCESS = None


def test_resolve_kernel_reports_fallback(monkeypatch, caplog):
    """The fallback a dynamic dispatch takes is explicit in the return
    value, and logged exactly once per (kernel, backend)."""
    import logging

    name = "_test_fallback_kernel"
    kernels.register_kernel(name, "reference")(lambda: "ref")
    try:
        monkeypatch.setenv(kernels.ENV_VAR, "batched")
        kernels._warned_fallbacks.discard((name, "batched"))
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            impl, used = kernels.resolve_kernel(name)
            assert used == "reference"
            impl2, used2 = kernels.resolve_kernel(name)
            assert used2 == "reference"
        hits = [r for r in caplog.records if name in r.getMessage()]
        assert len(hits) == 1  # logged once, not per call
        # explicit backend selection stays strict — no fallback
        with pytest.raises(ValueError, match="no 'batched'"):
            get_kernel(name, backend="batched")
    finally:
        kernels._REGISTRY.pop(name, None)
        kernels._warned_fallbacks.discard((name, "batched"))
        kernels._dispatcher.cache_clear()


def test_env_var_read_live(monkeypatch):
    """The env var is consulted at resolve time, not import time."""
    monkeypatch.setenv(kernels.ENV_VAR, "reference")
    assert resolve_backend() == "reference"
    monkeypatch.setenv(kernels.ENV_VAR, "batched")
    assert resolve_backend() == "batched"


def test_os_env_not_leaked_by_config(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    with KernelConfig(backend="batched"):
        assert kernels.ENV_VAR not in os.environ

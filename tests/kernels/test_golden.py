"""Golden regression fixtures for the kernel layer.

``tests/fixtures/golden_kernels.npz`` (regenerated only deliberately,
via ``tools/regen_golden.py``) pins the numerical outputs of the §4.1
window statistics, the §5.1 compressed-monitor voltage estimate, and
the emergency fraction on one seeded 4096-cycle trace.  Both backends
must reproduce the stored values, so any accidental numerical drift —
in either the oracle or the vectorized path — fails here even when the
two backends still agree with each other.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    WaveletVoltageEstimator,
    WaveletVoltageMonitor,
    calibrated_supply,
)
from repro.kernels import KernelConfig, available_backends, get_kernel

FIXTURE = Path(__file__).parent.parent / "fixtures" / "golden_kernels.npz"

#: Reference regenerates the fixture bit-for-bit; vectorized may differ
#: in the last ulp (different accumulation order), never more.
RTOL = 1e-9
ATOL = 1e-11


@pytest.fixture(scope="module")
def golden():
    assert FIXTURE.exists(), (
        f"{FIXTURE} is missing — run tools/regen_golden.py"
    )
    with np.load(FIXTURE) as data:
        return {key: data[key] for key in data.files}


@pytest.fixture(scope="module")
def network(golden):
    return calibrated_supply(float(golden["impedance"]))


def test_fixture_shapes(golden):
    cycles = golden["trace"].shape[0]
    assert cycles == 4096
    assert golden["wavelet_variances"].shape == (8, cycles // 256)
    assert golden["wavelet_correlations"].shape == (8, cycles // 256)
    assert golden["voltage_estimate"].shape == (cycles,)
    assert golden["emergency_fraction"].shape == ()
    assert 0.0 <= float(golden["emergency_fraction"]) <= 1.0


@pytest.mark.parametrize("backend", available_backends())
def test_window_statistics_match_golden(golden, network, backend):
    estimator = WaveletVoltageEstimator(network)
    windows = estimator.tile_windows(golden["trace"])
    with KernelConfig(backend=backend):
        stats = get_kernel("window_stats")(windows, estimator.levels)
    np.testing.assert_allclose(
        stats.variances, golden["wavelet_variances"], rtol=RTOL, atol=ATOL
    )
    np.testing.assert_allclose(
        stats.correlations,
        golden["wavelet_correlations"],
        rtol=RTOL,
        atol=ATOL,
    )


@pytest.mark.parametrize("backend", available_backends())
def test_voltage_estimate_matches_golden(golden, network, backend):
    monitor = WaveletVoltageMonitor(network, terms=int(golden["terms"]))
    with KernelConfig(backend=backend):
        voltage = monitor.estimate_trace(golden["trace"])
    np.testing.assert_allclose(
        voltage, golden["voltage_estimate"], rtol=RTOL, atol=ATOL
    )


@pytest.mark.parametrize("backend", available_backends())
def test_emergency_fraction_matches_golden(golden, network, backend):
    estimator = WaveletVoltageEstimator(network)
    with KernelConfig(backend=backend):
        fraction = estimator.estimate_fraction_below(
            golden["trace"], float(golden["threshold"])
        )
    assert fraction == pytest.approx(
        float(golden["emergency_fraction"]), rel=RTOL, abs=ATOL
    )

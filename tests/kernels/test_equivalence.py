"""Cross-backend equivalence battery.

Every registered kernel runs under both backends over a grid of dtypes
and lengths — including non-power-of-two and length-1 signals — and the
vectorized output must match the reference oracle to ``rtol=1e-9``.  A
kernel registered in only one backend fails loudly here, before any
numerical comparison.
"""

import numpy as np
import pytest

from repro.core import (
    WaveletVoltageEstimator,
    WaveletVoltageMonitor,
    calibrated_supply,
)
from repro.kernels import (
    available_backends,
    available_kernels,
    get_kernel,
)
from repro.power import impulse_response
from repro.wavelets import WaveletConvolver

RTOL = 1e-9
ATOL = 1e-9

DTYPES = (np.float64, np.float32, np.int64)
#: Trace/window lengths: length-1, power-of-two, and two non-powers.
LENGTHS = (1, 2, 12, 100, 256)


@pytest.fixture(scope="module")
def network():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def monitor(network):
    return WaveletVoltageMonitor(network, terms=13)


@pytest.fixture(scope="module")
def convolver(network, monitor):
    return WaveletConvolver(
        impulse_response(network, monitor.taps), "haar", keep=13
    )


@pytest.fixture(scope="module")
def estimator(network):
    # A 4-cycle window keeps characterize_block valid at every grid
    # length (traces are padded up to one window below).
    return WaveletVoltageEstimator(network, window=4)


def _trace(n: int, dtype, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed * 1000 + n)
    x = rng.normal(40.0, 5.0, n)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return np.round(x).astype(dtype)
    return x.astype(dtype)


def _dyadic_depth(n: int) -> int:
    """Largest L with n divisible by 2**L (the window_stats level)."""
    return (n & -n).bit_length() - 1


def _case(name: str, n: int, dtype, monitor, convolver, estimator):
    """(args, kwargs) exercising kernel ``name`` at one grid point."""
    x = _trace(n, dtype)
    if name == "wavedec":
        return (x, "haar"), {}
    if name == "waverec":
        coeffs = get_kernel("wavedec", backend="reference")(x, "haar")
        return (coeffs, "haar"), {}
    if name == "window_stats":
        windows = np.stack([_trace(n, dtype, seed=s) for s in range(3)])
        return (windows, _dyadic_depth(n)), {}
    if name == "gaussian_prob_below":
        rng = np.random.default_rng(n)
        means = (1.0 - rng.uniform(0.0, 0.06, n)).astype(dtype)
        variances = rng.uniform(0.0, 4e-4, n).astype(dtype)
        variances[::3] = 0  # degenerate windows must agree too
        return (means, variances, 0.97), {}
    if name == "convolver_apply":
        return (convolver, x), {}
    if name == "monitor_estimate_trace":
        return (monitor, x), {}
    if name == "characterize_block":
        cycles = max(n, estimator.window)
        traces = np.stack(
            [_trace(cycles, dtype, seed=s) for s in range(3)]
        )
        return (estimator, traces, 0.97), {}
    raise AssertionError(
        f"no equivalence case for kernel {name!r} — a new kernel must be "
        "added to this battery"
    )


def _assert_close(ref, vec):
    if isinstance(ref, (list, tuple)):
        assert len(ref) == len(vec)
        for r, v in zip(ref, vec):
            np.testing.assert_allclose(v, r, rtol=RTOL, atol=ATOL)
        return
    if isinstance(ref, np.ndarray):
        np.testing.assert_allclose(vec, ref, rtol=RTOL, atol=ATOL)
        return
    # WindowStats
    np.testing.assert_allclose(vec.means, ref.means, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(
        vec.variances, ref.variances, rtol=RTOL, atol=ATOL
    )
    np.testing.assert_allclose(
        vec.correlations, ref.correlations, rtol=RTOL, atol=ATOL
    )


def test_every_kernel_registered_in_every_backend():
    """A one-sided kernel registration is a hard error, not a skip."""
    assert available_kernels(), "no kernels registered at all"
    for backend in available_backends():
        assert available_kernels(backend) == available_kernels(), (
            f"backend {backend!r} is missing kernels: "
            f"{set(available_kernels()) - set(available_kernels(backend))}"
        )
    for name in available_kernels():
        for backend in available_backends():
            assert callable(get_kernel(name, backend=backend))


def test_every_kernel_has_an_equivalence_case(monitor, convolver, estimator):
    for name in available_kernels():
        _case(name, 2, np.float64, monitor, convolver, estimator)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("n", LENGTHS)
@pytest.mark.parametrize("name", available_kernels())
def test_backends_agree(name, n, dtype, monitor, convolver, estimator):
    args, kwargs = _case(name, n, dtype, monitor, convolver, estimator)
    ref = get_kernel(name, backend="reference")(*args, **kwargs)
    for backend in ("vectorized", "batched"):
        out = get_kernel(name, backend=backend)(*args, **kwargs)
        _assert_close(ref, out)


def test_unknown_kernel_and_backend_raise():
    with pytest.raises(ValueError, match="unknown kernel"):
        get_kernel("no_such_kernel")
    with pytest.raises(ValueError, match="unknown backend"):
        get_kernel("wavedec", backend="cuda")

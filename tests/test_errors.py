"""The unified error hierarchy: typing, aliases, serialization."""

import pytest

from repro import errors
from repro.errors import (
    ArtifactNotFoundError,
    InjectedFaultError,
    JobError,
    PipelineError,
    ReproError,
    RetryExhaustedError,
    SpecError,
    StageTimeoutError,
    UsageError,
    WorkerCrashError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, ReproError), name

    def test_builtin_compat_bases(self):
        # Dual inheritance keeps pre-repro.errors except-clauses working.
        assert issubclass(UsageError, ValueError)
        assert issubclass(SpecError, ValueError)
        assert issubclass(ArtifactNotFoundError, KeyError)
        assert issubclass(StageTimeoutError, TimeoutError)
        assert issubclass(PipelineError, RuntimeError)

    def test_job_errors_group_under_job_error(self):
        for cls in (
            StageTimeoutError,
            WorkerCrashError,
            RetryExhaustedError,
            InjectedFaultError,
        ):
            assert issubclass(cls, JobError)

    def test_one_boundary_catches_all(self):
        for cls in (SpecError, StageTimeoutError, PipelineError):
            with pytest.raises(ReproError):
                raise cls("boom")


class TestBehavior:
    def test_str_is_the_message_even_for_keyerror(self):
        # bare KeyError would repr() its message and print the quotes
        err = ArtifactNotFoundError("no 'voltage' artifact for 'gzip'")
        assert str(err) == "no 'voltage' artifact for 'gzip'"

    def test_details_filter_none(self):
        err = JobError("failed", job="gzip@150%", stage=None, attempt=2)
        assert err.details == {"job": "gzip@150%", "attempt": 2}

    def test_to_dict_shape(self):
        err = StageTimeoutError(
            "over budget", job="mcf@150%", attempt=1, timeout_s=5.0
        )
        assert err.to_dict() == {
            "error": "StageTimeoutError",
            "message": "over budget",
            "job": "mcf@150%",
            "attempt": 1,
            "timeout_s": 5.0,
        }


class TestRehoming:
    def test_executor_reexports_pipeline_error(self):
        from repro.pipeline import executor

        assert executor.PipelineError is PipelineError

    def test_pipeline_package_reexports_pipeline_error(self):
        import repro.pipeline

        assert repro.pipeline.PipelineError is PipelineError

"""Unit tests for the maximal-overlap DWT and its variance estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.wavelets import (
    imodwt,
    modwt,
    modwt_max_level,
    modwt_variance,
    wavelet_variances,
)


@pytest.fixture
def signal():
    return np.random.default_rng(3).normal(10.0, 2.0, size=300)


class TestTransform:
    def test_shapes(self, signal):
        details, approx = modwt(signal, level=4)
        assert len(details) == 4
        assert all(d.shape == signal.shape for d in details)
        assert approx.shape == signal.shape

    def test_perfect_reconstruction(self, signal):
        details, approx = modwt(signal)
        np.testing.assert_allclose(imodwt(details, approx), signal, atol=1e-10)

    @pytest.mark.parametrize("wavelet", ["db2", "db4"])
    def test_reconstruction_other_bases(self, signal, wavelet):
        details, approx = modwt(signal, wavelet, level=3)
        np.testing.assert_allclose(
            imodwt(details, approx, wavelet), signal, atol=1e-10
        )

    def test_energy_preserved(self, signal):
        details, approx = modwt(signal)
        total = sum(float(np.sum(d**2)) for d in details)
        total += float(np.sum(approx**2))
        assert total == pytest.approx(float(np.sum(signal**2)))

    def test_shift_equivariance(self, signal):
        """The MODWT's defining property — the decimated DWT lacks it."""
        details, approx = modwt(signal, level=5)
        details_s, approx_s = modwt(np.roll(signal, 11), level=5)
        for d, ds in zip(details, details_s):
            np.testing.assert_allclose(np.roll(d, 11), ds, atol=1e-10)
        np.testing.assert_allclose(np.roll(approx, 11), approx_s, atol=1e-10)

    def test_arbitrary_length_ok(self):
        # No power-of-two requirement, unlike the decimated transform.
        x = np.random.default_rng(0).normal(size=97)
        details, approx = modwt(x, level=3)
        np.testing.assert_allclose(imodwt(details, approx), x, atol=1e-10)

    def test_level_zero(self, signal):
        details, approx = modwt(signal, level=0)
        assert details == []
        np.testing.assert_allclose(approx, signal)

    def test_validation(self, signal):
        with pytest.raises(ValueError):
            modwt(np.array([]))
        with pytest.raises(ValueError):
            modwt(signal, level=99)
        with pytest.raises(ValueError):
            imodwt([np.zeros(10)], np.zeros(5))

    def test_max_level(self):
        assert modwt_max_level(300, "haar") == 8  # (2^9-1)*1+1 > 300
        assert modwt_max_level(300, "db4") >= 4


class TestVariance:
    def test_biased_sums_to_signal_variance(self):
        x = np.random.default_rng(1).normal(0, 2, 1024)
        v = modwt_variance(x, unbiased=False)
        # Details at full depth capture everything but the mean.
        assert sum(v.values()) == pytest.approx(float(x.var()), rel=1e-6)

    def test_unbiased_close_to_dwt_estimate(self):
        x = np.random.default_rng(2).normal(0, 1, 8192)
        mv = modwt_variance(x, level=5)
        dv = wavelet_variances(x, level=5)
        for lvl in range(1, 6):
            assert mv[lvl] == pytest.approx(dv[lvl], rel=0.25)

    def test_tone_concentrates_at_its_scale(self):
        # Period 16 -> nominal level 4.  Averaged over all shifts (which
        # the undecimated transform does implicitly), Haar splits the
        # square wave's energy across the two adjacent scales.
        x = np.tile([1.0] * 8 + [-1.0] * 8, 64)
        v = modwt_variance(x)
        assert v[3] + v[4] > 0.6 * sum(v.values())
        assert max(v, key=v.get) in (3, 4)

    def test_unbiased_needs_clean_coefficients(self):
        with pytest.raises(ValueError):
            modwt_variance(np.random.default_rng(0).normal(size=40),
                           wavelet="db4", level=4)

    def test_shift_invariant_estimates(self):
        """Window placement cannot change the unbiased estimate much —
        the practical advantage over the decimated estimator."""
        x = np.random.default_rng(4).normal(0, 1, 2048)
        a = modwt_variance(x, level=4)
        b = modwt_variance(np.roll(x, 13), level=4)
        for lvl in a:
            assert a[lvl] == pytest.approx(b[lvl], rel=0.1)


@settings(max_examples=20, deadline=None)
@given(
    arrays(
        np.float64,
        st.integers(min_value=16, max_value=200),
        elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
    )
)
def test_modwt_roundtrip_property(x):
    details, approx = modwt(x, level=min(3, modwt_max_level(len(x))))
    np.testing.assert_allclose(
        imodwt(details, approx), x, atol=1e-8 * (1 + np.abs(x).max())
    )

"""Property-based tests (hypothesis) for the wavelet substrate's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.wavelets import (
    WaveletConvolver,
    decompose,
    dwt,
    idwt,
    subband_signals,
    wavedec,
    wavelet_variances,
    waverec,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64)


def signals(size):
    return arrays(np.float64, size, elements=finite)


@given(signals(64))
def test_haar_perfect_reconstruction(x):
    a, d = dwt(x)
    np.testing.assert_allclose(idwt(a, d), x, atol=1e-7 * (1 + np.abs(x).max()))


@given(signals(64))
def test_haar_energy_preservation(x):
    a, d = dwt(x)
    assert np.sum(a**2) + np.sum(d**2) == pytest.approx(
        np.sum(x**2), rel=1e-9, abs=1e-9
    )


@given(signals(32), signals(32), finite, finite)
def test_linearity(x, y, alpha, beta):
    ax, dx = dwt(x)
    ay, dy = dwt(y)
    az, dz = dwt(alpha * x + beta * y)
    scale = 1 + abs(alpha) * np.abs(x).max() + abs(beta) * np.abs(y).max()
    np.testing.assert_allclose(az, alpha * ax + beta * ay, atol=1e-7 * scale)
    np.testing.assert_allclose(dz, alpha * dx + beta * dy, atol=1e-7 * scale)


@settings(max_examples=50)
@given(signals(128), st.sampled_from(["haar", "db2", "db4"]))
def test_multilevel_roundtrip(x, wavelet):
    rec = waverec(wavedec(x, wavelet), wavelet)
    np.testing.assert_allclose(rec, x, atol=1e-6 * (1 + np.abs(x).max()))


@settings(max_examples=30)
@given(signals(64))
def test_subbands_superpose(x):
    dec = decompose(x)
    total = sum(subband_signals(dec).values())
    np.testing.assert_allclose(total, x, atol=1e-7 * (1 + np.abs(x).max()))


@settings(max_examples=30)
@given(signals(128))
def test_wavelet_variance_totals(x):
    variances = wavelet_variances(x)
    assert sum(variances.values()) == pytest.approx(
        float(np.var(x)), rel=1e-7, abs=1e-7 * (1 + np.abs(x).max()) ** 2
    )


@settings(max_examples=30)
@given(signals(64))
def test_shift_by_two_shifts_haar_coefficients(x):
    # Shifting by one coarse-sample (2 signal samples) circularly shifts
    # the level-1 coefficients by one.
    a1, d1 = dwt(x)
    a2, d2 = dwt(np.roll(x, 2))
    np.testing.assert_allclose(np.roll(a1, 1), a2, atol=1e-9 * (1 + np.abs(x).max()))
    np.testing.assert_allclose(np.roll(d1, 1), d2, atol=1e-9 * (1 + np.abs(x).max()))


@settings(max_examples=20)
@given(
    arrays(np.float64, 48, elements=st.floats(-1e3, 1e3, allow_nan=False)),
    st.integers(min_value=0, max_value=64),
)
def test_convolver_truncation_bounded(h, keep):
    wc = WaveletConvolver(h + 1e-9, keep=keep)  # avoid the all-zero edge
    x = np.linspace(-1.0, 1.0, 100)
    err = wc.max_error_on(x)
    assert err <= wc.error_bound(1.0) + 1e-9


@settings(max_examples=20)
@given(signals(96))
def test_truncation_error_monotone(x):
    dec = decompose(np.resize(x, 64))
    errors = [
        float(np.linalg.norm(dec.truncate(k).reconstruct() - np.resize(x, 64)))
        for k in (0, 8, 32, 64)
    ]
    tol = 1e-7 * (1 + np.abs(x).max())
    assert all(a >= b - tol for a, b in zip(errors, errors[1:]))

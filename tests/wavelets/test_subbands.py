"""Unit tests for subband projection (Eqs. 4-5 of the paper)."""

import numpy as np
import pytest

from repro.wavelets import (
    approximation_signal,
    bandpass_filter,
    basis_function,
    decompose,
    detail_signal,
    subband_signals,
)


@pytest.fixture
def signal():
    rng = np.random.default_rng(42)
    return rng.normal(30.0, 5.0, size=128)


@pytest.fixture
def dec(signal):
    return decompose(signal)


class TestSuperposition:
    def test_subbands_sum_to_signal(self, signal, dec):
        total = sum(subband_signals(dec).values())
        np.testing.assert_allclose(total, signal, atol=1e-11)

    def test_key_set(self, dec):
        keys = set(subband_signals(dec))
        assert keys == {"a"} | {f"d{l}" for l in dec.levels}

    def test_subbands_orthogonal(self, dec):
        bands = subband_signals(dec)
        names = sorted(bands)
        for i, n1 in enumerate(names):
            for n2 in names[i + 1 :]:
                assert abs(np.dot(bands[n1], bands[n2])) < 1e-9


class TestDetailSignal:
    def test_energy_matches_coefficients(self, dec):
        # Orthonormal basis: subband energy equals its coefficients' energy.
        for lvl in dec.levels:
            band = detail_signal(dec, lvl)
            assert np.sum(band**2) == pytest.approx(dec.detail_energy(lvl))

    def test_haar_detail_is_piecewise_constant(self, dec):
        band = detail_signal(dec, 3)
        # Level-3 Haar basis vectors are constant over runs of 4 samples.
        steps = band.reshape(-1, 4)
        assert np.allclose(steps, steps[:, :1], atol=1e-12)


class TestApproximation:
    def test_constant_signal_is_pure_approximation(self):
        x = np.full(64, 9.0)
        dec = decompose(x)
        np.testing.assert_allclose(approximation_signal(dec), x, atol=1e-12)
        for lvl in dec.levels:
            np.testing.assert_allclose(detail_signal(dec, lvl), 0.0, atol=1e-12)

    def test_approximation_is_mean_at_full_depth(self, signal, dec):
        np.testing.assert_allclose(
            approximation_signal(dec), signal.mean(), atol=1e-11
        )


class TestBandpassFilter:
    def test_keep_everything_plus_approx(self, signal):
        out = bandpass_filter(signal, set(range(1, 8)), level=7, keep_approx=True)
        np.testing.assert_allclose(out, signal, atol=1e-11)

    def test_keep_nothing(self, signal):
        out = bandpass_filter(signal, set(), keep_approx=False)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_filtered_has_no_mean(self, signal):
        out = bandpass_filter(signal, {3, 4}, keep_approx=False)
        assert abs(out.mean()) < 1e-10

    def test_invalid_level_rejected(self, signal):
        with pytest.raises(ValueError):
            bandpass_filter(signal, {99})

    def test_removes_out_of_band_sine(self):
        # A pure coarse oscillation (period 64) lives at level ~5-6; keeping
        # only levels 1-2 should suppress nearly all of its energy.
        n = np.arange(256)
        x = np.sin(2 * np.pi * n / 64)
        out = bandpass_filter(x, {1, 2}, keep_approx=False)
        assert np.sum(out**2) < 0.1 * np.sum(x**2)


class TestBasisFunction:
    def test_unit_norm(self):
        psi = basis_function(64, "d", 3, 2)
        assert np.sum(psi**2) == pytest.approx(1.0)

    def test_haar_detail_shape(self):
        psi = basis_function(16, "d", 2, 0)
        # Level-2 Haar wavelet: +1/2 on two samples, -1/2 on the next two.
        np.testing.assert_allclose(psi[:4], [0.5, 0.5, -0.5, -0.5])
        np.testing.assert_allclose(psi[4:], 0.0, atol=1e-12)

    def test_scaling_function_shape(self):
        phi = basis_function(16, "a", 0, 0, total_level=2)
        np.testing.assert_allclose(phi[:4], 0.5)
        np.testing.assert_allclose(phi[4:], 0.0, atol=1e-12)

    def test_translation(self):
        psi0 = basis_function(64, "d", 2, 0)
        psi3 = basis_function(64, "d", 2, 3)
        np.testing.assert_allclose(np.roll(psi0, 3 * 4), psi3, atol=1e-12)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            basis_function(16, "x", 1, 0)

    def test_expansion_identity(self, signal, dec):
        # x = sum_i <x, e_i> e_i over any 3 chosen basis vectors' span.
        psi = basis_function(128, "d", 4, 1)
        coeff = float(np.dot(signal, psi))
        assert coeff == pytest.approx(dec.detail(4)[1], abs=1e-10)

"""Unit tests for the Morlet continuous wavelet transform."""

import numpy as np
import pytest

from repro.wavelets import cwt_scale_for_period, dominant_period, morlet_cwt


@pytest.fixture
def tone30():
    n = np.arange(2048)
    return np.sin(2 * np.pi * n / 30.0)


class TestMorletCwt:
    def test_shape(self, tone30):
        mags = morlet_cwt(tone30, [10.0, 30.0, 90.0])
        assert mags.shape == (3, 2048)
        assert (mags >= 0).all()

    def test_peak_at_tone_period(self, tone30):
        periods = np.array([10.0, 20.0, 30.0, 45.0, 90.0])
        mags = morlet_cwt(tone30, periods)
        energy = np.mean(mags**2, axis=1)
        assert periods[int(np.argmax(energy))] == 30.0

    def test_response_scale_invariant_for_tones(self):
        n = np.arange(4096)
        e = []
        for period in (16.0, 64.0):
            tone = np.sin(2 * np.pi * n / period)
            mags = morlet_cwt(tone, [period])
            # Ignore edge effects (cone of influence).
            core = mags[0, 512:-512]
            e.append(float(np.mean(core**2)))
        assert e[0] == pytest.approx(e[1], rel=0.1)

    def test_linear_in_amplitude(self, tone30):
        m1 = morlet_cwt(tone30, [30.0])
        m3 = morlet_cwt(3.0 * tone30, [30.0])
        np.testing.assert_allclose(m3, 3.0 * m1, rtol=1e-9)

    def test_mean_removed(self):
        # A DC offset must not contribute to any scale.
        flat = np.full(512, 25.0)
        mags = morlet_cwt(flat, [16.0])
        np.testing.assert_allclose(mags, 0.0, atol=1e-9)

    def test_time_localization(self):
        x = np.zeros(1024)
        n = np.arange(128)
        x[640:768] = np.sin(2 * np.pi * n / 16.0)
        mags = morlet_cwt(x, [16.0])[0]
        assert mags[640:768].mean() > 5 * mags[:512].mean()

    def test_validation(self, tone30):
        with pytest.raises(ValueError):
            morlet_cwt(tone30, [])
        with pytest.raises(ValueError):
            morlet_cwt(tone30, [1.0])
        with pytest.raises(ValueError):
            morlet_cwt(tone30, [5000.0])
        with pytest.raises(ValueError):
            morlet_cwt(np.zeros((4, 4)), [8.0])


class TestDominantPeriod:
    @pytest.mark.parametrize("period", [12.0, 30.0, 75.0])
    def test_finds_planted_tone(self, period):
        n = np.arange(4096)
        rng = np.random.default_rng(0)
        x = np.sin(2 * np.pi * n / period) + 0.2 * rng.normal(size=4096)
        found = dominant_period(x)
        assert found == pytest.approx(period, rel=0.15)

    def test_resolves_within_one_dwt_octave(self):
        # 24- and 40-cycle tones both land in DWT levels 4-5; the CWT
        # tells them apart.
        n = np.arange(4096)
        a = dominant_period(np.sin(2 * np.pi * n / 24.0))
        b = dominant_period(np.sin(2 * np.pi * n / 40.0))
        assert a < 30 < b

    def test_validation(self):
        with pytest.raises(ValueError):
            dominant_period(np.zeros(512), min_period=1.0)


class TestScaleMapping:
    def test_monotone(self):
        assert cwt_scale_for_period(60.0) > cwt_scale_for_period(15.0)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            cwt_scale_for_period(0.0)

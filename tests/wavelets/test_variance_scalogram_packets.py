"""Unit tests for wavelet variance, scalograms and wavelet packets."""

import numpy as np
import pytest

from repro.wavelets import (
    WaveletPacketTree,
    adjacent_correlation,
    best_basis,
    decompose,
    render_ascii,
    scale_correlations,
    scale_variance,
    scalogram,
    shannon_entropy,
    total_variance_from_scales,
    variance_confidence_interval,
    wavelet_variances,
)


@pytest.fixture
def signal():
    return np.random.default_rng(9).normal(40.0, 6.0, size=256)


class TestWaveletVariance:
    def test_scales_sum_to_signal_variance(self, signal):
        # Parseval decomposition: detail variances sum to the variance of
        # the mean-removed signal (approximation at full depth = mean).
        variances = wavelet_variances(signal)
        assert total_variance_from_scales(variances) == pytest.approx(
            float(signal.var()), rel=1e-10
        )

    def test_single_scale_parseval(self, signal):
        dec = decompose(signal)
        v = scale_variance(dec, 4)
        assert v == pytest.approx(dec.detail_energy(4) / 256)

    def test_pure_tone_concentrates(self):
        # A square wave with period 8 lives at Haar level 3.
        x = np.tile([1.0] * 4 + [-1.0] * 4, 32)
        variances = wavelet_variances(x)
        assert variances[3] > 0.9 * sum(variances.values())

    def test_accepts_decomposition_or_signal(self, signal):
        dec = decompose(signal)
        assert wavelet_variances(dec) == wavelet_variances(signal)


class TestAdjacentCorrelation:
    def test_alternating_is_negative(self):
        c = np.array([1.0, -1.0] * 16)
        assert adjacent_correlation(c) == pytest.approx(-1.0)

    def test_trend_is_positive(self):
        assert adjacent_correlation(np.arange(32.0)) > 0.9

    def test_white_noise_near_zero(self):
        c = np.random.default_rng(3).normal(size=4096)
        assert abs(adjacent_correlation(c)) < 0.1

    def test_short_rows_are_neutral(self):
        assert adjacent_correlation(np.array([1.0, 2.0])) == 0.0

    def test_flat_rows_are_neutral(self):
        assert adjacent_correlation(np.full(16, 2.0)) == 0.0

    def test_all_levels_reported(self, signal):
        corrs = scale_correlations(signal)
        assert set(corrs) == set(range(1, 9))
        assert all(-1.0 <= v <= 1.0 for v in corrs.values())


class TestConfidenceInterval:
    def test_contains_estimate(self):
        d = np.random.default_rng(1).normal(0, 2.0, size=128)
        lo, hi = variance_confidence_interval(d)
        assert lo <= float(np.mean(d**2)) <= hi

    def test_narrows_with_more_coefficients(self):
        rng = np.random.default_rng(2)
        lo1, hi1 = variance_confidence_interval(rng.normal(0, 1, 32))
        lo2, hi2 = variance_confidence_interval(rng.normal(0, 1, 2048))
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            variance_confidence_interval(np.array([1.0]))

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            variance_confidence_interval(np.ones(16), confidence=1.5)


class TestScalogram:
    def test_shape(self, signal):
        m = scalogram(signal)
        assert m.shape == (8, 256)

    def test_nonnegative(self, signal):
        assert (scalogram(signal) >= 0.0).all()

    def test_block_structure(self, signal):
        m = scalogram(signal)
        # Level-3 row repeats each coefficient over 8 samples.
        row = m[2]
        blocks = row.reshape(-1, 8)
        assert np.allclose(blocks, blocks[:, :1])

    def test_normalization(self, signal):
        m = scalogram(signal, normalize=True)
        assert m.max() == pytest.approx(1.0)

    def test_burst_localized_in_time(self):
        x = np.zeros(256)
        x[192:200] = [10.0, -10.0] * 4  # oscillating burst in the last quarter
        m = scalogram(x)
        fine = m[0]
        assert fine[192:200].sum() > 10 * (fine[:128].sum() + 1e-12)

    def test_ascii_render(self, signal):
        art = render_ascii(scalogram(signal), width=40)
        lines = art.split("\n")
        assert len(lines) == 8
        assert all(len(line) == 40 for line in lines)

    def test_ascii_rejects_bad_width(self, signal):
        with pytest.raises(ValueError):
            render_ascii(scalogram(signal), width=0)


class TestShannonEntropy:
    def test_zero_vector(self):
        assert shannon_entropy(np.zeros(8)) == 0.0

    def test_concentrated_beats_spread(self):
        spike = np.array([1.0, 0, 0, 0])
        spread = np.full(4, 0.5)
        assert shannon_entropy(spike) < shannon_entropy(spread)


class TestWaveletPackets:
    def test_node_counts(self, signal):
        tree = WaveletPacketTree(signal, depth=3)
        assert len(tree.leaves()) == 8
        assert all(len(leaf) == 32 for leaf in tree.leaves())

    def test_energy_preserved_at_leaves(self, signal):
        tree = WaveletPacketTree(signal, depth=4)
        leaf_energy = sum(float(np.sum(l**2)) for l in tree.leaves())
        assert leaf_energy == pytest.approx(float(np.sum(signal**2)))

    def test_reconstruct_from_leaves(self, signal):
        tree = WaveletPacketTree(signal, depth=3)
        nodes = {(3, p): tree.node(3, p) for p in range(8)}
        np.testing.assert_allclose(
            tree.reconstruct_from(nodes), signal, atol=1e-10
        )

    def test_best_basis_is_disjoint_cover(self, signal):
        tree = WaveletPacketTree(signal, depth=4)
        basis = best_basis(tree)
        covered = sum(len(c) for c in basis.values())
        assert covered == len(signal)
        np.testing.assert_allclose(
            tree.reconstruct_from(basis), signal, atol=1e-10
        )

    def test_best_basis_cost_no_worse_than_leaves(self, signal):
        tree = WaveletPacketTree(signal, depth=4)
        basis = best_basis(tree)
        basis_cost = sum(shannon_entropy(c) for c in basis.values())
        leaf_cost = sum(shannon_entropy(l) for l in tree.leaves())
        assert basis_cost <= leaf_cost + 1e-12

    def test_missing_node(self, signal):
        tree = WaveletPacketTree(signal, depth=2)
        with pytest.raises(IndexError):
            tree.node(5, 0)

    def test_too_deep(self, signal):
        with pytest.raises(ValueError):
            WaveletPacketTree(signal, depth=20)

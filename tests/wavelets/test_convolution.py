"""Unit tests for wavelet subband convolution (§5.1's mathematical core)."""

import numpy as np
import pytest

from repro.wavelets import WaveletConvolver, convolve_via_subbands, next_pow2


@pytest.fixture
def impulse():
    # A damped oscillation shaped like a supply impedance response.
    n = np.arange(100)
    return np.exp(-n / 25.0) * np.cos(2 * np.pi * n / 30.0) * 1e-3


@pytest.fixture
def trace():
    return np.random.default_rng(5).normal(40.0, 8.0, size=300)


class TestNextPow2:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 4), (100, 128)])
    def test_values(self, n, expected):
        assert next_pow2(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_pow2(0)


class TestSubbandConvolutionIdentity:
    def test_matches_direct_convolution(self, impulse, trace):
        x = trace[:100]
        np.testing.assert_allclose(
            convolve_via_subbands(x, impulse),
            np.convolve(x, impulse),
            atol=1e-12,
        )

    def test_daubechies_basis_also_works(self, impulse, trace):
        x = trace[:64]
        np.testing.assert_allclose(
            convolve_via_subbands(x, impulse, "db3"),
            np.convolve(x, impulse),
            atol=1e-10,
        )


class TestWaveletConvolver:
    def test_full_keep_is_exact(self, impulse, trace):
        wc = WaveletConvolver(impulse, keep=None)
        expected = np.convolve(trace, impulse)[: len(trace)]
        np.testing.assert_allclose(wc.apply(trace), expected, atol=1e-10)

    def test_window_padding(self, impulse):
        wc = WaveletConvolver(impulse)
        assert wc.window == 128
        assert wc.total_terms == 128

    def test_terms_sorted_by_magnitude(self, impulse):
        wc = WaveletConvolver(impulse, keep=20)
        mags = [abs(v) for _, v in wc.terms]
        assert mags == sorted(mags, reverse=True)

    def test_error_decreases_with_terms(self, impulse, trace):
        errs = [
            WaveletConvolver(impulse, keep=k).max_error_on(trace[:150])
            for k in (1, 4, 16, 64, 128)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 1e-10

    def test_error_scales_with_impedance(self, impulse, trace):
        # Figure 13: at fixed K, a 2x impedance doubles the error.
        e1 = WaveletConvolver(impulse, keep=8).max_error_on(trace[:150])
        e2 = WaveletConvolver(2.0 * impulse, keep=8).max_error_on(trace[:150])
        assert e2 == pytest.approx(2.0 * e1, rel=1e-6)

    def test_evaluate_matches_exact_when_full(self, impulse, trace):
        wc = WaveletConvolver(impulse, keep=None)
        window = trace[: wc.window][::-1]
        assert wc.evaluate(window) == pytest.approx(
            wc.evaluate_exact(window), abs=1e-10
        )

    def test_analytic_bound_dominates_empirical(self, impulse, trace):
        wc = WaveletConvolver(impulse, keep=10)
        bound = wc.error_bound(max_input=float(np.abs(trace).max()))
        assert wc.max_error_on(trace[:150]) <= bound + 1e-12

    def test_keep_zero_estimates_zero(self, impulse, trace):
        wc = WaveletConvolver(impulse, keep=0)
        np.testing.assert_allclose(wc.apply(trace[:50]), 0.0)

    def test_bad_keep_rejected(self, impulse):
        with pytest.raises(ValueError):
            WaveletConvolver(impulse, keep=10_000)

    def test_bad_history_length(self, impulse):
        wc = WaveletConvolver(impulse)
        with pytest.raises(ValueError):
            wc.evaluate(np.zeros(13))

    def test_empty_impulse_rejected(self):
        with pytest.raises(ValueError):
            WaveletConvolver(np.array([]))

    def test_dropped_weight_norm_shrinks(self, impulse):
        norms = [
            WaveletConvolver(impulse, keep=k).dropped_weight_norm()
            for k in (0, 8, 32, 128)
        ]
        assert all(a >= b for a, b in zip(norms, norms[1:]))
        assert norms[-1] == 0.0

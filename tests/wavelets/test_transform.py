"""Unit tests for the DWT/IDWT and the fast wavelet transform."""

import numpy as np
import pytest

from repro.wavelets import (
    dwt,
    haar_dwt,
    haar_idwt,
    idwt,
    max_level,
    wavedec,
    waverec,
)

SQRT2 = np.sqrt(2.0)


class TestSingleLevel:
    def test_haar_averages_and_differences(self):
        a, d = dwt(np.array([2.0, 4.0, 6.0, 8.0]))
        np.testing.assert_allclose(a, [6 / SQRT2, 14 / SQRT2])
        np.testing.assert_allclose(d, [-2 / SQRT2, -2 / SQRT2])

    def test_perfect_reconstruction_haar(self):
        x = np.random.default_rng(0).normal(size=64)
        a, d = dwt(x)
        np.testing.assert_allclose(idwt(a, d), x, atol=1e-12)

    @pytest.mark.parametrize("wavelet", ["db2", "db4", "db8"])
    def test_perfect_reconstruction_daubechies(self, wavelet):
        x = np.random.default_rng(1).normal(size=128)
        a, d = dwt(x, wavelet)
        np.testing.assert_allclose(idwt(a, d, wavelet), x, atol=1e-10)

    def test_output_lengths(self):
        a, d = dwt(np.zeros(32))
        assert len(a) == len(d) == 16

    def test_energy_preserved(self):
        x = np.random.default_rng(2).normal(size=64)
        a, d = dwt(x, "db3")
        assert np.sum(a**2) + np.sum(d**2) == pytest.approx(np.sum(x**2))

    def test_constant_signal_has_zero_detail(self):
        a, d = dwt(np.full(16, 5.0), "db4")
        np.testing.assert_allclose(d, 0.0, atol=1e-10)

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            dwt(np.zeros(7))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dwt(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dwt(np.zeros((4, 4)))

    def test_idwt_length_mismatch(self):
        with pytest.raises(ValueError):
            idwt(np.zeros(4), np.zeros(3))

    def test_linearity(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=32), rng.normal(size=32)
        ax, dx = dwt(x)
        ay, dy = dwt(y)
        axy, dxy = dwt(2.0 * x - 3.0 * y)
        np.testing.assert_allclose(axy, 2 * ax - 3 * ay, atol=1e-12)
        np.testing.assert_allclose(dxy, 2 * dx - 3 * dy, atol=1e-12)


class TestMultiLevel:
    def test_full_depth_structure(self):
        coeffs = wavedec(np.zeros(256), "haar")
        assert len(coeffs) == 9  # a8 + d8..d1
        assert len(coeffs[0]) == 1
        assert [len(c) for c in coeffs[1:]] == [1, 2, 4, 8, 16, 32, 64, 128]

    def test_roundtrip_full_depth(self):
        x = np.random.default_rng(4).normal(size=256)
        np.testing.assert_allclose(waverec(wavedec(x)), x, atol=1e-12)

    @pytest.mark.parametrize("level", [0, 1, 3, 5])
    def test_roundtrip_partial_depth(self, level):
        x = np.random.default_rng(5).normal(size=64)
        np.testing.assert_allclose(waverec(wavedec(x, "haar", level)), x, atol=1e-12)

    def test_level_zero_is_identity(self):
        x = np.arange(8.0)
        coeffs = wavedec(x, "haar", 0)
        assert len(coeffs) == 1
        np.testing.assert_allclose(coeffs[0], x)

    def test_too_deep_raises(self):
        with pytest.raises(ValueError):
            wavedec(np.zeros(16), "haar", 5)

    def test_negative_level_raises(self):
        with pytest.raises(ValueError):
            wavedec(np.zeros(16), "haar", -1)

    def test_empty_coeff_list_raises(self):
        with pytest.raises(ValueError):
            waverec([])

    def test_approximation_of_constant(self):
        coeffs = wavedec(np.full(32, 3.0))
        # After 5 levels the single approximation coefficient is 3 * 2^{5/2}.
        assert coeffs[0][0] == pytest.approx(3.0 * 2 ** (5 / 2))
        for det in coeffs[1:]:
            np.testing.assert_allclose(det, 0.0, atol=1e-12)


class TestMaxLevel:
    def test_power_of_two(self):
        assert max_level(256) == 8

    def test_non_power_of_two(self):
        assert max_level(96) == 5  # 96 = 3 * 32

    def test_odd(self):
        assert max_level(7) == 0

    def test_shorter_than_filter(self):
        assert max_level(1, "db4") == 0


class TestFastHaar:
    def test_matches_generic_dwt(self):
        x = np.random.default_rng(6).normal(size=64)
        a1, d1 = dwt(x, "haar")
        a2, d2 = haar_dwt(x)
        np.testing.assert_allclose(a1, a2, atol=1e-12)
        np.testing.assert_allclose(d1, d2, atol=1e-12)

    def test_roundtrip(self):
        x = np.random.default_rng(7).normal(size=32)
        a, d = haar_dwt(x)
        np.testing.assert_allclose(haar_idwt(a, d), x, atol=1e-12)

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            haar_dwt(np.zeros(5))

    def test_idwt_mismatch(self):
        with pytest.raises(ValueError):
            haar_idwt(np.zeros(2), np.zeros(3))

"""Unit tests for WaveletDecomposition and the Figure-2 coefficient matrix."""

import numpy as np
import pytest

from repro.wavelets import WaveletDecomposition, decompose

SQRT2 = np.sqrt(2.0)


@pytest.fixture
def signal():
    return np.random.default_rng(0).normal(10.0, 2.0, size=256)


@pytest.fixture
def dec(signal):
    return decompose(signal)


class TestStructure:
    def test_full_depth_default(self, dec):
        assert dec.level == 8
        assert dec.length == 256

    def test_detail_lengths(self, dec):
        for lvl in dec.levels:
            assert len(dec.detail(lvl)) == 256 // 2**lvl

    def test_approx_length(self, dec):
        assert len(dec.approx) == 1

    def test_detail_out_of_range(self, dec):
        with pytest.raises(IndexError):
            dec.detail(0)
        with pytest.raises(IndexError):
            dec.detail(9)

    def test_paper_scale_mapping(self, dec):
        # Figure 2: finest row is j = 0, coarser rows go negative.
        assert dec.paper_scale(1) == 0
        assert dec.paper_scale(2) == -1
        assert dec.paper_scale(8) == -7

    def test_scale_period(self, dec):
        assert dec.scale_period(1) == 2
        assert dec.scale_period(8) == 256

    def test_scale_frequency_ordering(self, dec):
        freqs = [dec.scale_frequency(lvl, 3e9) for lvl in dec.levels]
        assert all(a > b for a, b in zip(freqs, freqs[1:]))

    def test_scale_frequency_level4_in_didt_band(self, dec):
        # At 3 GHz, levels 4-6 should straddle the 50-200 MHz dI/dt band.
        assert 50e6 < dec.scale_frequency(4, 3e9) < 200e6
        assert 50e6 < dec.scale_frequency(5, 3e9) < 200e6

    def test_mismatched_detail_lengths_rejected(self):
        with pytest.raises(ValueError):
            WaveletDecomposition(np.zeros(2), [np.zeros(3)])


class TestRoundtrip:
    def test_reconstruct(self, signal, dec):
        np.testing.assert_allclose(dec.reconstruct(), signal, atol=1e-11)

    def test_to_list_roundtrip(self, signal, dec):
        rebuilt = WaveletDecomposition(
            dec.to_list()[0], dec.to_list()[:0:-1], dec.wavelet
        )
        np.testing.assert_allclose(rebuilt.reconstruct(), signal, atol=1e-11)

    def test_partial_level(self, signal):
        dec = decompose(signal, level=3)
        assert dec.level == 3
        np.testing.assert_allclose(dec.reconstruct(), signal, atol=1e-11)


class TestCoefficientMatrix:
    def test_shape(self, dec):
        m = dec.coefficient_matrix()
        assert m.shape == (9, 256)

    def test_finest_row_first(self, dec):
        m = dec.coefficient_matrix()
        np.testing.assert_allclose(m[0, :128], dec.detail(1))
        assert np.isnan(m[0, 128:]).all()

    def test_nan_padding(self, dec):
        m = dec.coefficient_matrix()
        assert np.isnan(m[1, 64:]).all()
        assert not np.isnan(m[1, :64]).any()

    def test_approx_last_row(self, dec):
        m = dec.coefficient_matrix()
        assert m[-1, 0] == pytest.approx(dec.approx[0])
        assert np.isnan(m[-1, 1:]).all()


class TestEnergy:
    def test_parseval(self, signal, dec):
        assert dec.energy() == pytest.approx(float(np.sum(signal**2)))

    def test_detail_energy_sums(self, signal, dec):
        total = sum(dec.detail_energy(lvl) for lvl in dec.levels)
        total += float(np.sum(dec.approx**2))
        assert total == pytest.approx(float(np.sum(signal**2)))


class TestSparsity:
    def test_constant_signal_fully_sparse_details(self):
        dec = decompose(np.full(64, 7.0))
        # All detail coefficients are zero; only the approximation survives.
        assert dec.sparsity(1e-9) == pytest.approx(63 / 64)

    def test_threshold_monotone(self, dec):
        assert dec.sparsity(0.1) <= dec.sparsity(1.0) <= dec.sparsity(10.0)


class TestTruncation:
    def test_largest_ordering(self, dec):
        vals = [abs(v) for _, v in dec.largest(20)]
        assert vals == sorted(vals, reverse=True)

    def test_largest_count(self, dec):
        assert len(dec.largest(5)) == 5
        assert len(dec.largest(10_000)) == 256

    def test_negative_count_rejected(self, dec):
        with pytest.raises(ValueError):
            dec.largest(-1)

    def test_truncate_keeps_k_nonzero(self, dec):
        trunc = dec.truncate(10)
        nonzero = int(np.sum(trunc.approx != 0))
        nonzero += sum(int(np.sum(trunc.detail(l) != 0)) for l in trunc.levels)
        assert nonzero == 10

    def test_truncate_zero_gives_zero_signal(self, dec):
        np.testing.assert_allclose(dec.truncate(0).reconstruct(), 0.0)

    def test_truncate_all_is_lossless(self, signal, dec):
        np.testing.assert_allclose(
            dec.truncate(256).reconstruct(), signal, atol=1e-11
        )

    def test_truncation_error_decreases(self, signal, dec):
        errs = [
            np.linalg.norm(dec.truncate(k).reconstruct() - signal)
            for k in (4, 16, 64, 256)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))


class TestLevelFilter:
    def test_keep_all_is_identity(self, signal, dec):
        kept = dec.filter_levels(set(dec.levels), keep_approx=True)
        np.testing.assert_allclose(kept.reconstruct(), signal, atol=1e-11)

    def test_drop_all_details(self, dec):
        kept = dec.filter_levels(set(), keep_approx=True)
        for lvl in kept.levels:
            np.testing.assert_allclose(kept.detail(lvl), 0.0)

    def test_drop_approx(self, dec):
        kept = dec.filter_levels(set(dec.levels), keep_approx=False)
        np.testing.assert_allclose(kept.approx, 0.0)

"""Unit tests for wavelet filter banks."""

import numpy as np
import pytest

from repro.wavelets import Wavelet, daubechies, get_wavelet, haar, qmf

SQRT2 = np.sqrt(2.0)


class TestHaar:
    def test_exact_coefficients(self):
        w = haar()
        np.testing.assert_allclose(w.dec_lo, [1 / SQRT2, 1 / SQRT2])
        np.testing.assert_allclose(w.dec_hi, [1 / SQRT2, -1 / SQRT2])

    def test_reconstruction_filters_are_reversed(self):
        w = haar()
        np.testing.assert_allclose(w.rec_lo, w.dec_lo[::-1])
        np.testing.assert_allclose(w.rec_hi, w.dec_hi[::-1])

    def test_is_orthogonal(self):
        assert haar().is_orthogonal()

    def test_one_vanishing_moment(self):
        assert haar().vanishing_moments() == 1

    def test_length(self):
        assert haar().length == 2

    def test_db1_equals_haar(self):
        np.testing.assert_allclose(daubechies(1).dec_lo, haar().dec_lo)


class TestDaubechies:
    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6, 8, 10, 12])
    def test_orthogonality(self, order):
        assert daubechies(order).is_orthogonal()

    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6, 8])
    def test_vanishing_moments(self, order):
        assert daubechies(order).vanishing_moments() == order

    @pytest.mark.parametrize("order", [2, 4, 8])
    def test_length_is_twice_order(self, order):
        assert daubechies(order).length == 2 * order

    @pytest.mark.parametrize("order", [2, 5, 10])
    def test_lowpass_sums_to_sqrt2(self, order):
        assert daubechies(order).dec_lo.sum() == pytest.approx(SQRT2)

    @pytest.mark.parametrize("order", [2, 5, 10])
    def test_unit_energy(self, order):
        w = daubechies(order)
        assert np.sum(w.dec_lo**2) == pytest.approx(1.0)
        assert np.sum(w.dec_hi**2) == pytest.approx(1.0)

    def test_db2_known_values(self):
        # Classic extremal-phase db2 coefficients.
        expected = np.array(
            [1 + np.sqrt(3), 3 + np.sqrt(3), 3 - np.sqrt(3), 1 - np.sqrt(3)]
        ) / (4 * SQRT2)
        np.testing.assert_allclose(daubechies(2).dec_lo, expected, atol=1e-10)

    def test_rejects_zero_order(self):
        with pytest.raises(ValueError):
            daubechies(0)

    def test_rejects_huge_order(self):
        with pytest.raises(ValueError):
            daubechies(21)


class TestQmf:
    def test_haar_qmf(self):
        np.testing.assert_allclose(
            qmf(np.array([1.0, 1.0]) / SQRT2), np.array([1.0, -1.0]) / SQRT2
        )

    def test_alternating_signs(self):
        lo = np.array([0.1, 0.2, 0.3, 0.4])
        hi = qmf(lo)
        np.testing.assert_allclose(hi, [0.4, -0.3, 0.2, -0.1])


class TestGetWavelet:
    def test_by_name(self):
        assert get_wavelet("haar").name == "haar"
        assert get_wavelet("db4").name == "db4"
        assert get_wavelet("DB3").name == "db3"

    def test_passthrough(self):
        w = haar()
        assert get_wavelet(w) is w

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_wavelet("sym4")

    def test_garbage_db_suffix(self):
        with pytest.raises(ValueError):
            get_wavelet("dbx")


class TestWaveletValidation:
    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            Wavelet("bad", np.array([1.0, 1.0, 1.0]))

    def test_rejects_mismatched_channels(self):
        with pytest.raises(ValueError):
            Wavelet("bad", np.array([1.0, 1.0]), np.array([1.0, 1.0, 1.0, -1.0]))

    def test_nonorthogonal_detected(self):
        w = Wavelet("bad", np.array([1.0, 0.5]))
        assert not w.is_orthogonal()

"""Unit tests for wavelet shrinkage de-noising."""

import numpy as np
import pytest

from repro.wavelets import (
    denoise,
    estimate_noise_sigma,
    hard_threshold,
    soft_threshold,
    universal_threshold,
)


@pytest.fixture
def square_plus_noise():
    rng = np.random.default_rng(0)
    n = np.arange(1024)
    clean = 30 + 10 * np.sign(np.sin(2 * np.pi * n / 64))
    return clean, clean + 2.0 * rng.normal(size=1024)


class TestThresholdOperators:
    def test_soft_shrinks(self):
        out = soft_threshold(np.array([-5.0, -1.0, 0.5, 3.0]), 2.0)
        np.testing.assert_allclose(out, [-3.0, 0.0, 0.0, 1.0])

    def test_hard_keeps_or_kills(self):
        out = hard_threshold(np.array([-5.0, -1.0, 0.5, 3.0]), 2.0)
        np.testing.assert_allclose(out, [-5.0, 0.0, 0.0, 3.0])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            soft_threshold(np.ones(4), -1.0)
        with pytest.raises(ValueError):
            hard_threshold(np.ones(4), -1.0)

    def test_zero_threshold_is_identity(self):
        x = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(soft_threshold(x, 0.0), x)
        np.testing.assert_allclose(hard_threshold(x, 0.0), x)


class TestNoiseEstimate:
    def test_recovers_known_sigma(self):
        rng = np.random.default_rng(1)
        smooth = np.repeat(rng.normal(30, 5, 64), 64)  # piecewise constant
        for sigma in (0.5, 2.0):
            noisy = smooth + sigma * rng.normal(size=smooth.size)
            est = estimate_noise_sigma(noisy)
            assert est == pytest.approx(sigma, rel=0.2)

    def test_universal_threshold_scales_with_sigma(self):
        rng = np.random.default_rng(2)
        base = np.zeros(4096)
        t1 = universal_threshold(base + 1.0 * rng.normal(size=4096))
        t3 = universal_threshold(base + 3.0 * rng.normal(size=4096))
        assert t3 == pytest.approx(3 * t1, rel=0.15)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_noise_sigma(np.zeros(2))


class TestDenoise:
    def test_hard_mode_reduces_error(self, square_plus_noise):
        clean, noisy = square_plus_noise
        out = denoise(noisy)
        rmse_before = np.sqrt(np.mean((noisy - clean) ** 2))
        rmse_after = np.sqrt(np.mean((out - clean) ** 2))
        assert rmse_after < 0.85 * rmse_before

    def test_soft_mode_with_moderate_threshold(self, square_plus_noise):
        clean, noisy = square_plus_noise
        t = universal_threshold(noisy) / 2
        out = denoise(noisy, threshold=t, mode="soft")
        assert np.sqrt(np.mean((out - clean) ** 2)) < np.sqrt(
            np.mean((noisy - clean) ** 2)
        )

    def test_clean_signal_nearly_unchanged(self):
        n = np.arange(512)
        clean = 30 + 10 * np.sign(np.sin(2 * np.pi * n / 64))
        out = denoise(clean, threshold=0.0)
        np.testing.assert_allclose(out, clean, atol=1e-9)

    def test_preserves_mean(self, square_plus_noise):
        _, noisy = square_plus_noise
        out = denoise(noisy)
        assert out.mean() == pytest.approx(noisy.mean(), abs=1e-9)

    def test_bad_mode(self, square_plus_noise):
        _, noisy = square_plus_noise
        with pytest.raises(ValueError):
            denoise(noisy, mode="fuzzy")

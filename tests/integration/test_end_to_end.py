"""Integration tests: the full paper pipeline, end to end.

These cross-module tests exercise workload → simulator → supply →
characterization/control exactly the way the benches do, with smaller
inputs, and pin down the system-level contracts the figures rely on.
"""

import numpy as np
import pytest

from repro.core import (
    FullConvolutionMonitor,
    ShiftRegisterMonitor,
    ThresholdController,
    WaveletVoltageEstimator,
    WaveletVoltageMonitor,
    calibrated_supply,
    predict_trace,
    run_control_experiment,
)
from repro.power import StreamingVoltageModel, simulate_voltage
from repro.uarch import Simulator, simulate_benchmark
from repro.workloads import stressmark_stream

CYCLES = 16384


@pytest.fixture(scope="module")
def net150():
    return calibrated_supply(150)


class TestOfflinePipeline:
    def test_estimator_accuracy_across_groups(self, net150):
        """One benchmark from each behavioural group: estimates track truth."""
        estimator = WaveletVoltageEstimator(net150)
        for name in ("gzip", "mcf", "mgrid", "vpr"):
            r = simulate_benchmark(name, cycles=CYCLES)
            p = predict_trace(net150, r.current, name=name, estimator=estimator)
            assert abs(p.error) < 0.05, f"{name}: {p.estimated} vs {p.observed}"

    def test_group_separation(self, net150):
        """The Figure-9 group structure holds at integration scale."""
        estimator = WaveletVoltageEstimator(net150)
        problematic = predict_trace(
            net150,
            simulate_benchmark("galgel", cycles=CYCLES).current,
            estimator=estimator,
        )
        quiet = predict_trace(
            net150,
            simulate_benchmark("gap", cycles=CYCLES).current,
            estimator=estimator,
        )
        assert problematic.observed > 4 * max(quiet.observed, 1e-4)
        assert problematic.estimated > 4 * max(quiet.estimated, 1e-4)

    def test_impedance_scaling_raises_emergencies(self):
        """More target impedance -> more cycles below the control point."""
        trace = simulate_benchmark("mgrid", cycles=CYCLES).current
        below = []
        for pct in (100, 150, 200):
            net = calibrated_supply(pct)
            v = simulate_voltage(net, trace)[2048:]
            below.append(float(np.mean(v < 0.97)))
        assert below[0] < below[1] < below[2]


class TestOnlinePipeline:
    def test_monitor_chain_consistency(self, net150):
        """Hardware monitor == linear monitor == near full convolution."""
        trace = simulate_benchmark("gcc", cycles=4096).current[:1500]
        hw = ShiftRegisterMonitor(net150, terms=13)
        lin = WaveletVoltageMonitor(net150, terms=13)
        full = FullConvolutionMonitor(net150)
        v_hw = np.array([hw.observe(x) for x in trace])
        v_lin = np.array([lin.observe(x) for x in trace])
        v_full = np.array([full.observe(x) for x in trace])
        np.testing.assert_allclose(v_hw, v_lin, atol=1e-10)
        assert np.max(np.abs(v_lin[600:] - v_full[600:])) < 0.03

    def test_truth_model_agrees_with_offline_truth(self, net150):
        """The controller's streaming truth equals the offline simulator."""
        trace = simulate_benchmark("gzip", cycles=4096).current
        stream = StreamingVoltageModel(net150).run(trace)
        batch = simulate_voltage(net150, trace, taps=8192)
        np.testing.assert_allclose(stream, batch, atol=1e-9)

    def test_control_with_more_terms_is_no_worse(self, net150):
        """More monitor terms -> equal or fewer residual faults."""
        def run(terms):
            return run_control_experiment(
                "galgel",
                net150,
                lambda: ThresholdController(
                    WaveletVoltageMonitor(net150, terms=terms),
                    net150,
                    margin=0.012,
                ),
                cycles=8192,
            )

        coarse = run(3)
        fine = run(20)
        assert fine.controlled_faults <= coarse.controlled_faults + 5

    def test_wider_margin_cuts_more_faults(self, net150):
        def run(margin):
            return run_control_experiment(
                "galgel",
                net150,
                lambda: ThresholdController(
                    WaveletVoltageMonitor(net150, terms=13),
                    net150,
                    margin=margin,
                ),
                cycles=8192,
            )

        tight = run(0.005)
        wide = run(0.025)
        assert wide.controlled_faults <= tight.controlled_faults
        # And costs at least as much intervention.
        assert (
            wide.stall_cycles + wide.boost_cycles
            >= tight.stall_cycles + tight.boost_cycles
        )


class TestDeterminism:
    def test_whole_pipeline_reproducible(self, net150):
        """Same seed -> bit-identical predictions and control outcomes."""
        def offline():
            r = simulate_benchmark("swim", cycles=8192, use_cache=False)
            return predict_trace(net150, r.current)

        a, b = offline(), offline()
        assert a.estimated == b.estimated
        assert a.observed == b.observed

    def test_stressmark_reproducible(self):
        r1 = Simulator().run(stressmark_stream(15), 4096, name="a")
        r2 = Simulator().run(stressmark_stream(15), 4096, name="b")
        np.testing.assert_array_equal(r1.current, r2.current)


class TestCrossImpedanceConsistency:
    def test_voltage_scales_linearly_with_impedance(self, net150):
        """Droop at 200% is exactly 4/3 the droop at 150% (linearity)."""
        trace = simulate_benchmark("eon", cycles=4096).current
        net200 = calibrated_supply(200)
        d150 = net150.vdd - simulate_voltage(net150, trace)
        d200 = net200.vdd - simulate_voltage(net200, trace)
        np.testing.assert_allclose(d200, d150 * (200 / 150), rtol=1e-9)

    def test_estimator_must_match_its_network(self, net150):
        """Using a 150% estimator against 200% truth biases low."""
        trace = simulate_benchmark("mgrid", cycles=CYCLES).current
        net200 = calibrated_supply(200)
        wrong = WaveletVoltageEstimator(net150)
        est = wrong.estimate_fraction_below(trace, 0.97)
        v = simulate_voltage(net200, trace)[2048:]
        observed = float(np.mean(v < 0.97))
        assert est < observed  # systematic underestimate, as expected

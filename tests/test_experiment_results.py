"""The ExperimentResult protocol: one serialization surface per figure."""

import json

import numpy as np
import pytest

from repro.core import TracePrediction
from repro.experiments import (
    ExperimentResult,
    ExperimentResultBase,
    Figure6Result,
    Figure9Result,
    Table2Row,
)


def fig9():
    return Figure9Result(
        threshold=0.97,
        predictions={
            "gzip": TracePrediction(
                name="gzip", threshold=0.97, estimated=0.02, observed=0.025
            ),
            "mcf": TracePrediction(
                name="mcf", threshold=0.97, estimated=0.11, observed=0.10
            ),
        },
    )


def table2_row():
    return Table2Row(
        scheme="wavelet",
        mean_slowdown=0.012,
        max_slowdown=0.03,
        false_positive_rate=0.2,
        fault_reduction=1.0,
        ops_per_cycle=26,
    )


class TestProtocol:
    def test_runtime_checkable(self):
        assert isinstance(fig9(), ExperimentResult)
        assert isinstance(table2_row(), ExperimentResult)

    def test_every_result_class_conforms(self):
        import repro.experiments as exp

        classes = [
            getattr(exp, name)
            for name in exp.__all__
            if name.startswith(("Figure", "Table"))
        ]
        assert len(classes) >= 8
        for cls in classes:
            assert issubclass(cls, ExperimentResultBase), cls
            assert issubclass(cls, ExperimentResult), cls


class TestToDict:
    def test_json_round_trip(self):
        payload = fig9().to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["experiment"] == "Figure9Result"
        assert decoded["threshold"] == 0.97
        # nested dataclasses flattened to plain dicts
        assert decoded["predictions"]["gzip"]["estimated"] == 0.02

    def test_numpy_values_become_native(self):
        r = Figure9Result(
            threshold=np.float64(0.97),
            predictions={
                "gzip": TracePrediction(
                    name="gzip",
                    threshold=0.97,
                    estimated=np.float64(0.02),
                    observed=np.float64(0.03),
                )
            },
        )
        decoded = json.loads(json.dumps(r.to_dict()))
        assert decoded["predictions"]["gzip"]["estimated"] == 0.02

    def test_tuple_keys_join_with_colon(self):
        # Figure6's rates dict is keyed by suite then window size (ints)
        r = Figure6Result(
            windows=(32,), rates={"all": {32: 0.9}, "int": {32: 0.85}}
        )
        decoded = json.loads(json.dumps(r.to_dict()))
        assert decoded["rates"]["all"]["32"] == 0.9


class TestSummary:
    def test_fig9_summary_headlines(self):
        s = fig9().summary()
        assert s["experiment"] == "figure9"
        assert s["benchmarks"] == 2
        assert s["rms_error"] == pytest.approx(
            float(np.sqrt((0.005**2 + 0.01**2) / 2))
        )
        assert s["rank_correlation"] == pytest.approx(1.0)

    def test_fig9_single_benchmark_skips_rank(self):
        r = Figure9Result(
            threshold=0.97,
            predictions={
                "gzip": TracePrediction(
                    name="gzip", threshold=0.97, estimated=0.02, observed=0.03
                )
            },
        )
        assert "rank_correlation" not in r.summary()

    def test_table2_summary(self):
        s = table2_row().summary()
        assert s == {
            "experiment": "table2",
            "scheme": "wavelet",
            "mean_slowdown": 0.012,
            "fault_reduction": 1.0,
            "ops_per_cycle": 26,
        }

    def test_summaries_are_json_scalars(self):
        for result in (fig9(), table2_row()):
            for key, value in result.summary().items():
                assert isinstance(value, (str, int, float)), (key, value)

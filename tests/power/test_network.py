"""Unit tests for the power-supply network model (§3.1)."""

import numpy as np
import pytest

from repro.power import (
    PowerSupplyNetwork,
    impedance_magnitude,
    resonant_peak,
    response_curve,
)


@pytest.fixture
def net():
    return PowerSupplyNetwork()


class TestParameters:
    def test_defaults_match_paper(self, net):
        assert net.vdd == 1.0
        assert net.clock_hz == 3.0e9
        assert net.tolerance == 0.05
        assert net.v_min == pytest.approx(0.95)
        assert net.v_max == pytest.approx(1.05)

    def test_resonant_period_in_didt_band(self, net):
        # 50-200 MHz at 3 GHz = periods of 15-60 cycles.
        assert 15 <= net.resonant_period_cycles <= 60

    def test_rlc_consistency(self, net):
        p = net.parameters
        w0 = 1.0 / np.sqrt(p.inductance * p.capacitance)
        assert w0 == pytest.approx(2 * np.pi * net.resonant_hz)
        q = w0 * p.inductance / p.resistance
        assert q == pytest.approx(net.quality_factor)

    def test_underdamped(self, net):
        p = net.parameters
        assert p.damping_rate < p.resonant_rad
        assert p.damped_rad < p.resonant_rad

    def test_overdamped_rejected(self):
        with pytest.raises(ValueError):
            PowerSupplyNetwork(quality_factor=0.4)

    def test_resonance_above_nyquist_rejected(self):
        with pytest.raises(ValueError):
            PowerSupplyNetwork(resonant_hz=2.0e9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vdd": -1.0},
            {"peak_impedance": 0.0},
            {"impedance_scale": -2.0},
            {"tolerance": 0.0},
            {"tolerance": 1.5},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            PowerSupplyNetwork(**kwargs)


class TestScaling:
    def test_with_scale_scales_resistance(self, net):
        scaled = net.with_scale(1.5)
        assert scaled.parameters.resistance == pytest.approx(
            1.5 * net.parameters.resistance
        )

    def test_with_scale_preserves_resonance(self, net):
        scaled = net.with_scale(2.0)
        assert scaled.parameters.resonant_rad == pytest.approx(
            net.parameters.resonant_rad
        )

    def test_with_peak_impedance(self, net):
        rebased = net.with_peak_impedance(2e-3)
        assert rebased.peak_impedance == 2e-3
        assert rebased.impedance_scale == net.impedance_scale


class TestFrequencyResponse:
    def test_dc_value_is_resistance(self, net):
        z0 = impedance_magnitude(net, [0.0])[0]
        assert z0 == pytest.approx(net.parameters.resistance)

    def test_peak_at_resonance(self, net):
        f, z = resonant_peak(net)
        assert f == pytest.approx(net.resonant_hz, rel=0.02)
        assert z == pytest.approx(net.peak_impedance, rel=0.01)

    def test_bandpass_shape(self, net):
        # Figure 5: rises from DC to the resonant peak, falls past it.
        z_low = impedance_magnitude(net, [net.resonant_hz / 20])[0]
        z_res = impedance_magnitude(net, [net.resonant_hz])[0]
        z_high = impedance_magnitude(net, [net.resonant_hz * 20])[0]
        assert z_res > 5 * z_low
        assert z_res > 5 * z_high

    def test_response_curve_shapes(self, net):
        freqs, mags = response_curve(net, points=100)
        assert freqs.shape == mags.shape == (100,)
        assert (mags > 0).all()

    def test_scaling_scales_whole_curve(self, net):
        freqs = np.logspace(6, 9, 50)
        z1 = impedance_magnitude(net, freqs)
        z2 = impedance_magnitude(net.with_scale(1.5), freqs)
        np.testing.assert_allclose(z2, 1.5 * z1, rtol=1e-9)

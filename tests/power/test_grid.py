"""Unit tests for the on-die power grid (spatial IR drop)."""

import numpy as np
import pytest

from repro.power import DEFAULT_FLOORPLAN, Floorplan, PowerGrid
from repro.uarch import ActivityCounters, WattchPowerModel


@pytest.fixture(scope="module")
def grid():
    return PowerGrid()


class TestConstruction:
    def test_default_pads_are_corners(self, grid):
        assert set(grid.pad_nodes) == {(0, 0), (0, 7), (7, 0), (7, 7)}

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerGrid(rows=1)
        with pytest.raises(ValueError):
            PowerGrid(segment_resistance=0.0)
        with pytest.raises(ValueError):
            PowerGrid(pad_nodes=((9, 9),))


class TestSolve:
    def test_zero_current_is_vdd_everywhere(self, grid):
        v = grid.voltage_map(np.zeros((8, 8)))
        np.testing.assert_allclose(v, grid.vdd)

    def test_uniform_load_symmetry(self, grid):
        v = grid.voltage_map(np.full((8, 8), 0.5))
        # Corner pads + uniform load: the map is symmetric under both
        # flips, and the centre sags deepest.
        np.testing.assert_allclose(v, v[::-1, :], atol=1e-12)
        np.testing.assert_allclose(v, v[:, ::-1], atol=1e-12)
        r, c, _ = grid.worst_node(np.full((8, 8), 0.5))
        assert r in (3, 4) and c in (3, 4)

    def test_superposition(self, grid):
        a = np.zeros((8, 8))
        a[2, 5] = 8.0
        b = np.zeros((8, 8))
        b[6, 1] = 3.0
        da = grid.ir_drop_map(a)
        db = grid.ir_drop_map(b)
        np.testing.assert_allclose(grid.ir_drop_map(a + b), da + db, atol=1e-12)

    def test_linearity_in_magnitude(self, grid):
        m = np.random.default_rng(0).uniform(0, 1, (8, 8))
        np.testing.assert_allclose(
            grid.ir_drop_map(3 * m), 3 * grid.ir_drop_map(m), atol=1e-12
        )

    def test_drop_deepest_far_from_pads(self, grid):
        m = np.full((8, 8), 0.3)
        drop = grid.ir_drop_map(m)
        assert drop[3, 3] > drop[0, 0]
        assert drop[0, 0] > 0

    def test_more_pads_less_drop(self):
        few = PowerGrid()
        many = PowerGrid(
            pad_nodes=tuple((r, c) for r in (0, 7) for c in range(8))
        )
        m = np.full((8, 8), 0.5)
        assert many.ir_drop_map(m).max() < few.ir_drop_map(m).max()

    def test_local_hotspot_sags_locally(self, grid):
        m = np.zeros((8, 8))
        m[5, 5] = 20.0
        drop = grid.ir_drop_map(m)
        assert drop[5, 5] == drop.max()

    def test_input_validation(self, grid):
        with pytest.raises(ValueError):
            grid.voltage_map(np.zeros((4, 4)))
        bad = np.zeros((8, 8))
        bad[0, 0] = -1.0
        with pytest.raises(ValueError):
            grid.voltage_map(bad)


class TestFloorplan:
    def test_current_map_conserves_total(self):
        model = WattchPowerModel()
        act = ActivityCounters()
        act.issued_ialu = 4
        act.dcache_accesses = 2
        cm = DEFAULT_FLOORPLAN.current_map(model, act)
        assert cm.sum() == pytest.approx(model.current(act))

    def test_activity_localizes(self):
        model = WattchPowerModel()
        idle = ActivityCounters()
        busy = ActivityCounters()
        busy.dcache_accesses = 2
        fp = DEFAULT_FLOORPLAN
        delta = fp.current_map(model, busy) - fp.current_map(model, idle)
        r0, r1, c0, c1 = fp.regions["dcache_accesses"]
        inside = delta[r0:r1, c0:c1].sum()
        assert inside == pytest.approx(delta.sum(), rel=1e-9)

    def test_region_validation(self):
        with pytest.raises(ValueError):
            Floorplan(rows=4, cols=4, regions={"x": (0, 5, 0, 2)})

    def test_grid_integration(self):
        model = WattchPowerModel()
        act = ActivityCounters()
        act.issued_fpalu = 2
        act.issued_fpmult = 1
        grid = PowerGrid()
        v = grid.voltage_map(DEFAULT_FLOORPLAN.current_map(model, act))
        assert v.min() < grid.vdd
        assert v.max() <= grid.vdd

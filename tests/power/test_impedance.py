"""Unit tests for target-impedance calibration (§3.1)."""

import numpy as np
import pytest

from repro.power import (
    PowerSupplyNetwork,
    calibrate_peak_impedance,
    calibrated_network,
    count_emergencies,
    didt_reduction,
    simulate_voltage,
    worst_case_current,
)

I_MIN, I_MAX = 5.0, 65.0


@pytest.fixture
def net():
    return PowerSupplyNetwork()


@pytest.fixture
def cal100(net):
    return calibrated_network(net, I_MIN, I_MAX, percent=100)


class TestWorstCaseCurrent:
    def test_bounds(self, net):
        i = worst_case_current(net, 4096, I_MIN, I_MAX)
        assert i.min() >= I_MIN
        assert i.max() <= I_MAX

    def test_resonant_period(self, net):
        i = worst_case_current(net, 4096, I_MIN, I_MAX)
        tail = i[-1024:]
        # The square wave flips every half resonant period.
        flips = np.where(np.diff(tail) != 0)[0]
        assert np.median(np.diff(flips)) == pytest.approx(
            net.resonant_period_cycles / 2, abs=1
        )

    def test_warmup_at_midpoint(self, net):
        i = worst_case_current(net, 4096, I_MIN, I_MAX)
        assert (i[:60] == 0.5 * (I_MIN + I_MAX)).all()

    def test_validation(self, net):
        with pytest.raises(ValueError):
            worst_case_current(net, 0, I_MIN, I_MAX)
        with pytest.raises(ValueError):
            worst_case_current(net, 100, 10.0, 5.0)


class TestCalibration:
    def test_calibrated_100_exactly_fills_band(self, cal100):
        stress = worst_case_current(cal100, 8192, I_MIN, I_MAX)
        v = simulate_voltage(cal100, stress)
        settled = v[1024:]
        assert settled.min() == pytest.approx(cal100.v_min, abs=1e-6)
        assert count_emergencies(cal100, settled) == 0

    def test_150_faults_under_stress(self, net):
        cal150 = calibrated_network(net, I_MIN, I_MAX, percent=150)
        stress = worst_case_current(cal150, 8192, I_MIN, I_MAX)
        v = simulate_voltage(cal150, stress)
        assert count_emergencies(cal150, v[1024:]) > 0

    def test_percentages_scale_linearly(self, net):
        c125 = calibrated_network(net, I_MIN, I_MAX, percent=125)
        c200 = calibrated_network(net, I_MIN, I_MAX, percent=200)
        assert c200.parameters.resistance / c125.parameters.resistance == (
            pytest.approx(200 / 125)
        )

    def test_rebase_independent_of_initial_scale(self, net):
        a = calibrated_network(net, I_MIN, I_MAX, percent=100)
        b = calibrated_network(net.with_scale(3.0), I_MIN, I_MAX, percent=100)
        assert a.parameters.resistance == pytest.approx(
            b.parameters.resistance, rel=1e-9
        )

    def test_flat_stressmark_rejected(self, net):
        with pytest.raises(ValueError):
            calibrate_peak_impedance(net, np.zeros(4096))

    def test_bad_percent(self, net):
        with pytest.raises(ValueError):
            calibrated_network(net, I_MIN, I_MAX, percent=0)


class TestDidtReduction:
    def test_paper_values(self):
        # "If microarchitectural techniques can eliminate voltage faults on
        # a system with a 150% target impedance power supply, we say that
        # we have reduced dI/dt by 33%."
        assert didt_reduction(150) == pytest.approx(1 / 3)
        assert didt_reduction(100) == 0.0
        assert didt_reduction(200) == pytest.approx(0.5)

    def test_below_100_rejected(self):
        with pytest.raises(ValueError):
            didt_reduction(50)

"""Unit tests for supply-sizing helpers."""

import numpy as np
import pytest

from repro.core import calibrated_supply
from repro.power import exposure_at, max_tolerable_impedance
from repro.uarch import simulate_benchmark


@pytest.fixture(scope="module")
def base():
    return calibrated_supply(100)


@pytest.fixture(scope="module")
def traces():
    return {
        name: simulate_benchmark(name, cycles=12288).current
        for name in ("mgrid", "gzip", "mcf")
    }


class TestExposure:
    def test_monotone_in_impedance(self, base, traces):
        low = exposure_at(base.with_scale(1.0), traces, threshold=0.97)
        high = exposure_at(base.with_scale(2.0), traces, threshold=0.97)
        for name in traces:
            assert high[name] >= low[name]

    def test_default_threshold_is_fault_limit(self, base, traces):
        # At 100% calibrated impedance SPEC traces don't fault at all.
        exp = exposure_at(base, traces)
        assert max(exp.values()) == 0.0

    def test_short_trace_rejected(self, base):
        with pytest.raises(ValueError):
            exposure_at(base, {"x": np.full(100, 30.0)}, settle=1024)


class TestMaxTolerableImpedance:
    def test_bisection_result_is_feasible_and_tight(self, base, traces):
        pct = max_tolerable_impedance(base, traces, budget=0.0)
        assert 100.0 <= pct < 400.0
        # Feasible at the answer...
        exp = exposure_at(base.with_scale(pct / 100.0), traces)
        assert max(exp.values()) == 0.0
        # ...and infeasible a few percent above it.
        exp_above = exposure_at(base.with_scale((pct + 5) / 100.0), traces)
        assert max(exp_above.values()) > 0.0

    def test_budget_buys_impedance(self, base, traces):
        strict = max_tolerable_impedance(base, traces, budget=0.0)
        relaxed = max_tolerable_impedance(base, traces, budget=0.002)
        assert relaxed > strict

    def test_infeasible_low_raises(self, base, traces):
        with pytest.raises(ValueError):
            max_tolerable_impedance(
                base, traces, budget=0.0, lo=300.0, hi=400.0
            )

    def test_validation(self, base, traces):
        with pytest.raises(ValueError):
            max_tolerable_impedance(base, traces, budget=-0.1)
        with pytest.raises(ValueError):
            max_tolerable_impedance(base, traces, lo=200.0, hi=100.0)

    def test_hi_returned_when_everything_passes(self, base):
        flat = {"idle": np.full(8192, 18.0)}
        pct = max_tolerable_impedance(base, flat, budget=0.0, hi=300.0)
        assert pct == 300.0

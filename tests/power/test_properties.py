"""Property-based tests (hypothesis) for the power-delivery substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.power import (
    ConvolutionVoltageSimulator,
    PowerSupplyNetwork,
    StreamingVoltageModel,
    biquad_coefficients,
    impulse_response,
)

currents = arrays(
    np.float64,
    st.integers(min_value=1, max_value=400),
    elements=st.floats(0.0, 200.0, allow_nan=False, width=64),
)

networks = st.builds(
    PowerSupplyNetwork,
    resonant_hz=st.floats(40e6, 250e6),
    quality_factor=st.floats(2.0, 15.0),
    peak_impedance=st.floats(1e-4, 1e-2),
    impedance_scale=st.floats(0.5, 3.0),
)


@settings(max_examples=30, deadline=None)
@given(networks)
def test_dc_gain_is_always_resistance(net):
    bq = biquad_coefficients(net)
    assert bq.dc_gain() == pytest.approx(net.parameters.resistance, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(networks)
def test_resonant_gain_matches_analytic(net):
    from repro.power import impedance_magnitude

    bq = biquad_coefficients(net)
    analytic = impedance_magnitude(net, [net.resonant_hz])[0]
    assert bq.gain_at(net.resonant_hz, net.clock_hz) == pytest.approx(
        analytic, rel=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(networks)
def test_impulse_response_is_stable(net):
    h = impulse_response(net, 2048)
    assert np.all(np.isfinite(h))
    # Ring-down: the last tenth is tiny relative to the peak.
    assert np.abs(h[-204:]).max() <= np.abs(h).max()


@settings(max_examples=20, deadline=None)
@given(currents)
def test_streaming_equals_convolution(i):
    net = PowerSupplyNetwork()
    conv = ConvolutionVoltageSimulator(net, taps=4096).voltage(i)
    stream = StreamingVoltageModel(net).run(i)
    np.testing.assert_allclose(stream, conv, atol=1e-7)


@settings(max_examples=20, deadline=None)
@given(currents, st.floats(0.1, 5.0))
def test_voltage_droop_is_linear_and_monotone_in_scale(i, scale):
    net = PowerSupplyNetwork()
    d1 = net.vdd - ConvolutionVoltageSimulator(net).voltage(i)
    d2 = net.with_scale(scale).vdd - ConvolutionVoltageSimulator(
        net.with_scale(scale)
    ).voltage(i)
    np.testing.assert_allclose(d2, scale * d1, rtol=1e-9, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(currents)
def test_voltage_finite_and_zero_current_gives_vdd(i):
    """Any bounded trace keeps the voltage finite, and appending a long
    zero-current tail rings the voltage back to exactly vdd."""
    net = PowerSupplyNetwork()
    sim = ConvolutionVoltageSimulator(net)
    v = sim.voltage(i)
    assert np.all(np.isfinite(v))
    padded = np.concatenate([i, np.zeros(sim.taps)])
    v_tail = sim.voltage(padded)[-1]
    assert v_tail == pytest.approx(net.vdd, abs=1e-4)

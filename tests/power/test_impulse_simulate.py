"""Unit tests for the impulse response and voltage simulation engines."""

import numpy as np
import pytest

from repro.power import (
    ConvolutionVoltageSimulator,
    PowerSupplyNetwork,
    StreamingVoltageModel,
    biquad_coefficients,
    count_emergencies,
    default_tap_count,
    discrete_impedance_magnitude,
    emergency_fraction,
    impulse_response,
    settle_cycles,
    simulate_voltage,
)


@pytest.fixture
def net():
    return PowerSupplyNetwork()


class TestImpulseResponse:
    def test_dc_gain_is_resistance(self, net):
        bq = biquad_coefficients(net)
        assert bq.dc_gain() == pytest.approx(net.parameters.resistance)

    def test_kernel_matches_biquad(self, net):
        h = impulse_response(net, 256)
        np.testing.assert_allclose(h, biquad_coefficients(net).impulse(256))

    def test_starts_positive(self, net):
        h = impulse_response(net, 64)
        assert h[0] > 0

    def test_rings_at_resonant_period(self, net):
        h = impulse_response(net, 512)
        # Zero crossings spaced ~ half the resonant period (15 cycles).
        crossings = np.where(np.diff(np.sign(h)) != 0)[0]
        spacing = np.diff(crossings)
        assert np.median(spacing) == pytest.approx(
            net.resonant_period_cycles / 2, abs=2
        )

    def test_decays(self, net):
        h = impulse_response(net, 1024)
        assert np.abs(h[-64:]).max() < 0.05 * np.abs(h[:64]).max()

    def test_default_taps_power_of_two(self, net):
        taps = default_tap_count(net)
        assert taps & (taps - 1) == 0
        assert taps >= settle_cycles(net, 0.01)

    def test_settle_fraction_validation(self, net):
        with pytest.raises(ValueError):
            settle_cycles(net, 2.0)

    def test_bad_taps(self, net):
        with pytest.raises(ValueError):
            impulse_response(net, 0)

    def test_discrete_matches_analytic_response(self, net):
        freqs = np.array([20e6, 50e6, 100e6, 200e6, 400e6])
        from repro.power import impedance_magnitude

        analytic = impedance_magnitude(net, freqs)
        discrete = discrete_impedance_magnitude(net, freqs, taps=4096)
        # Exact at 100 MHz (pre-warped); bilinear warping allows a few
        # percent drift elsewhere, worst at the highest frequency.
        np.testing.assert_allclose(discrete, analytic, rtol=0.08)
        assert discrete[2] == pytest.approx(analytic[2], rel=1e-6)


class TestVoltageSimulation:
    def test_constant_current_gives_ir_drop(self, net):
        i = np.full(4000, 40.0)
        v = simulate_voltage(net, i)
        expected = net.vdd - 40.0 * net.parameters.resistance
        assert v[-1] == pytest.approx(expected, rel=1e-3)

    def test_zero_current_is_vdd(self, net):
        v = simulate_voltage(net, np.zeros(100))
        np.testing.assert_allclose(v, net.vdd)

    def test_step_undershoots_then_settles(self, net):
        i = np.concatenate([np.zeros(100), np.full(3000, 50.0)])
        v = simulate_voltage(net, i)
        settled = net.vdd - 50.0 * net.parameters.resistance
        assert v.min() < settled - 1e-5  # resonant undershoot
        assert v[-1] == pytest.approx(settled, rel=1e-3)

    def test_linearity_in_current(self, net):
        rng = np.random.default_rng(0)
        i = rng.normal(40, 5, 500)
        sim = ConvolutionVoltageSimulator(net)
        d1 = sim.droop(i)
        d2 = sim.droop(2 * i)
        np.testing.assert_allclose(d2, 2 * d1, rtol=1e-9)

    def test_resonant_drive_amplifies(self, net):
        # Same amplitude drive at resonance vs far off resonance.
        n = np.arange(6000)
        period = net.resonant_period_cycles
        at_res = 40 + 10 * np.sign(np.sin(2 * np.pi * n / period))
        off_res = 40 + 10 * np.sign(np.sin(2 * np.pi * n / (period * 8)))
        v_res = simulate_voltage(net, at_res)[1000:]
        v_off = simulate_voltage(net, off_res)[1000:]
        assert np.ptp(v_res) > 3 * np.ptp(v_off)

    def test_empty_trace(self, net):
        assert simulate_voltage(net, np.array([])).size == 0

    def test_rejects_2d(self, net):
        with pytest.raises(ValueError):
            ConvolutionVoltageSimulator(net).droop(np.zeros((2, 2)))


class TestStreamingModel:
    def test_matches_convolution(self, net):
        rng = np.random.default_rng(1)
        i = rng.normal(40, 8, 3000)
        v_conv = ConvolutionVoltageSimulator(net, taps=8192).voltage(i)
        v_stream = StreamingVoltageModel(net).run(i)
        np.testing.assert_allclose(v_stream, v_conv, atol=1e-9)

    def test_step_matches_run(self, net):
        rng = np.random.default_rng(2)
        i = rng.normal(40, 8, 400)
        m1 = StreamingVoltageModel(net)
        stepped = np.array([m1.step(x) for x in i])
        m2 = StreamingVoltageModel(net)
        np.testing.assert_allclose(stepped, m2.run(i), atol=1e-12)

    def test_reset_clears_state(self, net):
        m = StreamingVoltageModel(net)
        m.step(100.0)
        m.reset()
        assert m.step(0.0) == pytest.approx(net.vdd)


class TestEmergencies:
    def test_counts(self, net):
        v = np.array([1.0, 0.94, 1.06, 0.96, 1.04])
        assert count_emergencies(net, v) == 2
        assert emergency_fraction(net, v) == pytest.approx(0.4)

    def test_empty(self, net):
        assert emergency_fraction(net, np.array([])) == 0.0

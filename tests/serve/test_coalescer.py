"""Coalescer property and concurrency tests against a fake runner.

The coalescer only relies on ``spec.digest()`` and the outcome shape,
so a fake spec/outcome pair keeps these tests instant while the real
asyncio machinery (dispatch task, thread-offloaded runner, threadsafe
routing) runs for real.
"""

import asyncio
import threading

import pytest

from repro.serve.coalescer import BatchCoalescer
from repro.serve.protocol import AdmissionError, DrainingError


class FakeSpec:
    """Digest-keyed stand-in for a JobSpec."""

    def __init__(self, name: str) -> None:
        self.benchmark = name
        self.stages = ("fake",)

    def digest(self) -> str:
        return f"digest-{self.benchmark}"


class FakeOutcome:
    def __init__(self, spec, ok=True, estimated=None):
        self.spec = spec
        self.ok = ok
        self.artifacts = (
            {"characterize": {"estimated": estimated}}
            if estimated is not None
            else {}
        )
        self.cache_hits = {}
        self.attempts = 1
        self.elapsed = 0.01
        self._fail = (
            None
            if ok
            else {"kind": "crash", "stage": "fake", "attempts": 1,
                  "error": f"{spec.benchmark} failed"}
        )

    def failure(self):
        return self._fail


class RecordingRunner:
    """Synchronous runner double: records every batch it executes."""

    def __init__(self, outcome_for=None, gate=None, error=None):
        self.calls: list[list] = []
        self.outcome_for = outcome_for or (lambda s: FakeOutcome(s))
        self.gate = gate
        self.error = error

    def __call__(self, specs, progress):
        self.calls.append(list(specs))
        if self.gate is not None:
            assert self.gate.wait(30)
        if self.error is not None:
            raise self.error
        for spec in specs:
            progress(self.outcome_for(spec))

    @property
    def total_jobs(self) -> int:
        return sum(len(call) for call in self.calls)


async def collect(sub) -> list[dict]:
    return [event async for event in sub.events()]


def run(coro, timeout: float = 30.0):
    async def guarded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(guarded())


class TestCoalescing:
    def test_n_identical_requests_one_job_n_streams(self):
        runner = RecordingRunner()

        async def scenario():
            coalescer = BatchCoalescer(runner, batch_window_s=0.01).start()
            spec = FakeSpec("gzip")
            subs = [
                await coalescer.submit(spec, f"req-{i}") for i in range(5)
            ]
            streams = await asyncio.gather(*(collect(s) for s in subs))
            await coalescer.drain()
            return coalescer, streams

        coalescer, streams = run(scenario())
        assert runner.total_jobs == 1  # one pipeline job for 5 requests
        assert len(streams) == 5  # ...but five full result streams
        for i, events in enumerate(streams):
            assert events[-1] == {
                "type": "done", "ok": True, "request_id": f"req-{i}",
            }
            result = next(e for e in events if e["type"] == "result")
            assert result["benchmark"] == "gzip"
            assert result["request_id"] == f"req-{i}"
        assert coalescer.stats["submitted"] == 5
        assert coalescer.stats["coalesced"] == 4
        assert coalescer.stats["dispatched_jobs"] == 1

    def test_distinct_requests_never_cross_deliver(self):
        runner = RecordingRunner(
            outcome_for=lambda s: FakeOutcome(
                s, estimated=float(len(s.benchmark))
            )
        )

        async def scenario():
            coalescer = BatchCoalescer(runner, batch_window_s=0.01).start()
            names = ["gzip", "mcf", "art", "gcc", "vpr", "twolf"]
            subs = {
                name: await coalescer.submit(FakeSpec(name), f"req-{name}")
                for name in names
            }
            streams = {
                name: await collect(sub) for name, sub in subs.items()
            }
            await coalescer.drain()
            return streams

        streams = run(scenario())
        for name, events in streams.items():
            result = next(e for e in events if e["type"] == "result")
            # each stream carries exactly its own job's result
            assert result["benchmark"] == name
            assert result["estimated"] == float(len(name))
            assert result["request_id"] == f"req-{name}"
            assert all(
                e.get("request_id") == f"req-{name}" for e in events
            )

    def test_interleaved_duplicates_coalesce_across_batches(self):
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)

        async def scenario():
            coalescer = BatchCoalescer(
                runner, batch_window_s=0.005, max_batch=1
            ).start()
            sub_a = await coalescer.submit(FakeSpec("gzip"), "a")
            # wait until the job is in flight, then subscribe again:
            # the duplicate must piggyback, not start a second job
            for _ in range(1000):
                if coalescer.stats["batches"]:
                    break
                await asyncio.sleep(0.005)
            sub_b = await coalescer.submit(FakeSpec("gzip"), "b")
            gate.set()
            events_a, events_b = await asyncio.gather(
                collect(sub_a), collect(sub_b)
            )
            await coalescer.drain()
            return events_a, events_b

        events_a, events_b = run(scenario())
        assert runner.total_jobs == 1
        assert events_a[-1]["ok"] and events_b[-1]["ok"]
        states_b = [e.get("state") for e in events_b if e["type"] == "status"]
        assert "coalesced" in states_b

    def test_batch_window_groups_distinct_jobs(self):
        runner = RecordingRunner()

        async def scenario():
            coalescer = BatchCoalescer(
                runner, batch_window_s=0.05, max_batch=8
            ).start()
            subs = [
                await coalescer.submit(FakeSpec(f"b{i}"), f"req-{i}")
                for i in range(4)
            ]
            await asyncio.gather(*(collect(s) for s in subs))
            await coalescer.drain()

        run(scenario())
        assert runner.total_jobs == 4
        assert len(runner.calls) == 1  # one batch, four jobs


class TestAdmission:
    def test_bounded_admission_rejects_past_max_pending(self):
        runner = RecordingRunner()

        async def scenario():
            # window long enough that nothing dispatches during the test
            coalescer = BatchCoalescer(
                runner, batch_window_s=5.0, max_pending=2
            ).start()
            sub_a = await coalescer.submit(FakeSpec("a"), "ra")
            sub_b = await coalescer.submit(FakeSpec("b"), "rb")
            with pytest.raises(AdmissionError) as excinfo:
                await coalescer.submit(FakeSpec("c"), "rc")
            # duplicates of queued jobs are still free (no new job)
            dup = await coalescer.submit(FakeSpec("a"), "ra2")
            await coalescer.drain()
            await asyncio.gather(
                collect(sub_a), collect(sub_b), collect(dup)
            )
            return coalescer, excinfo.value

        coalescer, error = run(scenario())
        assert error.details["queue_depth"] == 2
        assert coalescer.stats["rejected_admission"] == 1
        assert runner.total_jobs == 2

    def test_draining_rejects_new_submits(self):
        runner = RecordingRunner()

        async def scenario():
            coalescer = BatchCoalescer(runner, batch_window_s=0.01).start()
            sub = await coalescer.submit(FakeSpec("a"), "ra")
            events = await collect(sub)
            await coalescer.drain()
            with pytest.raises(DrainingError):
                await coalescer.submit(FakeSpec("b"), "rb")
            return events

        events = run(scenario())
        assert events[-1]["ok"] is True

    def test_drain_flushes_pending_work(self):
        runner = RecordingRunner()

        async def scenario():
            # window far longer than the test: only drain can flush
            coalescer = BatchCoalescer(runner, batch_window_s=60.0).start()
            sub = await coalescer.submit(FakeSpec("a"), "ra")
            drain_task = asyncio.create_task(coalescer.drain())
            events = await collect(sub)
            await drain_task
            return events

        events = run(scenario())
        assert runner.total_jobs == 1
        assert events[-1] == {"type": "done", "ok": True,
                              "request_id": "ra"}


class TestCacheFastPath:
    def test_fastpath_skips_the_runner(self):
        runner = RecordingRunner()
        hits = []

        def try_cache(spec):
            hits.append(spec.benchmark)
            return FakeOutcome(spec, estimated=0.5)

        async def scenario():
            coalescer = BatchCoalescer(
                runner, try_cache=try_cache, batch_window_s=0.01
            ).start()
            sub = await coalescer.submit(FakeSpec("gzip"), "r1")
            events = await collect(sub)
            await coalescer.drain()
            return coalescer, events

        coalescer, events = run(scenario())
        assert runner.calls == []  # zero dispatches
        assert hits == ["gzip"]
        assert [e["type"] for e in events] == ["status", "result", "done"]
        assert events[0]["state"] == "cached"
        assert coalescer.stats["cache_fastpath"] == 1
        assert coalescer.stats["dispatched_jobs"] == 0

    def test_cache_miss_falls_through_to_runner(self):
        runner = RecordingRunner()

        async def scenario():
            coalescer = BatchCoalescer(
                runner, try_cache=lambda spec: None, batch_window_s=0.01
            ).start()
            sub = await coalescer.submit(FakeSpec("gzip"), "r1")
            events = await collect(sub)
            await coalescer.drain()
            return events

        events = run(scenario())
        assert runner.total_jobs == 1
        assert events[-1]["ok"] is True


class TestFailureDelivery:
    def test_job_error_reaches_every_subscriber(self):
        runner = RecordingRunner(
            outcome_for=lambda s: FakeOutcome(s, ok=False)
        )

        async def scenario():
            coalescer = BatchCoalescer(runner, batch_window_s=0.01).start()
            spec = FakeSpec("gzip")
            subs = [
                await coalescer.submit(spec, f"r{i}") for i in range(3)
            ]
            streams = await asyncio.gather(*(collect(s) for s in subs))
            await coalescer.drain()
            return coalescer, streams

        coalescer, streams = run(scenario())
        for events in streams:
            error = next(e for e in events if e["type"] == "error")
            assert error["kind"] == "crash"
            assert events[-1]["ok"] is False
        assert coalescer.stats["job_errors"] == 1

    def test_runner_exception_fails_all_streams(self):
        runner = RecordingRunner(error=RuntimeError("pool exploded"))

        async def scenario():
            coalescer = BatchCoalescer(runner, batch_window_s=0.01).start()
            sub_a = await coalescer.submit(FakeSpec("a"), "ra")
            sub_b = await coalescer.submit(FakeSpec("b"), "rb")
            streams = await asyncio.gather(collect(sub_a), collect(sub_b))
            await coalescer.drain()
            return streams

        streams = run(scenario())
        for events in streams:
            error = next(e for e in events if e["type"] == "error")
            assert error["kind"] == "internal"
            assert "pool exploded" in error["message"]
            assert events[-1] == {
                "type": "done", "ok": False,
                "request_id": events[-1]["request_id"],
            }

"""Wire-protocol round trips: request validation and spec building.

Pure-function coverage — no sockets, no event loop.  The spec-building
tests construct a default :class:`PowerSupplyNetwork` directly instead
of running the stressmark calibration, so they are instant.
"""

import json

import numpy as np
import pytest

from repro.pipeline.spec import DEFAULT_STAGES, STORE_STAGES
from repro.power import PowerSupplyNetwork
from repro.serve.protocol import (
    MAX_INLINE_SAMPLES,
    RequestError,
    ServeRequest,
    build_spec,
    encode_event,
    error_event,
    parse_request,
    result_event,
)
from repro.store import TraceStore


def network_for(impedance: float) -> PowerSupplyNetwork:
    return PowerSupplyNetwork(impedance_scale=impedance / 100.0)


class TestParseRequest:
    def test_named_workload_round_trip(self):
        request = parse_request(
            {"benchmark": "gzip", "cycles": 4096, "seed": 7, "window": 128}
        )
        assert request.kind == "characterize"
        assert request.source == "workload"
        assert request.benchmark == "gzip"
        assert request.cycles == 4096
        assert request.seed == 7
        assert request.window == 128

    def test_defaults_match_pipeline_defaults(self):
        request = parse_request({"benchmark": "gzip"})
        assert request.cycles == 32768
        assert request.warmup_cycles == 4096
        assert request.window == 256
        assert request.threshold == 0.97
        assert request.impedance == 150.0

    def test_body_must_be_object(self):
        with pytest.raises(RequestError):
            parse_request(["not", "an", "object"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestError, match="unknown kind"):
            parse_request({"kind": "explode", "benchmark": "gzip"})

    def test_exactly_one_trace_source(self):
        with pytest.raises(RequestError, match="exactly one"):
            parse_request({})
        with pytest.raises(RequestError, match="exactly one"):
            parse_request({"benchmark": "gzip", "trace_id": "tr-x"})
        with pytest.raises(RequestError, match="exactly one"):
            parse_request(
                {"benchmark": "gzip", "trace": {"samples": [1.0]}}
            )

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(RequestError, match="unknown benchmark"):
            parse_request({"benchmark": "not-a-spec-workload"})

    def test_inline_trace_parsed(self):
        request = parse_request(
            {"trace": {"samples": [1.0, 2.5, 3.0], "label": "probe"}}
        )
        assert request.source == "inline"
        assert request.samples == (1.0, 2.5, 3.0)
        assert request.label == "probe"

    def test_inline_trace_size_capped(self):
        with pytest.raises(RequestError, match="too large"):
            parse_request(
                {"trace": {"samples": [0.0] * (MAX_INLINE_SAMPLES + 1)}}
            )

    def test_inline_trace_needs_numbers(self):
        with pytest.raises(RequestError, match="numbers"):
            parse_request({"trace": {"samples": [1.0, "nope"]}})

    def test_empty_inline_trace_rejected(self):
        with pytest.raises(RequestError, match="no samples"):
            parse_request({"trace": {"samples": []}})

    def test_control_requires_named_workload(self):
        with pytest.raises(RequestError, match="named workload"):
            parse_request(
                {"kind": "control", "trace": {"samples": [1.0]}}
            )
        with pytest.raises(RequestError, match="named workload"):
            parse_request({"kind": "control", "trace_id": "tr-x"})
        request = parse_request({"kind": "control", "benchmark": "gzip"})
        assert request.kind == "control"

    def test_numeric_field_validation(self):
        with pytest.raises(RequestError, match="'cycles'"):
            parse_request({"benchmark": "gzip", "cycles": "many"})
        with pytest.raises(RequestError, match="'cycles'"):
            parse_request({"benchmark": "gzip", "cycles": 0})
        with pytest.raises(RequestError, match="'window'"):
            parse_request({"benchmark": "gzip", "window": 1})

    def test_params_must_be_scalar(self):
        with pytest.raises(RequestError, match="scalar"):
            parse_request(
                {"benchmark": "gzip", "params": {"nested": {"no": 1}}}
            )

    def test_params_sorted_for_digest_stability(self):
        a = parse_request(
            {"benchmark": "gzip", "params": {"b": 1, "a": 2}}
        )
        b = parse_request(
            {"benchmark": "gzip", "params": {"a": 2, "b": 1}}
        )
        assert a.params == b.params == (("a", 2), ("b", 1))

    def test_client_field(self):
        request = parse_request({"benchmark": "gzip", "client": "ci"})
        assert request.client == "ci"
        with pytest.raises(RequestError, match="'client'"):
            parse_request({"benchmark": "gzip", "client": 7})


class TestBuildSpec:
    def test_workload_spec(self):
        request = parse_request(
            {"benchmark": "gzip", "cycles": 2048, "seed": 3}
        )
        spec = build_spec(
            request, network_for=network_for, store=None, spool=None
        )
        assert spec.benchmark == "gzip"
        assert spec.stages == DEFAULT_STAGES
        assert spec.cycles == 2048
        assert spec.seed == 3
        assert spec.trace is None
        assert spec.network is not None

    def test_identical_requests_share_a_digest(self):
        doc = {"benchmark": "gzip", "cycles": 2048, "seed": 3}
        spec_a = build_spec(
            parse_request(doc), network_for=network_for, store=None,
            spool=None,
        )
        spec_b = build_spec(
            parse_request(dict(doc)), network_for=network_for, store=None,
            spool=None,
        )
        assert spec_a.digest() == spec_b.digest()

    def test_control_spec(self):
        request = parse_request({"kind": "control", "benchmark": "gzip"})
        spec = build_spec(
            request, network_for=network_for, store=None, spool=None
        )
        assert spec.stages == ("control",)
        assert spec.param("scheme") == "wavelet"

    def test_inline_upload_goes_through_spool(self, tmp_path):
        spool = TraceStore(tmp_path / "spool", mode="a")
        rng = np.random.default_rng(0)
        samples = list(rng.normal(40.0, 5.0, 256))
        request = parse_request(
            {"trace": {"samples": samples, "label": "probe"}}
        )
        spec = build_spec(
            request, network_for=network_for, store=None, spool=spool
        )
        assert spec.stages == STORE_STAGES
        assert spec.trace is not None
        assert spec.cycles == 256
        assert len(spool) == 1

    def test_inline_reupload_dedupes(self, tmp_path):
        spool = TraceStore(tmp_path / "spool", mode="a")
        samples = [float(i) for i in range(64)]
        doc = {"trace": {"samples": samples, "label": "probe"}}
        spec_a = build_spec(
            parse_request(doc), network_for=network_for, store=None,
            spool=spool,
        )
        spec_b = build_spec(
            parse_request(json.loads(json.dumps(doc))),
            network_for=network_for, store=None, spool=spool,
        )
        assert spec_a.digest() == spec_b.digest()
        assert len(spool) == 1

    def test_ref_request_without_store_rejected(self):
        request = parse_request({"trace_id": "tr-anything"})
        with pytest.raises(RequestError, match="no trace store"):
            build_spec(
                request, network_for=network_for, store=None, spool=None
            )

    def test_ref_request_resolves_record(self, tmp_path):
        store = TraceStore(tmp_path / "store", mode="a")
        record = store.ingest(
            np.linspace(30.0, 50.0, 128), "gzip",
            generator={"benchmark": "gzip", "cycles": 128, "seed": 1,
                       "warmup_cycles": 0},
        )
        request = parse_request({"trace_id": record.trace_id})
        spec = build_spec(
            request, network_for=network_for, store=store, spool=None
        )
        assert spec.stages == STORE_STAGES
        assert spec.benchmark == "gzip"
        assert spec.cycles == 128

    def test_ref_request_unknown_id_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "store", mode="a")
        request = parse_request({"trace_id": "tr-missing"})
        with pytest.raises(RequestError, match="not found"):
            build_spec(
                request, network_for=network_for, store=store, spool=None
            )

    def test_inline_without_spool_rejected(self):
        request = parse_request({"trace": {"samples": [1.0, 2.0]}})
        with pytest.raises(RequestError, match="no spool"):
            build_spec(
                request, network_for=network_for, store=None, spool=None
            )


class _Outcome:
    """A minimal stand-in for a pipeline JobOutcome."""

    def __init__(self, ok=True, artifacts=None, cache_hits=None,
                 attempts=1, fail=None):
        from repro.pipeline.spec import JobSpec

        self.spec = JobSpec("gzip", stages=("simulate",))
        self.ok = ok
        self.artifacts = artifacts or {}
        self.cache_hits = cache_hits or {}
        self.attempts = attempts
        self.elapsed = 0.25
        self._fail = fail

    def failure(self):
        return self._fail


class TestEvents:
    def test_result_event_characterization(self):
        outcome = _Outcome(
            artifacts={
                "characterize": {"estimated": 0.05},
                "voltage": {"observed": 0.04},
            },
            cache_hits={"simulate": True, "voltage": True},
        )
        event = result_event("req-1", outcome)
        assert event["type"] == "result"
        assert event["request_id"] == "req-1"
        assert event["ok"] is True
        assert event["estimated"] == 0.05
        assert event["observed"] == 0.04
        assert event["error"] == pytest.approx(0.01)
        assert event["cache_hit"] is True

    def test_result_event_partial_hits_not_a_cache_hit(self):
        outcome = _Outcome(
            artifacts={"voltage": {"observed": 0.04}},
            cache_hits={"simulate": True, "voltage": False},
        )
        assert result_event("r", outcome)["cache_hit"] is False

    def test_error_event_is_structured(self):
        outcome = _Outcome(
            ok=False,
            fail={"kind": "crash", "stage": "simulate", "attempts": 2,
                  "error": "worker died"},
        )
        event = error_event("req-2", outcome)
        assert event["type"] == "error"
        assert event["ok"] is False
        assert event["kind"] == "crash"
        assert event["stage"] == "simulate"
        assert event["attempts"] == 2
        assert event["message"] == "worker died"
        assert "Traceback" not in json.dumps(event)

    def test_encode_event_is_jsonl(self):
        line = encode_event({"type": "done", "ok": True})
        assert line.endswith(b"\n")
        assert json.loads(line) == {"type": "done", "ok": True}


def test_source_property():
    assert ServeRequest(benchmark="gzip").source == "workload"
    assert ServeRequest(trace_id="tr-1").source == "ref"
    assert ServeRequest(samples=(1.0,)).source == "inline"

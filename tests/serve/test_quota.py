"""Token-bucket quota behavior under a fake clock (no sleeping)."""

import pytest

from repro.serve.quota import QuotaRegistry, TokenBucket


class Clock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = Clock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        granted, retry = bucket.try_acquire()
        assert not granted
        assert retry == pytest.approx(1.0)

    def test_refill_grants_again(self):
        clock = Clock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(0.5)  # 2 tokens/s * 0.5 s = exactly one token
        assert bucket.try_acquire()[0]

    def test_retry_after_is_exact(self):
        clock = Clock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        bucket.try_acquire()
        _, retry = bucket.try_acquire()
        assert retry == pytest.approx(0.25)
        clock.advance(0.1)
        _, retry = bucket.try_acquire()
        assert retry == pytest.approx(0.15)

    def test_refill_caps_at_burst(self):
        clock = Clock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestQuotaRegistry:
    def test_disabled_when_rate_nonpositive(self):
        registry = QuotaRegistry(0.0)
        assert not registry.enabled
        assert registry.check("anyone") == (True, 0.0)
        assert registry.active_clients == 0

    def test_clients_are_isolated(self):
        clock = Clock()
        registry = QuotaRegistry(1.0, burst=1, clock=clock)
        assert registry.check("alice")[0]
        assert not registry.check("alice")[0]
        assert registry.check("bob")[0]  # bob's bucket is untouched
        assert registry.active_clients == 2

    def test_prune_drops_refilled_buckets(self):
        clock = Clock()
        registry = QuotaRegistry(1.0, burst=1, clock=clock)
        registry.check("alice")
        registry.check("bob")
        clock.advance(0.5)
        registry.check("carol")  # alice/bob half-full, carol just spent
        assert registry.prune() == 0
        clock.advance(10.0)  # everyone refilled to burst
        assert registry.prune() == 3
        assert registry.active_clients == 0

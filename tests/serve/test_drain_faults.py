"""Graceful drain and fault surfacing, in-process and over SIGTERM.

The SIGTERM test runs the real ``python -m repro serve`` CLI as a
subprocess (port 0 + ``--port-file``: no fixed ports), kills it while a
request is mid-batch, and requires the accepted request to finish and
the process to exit 0 — the drain contract end to end.

The fault-plan test proves the service inherits the pipeline's fault
tolerance: a worker SIGKILLed by the injection harness surfaces as a
*structured error event* on the open stream, never a hung connection.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.pipeline import faults

from .conftest import quick_payload

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestDrainInProcess:
    def test_drain_mid_batch_finishes_accepted_work(self, serve_factory):
        handle = serve_factory(batch_window_s=0.01)
        gate = threading.Event()
        inner = handle.server.coalescer.runner

        def slow_runner(specs, progress):
            assert gate.wait(60)
            return inner(specs, progress)

        handle.server.coalescer.runner = slow_runner
        outcome = {}

        def fire():
            outcome["response"] = handle.submit(quick_payload(seed=31))

        request_thread = threading.Thread(target=fire)
        request_thread.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if handle.stats()["queue_depth"] >= 1:
                break
            time.sleep(0.02)

        drained = {}

        def drain():
            t0 = time.monotonic()
            handle.drain()
            drained["elapsed"] = time.monotonic() - t0

        drain_thread = threading.Thread(target=drain)
        drain_thread.start()
        time.sleep(0.1)
        assert not drained  # drain must block on the in-flight batch
        gate.set()
        drain_thread.join(120)
        request_thread.join(120)
        assert "elapsed" in drained
        # the request accepted before the drain got its full stream
        events = outcome["response"].events
        assert events[-1]["type"] == "done"
        assert events[-1]["ok"] is True


class TestDrainOverSigterm:
    def test_sigterm_mid_batch_drains_and_exits_zero(self, tmp_path):
        port_file = tmp_path / "port.txt"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--listen", "127.0.0.1:0",
                "--port-file", str(port_file),
                "--cache-dir", str(tmp_path / "cache"),
                "--batch-window", "0.01",
            ],
            env={**os.environ, "PYTHONPATH": REPO_SRC},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not (
                port_file.is_file() and port_file.read_text().strip()
            ):
                assert proc.poll() is None, proc.stdout.read()
                time.sleep(0.05)
            host, port = port_file.read_text().split()

            import asyncio

            from repro.serve.loadgen import http_request

            outcome = {}

            def fire():
                # big enough to still be mid-batch when SIGTERM lands
                outcome["response"] = asyncio.run(
                    http_request(
                        host, int(port), "POST", "/v1/characterize",
                        quick_payload(seed=32, cycles=16384),
                        timeout=180,
                    )
                )

            request_thread = threading.Thread(target=fire)
            request_thread.start()

            def stats():
                return asyncio.run(
                    http_request(host, int(port), "GET", "/stats",
                                 timeout=10)
                ).json()

            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if stats()["queue_depth"] >= 1:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            request_thread.join(180)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 0, out
        assert "serve drained" in out
        events = outcome["response"].events
        assert events, "stream was cut instead of drained"
        assert events[-1]["type"] == "done"
        assert events[-1]["ok"] is True


class TestFaultSurfacing:
    def test_killed_worker_is_a_structured_error_not_a_hang(
        self, serve_factory, monkeypatch
    ):
        # SIGKILL the worker on every simulate attempt for gzip; the
        # kill directive forces the supervised pool even at jobs=1
        monkeypatch.setenv(faults.ENV_VAR, "simulate@gzip:kill:*")
        handle = serve_factory(batch_window_s=0.01)
        t0 = time.monotonic()
        response = handle.submit(quick_payload(seed=33), timeout=180)
        elapsed = time.monotonic() - t0
        assert response.status == 200
        events = response.events
        # the stream terminated (no hung connection)...
        assert events[-1]["type"] == "done"
        assert events[-1]["ok"] is False
        assert elapsed < 120
        # ...with the pipeline's structured failure, not a traceback
        error = next(e for e in events if e["type"] == "error")
        assert error["kind"] == "crash"
        # a SIGKILLed worker cannot attribute a stage (the process is
        # gone); the structured kind/message is the contract
        assert error["message"]
        assert "request_id" in error

    def test_fault_only_hits_the_targeted_job(
        self, serve_factory, monkeypatch
    ):
        monkeypatch.setenv(faults.ENV_VAR, "simulate@gzip:kill:*")
        handle = serve_factory(batch_window_s=0.01)
        good = handle.submit(
            quick_payload(benchmark="mcf", seed=34), timeout=180
        )
        assert good.events[-1]["ok"] is True

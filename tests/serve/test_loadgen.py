"""Loadgen determinism and the BENCH_serve.json schema contract."""

import json

import pytest

from repro.benchtrack import flatten_metrics, metric_direction
from repro.serve.loadgen import (
    build_requests,
    build_schedule,
    percentile,
    summarize,
    write_bench,
)


class TestScheduleDeterminism:
    def test_same_seed_reproduces_the_schedule(self):
        for pattern in ("constant", "poisson", "burst"):
            a = build_schedule(pattern, rate=25.0, count=40, seed=7)
            b = build_schedule(pattern, rate=25.0, count=40, seed=7)
            assert a == b, pattern

    def test_different_seed_changes_poisson_arrivals(self):
        a = build_schedule("poisson", rate=25.0, count=40, seed=7)
        b = build_schedule("poisson", rate=25.0, count=40, seed=8)
        assert a != b

    def test_constant_spacing_is_exact(self):
        schedule = build_schedule("constant", rate=10.0, count=5, seed=0)
        assert schedule == (0.0, 0.1, 0.2, 0.3, 0.4)

    def test_burst_groups_arrive_together(self):
        schedule = build_schedule(
            "burst", rate=20.0, count=8, seed=0, burst_size=4
        )
        assert schedule[0] == schedule[1] == schedule[2] == schedule[3]
        assert schedule[4] == schedule[5] == schedule[6] == schedule[7]
        # groups spaced so the long-run rate still averages `rate`
        assert schedule[4] - schedule[0] == pytest.approx(4 / 20.0)

    def test_schedules_are_sorted(self):
        for pattern in ("constant", "poisson", "burst"):
            schedule = build_schedule(pattern, rate=50.0, count=30, seed=3)
            assert list(schedule) == sorted(schedule)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_schedule("thundering-herd", rate=1.0, count=1)
        with pytest.raises(ValueError):
            build_schedule("constant", rate=0.0, count=1)
        with pytest.raises(ValueError):
            build_schedule("constant", rate=1.0, count=0)


class TestRequestDeterminism:
    def test_same_seed_reproduces_the_request_sequence(self):
        a = build_requests(12, seed=5)
        b = build_requests(12, seed=5)
        assert a == b

    def test_different_seed_changes_the_sequence(self):
        assert build_requests(12, seed=5) != build_requests(12, seed=6)

    def test_benchmarks_cycle_through_the_mix(self):
        payloads = build_requests(8, seed=0, benchmarks=("gzip", "mcf"))
        names = [p["benchmark"] for p in payloads]
        assert set(names) == {"gzip", "mcf"}
        assert names[:2] == names[2:4] == names[4:6]

    def test_payloads_are_valid_protocol_requests(self):
        from repro.serve.protocol import parse_request

        for payload in build_requests(6, seed=1):
            request = parse_request(payload)
            assert request.source == "workload"


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_empty_and_single(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 99) == 3.0


def _fake_run(cached: int = 4, total: int = 8) -> dict:
    records = [
        {
            "status": 200,
            "ok": True,
            "cached": i < cached,
            "coalesced": False,
            "latency_s": 0.01 * (i + 1),
        }
        for i in range(total)
    ]
    return {
        "pattern": "burst",
        "rate": 50.0,
        "count": total,
        "seed": 0,
        "records": records,
        "wall_s": 0.5,
        "stats_before": {"submitted": 0, "cache_fastpath": 0,
                         "dispatched_jobs": 0, "coalesced": 0,
                         "batches": 0},
        "stats_after": {"submitted": total, "cache_fastpath": cached,
                        "dispatched_jobs": total - cached, "coalesced": 0,
                        "batches": 2},
    }


class TestBenchDocument:
    def test_summary_values(self):
        doc = summarize(_fake_run(), quick=True)
        summary = doc["loadgen"]
        assert doc["quick"] is True
        assert summary["requests"] == 8
        assert summary["accepted"] == 8
        assert summary["requests_per_s"] == pytest.approx(16.0)
        assert summary["cache_hit_ratio"] == pytest.approx(0.5)
        assert summary["latency_p50_s"] == pytest.approx(0.04)
        assert summary["latency_p99_s"] == pytest.approx(0.08)
        assert doc["server"]["dispatched_jobs"] == 4
        assert doc["server"]["cache_fastpath"] == 4

    def test_schema_has_the_gating_leaves(self):
        # benchtrack-style structure check: the committed baseline and
        # every fresh run must share these flattened numeric leaves,
        # with the direction the leaf name encodes
        doc = summarize(_fake_run())
        flat = flatten_metrics(doc)
        assert metric_direction("loadgen.requests_per_s") == "higher"
        assert metric_direction("loadgen.latency_p50_s") == "lower"
        assert metric_direction("loadgen.latency_p99_s") == "lower"
        for leaf in (
            "loadgen.requests_per_s",
            "loadgen.latency_p50_s",
            "loadgen.latency_p99_s",
            "loadgen.cache_hit_ratio",
            "loadgen.requests",
            "loadgen.accepted",
            "loadgen.wall_seconds",
            "server.dispatched_jobs",
            "server.cache_fastpath",
            "server.coalesced",
            "server.batches",
        ):
            assert leaf in flat, leaf

    def test_counts_do_not_gate(self):
        # informational leaves must never fail a bench-compare run
        for name in ("loadgen.requests", "loadgen.accepted",
                     "loadgen.seed", "server.cache_fastpath",
                     "loadgen.cache_hit_ratio"):
            assert metric_direction(name) == "info", name

    def test_write_bench_round_trips(self, tmp_path):
        doc = summarize(_fake_run(), quick=True)
        path = tmp_path / "BENCH_serve.json"
        write_bench(doc, str(path))
        assert json.loads(path.read_text()) == doc

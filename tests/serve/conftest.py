"""Fixtures for the service test battery.

No async test framework is available (and none is needed): the server
runs a real event loop on a daemon thread via ``asyncio.run``, and test
code talks to it over real sockets with the package's own HTTP client,
each call wrapped in its own short-lived ``asyncio.run``.  Every server
binds port 0 — the OS hands out the port, the fixture reads it off the
server object, and nothing in this battery ever touches a fixed port.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve import ServeConfig, ServeServer
from repro.serve.loadgen import http_request


class ServerHandle:
    """A live server on its own event-loop thread, plus a sync client."""

    def __init__(self) -> None:
        self.server: ServeServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self.error: BaseException | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self, config: ServeConfig, timeout: float = 30.0):
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self._amain(config)),
            name="serve-under-test",
            daemon=True,
        )
        self.thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server failed to start")
        if self.error is not None:
            raise self.error
        return self

    async def _amain(self, config: ServeConfig) -> None:
        try:
            self.loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.server = await ServeServer(config).start()
        except BaseException as exc:  # surface startup failures to the test
            self.error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    def drain(self, timeout: float = 60.0) -> None:
        """Run the server's graceful drain from the test thread."""
        fut = asyncio.run_coroutine_threadsafe(self.server.drain(), self.loop)
        fut.result(timeout)

    def stop(self, timeout: float = 60.0) -> None:
        if self.loop is not None and self._stop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        if self.thread is not None:
            self.thread.join(timeout)

    # -- client ----------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def call(
        self,
        method: str,
        path: str,
        body=None,
        headers=None,
        timeout: float = 60.0,
    ):
        return asyncio.run(
            http_request(
                self.host, self.port, method, path, body, headers, timeout
            )
        )

    def submit(self, payload: dict, headers=None, timeout: float = 60.0):
        return self.call(
            "POST", "/v1/characterize", payload, headers, timeout
        )

    def stats(self) -> dict:
        return self.call("GET", "/stats").json()


@pytest.fixture
def serve_factory(tmp_path):
    """Start servers with per-test config; all are stopped at teardown."""
    handles: list[ServerHandle] = []
    counter = [0]

    def start(**kwargs) -> ServerHandle:
        counter[0] += 1
        kwargs.setdefault("port", 0)
        kwargs.setdefault("cache_dir", str(tmp_path / f"cache{counter[0]}"))
        kwargs.setdefault("batch_window_s", 0.01)
        handle = ServerHandle().start(ServeConfig(**kwargs))
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


#: A small, fast request: 1024 simulated cycles, no warmup, window 64.
#: window/impedance are shared by every test payload so the whole
#: battery calibrates one estimator (the memo key is network x window).
def quick_payload(benchmark: str = "gzip", seed: int = 1, **extra) -> dict:
    payload = {
        "benchmark": benchmark,
        "cycles": 1024,
        "warmup_cycles": 0,
        "window": 64,
        "seed": seed,
    }
    payload.update(extra)
    return payload

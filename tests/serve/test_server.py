"""End-to-end service tests over real sockets.

One live server per scenario (port 0 always), talking the real wire
protocol through the package's own HTTP client.  Requests are tiny
(1024 cycles, window 64) and every payload shares the same
network x window pair, so the process calibrates one estimator for the
whole battery.
"""

import threading
import time

import numpy as np

from repro.store import TraceStore

from .conftest import quick_payload


class TestBindAndIntrospection:
    def test_port_zero_binds_ephemeral(self, serve_factory):
        handle = serve_factory()
        assert handle.port != 0
        assert handle.host == "127.0.0.1"

    def test_healthz(self, serve_factory):
        handle = serve_factory()
        doc = handle.call("GET", "/healthz").json()
        assert doc["status"] == "ok"
        assert doc["queue_depth"] == 0
        assert doc["protocol"] == 1

    def test_stats_shape(self, serve_factory):
        stats = serve_factory().stats()
        for key in ("requests", "ok", "errors", "submitted", "coalesced",
                    "cache_fastpath", "dispatched_jobs", "batches",
                    "queue_depth", "draining"):
            assert key in stats

    def test_metrics_endpoint(self, serve_factory):
        response = serve_factory().call("GET", "/metrics")
        assert response.status == 200
        assert "text/plain" in response.headers["content-type"]

    def test_unknown_route_404(self, serve_factory):
        response = serve_factory().call("GET", "/nope")
        assert response.status == 404


class TestCharacterizeRoundTrip:
    def test_streaming_event_order(self, serve_factory):
        handle = serve_factory()
        response = handle.submit(quick_payload(seed=11))
        assert response.status == 200
        events = response.events
        types = [e["type"] for e in events]
        # accepted first, done last, result strictly before done
        assert types[0] == "accepted"
        assert types[-1] == "done"
        assert types.index("result") == len(types) - 2
        # progress states arrive in causal order
        states = [e["state"] for e in events if e["type"] == "status"]
        assert states.index("queued") < states.index("dispatched")
        # one request_id threads through every event
        rid = events[0]["request_id"]
        assert all(e["request_id"] == rid for e in events)
        result = events[-2]
        assert result["benchmark"] == "gzip"
        assert result["ok"] is True
        assert 0.0 <= result["estimated"] <= 1.0
        assert 0.0 <= result["observed"] <= 1.0

    def test_accepted_event_carries_digest_and_trace_id(
        self, serve_factory
    ):
        handle = serve_factory()
        accepted = handle.submit(quick_payload(seed=12)).events[0]
        assert len(accepted["digest"]) == 64
        assert accepted["protocol"] == 1

    def test_cache_hit_fast_path_zero_dispatches(self, serve_factory):
        handle = serve_factory()
        payload = quick_payload(seed=13)
        first = handle.submit(payload)
        assert first.events[-1]["ok"]
        before = handle.stats()
        second = handle.submit(payload)
        after = handle.stats()
        events = second.events
        states = [e.get("state") for e in events if e["type"] == "status"]
        assert states == ["cached"]  # never queued, never dispatched
        result = next(e for e in events if e["type"] == "result")
        assert result["cache_hit"] is True
        # the server-side proof: zero new jobs reached the pipeline
        assert after["dispatched_jobs"] == before["dispatched_jobs"]
        assert after["batches"] == before["batches"]
        assert (
            after["cache_fastpath"] == before["cache_fastpath"] + 1
        )

    def test_concurrent_identical_requests_coalesce(self, serve_factory):
        handle = serve_factory(batch_window_s=0.05)
        payload = quick_payload(benchmark="mcf", seed=14)
        before = handle.stats()
        results = [None] * 3

        def fire(i):
            results[i] = handle.submit(payload)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        after = handle.stats()
        for response in results:
            assert response.status == 200
            assert response.events[-1]["ok"]
        assert after["dispatched_jobs"] == before["dispatched_jobs"] + 1
        assert after["coalesced"] - before["coalesced"] == 2

    def test_inline_trace_upload(self, serve_factory):
        handle = serve_factory()
        rng = np.random.default_rng(5)
        samples = [float(v) for v in rng.normal(40.0, 8.0, 512)]
        response = handle.submit(
            {"trace": {"samples": samples, "label": "probe"},
             "window": 64}
        )
        assert response.status == 200
        events = response.events
        assert events[-1]["ok"]
        result = events[-2]
        assert result["stages"] == ["load_trace", "voltage",
                                    "characterize"]
        # byte-identical re-upload lands on the same spec digest
        again = handle.submit(
            {"trace": {"samples": samples, "label": "probe"},
             "window": 64}
        )
        assert again.events[0]["digest"] == events[0]["digest"]

    def test_by_reference_request(self, serve_factory, tmp_path):
        store_dir = tmp_path / "corpus"
        store = TraceStore(store_dir, mode="a")
        rng = np.random.default_rng(6)
        record = store.ingest(rng.normal(40.0, 8.0, 256), "gzip")
        handle = serve_factory(store_dir=str(store_dir))
        response = handle.submit(
            {"trace_id": record.trace_id, "window": 64}
        )
        assert response.status == 200
        assert response.events[-1]["ok"]
        missing = handle.submit({"trace_id": "tr-missing", "window": 64})
        assert missing.status == 400
        assert "not found" in missing.json()["error"]


class TestRejections:
    def test_bad_json_body_400(self, serve_factory):
        handle = serve_factory()
        response = handle.call(
            "POST", "/v1/characterize", b"{not json", timeout=30
        )
        assert response.status == 400
        assert "bad JSON" in response.json()["error"]

    def test_malformed_request_400(self, serve_factory):
        handle = serve_factory()
        response = handle.submit({"benchmark": "not-a-benchmark"})
        assert response.status == 400
        assert "unknown benchmark" in response.json()["error"]

    def test_quota_exhaustion_429(self, serve_factory):
        # one token, refilling at one per hour: the second request
        # from the same client must bounce with Retry-After
        handle = serve_factory(quota_rate=1 / 3600.0, quota_burst=1)
        payload = quick_payload(seed=15, client="greedy")
        assert handle.submit(payload).status == 200
        denied = handle.submit(payload)
        assert denied.status == 429
        doc = denied.json()
        assert doc["retry_after_s"] > 0
        assert int(denied.headers["retry-after"]) >= 1
        # a different client has its own untouched bucket
        other = handle.submit(quick_payload(seed=15, client="patient"))
        assert other.status == 200

    def test_admission_backpressure_503(self, serve_factory):
        handle = serve_factory(max_pending=1, batch_window_s=0.01)
        gate = threading.Event()
        inner = handle.server.coalescer.runner

        def slow_runner(specs, progress):
            assert gate.wait(60)
            return inner(specs, progress)

        handle.server.coalescer.runner = slow_runner
        first = {}

        def fire():
            first["response"] = handle.submit(quick_payload(seed=16))

        thread = threading.Thread(target=fire)
        thread.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if handle.stats()["queue_depth"] >= 1:
                    break
                time.sleep(0.02)
            rejected = handle.submit(
                quick_payload(benchmark="art", seed=17)
            )
            assert rejected.status == 503
            doc = rejected.json()
            assert "queue" in doc["error"]
            assert doc["retry_after_s"] > 0
        finally:
            gate.set()
            thread.join(120)
        assert first["response"].events[-1]["ok"]

    def test_draining_rejects_new_requests_503(self, serve_factory):
        handle = serve_factory()
        # flip the admission flag alone (a full drain also closes the
        # listener; the 503 path is what is under test here)
        handle.server._draining = True
        try:
            response = handle.submit(quick_payload(seed=18))
            assert response.status == 503
            assert response.json()["error"] == "draining"
        finally:
            handle.server._draining = False

    def test_rejected_requests_are_counted(self, serve_factory):
        handle = serve_factory()
        handle.submit({"benchmark": "nope"})
        assert handle.stats()["rejected_400"] == 1

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "gzip"])
        assert args.benchmark == "gzip"
        assert args.cycles == 16384

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "doom"])

    def test_control_options(self):
        args = build_parser().parse_args(
            ["control", "mgrid", "--scheme", "damping", "--impedance", "200"]
        )
        assert args.scheme == "damping"
        assert args.impedance == 200.0

    def test_characterize_threshold(self):
        args = build_parser().parse_args(
            ["characterize", "gcc", "--threshold", "0.96"]
        )
        assert args.threshold == 0.96


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "apsi" in out
        assert "SPECint2000" in out and "SPECfp2000" in out

    def test_simulate_output(self, capsys):
        assert main(["simulate", "gzip", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "current" in out

    def test_characterize_output(self, capsys):
        assert main(["characterize", "vpr", "--cycles", "8192"]) == 0
        out = capsys.readouterr().out
        assert "estimated % cycles" in out
        assert "level 5" in out

    def test_control_output(self, capsys):
        assert main(
            ["control", "vpr", "--cycles", "3000", "--scheme", "wavelet"]
        ) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "faults" in out

    def test_control_damping_scheme(self, capsys):
        assert main(
            ["control", "vpr", "--cycles", "3000", "--scheme", "damping"]
        ) == 0
        assert "damping control" in capsys.readouterr().out


class TestExtendedCommands:
    def test_phases_output(self, capsys):
        from repro.cli import main

        assert main(["phases", "applu", "--cycles", "16384"]) == 0
        out = capsys.readouterr().out
        assert "wavelet-signature phases" in out
        assert "phase 0" in out

    def test_breakdown_output(self, capsys):
        from repro.cli import main

        assert main(["breakdown", "gzip", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "per-unit current" in out
        assert "clock" in out

    def test_sizing_output(self, capsys):
        from repro.cli import main

        assert main(["sizing", "gzip", "--cycles", "8192"]) == 0
        out = capsys.readouterr().out
        assert "max tolerable target impedance" in out

    def test_sizing_parser_accepts_many(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sizing", "gzip", "mcf", "mgrid"])
        assert args.benchmarks == ["gzip", "mcf", "mgrid"]


class TestPipelineParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["pipeline", "run"])
        assert args.pipeline_command == "run"
        assert args.jobs == 1
        assert args.cache_dir == ".repro-cache"
        assert args.suite is None and args.benchmarks is None

    def test_run_suite_and_jobs(self):
        args = build_parser().parse_args(
            ["pipeline", "run", "--suite", "spec2000", "--jobs", "4"]
        )
        assert args.suite == "spec2000"
        assert args.jobs == 4

    def test_status_and_clear(self):
        assert build_parser().parse_args(
            ["pipeline", "status"]
        ).pipeline_command == "status"
        assert build_parser().parse_args(
            ["pipeline", "clear"]
        ).pipeline_command == "clear"

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pipeline"])

    def test_characterize_jobs_flag(self):
        args = build_parser().parse_args(
            ["characterize", "gcc", "vpr", "--jobs", "2"]
        )
        assert args.benchmarks == ["gcc", "vpr"]
        assert args.jobs == 2


class TestPipelineCommands:
    def test_run_reports_timings_hits_and_rms(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = [
            "pipeline", "run", "--benchmarks", "vpr", "gzip",
            "--cycles", "4096", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "simulate" in first and "[miss]" in first
        assert "figure9 rms error" in first
        assert "0 cache hits / 6 misses" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[hit ]" in second
        assert "6 cache hits / 0 misses" in second
        # identical figure9 output between fresh and cached runs
        def rms(out):
            return [ln for ln in out.splitlines() if "rms error" in ln][0]

        assert rms(first) == rms(second)

    def test_run_no_cache(self, capsys):
        assert main([
            "pipeline", "run", "--benchmarks", "vpr",
            "--cycles", "4096", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache disabled" in out

    def test_status_and_clear(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        main([
            "pipeline", "run", "--benchmarks", "vpr",
            "--cycles", "4096", "--cache-dir", cache,
        ])
        capsys.readouterr()
        assert main(["pipeline", "status", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries         : 3" in out
        assert main(["pipeline", "clear", "--cache-dir", cache]) == 0
        assert "removed 3" in capsys.readouterr().out

    def test_characterize_multiple_benchmarks(self, capsys):
        assert main([
            "characterize", "vpr", "gzip", "--cycles", "4096",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 benchmarks at 150% impedance" in out
        assert "est %" in out
        assert "stage runs" in out

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import (
    EXIT_INTERNAL,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    build_parser,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "gzip"])
        assert args.benchmark == "gzip"
        assert args.cycles == 16384

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "doom"])

    def test_control_options(self):
        args = build_parser().parse_args(
            ["control", "mgrid", "--scheme", "damping", "--impedance", "200"]
        )
        assert args.scheme == "damping"
        assert args.impedance == 200.0

    def test_characterize_threshold(self):
        args = build_parser().parse_args(
            ["characterize", "gcc", "--threshold", "0.96"]
        )
        assert args.threshold == 0.96


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "apsi" in out
        assert "SPECint2000" in out and "SPECfp2000" in out

    def test_simulate_output(self, capsys):
        assert main(["simulate", "gzip", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "current" in out

    def test_characterize_output(self, capsys):
        assert main(["characterize", "vpr", "--cycles", "8192"]) == 0
        out = capsys.readouterr().out
        assert "estimated % cycles" in out
        assert "level 5" in out

    def test_control_output(self, capsys):
        assert main(
            ["control", "vpr", "--cycles", "3000", "--scheme", "wavelet"]
        ) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "faults" in out

    def test_control_damping_scheme(self, capsys):
        assert main(
            ["control", "vpr", "--cycles", "3000", "--scheme", "damping"]
        ) == 0
        assert "damping control" in capsys.readouterr().out


class TestExtendedCommands:
    def test_phases_output(self, capsys):
        from repro.cli import main

        assert main(["phases", "applu", "--cycles", "16384"]) == 0
        out = capsys.readouterr().out
        assert "wavelet-signature phases" in out
        assert "phase 0" in out

    def test_breakdown_output(self, capsys):
        from repro.cli import main

        assert main(["breakdown", "gzip", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "per-unit current" in out
        assert "clock" in out

    def test_sizing_output(self, capsys):
        from repro.cli import main

        assert main(["sizing", "gzip", "--cycles", "8192"]) == 0
        out = capsys.readouterr().out
        assert "max tolerable target impedance" in out

    def test_sizing_parser_accepts_many(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sizing", "gzip", "mcf", "mgrid"])
        assert args.benchmarks == ["gzip", "mcf", "mgrid"]


class TestPipelineParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["pipeline", "run"])
        assert args.pipeline_command == "run"
        assert args.jobs == 1
        assert args.cache_dir == ".repro-cache"
        assert args.suite is None and args.benchmarks is None

    def test_run_suite_and_jobs(self):
        args = build_parser().parse_args(
            ["pipeline", "run", "--suite", "spec2000", "--jobs", "4"]
        )
        assert args.suite == "spec2000"
        assert args.jobs == 4

    def test_status_and_clear(self):
        assert build_parser().parse_args(
            ["pipeline", "status"]
        ).pipeline_command == "status"
        assert build_parser().parse_args(
            ["pipeline", "clear"]
        ).pipeline_command == "clear"

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pipeline"])

    def test_characterize_jobs_flag(self):
        args = build_parser().parse_args(
            ["characterize", "gcc", "vpr", "--jobs", "2"]
        )
        assert args.benchmarks == ["gcc", "vpr"]
        assert args.jobs == 2


class TestPipelineCommands:
    def test_run_reports_timings_hits_and_rms(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = [
            "pipeline", "run", "--benchmarks", "vpr", "gzip",
            "--cycles", "4096", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "simulate" in first and "[miss]" in first
        assert "figure9 rms error" in first
        assert "0 cache hits / 6 misses" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[hit ]" in second
        assert "6 cache hits / 0 misses" in second
        # identical figure9 output between fresh and cached runs
        def rms(out):
            return [ln for ln in out.splitlines() if "rms error" in ln][0]

        assert rms(first) == rms(second)

    def test_run_no_cache(self, capsys):
        assert main([
            "pipeline", "run", "--benchmarks", "vpr",
            "--cycles", "4096", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache disabled" in out

    def test_status_and_clear(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        main([
            "pipeline", "run", "--benchmarks", "vpr",
            "--cycles", "4096", "--cache-dir", cache,
        ])
        capsys.readouterr()
        assert main(["pipeline", "status", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries         : 3" in out
        assert main(["pipeline", "clear", "--cache-dir", cache]) == 0
        assert "removed 3" in capsys.readouterr().out

    def test_characterize_multiple_benchmarks(self, capsys):
        assert main([
            "characterize", "vpr", "gzip", "--cycles", "4096",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 benchmarks at 150% impedance" in out
        assert "est %" in out
        assert "stage runs" in out


class TestExitCodes:
    """The documented contract: 0 ok, 1 partial, 2 usage, 3 internal."""

    def test_fault_flags_parse(self):
        args = build_parser().parse_args([
            "pipeline", "run", "--resume", "--retries", "3",
            "--timeout", "20", "--backoff", "0.1",
            "--inject-faults", "ci-plan",
        ])
        assert args.resume is True
        assert args.retries == 3
        assert args.timeout == 20.0
        assert args.inject_faults == "ci-plan"

    def test_success_is_zero(self, capsys):
        assert main(["list"]) == EXIT_OK

    def test_conflicting_flags_are_usage_errors(self, capsys):
        code = main([
            "pipeline", "run", "--suite", "int", "--benchmarks", "gzip",
            "--no-cache",
        ])
        assert code == EXIT_USAGE
        assert "usage error" in capsys.readouterr().err

    def test_bad_fault_plan_is_usage_shaped(self, capsys):
        # parse_plan raises SpecError, surfaced without a traceback
        code = main([
            "pipeline", "run", "--benchmarks", "gzip", "--no-cache",
            "--inject-faults", "simulate:explode",
        ])
        assert code == EXIT_PARTIAL
        err = capsys.readouterr().err
        assert "SpecError" in err
        assert "Traceback" not in err

    def test_resume_without_cache_is_usage_error(self, capsys):
        code = main([
            "pipeline", "run", "--benchmarks", "gzip", "--no-cache",
            "--resume",
        ])
        assert code == EXIT_USAGE

    def test_failing_batch_is_partial_with_report(
        self, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        code = main([
            "pipeline", "run", "--benchmarks", "gzip", "--no-cache",
            "--cycles", "2048", "--retries", "0", "--backoff", "0.02",
            "--inject-faults", "simulate@gzip:raise:*",
        ])
        assert code == EXIT_PARTIAL
        out = capsys.readouterr().out
        assert "1 of 1 jobs failed" in out
        assert "kind=exception" in out
        assert "Traceback" not in out

    def test_injected_fault_retried_to_success(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        code = main([
            "pipeline", "run", "--benchmarks", "gzip", "--no-cache",
            "--cycles", "2048", "--retries", "2", "--backoff", "0.02",
            "--inject-faults", "simulate@gzip:raise:1",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "1 retries" in out
        assert "(attempt 2)" in out

    def test_internal_errors_print_traceback(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_cmd_list", lambda: 1 / 0)
        assert main(["list"]) == EXIT_INTERNAL
        assert "Traceback" in capsys.readouterr().err


class TestStoreCommands:
    """The `repro store` group and the store-fed pipeline/bench paths."""

    def test_store_parser_defaults(self):
        args = build_parser().parse_args(["store", "ingest", "gzip"])
        assert args.store_command == "ingest"
        assert args.store == ".trace-store"
        assert args.cycles == 32768
        args = build_parser().parse_args(["store", "gc", "--store", "x"])
        assert args.store == "x"

    def test_store_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_bench_store_flag(self):
        args = build_parser().parse_args(["bench", "--store", "--quick"])
        assert args.store is True and args.quick is True

    def test_pipeline_run_store_flag(self):
        args = build_parser().parse_args(
            ["pipeline", "run", "--store", "corpus"]
        )
        assert args.store == "corpus"

    def test_ingest_ls_verify_gc_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "corpus")
        code = main([
            "store", "ingest", "gzip", "mcf",
            "--store", store, "--cycles", "2048",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "gzip" in out and "2 traces" in out

        assert main(["store", "ls", "--store", store]) == EXIT_OK
        out = capsys.readouterr().out
        assert "simulate" in out and "mcf" in out

        assert main(["store", "verify", "--store", store]) == EXIT_OK
        assert "intact" in capsys.readouterr().out

        assert main(["store", "gc", "--store", store]) == EXIT_OK
        assert "reclaimed" in capsys.readouterr().out

    def test_ingest_from_file(self, capsys, tmp_path):
        import numpy as np

        trace_path = tmp_path / "probe.txt"
        trace_path.write_text(
            "".join(f"{v}\n" for v in np.linspace(10, 20, 256))
        )
        code = main([
            "store", "ingest", "--from-file", str(trace_path),
            "--label", "probe", "--store", str(tmp_path / "corpus"),
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "probe" in out and "256 samples" in out

    def test_ingest_without_input_is_usage_error(self, capsys, tmp_path):
        code = main(["store", "ingest", "--store", str(tmp_path / "c")])
        assert code == EXIT_USAGE

    def test_verify_reports_corruption_as_partial(self, capsys, tmp_path):
        from repro.store import TraceStore

        store_dir = tmp_path / "corpus"
        store = TraceStore(store_dir, mode="a")
        record = store.ingest(
            40.0 + 0.0 * __import__("numpy").arange(64.0), "gzip"
        )
        path = store.chunk_path(record.chunk)
        blob = bytearray(path.read_bytes())
        blob[record.offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        code = main(["store", "verify", "--store", str(store_dir)])
        assert code == EXIT_PARTIAL
        assert "corrupt" in capsys.readouterr().out

    def test_pipeline_run_from_store(self, capsys, tmp_path):
        store = str(tmp_path / "corpus")
        assert main([
            "store", "ingest", "gzip",
            "--store", store, "--cycles", "4096",
        ]) == EXIT_OK
        capsys.readouterr()
        code = main([
            "pipeline", "run", "--store", store, "--no-cache",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "load_trace" in out
        assert "figure9 rms error" in out

    def test_store_with_suite_is_usage_error(self, capsys):
        code = main([
            "pipeline", "run", "--store", "x", "--suite", "int",
            "--no-cache",
        ])
        assert code == EXIT_USAGE

    def test_missing_store_is_partial_not_traceback(self, capsys, tmp_path):
        code = main([
            "pipeline", "run", "--store", str(tmp_path / "nope"),
            "--no-cache",
        ])
        assert code == EXIT_PARTIAL
        err = capsys.readouterr().err
        assert "SpecError" in err and "Traceback" not in err

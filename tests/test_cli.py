"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "gzip"])
        assert args.benchmark == "gzip"
        assert args.cycles == 16384

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "doom"])

    def test_control_options(self):
        args = build_parser().parse_args(
            ["control", "mgrid", "--scheme", "damping", "--impedance", "200"]
        )
        assert args.scheme == "damping"
        assert args.impedance == 200.0

    def test_characterize_threshold(self):
        args = build_parser().parse_args(
            ["characterize", "gcc", "--threshold", "0.96"]
        )
        assert args.threshold == 0.96


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "apsi" in out
        assert "SPECint2000" in out and "SPECfp2000" in out

    def test_simulate_output(self, capsys):
        assert main(["simulate", "gzip", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "current" in out

    def test_characterize_output(self, capsys):
        assert main(["characterize", "vpr", "--cycles", "8192"]) == 0
        out = capsys.readouterr().out
        assert "estimated % cycles" in out
        assert "level 5" in out

    def test_control_output(self, capsys):
        assert main(
            ["control", "vpr", "--cycles", "3000", "--scheme", "wavelet"]
        ) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "faults" in out

    def test_control_damping_scheme(self, capsys):
        assert main(
            ["control", "vpr", "--cycles", "3000", "--scheme", "damping"]
        ) == 0
        assert "damping control" in capsys.readouterr().out


class TestExtendedCommands:
    def test_phases_output(self, capsys):
        from repro.cli import main

        assert main(["phases", "applu", "--cycles", "16384"]) == 0
        out = capsys.readouterr().out
        assert "wavelet-signature phases" in out
        assert "phase 0" in out

    def test_breakdown_output(self, capsys):
        from repro.cli import main

        assert main(["breakdown", "gzip", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "per-unit current" in out
        assert "clock" in out

    def test_sizing_output(self, capsys):
        from repro.cli import main

        assert main(["sizing", "gzip", "--cycles", "8192"]) == 0
        out = capsys.readouterr().out
        assert "max tolerable target impedance" in out

    def test_sizing_parser_accepts_many(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sizing", "gzip", "mcf", "mgrid"])
        assert args.benchmarks == ["gzip", "mcf", "mgrid"]

"""TraceStore round-trips, integrity checking and compaction."""

import json

import numpy as np
import pytest

from repro.errors import SpecError, UsageError
from repro.store import DTYPES, TraceStore, content_hash


def trace(n: int, dtype="float64", seed=0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (40.0 + rng.normal(0.0, 5.0, n)).astype(dtype)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", sorted(DTYPES))
    @pytest.mark.parametrize("n", [0, 1, 7, 256, 10_001])
    def test_ingest_attach_identity(self, tmp_path, dtype, n):
        store = TraceStore(tmp_path / "s", mode="a")
        data = trace(n, dtype)
        record = store.ingest(data, "gzip")
        got = store.attach(record)
        assert got.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(got, data)

    def test_attach_is_read_only(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        record = store.ingest(trace(64), "gzip")
        view = store.attach(record)
        with pytest.raises((ValueError, TypeError)):
            view[0] = 1.0

    def test_attach_slices(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        data = trace(100)
        record = store.ingest(data, "gzip")
        np.testing.assert_array_equal(store.attach(record, 10, 20), data[10:20])
        np.testing.assert_array_equal(store.attach(record, 90), data[90:])
        assert store.attach(record, 50, 50).size == 0

    def test_dtype_conversion_on_ingest(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        data = trace(32, "float64")
        record = store.ingest(data, "gzip", dtype="float32")
        assert record.dtype == "float32"
        np.testing.assert_allclose(
            store.attach(record), data.astype(np.float32)
        )

    def test_reader_sees_traces_ingested_after_open(self, tmp_path):
        writer = TraceStore(tmp_path / "s", mode="a")
        writer.ingest(trace(16, seed=1), "gzip")
        reader = TraceStore(tmp_path / "s")
        record = writer.ingest(trace(16, seed=2), "mcf")
        got = reader.get(record.trace_id)  # re-reads the index on miss
        np.testing.assert_array_equal(
            reader.attach(got), trace(16, seed=2)
        )


class TestIngestRules:
    def test_idempotent(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        a = store.ingest(trace(64), "gzip")
        b = store.ingest(trace(64), "gzip")
        assert a.trace_id == b.trace_id
        assert len(store.records()) == 1

    def test_same_samples_different_dtype_are_distinct(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        a = store.ingest(trace(64), "gzip", dtype="float64")
        b = store.ingest(trace(64), "gzip", dtype="float32")
        assert a.trace_id != b.trace_id
        assert a.sha256 != b.sha256  # the hash is dtype-tagged

    def test_rejects_non_finite(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        bad = trace(16)
        bad[3] = np.nan
        with pytest.raises(SpecError, match="finite"):
            store.ingest(bad, "gzip")

    def test_rejects_2d(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        with pytest.raises(SpecError, match="1-D"):
            store.ingest(np.ones((4, 4)), "gzip")

    def test_read_only_mode_rejects_ingest(self, tmp_path):
        TraceStore(tmp_path / "s", mode="a").ingest(trace(8), "gzip")
        reader = TraceStore(tmp_path / "s")
        with pytest.raises(UsageError, match="read-only"):
            reader.ingest(trace(8), "mcf")

    def test_opening_non_store_directory_fails(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(SpecError, match="manifest"):
            TraceStore(tmp_path / "junk")

    def test_chunks_roll_at_chunk_bytes(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a", chunk_bytes=1024)
        records = [
            store.ingest(trace(64, seed=i), f"b{i}") for i in range(5)
        ]
        assert len({r.chunk for r in records}) > 1
        for i, r in enumerate(records):
            np.testing.assert_array_equal(
                store.attach(r), trace(64, seed=i)
            )


class TestVerify:
    def test_intact_store_has_no_problems(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        store.ingest(trace(128), "gzip")
        assert store.verify() == []

    def test_flipped_chunk_byte_is_reported_corrupt(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        record = store.ingest(trace(128), "gzip")
        path = store.chunk_path(record.chunk)
        blob = bytearray(path.read_bytes())
        blob[record.offset + 5] ^= 0xFF
        path.write_bytes(bytes(blob))
        fresh = TraceStore(tmp_path / "s")  # un-memoized mappings
        problems = fresh.verify()
        assert [p["problem"] for p in problems] == ["corrupt"]
        assert problems[0]["trace_id"] == record.trace_id

    def test_truncated_chunk_is_reported(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        record = store.ingest(trace(128), "gzip")
        path = store.chunk_path(record.chunk)
        path.write_bytes(path.read_bytes()[: record.nbytes // 2])
        problems = TraceStore(tmp_path / "s").verify()
        assert any(p["problem"] == "truncated" for p in problems)

    def test_torn_index_tail_is_tolerated_and_reported(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        record = store.ingest(trace(64), "gzip")
        with open(store.index_path, "a") as fh:
            fh.write('{"trace_id": "half-written')  # crashed mid-append
        fresh = TraceStore(tmp_path / "s")
        assert [r.trace_id for r in fresh.records()] == [record.trace_id]
        assert any(
            p["problem"] == "torn-index-line" for p in fresh.verify()
        )


class TestRemoveAndGc:
    def test_remove_hides_then_gc_reclaims(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        keep = store.ingest(trace(4096, seed=1), "gzip")
        drop = store.ingest(trace(4096, seed=2), "mcf")
        store.remove(drop.trace_id)
        assert [r.trace_id for r in store.records()] == [keep.trace_id]
        stats = store.stats()
        assert stats["reclaimable_bytes"] >= drop.nbytes
        result = store.gc()
        assert result["live"] == 1
        assert result["reclaimed_bytes"] >= drop.nbytes
        fresh = TraceStore(tmp_path / "s")
        np.testing.assert_array_equal(
            fresh.attach(keep.trace_id), trace(4096, seed=1)
        )
        assert fresh.verify() == []
        assert fresh.stats()["reclaimable_bytes"] == 0

    def test_gc_of_clean_store_is_a_noop(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        store.ingest(trace(256), "gzip")
        assert store.gc()["reclaimed_bytes"] == 0


class TestRecordFormat:
    def test_index_is_json_lines(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        store.ingest(trace(16), "gzip")
        lines = store.index_path.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_content_hash_is_dtype_tagged(self):
        data = trace(32)
        assert content_hash(data) != content_hash(data.astype(np.float32))

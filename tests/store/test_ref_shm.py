"""TraceRef identity/round-trips and shared-memory publication."""

import json

import numpy as np
import pytest

from repro.errors import SpecError
from repro.store import TraceRef, TraceStore, publish_shared


def trace(n: int, dtype="float64", seed=0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (40.0 + rng.normal(0.0, 5.0, n)).astype(dtype)


GEN = (
    ("benchmark", "gzip"),
    ("cycles", 64),
    ("seed", None),
    ("warmup_cycles", 0),
)


def make_ref(**overrides) -> TraceRef:
    fields = {
        "store": "/nowhere",
        "trace_id": "ab" * 8,
        "dtype": "float64",
        "cycles": 64,
        "sha256": "cd" * 32,
        "generator": GEN,
    }
    fields.update(overrides)
    return TraceRef(**fields)


class TestRefIdentity:
    def test_generator_full_ref_hashes_like_simulate(self):
        identity = make_ref().identity()
        assert identity["kind"] == "simulate"
        assert identity["dtype"] == "float64"
        assert identity["benchmark"] == "gzip"

    def test_sliced_ref_falls_back_to_content(self):
        identity = make_ref(start=8).identity()
        assert identity["kind"] == "content"
        assert identity["slice"] == [8, 64]

    def test_no_generator_is_content(self):
        assert make_ref(generator=None).identity()["kind"] == "content"

    def test_dtype_changes_content_identity(self):
        a = make_ref(generator=None).identity()
        b = make_ref(generator=None, dtype="float32").identity()
        assert a != b

    def test_bad_dtype_rejected(self):
        with pytest.raises(SpecError, match="dtype"):
            make_ref(dtype="float16")

    def test_partial_generator_rejected(self):
        with pytest.raises(SpecError, match="generator"):
            make_ref(generator=(("benchmark", "gzip"),))


class TestRefSpecRoundTrip:
    def test_to_spec_from_spec(self):
        ref = make_ref(start=4, stop=32)
        assert TraceRef.from_spec(ref.to_spec()) == ref

    def test_survives_json_canonicalization(self):
        # canonical specs serialize tuples as lists; refs must rebuild
        ref = make_ref()
        as_json = json.loads(json.dumps([list(p) for p in ref.to_spec()]))
        rebuilt = TraceRef.from_spec(
            tuple((k, tuple(tuple(g) for g in v) if k == "generator" and v
                   else v) for k, v in as_json)
        )
        assert rebuilt.identity() == ref.identity()

    def test_bounds_normalize(self):
        assert make_ref(start=-8).bounds == (56, 64)
        assert make_ref(stop=1000).bounds == (0, 64)
        assert make_ref(start=50, stop=10).samples == 0


class TestStoreRefResolution:
    def test_resolve_round_trips(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        data = trace(128)
        record = store.ingest(data, "gzip")
        ref = store.ref(record, 16, 48)
        np.testing.assert_array_equal(ref.resolve(), data[16:48])

    def test_resolve_detects_rewritten_store(self, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        record = store.ingest(trace(64), "gzip")
        ref = store.ref(record)
        stale = TraceRef(
            store=ref.store,
            trace_id=ref.trace_id,
            dtype=ref.dtype,
            cycles=ref.cycles,
            sha256="00" * 32,
            generator=ref.generator,
        )
        with pytest.raises(SpecError, match="rewritten"):
            stale.resolve()

    def test_missing_trace_is_spec_error(self, tmp_path):
        TraceStore(tmp_path / "s", mode="a").ingest(trace(8), "gzip")
        ref = make_ref(store=str(tmp_path / "s"), generator=None)
        with pytest.raises(SpecError, match="no trace"):
            ref.resolve()


class TestSharedMemory:
    def test_publish_attach_round_trip(self):
        data = trace(512, "float32")
        with publish_shared("gzip", data) as shared:
            ref = shared.ref()
            assert ref.store.startswith("shm://")
            got = ref.resolve()
            assert got.dtype == np.float32
            np.testing.assert_array_equal(got, data)
            np.testing.assert_array_equal(
                shared.ref(100, 200).resolve(), data[100:200]
            )

    def test_attached_view_is_read_only(self):
        with publish_shared("gzip", trace(32)) as shared:
            view = shared.ref().resolve()
            with pytest.raises((ValueError, TypeError)):
                view[0] = 0.0

    def test_unlinked_segment_is_spec_error(self):
        shared = publish_shared("gzip", trace(16))
        ref_fields = dict(shared.ref().to_spec())
        shared.close()
        shared.unlink()
        missing = TraceRef(
            **{**ref_fields, "store": "shm://repro-trace-gone-gone"}
        )
        with pytest.raises(SpecError, match="does not exist"):
            missing.resolve()

"""`repro bench --store` output structure (quick mode)."""

import json

import pytest

from repro.store.bench import format_store_results, run_store_bench


@pytest.mark.slow
def test_quick_bench_structure(tmp_path):
    output = tmp_path / "BENCH_store.json"
    results = run_store_bench(
        quick=True, output=output, store_dir=tmp_path / "benches"
    )
    on_disk = json.loads(output.read_text())
    assert on_disk == results
    assert results["quick"] is True
    for section in ("ingest", "scan"):
        assert results[section]["bytes"] > 0
        assert results[section]["gb_per_s"] > 0
    e2e = results["end_to_end"]
    assert e2e["store_traces_per_s"] > 0
    assert e2e["baseline_traces_per_s"] > 0
    # the acceptance gate: reading the corpus must never lose to
    # regenerating it
    assert e2e["speedup"] >= 1.0
    text = format_store_results(results)
    assert "GB/s" in text and "speedup" in text

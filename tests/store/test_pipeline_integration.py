"""Store ↔ pipeline integration: cache dedupe, zero-copy workers.

The tentpole guarantees under test:

* a stored trace with recorded generator params addresses the *same*
  downstream cache entries as the equivalent ``simulate`` job (v3
  dtype-explicit trace identity);
* a store-backed batch run on the supervised pool ships **zero** trace
  bytes through the result pickle channel
  (``pipeline_trace_pickle_bytes_total``), while the attach counters
  prove the samples arrived by mmap.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import calibrated_supply
from repro.pipeline import (
    CACHE_SCHEMA_VERSION,
    STORE_STAGES,
    JobSpec,
    build_characterization_jobs,
    build_store_jobs,
    predictions_from,
    run_batch,
    stage_cache_keys,
    trace_identity,
)
from repro.store import TraceStore
from repro.uarch import simulate_benchmark

CYCLES = 4096


@pytest.fixture(scope="module")
def net150():
    return calibrated_supply(150)


@pytest.fixture()
def seeded_store(tmp_path):
    """A store holding gzip+mcf traces with generator params recorded."""
    store = TraceStore(tmp_path / "store", mode="a")
    for name in ("gzip", "mcf"):
        result = simulate_benchmark(name, cycles=CYCLES)
        store.ingest(
            result.current,
            name,
            generator={
                "benchmark": name,
                "cycles": CYCLES,
                "seed": None,
                "warmup_cycles": 4096,
            },
        )
    return store


class TestSchemaV3:
    def test_schema_version_is_4(self):
        # v3 made trace identity dtype-explicit; v4 added the scenario
        # stage to the trace namespace.  Regressing a bump would alias
        # entries written by an older schema.
        assert CACHE_SCHEMA_VERSION == 4

    def test_simulate_identity_names_dtype(self, net150):
        spec = build_characterization_jobs(("gzip",), net150,
                                           cycles=CYCLES)[0]
        identity = trace_identity(spec)
        assert identity["kind"] == "simulate"
        assert identity["dtype"] == "float64"

    def test_dtype_changes_every_trace_stage_key(self, net150, tmp_path):
        store = TraceStore(tmp_path / "s", mode="a")
        data = 40.0 + np.linspace(0, 1, CYCLES)
        r64 = store.ingest(data, "gzip", dtype="float64")
        r32 = store.ingest(data, "gzip", dtype="float32")
        k64 = stage_cache_keys(
            JobSpec.make("gzip", network=net150, cycles=CYCLES,
                         stages=STORE_STAGES, trace=store.ref(r64))
        )
        k32 = stage_cache_keys(
            JobSpec.make("gzip", network=net150, cycles=CYCLES,
                         stages=STORE_STAGES, trace=store.ref(r32))
        )
        assert all(k64[s] != k32[s] for s in STORE_STAGES)


class TestCacheDedupe:
    def test_store_and_simulate_jobs_share_keys(self, net150, seeded_store):
        store_specs = build_store_jobs(seeded_store, net150)
        sim_specs = build_characterization_jobs(
            ("gzip", "mcf"), net150, cycles=CYCLES
        )
        for store_spec, sim_spec in zip(store_specs, sim_specs):
            ks, kb = stage_cache_keys(store_spec), stage_cache_keys(sim_spec)
            assert ks["load_trace"] == kb["simulate"]
            assert ks["voltage"] == kb["voltage"]
            assert ks["characterize"] == kb["characterize"]

    def test_sliced_ref_never_aliases_the_full_trace(
        self, net150, seeded_store
    ):
        record = next(
            r for r in seeded_store.records() if r.benchmark == "gzip"
        )
        whole = JobSpec.make("gzip", network=net150, cycles=CYCLES,
                             stages=STORE_STAGES,
                             trace=seeded_store.ref(record))
        sliced = JobSpec.make("gzip", network=net150, cycles=CYCLES,
                              stages=STORE_STAGES,
                              trace=seeded_store.ref(record, 0, CYCLES // 2))
        assert (
            stage_cache_keys(whole)["load_trace"]
            != stage_cache_keys(sliced)["load_trace"]
        )

    def test_simulate_batch_then_store_batch_hits_cache(
        self, net150, seeded_store, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        sim_specs = build_characterization_jobs(
            ("gzip", "mcf"), net150, cycles=CYCLES
        )
        first = run_batch(sim_specs, cache_dir=cache_dir)
        assert first.cache_hits == 0
        store_batch = run_batch(
            build_store_jobs(seeded_store, net150), cache_dir=cache_dir
        )
        # voltage + characterize were computed by the simulate batch;
        # only load_trace (a different artifact kind) runs fresh.
        hits = {
            name: hit
            for o in store_batch.outcomes
            for name, hit in o.cache_hits.items()
        }
        assert hits["voltage"] and hits["characterize"]
        assert predictions_from(store_batch).keys() == {"gzip", "mcf"}

    def test_store_batch_matches_simulate_batch_numerically(
        self, net150, seeded_store
    ):
        sim = predictions_from(
            run_batch(build_characterization_jobs(
                ("gzip", "mcf"), net150, cycles=CYCLES
            ))
        )
        stored = predictions_from(
            run_batch(build_store_jobs(seeded_store, net150))
        )
        for name in ("gzip", "mcf"):
            assert stored[name].estimated == sim[name].estimated
            assert stored[name].observed == sim[name].observed


@pytest.mark.slow
class TestZeroCopyPool:
    """Supervised-pool runs: prove no trace bytes cross the pickle
    channel when jobs carry refs, and that they do when jobs simulate."""

    def _counter(self, name) -> float:
        value = obs.registry().counter(name).value()
        return 0.0 if value is None else float(value)

    def test_store_jobs_ship_zero_trace_pickle_bytes(
        self, net150, seeded_store
    ):
        obs.enable("summary")
        obs.registry().reset()  # isolate from earlier enabled tests
        try:
            batch = run_batch(
                build_store_jobs(seeded_store, net150), jobs=2
            )
            assert batch.ok
            pickled = self._counter("pipeline_trace_pickle_bytes_total")
            attached = self._counter("store_attached_bytes_total")
            assert pickled == 0
            assert attached >= 2 * CYCLES * 8  # both traces, via mmap
        finally:
            obs.disable()

    def test_simulate_jobs_do_pickle_their_traces(self, net150):
        obs.enable("summary")
        obs.registry().reset()
        try:
            batch = run_batch(
                build_characterization_jobs(
                    ("gzip", "mcf"), net150, cycles=CYCLES
                ),
                jobs=2,
            )
            assert batch.ok
            assert (
                self._counter("pipeline_trace_pickle_bytes_total")
                >= 2 * CYCLES * 8
            )
        finally:
            obs.disable()

    def test_concurrent_pool_readers_see_identical_samples(
        self, net150, seeded_store
    ):
        serial = predictions_from(
            run_batch(build_store_jobs(seeded_store, net150), jobs=1)
        )
        pooled = predictions_from(
            run_batch(build_store_jobs(seeded_store, net150), jobs=2)
        )
        assert serial == pooled


class TestSpecPlumbing:
    def test_spec_without_ref_rejects_load_trace(self, net150):
        spec = JobSpec.make("gzip", network=net150, cycles=CYCLES,
                            stages=STORE_STAGES)
        with pytest.raises(Exception, match="no trace ref"):
            run_batch([spec])

    def test_build_store_jobs_filters(self, net150, seeded_store):
        only = build_store_jobs(seeded_store, net150,
                                benchmarks=("gzip",))
        assert [s.benchmark for s in only] == ["gzip"]
        record = seeded_store.records()[0]
        by_id = build_store_jobs(
            seeded_store, net150, trace_ids=(record.trace_id,)
        )
        assert len(by_id) == 1

    def test_empty_selection_is_an_error(self, net150, seeded_store):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="no matching traces"):
            build_store_jobs(seeded_store, net150, benchmarks=("swim",))

    def test_spec_canonical_includes_trace(self, net150, seeded_store):
        spec = build_store_jobs(seeded_store, net150)[0]
        canonical = spec.canonical()
        assert canonical["trace"] is not None
        # digest must be stable across spec rebuilds from the same ref
        rebuilt = JobSpec.make(
            spec.benchmark,
            network=net150,
            cycles=spec.cycles,
            warmup_cycles=spec.warmup_cycles,
            stages=spec.stages,
            trace=spec.trace,
        )
        assert rebuilt.digest() == spec.digest()

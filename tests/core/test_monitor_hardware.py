"""Unit tests for the online monitor (§5.1) and Figure-14 hardware model."""

import numpy as np
import pytest

from repro.core import (
    FullConvolutionMonitor,
    ShiftRegisterMonitor,
    WaveletVoltageMonitor,
    calibrated_supply,
    coefficient_error_curve,
)
from repro.power import StreamingVoltageModel


@pytest.fixture(scope="module")
def net():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(11)
    n = np.arange(3000)
    return (
        35
        + 10 * np.sign(np.sin(2 * np.pi * n / 30))
        + 4 * rng.normal(size=3000)
    )


class TestWaveletVoltageMonitor:
    def test_full_terms_match_exact_convolution(self, net, trace):
        mon = WaveletVoltageMonitor(net, terms=None)
        ref = FullConvolutionMonitor(net, taps=mon.taps)
        est = [mon.observe(x) for x in trace[:400]]
        exact = [ref.observe(x) for x in trace[:400]]
        np.testing.assert_allclose(est, exact, atol=1e-12)

    def test_truncated_error_bounded(self, net, trace):
        mon = WaveletVoltageMonitor(net, terms=13)
        assert mon.max_error_on(trace) < 0.06

    def test_error_monotone_in_terms(self, net, trace):
        errs = [
            WaveletVoltageMonitor(net, terms=k).max_error_on(trace)
            for k in (1, 5, 13, 40, 512)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 1e-10

    def test_estimate_trace_matches_streaming(self, net, trace):
        mon = WaveletVoltageMonitor(net, terms=13)
        batch = mon.estimate_trace(trace[:300])
        mon.reset()
        stream = np.array([mon.observe(x) for x in trace[:300]])
        np.testing.assert_allclose(batch, stream, atol=1e-9)

    def test_reset(self, net):
        mon = WaveletVoltageMonitor(net, terms=8)
        mon.observe(100.0)
        mon.reset()
        assert mon.observe(0.0) == pytest.approx(net.vdd)

    def test_error_curve_scales_with_impedance(self, net, trace):
        k = [5, 13]
        e150 = coefficient_error_curve(net, trace, k)
        e300 = coefficient_error_curve(net.with_scale(3.0), trace, k)
        for kk in k:
            assert e300[kk] == pytest.approx(2.0 * e150[kk], rel=1e-6)

    def test_compressed_kernel_length(self, net):
        mon = WaveletVoltageMonitor(net, terms=13)
        assert len(mon.compressed_kernel) == mon.taps
        assert mon.taps & (mon.taps - 1) == 0


class TestShiftRegisterHardware:
    @pytest.mark.parametrize("terms", [1, 4, 13, 32])
    def test_matches_reference_monitor(self, net, trace, terms):
        mon = WaveletVoltageMonitor(net, terms=terms)
        hw = ShiftRegisterMonitor(net, terms=terms)
        a = np.array([mon.observe(x) for x in trace[:700]])
        b = np.array([hw.observe(x) for x in trace[:700]])
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_cheaper_than_full_convolution(self, net):
        hw = ShiftRegisterMonitor(net, terms=20)
        full = FullConvolutionMonitor(net)
        assert hw.adds_per_cycle < full.ops_per_cycle / 5

    def test_adds_scale_with_terms(self, net):
        small = ShiftRegisterMonitor(net, terms=5)
        large = ShiftRegisterMonitor(net, terms=20)
        assert small.adds_per_cycle < large.adds_per_cycle

    def test_reset(self, net):
        hw = ShiftRegisterMonitor(net, terms=8)
        hw.observe(90.0)
        hw.reset()
        assert hw.observe(0.0) == pytest.approx(net.vdd)

    def test_term_geometry(self, net):
        hw = ShiftRegisterMonitor(net, terms=16)
        for term in hw.terms:
            assert term.end <= hw.window
            assert term.span & (term.span - 1) == 0

    def test_register_term_validation(self):
        from repro.core import HaarTermRegister

        with pytest.raises(ValueError):
            HaarTermRegister(start=0, span=3, weight=1.0, is_detail=True)
        with pytest.raises(ValueError):
            HaarTermRegister(start=0, span=1, weight=1.0, is_detail=True)


class TestBaselineMonitors:
    def test_full_convolution_tracks_truth(self, net, trace):
        mon = FullConvolutionMonitor(net)
        truth = StreamingVoltageModel(net)
        est = np.array([mon.observe(x) for x in trace])
        exact = truth.run(trace)
        # FIR truncation of the IIR tail is the only difference.
        np.testing.assert_allclose(est[600:], exact[600:], atol=1e-3)

    def test_analog_sensor_is_delayed_truth(self, net, trace):
        from repro.core import AnalogVoltageSensor

        sensor = AnalogVoltageSensor(net, delay=3)
        truth = StreamingVoltageModel(net)
        sensed = np.array([sensor.observe(x) for x in trace[:200]])
        exact = truth.run(trace[:200])
        np.testing.assert_allclose(sensed[3:], exact[:-3], atol=1e-12)

    def test_analog_zero_delay(self, net, trace):
        from repro.core import AnalogVoltageSensor

        sensor = AnalogVoltageSensor(net, delay=0)
        truth = StreamingVoltageModel(net)
        sensed = np.array([sensor.observe(x) for x in trace[:100]])
        np.testing.assert_allclose(sensed, truth.run(trace[:100]), atol=1e-12)

    def test_analog_reset(self, net):
        from repro.core import AnalogVoltageSensor

        sensor = AnalogVoltageSensor(net, delay=2)
        sensor.observe(50.0)
        sensor.reset()
        assert sensor.observe(0.0) == pytest.approx(net.vdd)

    def test_analog_delay_validation(self, net):
        from repro.core import AnalogVoltageSensor

        with pytest.raises(ValueError):
            AnalogVoltageSensor(net, delay=-1)

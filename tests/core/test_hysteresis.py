"""Unit tests for the hysteresis controller variant."""

import pytest

from repro.core import (
    HysteresisController,
    ThresholdController,
    WaveletVoltageMonitor,
    calibrated_supply,
    run_control_experiment,
)


@pytest.fixture(scope="module")
def net():
    return calibrated_supply(150)


class _ScriptedMonitor:
    """Feeds a pre-scripted voltage estimate sequence to the controller."""

    def __init__(self, values):
        self._values = iter(values)

    def observe(self, current):
        return next(self._values)


class TestLatching:
    def test_stays_engaged_until_release(self, net):
        # Dip below control (0.96), hover between control and release,
        # then recover: plain control would disengage mid-hover.
        seq = [1.00, 0.955, 0.962, 0.963, 0.967, 1.00]
        ctl = HysteresisController(
            _ScriptedMonitor(seq), net, margin=0.010, release=0.006
        )
        stalls = [ctl.update(0.0)[0] for _ in seq]
        assert stalls == [False, True, True, True, False, False]

    def test_plain_controller_chatter_for_comparison(self, net):
        seq = [1.00, 0.955, 0.962, 0.955, 0.962, 1.00]
        plain = ThresholdController(_ScriptedMonitor(seq), net, margin=0.010)
        hyst = HysteresisController(
            _ScriptedMonitor(seq), net, margin=0.010, release=0.006
        )
        plain_stalls = [plain.update(0.0)[0] for _ in seq]
        hyst_stalls = [hyst.update(0.0)[0] for _ in seq]
        # Plain flips with every sample; hysteresis holds through.
        assert plain_stalls == [False, True, False, True, False, False]
        assert hyst_stalls == [False, True, True, True, True, False]

    def test_boost_side_latches_too(self, net):
        seq = [1.00, 1.045, 1.038, 1.036, 1.030, 1.00]
        ctl = HysteresisController(
            _ScriptedMonitor(seq), net, margin=0.010, release=0.006
        )
        boosts = [ctl.update(0.0)[1] > 0 for _ in seq]
        assert boosts == [False, True, True, True, False, False]

    def test_transition_count(self, net):
        seq = [1.00, 0.955, 0.963, 0.968, 0.955, 0.968]
        ctl = HysteresisController(
            _ScriptedMonitor(seq), net, margin=0.010, release=0.006
        )
        for _ in seq:
            ctl.update(0.0)
        assert ctl.transitions == 4  # engage, release, engage, release

    def test_validation(self, net):
        mon = WaveletVoltageMonitor(net, terms=5)
        with pytest.raises(ValueError):
            HysteresisController(mon, net, margin=0.010, release=-0.001)
        with pytest.raises(ValueError):
            HysteresisController(mon, net, margin=0.045, release=0.02)


class TestClosedLoop:
    def test_suppresses_at_least_as_many_faults(self, net):
        plain = run_control_experiment(
            "galgel",
            net,
            lambda: ThresholdController(
                WaveletVoltageMonitor(net, 13), net, 0.012
            ),
            cycles=8192,
        )
        hyst = run_control_experiment(
            "galgel",
            net,
            lambda: HysteresisController(
                WaveletVoltageMonitor(net, 13), net, 0.012, release=0.006
            ),
            cycles=8192,
        )
        assert hyst.controlled_faults <= plain.controlled_faults
        assert hyst.slowdown < 0.05

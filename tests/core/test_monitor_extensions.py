"""Unit tests for monitor extensions: non-Haar bases and packet best-basis."""

import numpy as np
import pytest

from repro.core import (
    PacketVoltageMonitor,
    WaveletVoltageMonitor,
    calibrated_supply,
)
from repro.power import impulse_response


@pytest.fixture(scope="module")
def net():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(23)
    n = np.arange(2500)
    return 35 + 9 * np.sign(np.sin(2 * np.pi * n / 30)) + 3 * rng.normal(size=2500)


class TestAlternateBases:
    @pytest.mark.parametrize("wavelet", ["db2", "db3", "db4"])
    def test_full_terms_exact(self, net, trace, wavelet):
        mon = WaveletVoltageMonitor(net, terms=None, wavelet=wavelet)
        kernel = impulse_response(net, mon.taps)
        np.testing.assert_allclose(mon.compressed_kernel, kernel, atol=1e-10)

    @pytest.mark.parametrize("wavelet", ["db2", "db4"])
    def test_truncated_error_reasonable(self, net, trace, wavelet):
        mon = WaveletVoltageMonitor(net, terms=20, wavelet=wavelet)
        assert mon.max_error_on(trace) < 0.03

    def test_streaming_matches_batch(self, net, trace):
        mon = WaveletVoltageMonitor(net, terms=13, wavelet="db2")
        batch = mon.estimate_trace(trace[:300])
        mon.reset()
        stream = np.array([mon.observe(x) for x in trace[:300]])
        np.testing.assert_allclose(batch, stream, atol=1e-9)


class TestPacketMonitor:
    def test_full_terms_exact(self, net):
        mon = PacketVoltageMonitor(net, terms=None)
        kernel = impulse_response(net, mon.taps)
        np.testing.assert_allclose(mon.compressed_kernel, kernel, atol=1e-10)

    def test_error_trends_down(self, net, trace):
        errs = [
            PacketVoltageMonitor(net, terms=k).max_error_on(trace)
            for k in (2, 8, 32, 128)
        ]
        assert errs[-1] < errs[0]
        assert errs[-1] < 0.02

    def test_cover_is_disjoint_and_complete(self, net):
        mon = PacketVoltageMonitor(net, terms=10)
        covered = sum(len(c) for c in mon._cover.values())
        assert covered == mon.taps
        assert mon.total_terms == mon.taps

    def test_depth_limit(self, net):
        mon = PacketVoltageMonitor(net, terms=10, depth=4)
        assert all(node[0] <= 4 for node in mon._cover)

    def test_terms_validation(self, net):
        with pytest.raises(ValueError):
            PacketVoltageMonitor(net, terms=10**9)

    def test_zero_terms_estimates_vdd(self, net, trace):
        mon = PacketVoltageMonitor(net, terms=0)
        v = [mon.observe(x) for x in trace[:50]]
        np.testing.assert_allclose(v, net.vdd)

    def test_reset(self, net):
        mon = PacketVoltageMonitor(net, terms=8)
        mon.observe(80.0)
        mon.reset()
        assert mon.observe(0.0) == pytest.approx(net.vdd)


class TestRecommendedMargin:
    def test_margin_covers_monitor_error(self, net, trace):
        from repro.core import WaveletVoltageMonitor, recommended_margin

        margin = recommended_margin(net, 13, trace)
        error = WaveletVoltageMonitor(net, terms=13).max_error_on(trace)
        assert margin > error

    def test_margin_shrinks_with_terms(self, net, trace):
        from repro.core import recommended_margin

        loose = recommended_margin(net, 3, trace)
        tight = recommended_margin(net, 40, trace)
        assert tight < loose

    def test_safe_margin_eliminates_faults(self, net):
        from repro.core import (
            ThresholdController,
            WaveletVoltageMonitor,
            recommended_margin,
            run_control_experiment,
        )
        from repro.uarch import simulate_benchmark

        calib = simulate_benchmark("gcc", cycles=8192).current
        margin = recommended_margin(net, 13, calib)
        result = run_control_experiment(
            "galgel",
            net,
            lambda: ThresholdController(
                WaveletVoltageMonitor(net, terms=13), net, margin=margin
            ),
            cycles=8192,
        )
        assert result.baseline_faults > 50
        assert result.controlled_faults == 0
        assert result.slowdown < 0.08

    def test_validation(self, net, trace):
        from repro.core import recommended_margin

        import pytest as _pytest

        with _pytest.raises(ValueError):
            recommended_margin(net, 13, trace, sensor_delay_cycles=-1)
        with _pytest.raises(ValueError):
            recommended_margin(net, 13, trace, slack=-0.01)

"""Unit tests for the phase-aware controller."""

import pytest

from repro.core import (
    PhaseAwareController,
    ThresholdController,
    WaveletPhaseClassifier,
    WaveletVoltageMonitor,
    calibrated_supply,
    run_control_experiment,
)
from repro.core.characterization import WINDOW
from repro.uarch import simulate_benchmark


@pytest.fixture(scope="module")
def net():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def fitted(net):
    prof = simulate_benchmark("applu", cycles=32768)
    clf = WaveletPhaseClassifier(phases=3).fit(prof.current)
    summaries = clf.summarize(net)
    risky = {
        s.phase
        for s in summaries
        if (s.emergency_probability or 0.0) > 0.005
    }
    return clf, risky


class TestConstruction:
    def test_requires_fitted_classifier(self, net):
        with pytest.raises(ValueError):
            PhaseAwareController(
                WaveletVoltageMonitor(net, 13), net,
                WaveletPhaseClassifier(), {0},
            )

    def test_margin_ordering(self, net, fitted):
        clf, risky = fitted
        with pytest.raises(ValueError):
            PhaseAwareController(
                WaveletVoltageMonitor(net, 13), net, clf, risky,
                tight=0.005, loose=0.010,
            )

    def test_unknown_phase_rejected(self, net, fitted):
        clf, _ = fitted
        with pytest.raises(ValueError):
            PhaseAwareController(
                WaveletVoltageMonitor(net, 13), net, clf, {99},
            )


class TestBehaviour:
    def test_starts_armed(self, net, fitted):
        clf, risky = fitted
        ctl = PhaseAwareController(
            WaveletVoltageMonitor(net, 13), net, clf, risky
        )
        assert ctl.v_low_control == pytest.approx(net.v_min + 0.020)

    def test_reclassifies_every_window(self, net, fitted):
        clf, risky = fitted
        ctl = PhaseAwareController(
            WaveletVoltageMonitor(net, 13), net, clf, risky
        )
        for _ in range(3 * WINDOW):
            ctl.update(25.0)
        assert ctl.classifications == 3  # once per completed window

    def test_quiet_history_disarms(self, net, fitted):
        clf, risky = fitted
        ctl = PhaseAwareController(
            WaveletVoltageMonitor(net, 13), net, clf, risky
        )
        # A flat low-current history is the stall phase: not risky.
        for _ in range(2 * WINDOW):
            ctl.update(18.5)
        assert not ctl._armed
        assert ctl.armed_fraction < 1.0

    def test_intervention_counters_aggregate(self, net, fitted):
        clf, risky = fitted
        ctl = PhaseAwareController(
            WaveletVoltageMonitor(net, 13), net, clf, risky
        )
        for _ in range(100):
            ctl.update(60.0)  # heavy draw: will trip the low threshold
        assert ctl.stall_decisions + ctl.boost_decisions > 0


class TestClosedLoop:
    def test_matches_tight_suppression_with_fewer_interventions(
        self, net, fitted
    ):
        clf, risky = fitted

        def tight():
            return ThresholdController(
                WaveletVoltageMonitor(net, 13), net, margin=0.020
            )

        def aware():
            return PhaseAwareController(
                WaveletVoltageMonitor(net, 13), net, clf, risky,
                tight=0.020, loose=0.006,
            )

        r_tight = run_control_experiment("applu", net, tight, cycles=12288)
        r_aware = run_control_experiment("applu", net, aware, cycles=12288)
        # Same ballpark of protection...
        assert r_aware.controlled_faults <= r_tight.controlled_faults + 3
        # ...with no more (and typically fewer) interventions.
        assert (
            r_aware.stall_cycles + r_aware.boost_cycles
            <= r_tight.stall_cycles + r_tight.boost_cycles
        )
        assert r_aware.slowdown < 0.02

"""Unit tests for §4's calibration and offline characterization."""

import numpy as np
import pytest

from repro.core import (
    WINDOW,
    WaveletVoltageEstimator,
    calibrate_scale_factors,
    calibrated_supply,
    predict_trace,
)
from repro.power import simulate_voltage


@pytest.fixture(scope="module")
def net():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def factors(net):
    return calibrate_scale_factors(net)


class TestScaleFactors:
    def test_peak_at_resonant_scale(self, net, factors):
        # 100 MHz resonance at 3 GHz = a 30-cycle period: the scales whose
        # bands straddle it (levels 4-5) must dominate.
        assert factors.peak_level() in (4, 5)

    def test_factors_positive(self, factors):
        for lvl in factors.levels:
            assert factors.factor(lvl, 0.0) > 0.0

    def test_orders_of_magnitude_spread(self, factors):
        # §4.1: "voltage variance on different wavelet decomposition
        # levels often differs by orders of magnitude".
        vals = [factors.factor(lvl) for lvl in factors.levels]
        assert max(vals) > 50 * min(vals)

    def test_correlation_interpolation(self, factors):
        lvl = factors.peak_level()
        lo = factors.factor(lvl, -0.98)
        mid = factors.factor(lvl, 0.0)
        hi = factors.factor(lvl, 0.98)
        assert lo != mid or hi != mid  # correlation matters
        between = factors.factor(lvl, 0.2)
        assert min(mid, hi) <= between <= max(mid, hi)

    def test_unknown_level(self, factors):
        with pytest.raises(KeyError):
            factors.factor(99)

    def test_cache_returns_same_object(self, net):
        assert calibrate_scale_factors(net) is calibrate_scale_factors(net)

    def test_scales_linearly_with_impedance(self, net):
        f150 = calibrate_scale_factors(net)
        f300 = calibrate_scale_factors(net.with_scale(3.0))
        lvl = f150.peak_level()
        # Voltage variance goes as impedance squared (linear system).
        assert f300.factor(lvl) == pytest.approx(4.0 * f150.factor(lvl), rel=0.1)

    def test_validation(self, net):
        with pytest.raises(ValueError):
            calibrate_scale_factors(net, signal_length=1000)
        with pytest.raises(ValueError):
            calibrate_scale_factors(net, levels=20, signal_length=1024)


class TestWindowCharacterization:
    def test_window_size_enforced(self, net):
        est = WaveletVoltageEstimator(net)
        with pytest.raises(ValueError):
            est.characterize_window(np.zeros(128))

    def test_constant_window_predicts_ir_drop(self, net):
        est = WaveletVoltageEstimator(net)
        ch = est.characterize_window(np.full(WINDOW, 40.0))
        assert ch.voltage_model.variance == pytest.approx(0.0, abs=1e-12)
        expected = net.vdd - 40.0 * net.dc_resistance
        assert ch.voltage_model.mean == pytest.approx(expected)
        assert ch.prob_below(0.97) == 0.0

    def test_resonant_window_predicts_large_variance(self, net):
        n = np.arange(WINDOW)
        period = net.resonant_period_cycles
        resonant = 40 + 15 * np.sign(np.sin(2 * np.pi * n / period))
        offres = 40 + 15 * np.sign(np.sin(2 * np.pi * n / 4))
        est = WaveletVoltageEstimator(net)
        v_res = est.characterize_window(resonant).voltage_model.variance
        v_off = est.characterize_window(offres).voltage_model.variance
        assert v_res > 10 * v_off

    def test_variance_scales_quadratically_with_amplitude(self, net):
        rng = np.random.default_rng(0)
        w = rng.normal(0, 1, WINDOW)
        est = WaveletVoltageEstimator(net)
        v1 = est.characterize_window(40 + w).voltage_model.variance
        v2 = est.characterize_window(40 + 3 * w).voltage_model.variance
        assert v2 == pytest.approx(9 * v1, rel=1e-6)

    def test_level_truncation_close_to_full(self, net):
        # Figure 8: 4 of 8 levels loses at most a few percent.
        rng = np.random.default_rng(1)
        full = WaveletVoltageEstimator(net)
        top4 = WaveletVoltageEstimator(net, keep_levels=full.top_levels(4))
        w = 40 + 8 * rng.normal(size=WINDOW)
        vf = full.characterize_window(w).voltage_model.variance
        vt = top4.characterize_window(w).voltage_model.variance
        assert vt <= vf + 1e-12
        # White noise spreads variance across scales more evenly than
        # real current traces do; the Figure-8 bench checks the paper's
        # 0.1-1.6 % error claim on actual benchmark windows.
        assert vt >= 0.75 * vf

    def test_bad_keep_levels(self, net):
        with pytest.raises(ValueError):
            WaveletVoltageEstimator(net, keep_levels={0, 9})

    def test_bad_levels(self, net):
        with pytest.raises(ValueError):
            WaveletVoltageEstimator(net, levels=5)


class TestTracePrediction:
    def test_prediction_tracks_truth_on_synthetic_trace(self, net):
        rng = np.random.default_rng(2)
        # Gaussian current whose variance is felt at the resonance.
        n = 16384
        trace = 40 + 6 * rng.normal(size=n)
        p = predict_trace(net, trace, threshold=0.985)
        assert p.estimated == pytest.approx(p.observed, abs=0.05)

    def test_quiet_trace_predicts_nothing(self, net):
        trace = np.full(4096, 30.0)
        p = predict_trace(net, trace)
        assert p.estimated == pytest.approx(0.0, abs=1e-9)
        assert p.observed == pytest.approx(0.0, abs=1e-9)

    def test_short_trace_rejected(self, net):
        est = WaveletVoltageEstimator(net)
        with pytest.raises(ValueError):
            est.estimate_fraction_below(np.zeros(100), 0.97)

    def test_error_field(self, net):
        p = predict_trace(net, np.full(4096, 30.0))
        assert p.error == p.estimated - p.observed

    def test_estimate_voltage_variance_against_simulation(self, net):
        rng = np.random.default_rng(3)
        trace = 40 + 5 * rng.normal(size=8192)
        est = WaveletVoltageEstimator(net)
        predicted = est.estimate_voltage_variance(trace)
        v = simulate_voltage(net, trace)[2048:]
        assert predicted == pytest.approx(float(v.var()), rel=0.35)


class TestWindowSizeGeneralization:
    def test_window_must_be_power_of_two(self, net):
        with pytest.raises(ValueError):
            WaveletVoltageEstimator(net, window=200)
        with pytest.raises(ValueError):
            WaveletVoltageEstimator(net, window=2)

    def test_levels_follow_window(self, net):
        assert WaveletVoltageEstimator(net, window=128).levels == 7
        assert WaveletVoltageEstimator(net, window=1024).levels == 10

    def test_mismatched_levels_rejected(self, net):
        with pytest.raises(ValueError):
            WaveletVoltageEstimator(net, levels=8, window=512)

    def test_wide_window_estimates_agree_with_default(self, net):
        rng = np.random.default_rng(9)
        trace = 40 + 6 * rng.normal(size=16384)
        default = WaveletVoltageEstimator(net)
        wide = WaveletVoltageEstimator(net, window=1024)
        a = default.estimate_fraction_below(trace, 0.985)
        b = wide.estimate_fraction_below(trace, 0.985)
        assert a == pytest.approx(b, abs=0.02)

    def test_window_shape_enforced_per_instance(self, net):
        est = WaveletVoltageEstimator(net, window=128)
        with pytest.raises(ValueError):
            est.characterize_window(np.zeros(256))
        ch = est.characterize_window(np.full(128, 30.0))
        assert ch.voltage_model.variance == pytest.approx(0.0, abs=1e-12)

"""Unit tests for the wavelet-signature phase classifier."""

import numpy as np
import pytest

from repro.core import WINDOW, WaveletPhaseClassifier, calibrated_supply
from repro.uarch import simulate_benchmark


def two_phase_trace(windows_per_phase: int = 24, seed: int = 0) -> np.ndarray:
    """Alternating blocks: quiet DC-ish phase vs loud resonant phase."""
    rng = np.random.default_rng(seed)
    n = np.arange(WINDOW)
    blocks = []
    for k in range(2 * windows_per_phase):
        if k % 2 == 0:
            blocks.append(18 + 0.5 * rng.normal(size=WINDOW))
        else:
            blocks.append(
                40
                + 12 * np.sign(np.sin(2 * np.pi * n / 32))
                + 2 * rng.normal(size=WINDOW)
            )
    return np.concatenate(blocks)


class TestFit:
    def test_recovers_planted_phases(self):
        trace = two_phase_trace()
        clf = WaveletPhaseClassifier(phases=2).fit(trace)
        labels = clf.labels_
        # Phase ids are ordered by mean current: loud blocks (odd) -> 0.
        expected = np.array([1, 0] * 24)
        assert np.mean(labels == expected) > 0.95

    def test_deterministic(self):
        trace = two_phase_trace()
        a = WaveletPhaseClassifier(phases=2, seed=5).fit(trace).labels_
        b = WaveletPhaseClassifier(phases=2, seed=5).fit(trace).labels_
        np.testing.assert_array_equal(a, b)

    def test_phase_zero_is_hottest(self):
        trace = two_phase_trace()
        clf = WaveletPhaseClassifier(phases=2).fit(trace)
        summaries = clf.summarize()
        assert summaries[0].mean_current > summaries[1].mean_current

    def test_needs_enough_windows(self):
        with pytest.raises(ValueError):
            WaveletPhaseClassifier(phases=4).fit(np.zeros(2 * WINDOW))

    def test_validation(self):
        with pytest.raises(ValueError):
            WaveletPhaseClassifier(phases=0)
        with pytest.raises(ValueError):
            WaveletPhaseClassifier(levels=4)


class TestClassify:
    def test_classify_matches_fit_labels(self):
        trace = two_phase_trace()
        clf = WaveletPhaseClassifier(phases=2).fit(trace)
        windows = trace[: (len(trace) // WINDOW) * WINDOW].reshape(-1, WINDOW)
        agree = np.mean(
            [clf.classify(w) == l for w, l in zip(windows, clf.labels_)]
        )
        assert agree > 0.95

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            WaveletPhaseClassifier().classify(np.zeros(WINDOW))

    def test_window_shape_checked(self):
        clf = WaveletPhaseClassifier(phases=2).fit(two_phase_trace())
        with pytest.raises(ValueError):
            clf.classify(np.zeros(100))


class TestSummaries:
    def test_fractions_sum_to_one(self):
        clf = WaveletPhaseClassifier(phases=3).fit(two_phase_trace())
        total = sum(s.fraction for s in clf.summarize())
        assert total == pytest.approx(1.0)

    def test_emergency_probability_ordered_with_activity(self):
        net = calibrated_supply(150)
        clf = WaveletPhaseClassifier(phases=2).fit(two_phase_trace())
        hot, cold = clf.summarize(net)
        assert hot.emergency_probability > cold.emergency_probability

    def test_summarize_requires_fit(self):
        with pytest.raises(RuntimeError):
            WaveletPhaseClassifier().summarize()

    def test_on_real_benchmark(self):
        # applu's memory/compute alternation should yield phases with
        # clearly different mean currents (needs enough windows for the
        # clustering to see both phases).
        r = simulate_benchmark("applu", cycles=32768)
        clf = WaveletPhaseClassifier(phases=2).fit(r.current)
        s = clf.summarize()
        occupied = [p for p in s if p.fraction > 0.05]
        assert len(occupied) == 2
        assert occupied[0].mean_current > occupied[1].mean_current + 1.0

"""Unit tests for workload analysis (§4.2/4.3) and the shared setup."""

import numpy as np
import pytest

from repro.core import (
    benchmark_voltage_histogram,
    calibrated_supply,
    gaussianity_study,
    l2_miss_report,
    reference_network,
)
from repro.power import count_emergencies, simulate_voltage
from repro.uarch import simulate_benchmark
from repro.workloads import stressmark_stream


class TestCalibratedSupply:
    def test_stressmark_fills_band_at_100(self):
        net = calibrated_supply(100)
        from repro.uarch import Simulator

        result = Simulator().run(
            stressmark_stream(int(net.resonant_period_cycles // 2)),
            12288,
            name="stress",
        )
        # Replicate the calibration's settling convention: drop the
        # pipeline-fill prefix and then one kernel length of droop.
        settled = result.current[1024:]
        v = simulate_voltage(net, settled)[512:]
        # The binding excursion may be a droop or an overshoot; whichever
        # side binds must touch the band edge exactly, without crossing.
        worst = float(np.max(np.abs(v - net.vdd)))
        assert worst == pytest.approx(net.tolerance * net.vdd, abs=2e-3)
        assert count_emergencies(net, v) == 0

    def test_percent_scaling(self):
        n125 = calibrated_supply(125)
        n200 = calibrated_supply(200)
        assert n200.parameters.resistance == pytest.approx(
            n125.parameters.resistance * 200 / 125
        )

    def test_cache_shared_across_percents(self):
        a = calibrated_supply(125)
        b = calibrated_supply(150)
        assert a.peak_impedance == b.peak_impedance

    def test_reference_defaults(self):
        net = reference_network()
        assert net.vdd == 1.0
        assert net.clock_hz == 3.0e9


class TestGaussianityStudy:
    def test_window_sizes_covered(self):
        r = simulate_benchmark("gzip", cycles=16384)
        study = gaussianity_study(r, windows=(32, 64), samples_per_size=60)
        assert set(study.studies) == {32, 64}
        assert 0.0 <= study.acceptance_rate(64) <= 1.0

    def test_compute_bound_more_gaussian_than_membound(self):
        # §4.3 / Figure 12: high-L2-miss benchmarks are the least Gaussian.
        r_cpu = simulate_benchmark("gzip", cycles=16384)
        r_mem = simulate_benchmark("mcf", cycles=16384)
        g_cpu = gaussianity_study(r_cpu, windows=(64,), samples_per_size=120)
        g_mem = gaussianity_study(r_mem, windows=(64,), samples_per_size=120)
        assert g_cpu.acceptance_rate(64) > g_mem.acceptance_rate(64)

    def test_deterministic_given_seed(self):
        r = simulate_benchmark("gzip", cycles=16384)
        a = gaussianity_study(r, windows=(64,), samples_per_size=50, seed=3)
        b = gaussianity_study(r, windows=(64,), samples_per_size=50, seed=3)
        assert a.acceptance_rate(64) == b.acceptance_rate(64)


class TestVoltageHistograms:
    def test_membound_spikes_at_nominal(self):
        # Figure 11: high-L2-miss benchmarks pile mass at ~1.0 V.
        net = calibrated_supply(150)
        r_mem = simulate_benchmark("mcf", cycles=16384)
        r_cpu = simulate_benchmark("gzip", cycles=16384)
        h_mem = benchmark_voltage_histogram(net, r_mem)
        h_cpu = benchmark_voltage_histogram(net, r_cpu)
        assert h_mem.spike_ratio(1.0, 0.004) > 2 * h_cpu.spike_ratio(1.0, 0.004)

    def test_histogram_sums_to_100(self):
        net = calibrated_supply(150)
        r = simulate_benchmark("gzip", cycles=8192)
        h = benchmark_voltage_histogram(net, r)
        assert h.percent.sum() == pytest.approx(100.0)


class TestL2MissReport:
    def test_report_fields_consistent(self):
        net = calibrated_supply(150)
        rep = l2_miss_report(net, "swim", cycles=16384)
        assert rep.name == "swim"
        assert rep.l2_mpki > 1.0
        assert 0.0 <= rep.gaussian_rate <= 1.0
        assert rep.l2_outstanding_fraction > 0.3

    def test_groups_separate(self):
        net = calibrated_supply(150)
        low = l2_miss_report(net, "eon", cycles=16384)
        high = l2_miss_report(net, "art", cycles=16384)
        assert high.l2_mpki > 10 * max(low.l2_mpki, 0.01)
        assert high.spike_ratio > low.spike_ratio

"""Unit tests for the closed-loop controller and baseline schemes."""

import numpy as np
import pytest

from repro.core import (
    HysteresisController,
    PipelineDampingController,
    ThresholdController,
    WaveletVoltageMonitor,
    calibrated_supply,
    run_control_experiment,
)


@pytest.fixture(scope="module")
def net():
    return calibrated_supply(150)


class TestThresholdController:
    def test_stalls_on_low_estimate(self, net):
        class FakeMonitor:
            def observe(self, current):
                return 0.951  # just above the fault level, below control

        ctl = ThresholdController(FakeMonitor(), net, margin=0.010)
        stall, noops = ctl.update(50.0)
        assert stall and noops == 0
        assert ctl.stall_decisions == 1

    def test_boosts_on_high_estimate(self, net):
        class FakeMonitor:
            def observe(self, current):
                return 1.049

        ctl = ThresholdController(FakeMonitor(), net, margin=0.010, noop_rate=3)
        stall, noops = ctl.update(10.0)
        assert not stall and noops == 3
        assert ctl.boost_decisions == 1

    def test_idle_in_band(self, net):
        class FakeMonitor:
            def observe(self, current):
                return 1.0

        ctl = ThresholdController(FakeMonitor(), net)
        assert ctl.update(30.0) == (False, 0)
        assert ctl.engagement_rate == 0.0

    def test_margin_validation(self, net):
        mon = WaveletVoltageMonitor(net, terms=5)
        with pytest.raises(ValueError):
            ThresholdController(mon, net, margin=-0.01)
        with pytest.raises(ValueError):
            ThresholdController(mon, net, margin=0.2)  # no window left
        with pytest.raises(ValueError):
            ThresholdController(mon, net, noop_rate=-1)

    def test_control_points(self, net):
        ctl = ThresholdController(WaveletVoltageMonitor(net, 13), net, 0.010)
        assert ctl.v_low_control == pytest.approx(0.96)
        assert ctl.v_high_control == pytest.approx(1.04)


class TestPipelineDamping:
    def test_stalls_on_rising_current(self, net):
        ctl = PipelineDampingController(net, delta=5.0, window=4)
        for amps in (10, 10, 10, 10, 10):
            ctl.update(amps)
        stall, noops = ctl.update(40.0)
        assert stall

    def test_boosts_on_falling_current(self, net):
        ctl = PipelineDampingController(net, delta=5.0, window=4, noop_rate=2)
        for amps in (40, 40, 40, 40, 40):
            ctl.update(amps)
        stall, noops = ctl.update(10.0)
        assert not stall and noops == 2

    def test_quiet_for_small_slew(self, net):
        ctl = PipelineDampingController(net, delta=50.0, window=4)
        for amps in (10, 20, 15, 25, 18, 22):
            assert ctl.update(amps) == (False, 0)

    def test_validation(self, net):
        with pytest.raises(ValueError):
            PipelineDampingController(net, delta=0.0)
        with pytest.raises(ValueError):
            PipelineDampingController(net, delta=1.0, window=0)

    def test_false_positive_prone(self, net):
        # A slew that the supply tolerates (single step, no resonance)
        # still triggers damping: the scheme's defining weakness.
        ctl = PipelineDampingController(net, delta=8.0, window=4)
        trace = np.concatenate([np.full(20, 15.0), np.full(20, 35.0)])
        engaged = sum(ctl.update(x)[0] for x in trace)
        assert engaged > 0


class TestControlExperiment:
    def test_wavelet_control_reduces_faults_cheaply(self, net):
        result = run_control_experiment(
            "mgrid",
            net,
            lambda: ThresholdController(
                WaveletVoltageMonitor(net, terms=13), net, margin=0.012
            ),
            cycles=6000,
            warmup_cycles=2048,
        )
        assert result.baseline_faults > 0  # mgrid faults at 150% impedance
        assert result.controlled_faults < result.baseline_faults
        assert result.slowdown < 0.08
        assert result.instructions > 0

    def test_quiet_benchmark_untouched(self, net):
        result = run_control_experiment(
            "vpr",
            net,
            lambda: ThresholdController(
                WaveletVoltageMonitor(net, terms=13), net, margin=0.010
            ),
            cycles=4000,
            warmup_cycles=2048,
        )
        assert result.slowdown < 0.02

    def test_damping_slows_more_than_wavelet(self, net):
        wavelet = run_control_experiment(
            "mgrid",
            net,
            lambda: ThresholdController(
                WaveletVoltageMonitor(net, terms=13), net, margin=0.012
            ),
            cycles=5000,
            warmup_cycles=2048,
        )
        damping = run_control_experiment(
            "mgrid",
            net,
            lambda: PipelineDampingController(net, delta=6.0, window=8),
            cycles=5000,
            warmup_cycles=2048,
        )
        assert damping.slowdown > wavelet.slowdown

    def test_result_properties(self, net):
        result = run_control_experiment(
            "vpr",
            net,
            lambda: ThresholdController(
                WaveletVoltageMonitor(net, terms=8), net, margin=0.010
            ),
            cycles=3000,
            warmup_cycles=1024,
        )
        assert 0.0 <= result.false_positive_rate <= 1.0
        assert result.slowdown >= -0.05  # controlled run can't be much faster


class TestEngagementRateBeforeAnyUpdate:
    """A controller that never ran must report 0.0, not divide by zero."""

    def test_threshold(self, net):
        ctl = ThresholdController(WaveletVoltageMonitor(net, terms=8), net)
        assert ctl.engagement_rate == 0.0

    def test_hysteresis(self, net):
        ctl = HysteresisController(
            WaveletVoltageMonitor(net, terms=8), net
        )
        assert ctl.engagement_rate == 0.0

    def test_pipeline_damping(self, net):
        ctl = PipelineDampingController(net, delta=5.0, window=4)
        assert ctl.engagement_rate == 0.0

"""Smoke tests: the example scripts must stay runnable.

Runs the cheaper examples end-to-end in subprocesses (fresh interpreter,
like a user would) and checks for the expected headline output.  The
heavyweight examples (full control sweeps) are exercised indirectly by
the bench suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Figure 3 worked example" in out
        assert "Parseval" in out
        assert "Supply response" in out

    def test_external_trace(self):
        out = run_example("external_trace.py")
        assert "imported" in out
        assert "ground truth" in out

    def test_phase_analysis(self):
        out = run_example("phase_analysis.py", "applu", "2")
        assert "per-phase characterization" in out
        assert "phase 0" in out

    def test_ir_drop_map(self):
        out = run_example("ir_drop_map.py", "gzip")
        assert "spatial IR drop" in out
        assert "worst node" in out

    def test_batch_characterize(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = run_example("batch_characterize.py", "2", cache, "gzip", "mcf")
        assert "miss+miss+miss" in first
        assert "figure9 rms error" in first
        second = run_example("batch_characterize.py", "2", cache, "gzip", "mcf")
        assert "hit+hit+hit" in second
        rms = [ln for ln in first.splitlines() if "rms error" in ln]
        assert rms == [ln for ln in second.splitlines() if "rms error" in ln]

"""Unit tests for the programmatic experiments API (small-scale runs)."""

import pytest

from repro.core import calibrated_supply
from repro.experiments import (
    HIGH_L2_MISS,
    LOW_L2_MISS,
    PROBLEMATIC,
    QUIET,
    figure6,
    figure8,
    figure9,
    figure12,
    figure13,
    figure15,
    figures10_11,
    simulate_suite,
    table2,
)

SMALL = ("gzip", "mcf", "mgrid")


@pytest.fixture(scope="module")
def net150():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def traces():
    return simulate_suite(cycles=12288, names=SMALL)


class TestGroups:
    def test_groups_are_disjoint_where_expected(self):
        assert not set(PROBLEMATIC) & set(QUIET)
        assert not set(LOW_L2_MISS) & set(HIGH_L2_MISS)

    def test_groups_are_valid_benchmarks(self):
        from repro.workloads import SPEC2000

        for group in (PROBLEMATIC, QUIET, LOW_L2_MISS, HIGH_L2_MISS):
            assert set(group) <= set(SPEC2000)


class TestSimulateSuite:
    def test_subset(self, traces):
        assert set(traces) == set(SMALL)
        assert all(r.cycles == 12288 for r in traces.values())

    def test_uses_cache(self, traces):
        again = simulate_suite(cycles=12288, names=SMALL)
        assert again["gzip"] is traces["gzip"]


class TestFigureFunctions:
    def test_figure6_structure(self, traces):
        r = figure6(traces, windows=(32, 64), samples_per_size=30)
        assert set(r.rates) == {"int", "fp", "all"}
        assert all(0.0 <= v <= 1.0 for d in r.rates.values() for v in d.values())

    def test_figure8_structure(self, net150, traces):
        r = figure8(net150, traces)
        assert set(r.variance_error) == set(SMALL)
        assert all(len(k) == 4 for k in r.kept_levels.values())
        assert all(s >= 0 for s in r.estimate_shift.values())

    def test_figure9_metrics(self, net150, traces):
        r = figure9(net150, traces)
        assert 0.0 <= r.rms_error < 0.1
        assert -1.0 <= r.rank_correlation <= 1.0
        assert r.predictions["mgrid"].observed > r.predictions["mcf"].observed

    def test_figures10_11(self, net150, traces):
        r = figures10_11(net150, traces, names=("gzip", "mcf"))
        assert set(r.spike_ratios) == {"gzip", "mcf"}
        assert r.spike_ratios["mcf"] > r.spike_ratios["gzip"]

    def test_figure12(self, traces):
        r = figure12(traces, samples_per_size=40)
        assert r.rates["gzip"] > r.rates["mcf"]
        assert r.l2_mpki["mcf"] > r.l2_mpki["gzip"]

    def test_figure13(self, net150, traces):
        curves = figure13({150.0: net150}, traces["mgrid"].current[:3000],
                          term_counts=[2, 16])
        assert curves[150.0][16] <= curves[150.0][2]

    def test_figure15_mean(self, net150):
        r = figure15({150.0: net150}, names=("vpr",), cycles=3000)
        assert abs(r.mean_slowdown(150.0)) < 0.05

    def test_table2_rows(self, net150):
        rows = table2(net150, workloads=("mgrid",), cycles=4096)
        assert set(rows) == {"analog", "full_conv", "damping", "wavelet"}
        assert rows["wavelet"].ops_per_cycle < rows["full_conv"].ops_per_cycle
        assert rows["damping"].mean_slowdown > rows["wavelet"].mean_slowdown

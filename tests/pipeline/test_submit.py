"""``submit`` + ``BatchOptions``: the one execution entry point.

Covers option validation, the shorthand-vs-explicit retry policy, the
environment bridges (kernel backend and fault plan exported for pool
workers, restored after), and the ``run_batch`` deprecation shim.
"""

import os

import pytest

from repro import kernels
from repro.core import calibrated_supply
from repro.errors import SpecError
from repro.kernels import KernelConfig
from repro.pipeline import (
    BatchOptions,
    JobSpec,
    RetryPolicy,
    faults,
    run_batch,
    submit,
)


@pytest.fixture(scope="module")
def network():
    return calibrated_supply(150)


def _specs(network, names=("gzip", "mcf"), cycles=2048):
    return [
        JobSpec.make(name, network=network, cycles=cycles)
        for name in names
    ]


def test_options_defaults_are_inline_uncached():
    options = BatchOptions()
    assert options.jobs == 1
    assert options.cache_dir is None
    assert options.block == "auto"
    policy = options.retry_policy()
    assert policy.max_attempts == 1
    assert policy.timeout_s is None


def test_options_validation():
    with pytest.raises(SpecError, match="retries"):
        BatchOptions(retries=-1)
    with pytest.raises(SpecError, match="block"):
        BatchOptions(block="sometimes")


def test_shorthand_builds_policy_and_explicit_wins():
    options = BatchOptions(retries=2, timeout_s=9.0, backoff_s=0.5)
    policy = options.retry_policy()
    assert policy.max_attempts == 3
    assert policy.timeout_s == 9.0
    assert policy.backoff_s == 0.5
    explicit = RetryPolicy(max_attempts=7)
    assert (
        BatchOptions(retries=2, policy=explicit).retry_policy() is explicit
    )


def test_with_returns_modified_copy():
    base = BatchOptions(jobs=4)
    changed = base.with_(block="never")
    assert changed.jobs == 4 and changed.block == "never"
    assert base.block == "auto"  # frozen original untouched


def test_submit_runs_and_defaults(network, tmp_path):
    batch = submit(
        _specs(network), BatchOptions(cache_dir=str(tmp_path))
    )
    assert batch.ok and len(batch.outcomes) == 2
    assert submit(_specs(network)).ok  # options=None -> defaults


def test_submit_exports_and_restores_kernel_env(network, monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    seen = {}

    def probe(outcome):
        seen["env"] = os.environ.get(kernels.ENV_VAR)
        seen["resolved"] = kernels.resolve_backend()

    submit(
        _specs(network, names=("gzip",)),
        BatchOptions(kernels=KernelConfig(backend="reference")),
        progress=probe,
    )
    assert seen == {"env": "reference", "resolved": "reference"}
    assert kernels.ENV_VAR not in os.environ  # restored
    assert kernels.resolve_backend() == kernels.DEFAULT_BACKEND


def test_submit_exports_and_restores_fault_plan(network, monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    batch = submit(
        _specs(network, names=("gzip",)),
        BatchOptions(
            raise_on_error=False, fault_plan="characterize@gzip:raise"
        ),
    )
    assert not batch.ok
    assert faults.ENV_VAR not in os.environ  # restored


def test_run_batch_is_a_deprecation_shim(network, tmp_path):
    specs = _specs(network)
    with pytest.warns(DeprecationWarning, match="run_batch"):
        batch = run_batch(specs, cache_dir=str(tmp_path))
    assert batch.ok and len(batch.outcomes) == 2
    # and the shim's cache is interchangeable with submit's
    resumed = submit(
        specs, BatchOptions(cache_dir=str(tmp_path), resume=True)
    )
    assert resumed.resumed == len(specs)

"""Fault tolerance, exercised deterministically via the injection harness.

A trivially cheap stage keeps these tests fast: the interesting work is
all in the executor/supervisor recovery paths, not in the stage itself.
"""

import pytest

from repro.errors import (
    PipelineError,
    RetryExhaustedError,
    SpecError,
    StageTimeoutError,
    WorkerCrashError,
)
from repro.pipeline import (
    JobSpec,
    RetryPolicy,
    parse_plan,
    run_batch,
)
from repro.pipeline import faults
from repro.pipeline.stages import register_stage

FAST = 0.02  # backoff base small enough that retries cost nothing


@register_stage("t-fault", fields=("benchmark",))
def _stage_t_fault(ctx):
    return {"bench": ctx.spec.benchmark}


def specs_for(*names):
    return [JobSpec(name, stages=("t-fault",)) for name in names]


@pytest.fixture
def plan(monkeypatch):
    """Set the fault plan for this test (parent and forked workers)."""

    def activate(text):
        monkeypatch.setenv(faults.ENV_VAR, text)
        return text

    yield activate


class TestPlanParsing:
    def test_minimal_directive(self):
        p = parse_plan("simulate:raise")
        (d,) = p.directives
        assert d.stage == "simulate"
        assert d.benchmark is None
        assert d.action == "raise"
        assert (d.first_attempt, d.last_attempt) == (1, 1)

    def test_benchmark_scope_and_attempt_range(self):
        (d,) = parse_plan("simulate@gzip:raise:1-2").directives
        assert d.benchmark == "gzip"
        assert (d.first_attempt, d.last_attempt) == (1, 2)

    def test_star_matches_every_attempt(self):
        (d,) = parse_plan("voltage:kill:*").directives
        assert d.matches("voltage", "anything", 999)

    def test_hang_duration(self):
        (d,) = parse_plan("voltage@mcf:hang(2.5):1").directives
        assert d.action == "hang"
        assert d.hang_s == 2.5

    def test_hang_defaults_loud(self):
        (d,) = parse_plan("voltage:hang").directives
        assert d.hang_s == faults.DEFAULT_HANG_S

    def test_named_plan_expands(self):
        p = parse_plan("ci-plan")
        actions = sorted(d.action for d in p.directives)
        assert actions == ["hang", "kill", "raise"]
        assert p.needs_isolation

    def test_needs_isolation_only_for_hang_or_kill(self):
        assert not parse_plan("simulate:raise").needs_isolation
        assert parse_plan("simulate:hang").needs_isolation
        assert parse_plan("simulate:kill").needs_isolation

    @pytest.mark.parametrize(
        "bad",
        [
            "simulate",  # no action
            "simulate:explode",  # unknown action
            "simulate:raise(3)",  # duration on non-hang
            "simulate:raise:0",  # attempts below 1
            "simulate:raise:3-2",  # inverted range
            "",  # no directives at all
            ",,",
        ],
    )
    def test_bad_plans_rejected(self, bad):
        with pytest.raises(SpecError):
            parse_plan(bad)

    def test_spec_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            parse_plan("simulate:explode")

    def test_directive_for_first_match_wins(self):
        p = parse_plan("t-fault@gzip:raise,t-fault:kill:*")
        assert p.directive_for("t-fault", "gzip", 1).action == "raise"
        assert p.directive_for("t-fault", "mcf", 1).action == "kill"
        assert p.directive_for("other", "gzip", 1) is None


class TestInlineRetry:
    def test_transient_raise_retried_to_success(self, plan):
        plan("t-fault@gzip:raise:1-2")
        batch = run_batch(
            specs_for("gzip"),
            policy=RetryPolicy(max_attempts=3, backoff_s=FAST),
        )
        (o,) = batch.outcomes
        assert o.ok
        assert o.attempts == 3
        assert batch.retries == 2
        assert batch.summary()["retries"] == 2

    def test_no_retries_without_budget(self, plan):
        plan("t-fault@gzip:raise:1")
        batch = run_batch(specs_for("gzip"), raise_on_error=False)
        (o,) = batch.outcomes
        assert not o.ok
        assert o.attempts == 1
        assert "InjectedFaultError" in o.error

    def test_exhausted_budget_degrades_gracefully(self, plan):
        plan("t-fault@gzip:raise:*")
        batch = run_batch(
            specs_for("gzip", "mcf"),
            raise_on_error=False,
            policy=RetryPolicy(max_attempts=2, backoff_s=FAST),
        )
        assert not batch.ok
        assert batch.outcomes[1].ok  # mcf untouched by the gzip fault
        (f,) = batch.failure_report()
        assert f["job"] == batch.outcomes[0].spec.label
        assert f["stage"] == "t-fault"
        assert f["kind"] == "exception"
        assert f["attempts"] == 2
        assert RetryExhaustedError.__name__ in batch.outcomes[0].error
        text = batch.describe_failures()
        assert "1 of 2 jobs failed" in text
        assert "kind=exception" in text

    def test_exhausted_budget_raises_pipeline_error(self, plan):
        plan("t-fault@gzip:raise:*")
        with pytest.raises(PipelineError) as err:
            run_batch(
                specs_for("gzip"),
                policy=RetryPolicy(max_attempts=2, backoff_s=FAST),
            )
        assert err.value.details["failures"][0]["attempts"] == 2

    def test_identity_threaded_into_error(self, plan):
        plan("t-fault@gzip:raise:1")
        batch = run_batch(specs_for("gzip"), raise_on_error=False)
        err = batch.outcomes[0].error
        assert "job gzip" in err
        assert "stage 't-fault'" in err
        assert "attempt 1" in err


class TestSupervisedRecovery:
    """Timeout kills, crash detection and pool replenishment."""

    # Timeouts here need headroom: under a loaded machine (CI, the full
    # suite) forking a replacement worker and dispatching a retry can
    # eat over a second of wall clock, and a too-tight budget turns that
    # scheduling delay into a spurious StageTimeoutError.
    TIMEOUT_S = 4.0

    def test_hang_is_killed_and_requeued(self, plan):
        plan("t-fault@gzip:hang(300):1")
        batch = run_batch(
            specs_for("gzip"),
            policy=RetryPolicy(
                max_attempts=2, timeout_s=self.TIMEOUT_S, backoff_s=FAST
            ),
        )
        (o,) = batch.outcomes
        assert o.ok
        assert o.attempts == 2
        assert batch.elapsed < 100  # nothing waited for the 300 s hang

    def test_hang_exhausts_as_timeout(self, plan):
        # the kill-and-requeue path is covered above; one attempt is
        # enough to pin the timeout classification
        plan("t-fault@gzip:hang(300):*")
        batch = run_batch(
            specs_for("gzip"),
            raise_on_error=False,
            policy=RetryPolicy(
                max_attempts=1, timeout_s=self.TIMEOUT_S, backoff_s=FAST
            ),
        )
        (f,) = batch.failure_report()
        assert f["kind"] == "timeout"
        assert f["attempts"] == 1
        assert StageTimeoutError.__name__ in batch.outcomes[0].error
        assert "wall-clock budget" in batch.outcomes[0].error

    def test_killed_worker_detected_and_pool_replenished(self, plan):
        plan("t-fault@gzip:kill:1")
        batch = run_batch(
            specs_for("gzip", "mcf"),
            jobs=2,
            policy=RetryPolicy(max_attempts=2, backoff_s=FAST),
        )
        assert batch.ok
        gzip = batch.outcomes[0]
        assert gzip.attempts == 2  # second attempt ran on the fresh worker
        assert batch.outcomes[1].ok

    def test_crash_exhausts_as_crash(self, plan):
        plan("t-fault@gzip:kill:*")
        batch = run_batch(
            specs_for("gzip"),
            raise_on_error=False,
            policy=RetryPolicy(max_attempts=2, backoff_s=FAST),
        )
        (f,) = batch.failure_report()
        assert f["kind"] == "crash"
        assert WorkerCrashError.__name__ in batch.outcomes[0].error
        assert "pool replenished" in batch.outcomes[0].error

    def test_ci_plan_batch_all_jobs_survive(self, plan):
        # The CI fault-smoke contract, in-process: one raise, one hang,
        # one worker kill across a six-job batch; zero lost jobs.
        plan(
            "t-fault@gzip:raise:1,"
            "t-fault@mcf:hang(300):1,"
            "t-fault@vpr:kill:1"
        )
        names = ("gzip", "mcf", "vpr", "gcc", "eon", "art")
        batch = run_batch(
            specs_for(*names),
            jobs=2,
            policy=RetryPolicy(
                max_attempts=3, timeout_s=self.TIMEOUT_S, backoff_s=FAST
            ),
        )
        assert batch.ok
        assert [o.spec.benchmark for o in batch.outcomes] == list(names)
        assert batch.retries == 3  # exactly the three injected faults
        by_name = {o.spec.benchmark: o for o in batch.outcomes}
        for victim in ("gzip", "mcf", "vpr"):
            assert by_name[victim].attempts == 2
        for bystander in ("gcc", "eon", "art"):
            assert by_name[bystander].attempts == 1

    def test_retry_telemetry_counters(self, plan):
        from repro import obs

        plan("t-fault@gzip:kill:1")
        obs.enable("summary")
        try:
            run_batch(
                specs_for("gzip"),
                policy=RetryPolicy(max_attempts=2, backoff_s=FAST),
            )
            reg = obs.registry()
            assert reg.counter("pipeline_retries_total").value(
                kind="crash"
            ) == 1
            assert reg.counter("pipeline_worker_crashes_total").value() == 1
            assert reg.counter("pipeline_worker_respawns_total").value() == 1
        finally:
            obs.disable()


class TestResume:
    def test_resume_skips_fully_cached_jobs(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_batch(specs_for("gzip", "mcf"), cache_dir=cache)
        batch = run_batch(
            specs_for("gzip", "mcf", "vpr"), cache_dir=cache, resume=True
        )
        assert batch.ok
        assert batch.resumed == 2
        assert batch.summary()["resumed"] == 2
        gzip, mcf, vpr = batch.outcomes
        assert gzip.resumed and mcf.resumed and not vpr.resumed
        assert gzip.cache_hits == {"t-fault": True}
        assert vpr.cache_hits == {"t-fault": False}

    def test_resume_after_partial_failure_only_reruns_failures(
        self, tmp_path, monkeypatch
    ):
        cache = str(tmp_path / "cache")
        monkeypatch.setenv(faults.ENV_VAR, "t-fault@mcf:raise:*")
        first = run_batch(
            specs_for("gzip", "mcf"), cache_dir=cache, raise_on_error=False
        )
        assert not first.ok
        monkeypatch.delenv(faults.ENV_VAR)
        second = run_batch(
            specs_for("gzip", "mcf"), cache_dir=cache, resume=True
        )
        assert second.ok
        assert second.outcomes[0].resumed  # gzip came straight off disk
        assert not second.outcomes[1].resumed  # mcf actually re-ran

    def test_resume_without_cache_runs_normally(self):
        batch = run_batch(specs_for("gzip"), resume=True)
        assert batch.ok
        assert batch.resumed == 0

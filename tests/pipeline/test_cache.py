"""Result-cache behavior: hits, misses, invalidation, byte identity."""

import json

import numpy as np
import pytest

from repro.core import calibrated_supply
from repro.pipeline import (
    ResultCache,
    build_characterization_jobs,
    predictions_from,
    run_batch,
    stage_cache_keys,
)

CYCLES = 4096


@pytest.fixture(scope="module")
def net150():
    return calibrated_supply(150)


def one_job(net, **kw):
    return build_characterization_jobs(("gzip",), net, cycles=CYCLES, **kw)


class TestPrimitives:
    def test_json_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        artifact = {"estimated": 0.1234567891011, "levels": {"1": 1e-9}}
        cache.put("characterize", "ab" * 32, "json", artifact)
        hit, loaded = cache.get("characterize", "ab" * 32, "json")
        assert hit and loaded == artifact
        assert cache.hit_count == 1 and cache.miss_count == 0

    def test_absent_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.get("simulate", "cd" * 32, "result")
        assert not hit and value is None
        assert cache.miss_count == 1

    def test_corrupt_entry_is_miss_not_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        path = cache.path_for(key, "json")
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        hit, _ = cache.get("voltage", key, "json")
        assert not hit

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", "11" * 32, "json", {"x": 1})
        cache.put("b", "22" * 32, "json", {"y": 2})
        stats = cache.on_disk_stats()
        assert stats.entries == 2 and stats.total_bytes > 0
        assert cache.clear() == 2
        assert cache.on_disk_stats().entries == 0


class TestPipelineCaching:
    def test_miss_then_hit(self, tmp_path, net150):
        jobs = one_job(net150)
        first = run_batch(jobs, cache_dir=tmp_path)
        second = run_batch(jobs, cache_dir=tmp_path)
        assert first.cache_hits == 0
        assert second.cache_hits == second.stage_runs == 3
        assert all(o.ok for o in second.outcomes)

    def test_cached_equals_fresh_bit_for_bit(self, tmp_path, net150):
        jobs = one_job(net150)
        fresh = run_batch(jobs, cache_dir=None)
        run_batch(jobs, cache_dir=tmp_path)  # populate
        cached = run_batch(jobs, cache_dir=tmp_path)
        p_fresh = predictions_from(fresh)["gzip"]
        p_cached = predictions_from(cached)["gzip"]
        assert p_fresh == p_cached  # exact float equality
        sim_fresh = fresh.outcomes[0].artifacts["simulate"]
        sim_cached = cached.outcomes[0].artifacts["simulate"]
        assert np.array_equal(sim_fresh.current, sim_cached.current)
        assert sim_fresh.stats == sim_cached.stats
        char_fresh = fresh.outcomes[0].artifacts["characterize"]
        char_cached = cached.outcomes[0].artifacts["characterize"]
        assert char_fresh == char_cached

    def test_spec_change_invalidates_downstream_only(self, tmp_path, net150):
        run_batch(one_job(net150, threshold=0.97), cache_dir=tmp_path)
        batch = run_batch(
            one_job(net150, threshold=0.96), cache_dir=tmp_path
        )
        hits = batch.outcomes[0].cache_hits
        assert hits["simulate"] is True  # trace reused
        assert hits["voltage"] is False  # threshold-dependent: recomputed
        assert hits["characterize"] is False

    def test_entries_are_content_addressed_on_disk(self, tmp_path, net150):
        jobs = one_job(net150)
        run_batch(jobs, cache_dir=tmp_path)
        keys = stage_cache_keys(jobs[0])
        cache = ResultCache(tmp_path)
        assert cache.path_for(keys["simulate"], "result").is_file()
        char = cache.path_for(keys["characterize"], "json")
        payload = json.loads(char.read_text())
        assert payload["stage"] == "characterize"
        assert "estimated" in payload["artifact"]

"""Job-spec identity: canonical hashing and chained stage keys."""

import pytest

from repro.pipeline import (
    JobSpec,
    deserialize_network,
    serialize_network,
    stage_cache_keys,
)
from repro.power import PowerSupplyNetwork


def spec(**kw):
    base = dict(benchmark="gzip", cycles=4096)
    base.update(kw)
    return JobSpec.make(base.pop("benchmark"), network=PowerSupplyNetwork(), **base)


class TestNetworkSerialization:
    def test_round_trip_is_exact(self):
        net = PowerSupplyNetwork(impedance_scale=1.5, quality_factor=7.0)
        assert deserialize_network(serialize_network(net)) == net

    def test_missing_network_rejected(self):
        s = JobSpec("gzip", stages=("simulate",))
        with pytest.raises(ValueError, match="no supply network"):
            s.resolve_network()


class TestDigest:
    def test_equal_specs_hash_equal(self):
        assert spec().digest() == spec().digest()

    def test_any_field_change_changes_digest(self):
        base = spec().digest()
        assert spec(cycles=8192).digest() != base
        assert spec(threshold=0.96).digest() != base
        assert spec(benchmark="mcf").digest() != base

    def test_params_are_order_insensitive(self):
        a = spec(params={"scheme": "wavelet", "terms": 13})
        b = spec(params={"terms": 13, "scheme": "wavelet"})
        assert a.digest() == b.digest()

    def test_duplicate_params_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            JobSpec("gzip", params=(("a", 1), ("a", 2)))


class TestStageKeys:
    def test_keys_chain_in_stage_order(self):
        keys = stage_cache_keys(spec())
        assert list(keys) == ["simulate", "voltage", "characterize"]
        assert len(set(keys.values())) == 3

    def test_threshold_change_keeps_simulate_key(self):
        a = stage_cache_keys(spec(threshold=0.97))
        b = stage_cache_keys(spec(threshold=0.96))
        assert a["simulate"] == b["simulate"]
        assert a["voltage"] != b["voltage"]
        assert a["characterize"] != b["characterize"]

    def test_cycles_change_invalidates_whole_chain(self):
        a = stage_cache_keys(spec(cycles=4096))
        b = stage_cache_keys(spec(cycles=8192))
        assert all(a[s] != b[s] for s in a)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            stage_cache_keys(spec(stages=("simulate", "nonsense")))

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="at least one stage"):
            JobSpec("gzip", stages=())
        with pytest.raises(ValueError, match="cycles"):
            JobSpec("gzip", cycles=0)

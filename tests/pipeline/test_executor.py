"""Executor behavior: ordering, telemetry, errors, worker-pool parity."""

import pytest

from repro.core import calibrated_supply, predict_trace
from repro.pipeline import (
    JobSpec,
    PipelineError,
    build_characterization_jobs,
    build_control_jobs,
    control_results_from,
    predictions_from,
    run_batch,
    suite_names,
)
from repro.uarch import simulate_benchmark

CYCLES = 4096
NAMES = ("gzip", "mcf")


@pytest.fixture(scope="module")
def net150():
    return calibrated_supply(150)


@pytest.fixture(scope="module")
def batch(net150):
    jobs = build_characterization_jobs(NAMES, net150, cycles=CYCLES)
    return run_batch(jobs)


class TestInlineExecution:
    def test_outcomes_keep_submission_order(self, batch):
        assert [o.spec.benchmark for o in batch.outcomes] == list(NAMES)

    def test_telemetry_recorded(self, batch):
        for o in batch.outcomes:
            assert set(o.timings) == {"simulate", "voltage", "characterize"}
            assert all(t >= 0 for t in o.timings.values())
            assert o.elapsed > 0
            assert o.cache_hits == {s: False for s in o.timings}

    def test_matches_legacy_predict_trace(self, batch, net150):
        preds = predictions_from(batch)
        for name in NAMES:
            trace = simulate_benchmark(name, cycles=CYCLES).current
            legacy = predict_trace(net150, trace, 0.97, name)
            assert preds[name].estimated == legacy.estimated
            assert preds[name].observed == legacy.observed

    def test_progress_callback_sees_every_job(self, net150):
        jobs = build_characterization_jobs(NAMES, net150, cycles=CYCLES)
        seen = []
        run_batch(jobs, progress=lambda o: seen.append(o.spec.benchmark))
        assert seen == list(NAMES)


class TestErrors:
    def test_failed_job_raises_by_default(self):
        bad = JobSpec("no-such-benchmark", stages=("simulate",))
        with pytest.raises(PipelineError, match="no-such-benchmark"):
            run_batch([bad])

    def test_failures_collected_when_asked(self, net150):
        bad = JobSpec("no-such-benchmark", stages=("simulate",))
        good = build_characterization_jobs(("gzip",), net150, cycles=CYCLES)
        batch = run_batch([bad] + good, raise_on_error=False)
        assert not batch.outcomes[0].ok
        assert batch.outcomes[1].ok
        assert len(batch.errors) == 1


class TestControlJobs:
    def test_control_results_round_trip(self, net150):
        jobs = build_control_jobs(
            ("vpr",), net150, scheme="wavelet", cycles=3000,
            terms=13, margin=0.012,
        )
        results = control_results_from(run_batch(jobs))
        assert results[0].name == "vpr"
        assert abs(results[0].slowdown) < 0.1

    def test_unknown_scheme_fails(self, net150):
        jobs = build_control_jobs(("vpr",), net150, scheme="psychic",
                                  cycles=1024)
        with pytest.raises(PipelineError, match="unknown control scheme"):
            run_batch(jobs)


class TestSuites:
    def test_suite_names(self):
        assert len(suite_names("spec2000")) == 26
        assert set(suite_names("int")) | set(suite_names("fp")) == set(
            suite_names("spec2000")
        )
        with pytest.raises(ValueError, match="unknown suite"):
            suite_names("spec2017")


@pytest.mark.slow
class TestWorkerPool:
    def test_parallel_equals_serial(self, net150, tmp_path):
        jobs = build_characterization_jobs(
            ("gzip", "mcf", "vpr"), net150, cycles=CYCLES
        )
        serial = predictions_from(run_batch(jobs, jobs=1))
        parallel = predictions_from(
            run_batch(jobs, jobs=3, cache_dir=tmp_path)
        )
        assert serial == parallel

    def test_parallel_cache_warm_restart(self, net150, tmp_path):
        jobs = build_characterization_jobs(NAMES, net150, cycles=CYCLES)
        run_batch(jobs, jobs=2, cache_dir=tmp_path)
        again = run_batch(jobs, jobs=2, cache_dir=tmp_path)
        assert again.cache_hits == again.stage_runs


class TestPartialTelemetryOnFailure:
    def test_failing_stage_still_reports_its_timing(self, net150):
        spec = JobSpec("no-such-benchmark", stages=("simulate",))
        batch = run_batch([spec], raise_on_error=False)
        outcome = batch.outcomes[0]
        assert not outcome.ok
        assert outcome.failed_stage == "simulate"
        assert "simulate" in outcome.timings
        assert outcome.timings["simulate"] >= 0.0
        assert outcome.cache_hits == {"simulate": False}

    def test_later_stages_never_get_timings(self, net150):
        spec = JobSpec(
            "no-such-benchmark",
            stages=("simulate", "voltage", "characterize"),
        )
        batch = run_batch([spec], raise_on_error=False)
        outcome = batch.outcomes[0]
        assert outcome.failed_stage == "simulate"
        assert set(outcome.timings) == {"simulate"}


class TestBatchSummary:
    def test_summary_headline_numbers(self, batch):
        s = batch.summary()
        assert s["jobs"] == len(NAMES)
        assert s["errors"] == 0
        assert s["stage_runs"] == 3 * len(NAMES)
        assert s["cache_hits"] + s["cache_misses"] == s["stage_runs"]
        assert s["wall_s"] > 0
        assert s["workers"] == 1

    def test_summary_counts_errors(self, net150):
        bad = JobSpec("no-such-benchmark", stages=("simulate",))
        batch = run_batch([bad], raise_on_error=False)
        assert batch.summary()["errors"] == 1


@pytest.mark.slow
class TestWorkerPoolObservability:
    def test_worker_metrics_merge_into_parent(self, net150, tmp_path):
        from repro import obs

        jobs = build_characterization_jobs(NAMES, net150, cycles=CYCLES)
        obs.enable("summary")
        try:
            run_batch(jobs, jobs=2, cache_dir=tmp_path)
            counter = obs.registry().counter("pipeline_jobs_total")
            assert counter.value(status="ok") == len(NAMES)
            rows = obs.span_collector().rows()
            # worker-side spans shipped back and absorbed by the parent
            assert rows["pipeline.job"]["count"] == len(NAMES)
            assert rows["stage.simulate"]["count"] == len(NAMES)
        finally:
            obs.disable()

"""Block dispatch: grouping, cache identity, fan-out and failure paths.

The load-bearing property pinned here is cache identity: a block job
and the same specs run one at a time must write *byte-identical* cache
trees — same keys, same payload bytes — so a corpus characterized in
blocks can be resumed (or re-run) per trace and vice versa.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core import calibrated_supply
from repro.errors import SpecError
from repro.kernels import KernelConfig
from repro.pipeline import (
    BatchOptions,
    BlockSpec,
    JobSpec,
    group_blocks,
    predictions_from,
    submit,
)
from repro.pipeline.blocks import block_key, synthesize_member_failures
from repro.pipeline.executor import JobOutcome


@pytest.fixture(scope="module")
def network():
    return calibrated_supply(150)


def _specs(network, names=("gzip", "mcf", "gcc", "art"), cycles=4096, **kw):
    return [
        JobSpec.make(name, network=network, cycles=cycles, **kw)
        for name in names
    ]


def _tree_digest(root: str) -> dict[str, str]:
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(Path(root).rglob("*"))
        if p.is_file()
    }


# -- grouping ----------------------------------------------------------------


def test_group_blocks_fuses_compatible_specs(network):
    specs = _specs(network)
    units = group_blocks(list(enumerate(specs)))
    assert len(units) == 1
    index, block = units[0]
    assert index == 0
    assert isinstance(block, BlockSpec)
    assert block.indices == (0, 1, 2, 3)
    assert block.label.startswith("block[4](")


def test_group_blocks_respects_max_block(network):
    specs = _specs(network, names=("gzip", "mcf", "gcc", "art", "swim"))
    units = group_blocks(list(enumerate(specs)), max_block=2)
    sizes = [
        len(u.members) if isinstance(u, BlockSpec) else 1
        for _, u in units
    ]
    assert sizes == [2, 2, 1]  # trailing singleton stays a plain spec


def test_group_blocks_separates_incompatible_keys(network):
    a = _specs(network, names=("gzip", "mcf"), cycles=4096)
    b = _specs(network, names=("gcc", "art"), cycles=8192)
    units = group_blocks(list(enumerate(a + b)))
    assert len(units) == 2
    assert all(isinstance(u, BlockSpec) for _, u in units)
    assert block_key(a[0]) != block_key(b[0])


def test_group_blocks_passes_through_non_characterize(network):
    sim = [
        JobSpec(name, cycles=1024, stages=("simulate",))
        for name in ("gzip", "mcf")
    ]
    units = group_blocks(list(enumerate(sim)))
    assert units == list(enumerate(sim))


def test_group_blocks_disabled_below_two(network):
    specs = list(enumerate(_specs(network)))
    assert group_blocks(specs, max_block=1) == specs


def test_block_spec_validation(network):
    specs = _specs(network)
    with pytest.raises(SpecError, match="at least two"):
        BlockSpec(members=(specs[0],), indices=(0,))
    with pytest.raises(SpecError, match="parallel"):
        BlockSpec(members=tuple(specs[:2]), indices=(0,))
    other = _specs(network, names=("art",), cycles=8192)[0]
    with pytest.raises(SpecError, match="must share"):
        BlockSpec(members=(specs[0], other), indices=(0, 1))
    sim = JobSpec("gzip", cycles=4096, stages=("simulate",))
    with pytest.raises(SpecError):
        BlockSpec(members=(sim, sim), indices=(0, 1))


def test_block_digest_depends_on_members(network):
    specs = _specs(network)
    a = BlockSpec(members=tuple(specs[:2]), indices=(0, 1))
    b = BlockSpec(members=tuple(specs[:3]), indices=(0, 1, 2))
    c = BlockSpec(members=tuple(specs[:2]), indices=(5, 9))
    assert a.digest() != b.digest()
    assert a.digest() == c.digest()  # indices are routing, not identity


# -- cache identity -----------------------------------------------------------


def test_block_and_single_jobs_write_identical_cache(network, tmp_path):
    """The tentpole invariant: one block job == N single jobs, on disk."""
    specs = _specs(network)
    blocked = tmp_path / "blocked"
    single = tmp_path / "single"
    batched = KernelConfig(backend="batched")
    b1 = submit(
        specs, BatchOptions(cache_dir=str(blocked), kernels=batched)
    )
    b2 = submit(
        specs, BatchOptions(cache_dir=str(single), block="never")
    )
    assert b1.ok and b2.ok
    p1 = {n: p.estimated for n, p in predictions_from(b1).items()}
    p2 = {n: p.estimated for n, p in predictions_from(b2).items()}
    assert p1 == p2
    t1, t2 = _tree_digest(str(blocked)), _tree_digest(str(single))
    assert t1 == t2  # same keys AND same bytes
    # and a per-trace resume fully satisfies from the block-written cache
    b3 = submit(
        specs,
        BatchOptions(cache_dir=str(blocked), block="never", resume=True),
    )
    assert b3.resumed == len(specs)


def test_partial_cache_only_fuses_missing_members(network, tmp_path):
    specs = _specs(network)
    cache = str(tmp_path / "cache")
    batched = KernelConfig(backend="batched")
    # pre-compute two members the per-trace way
    submit(specs[:2], BatchOptions(cache_dir=cache, block="never"))
    batch = submit(specs, BatchOptions(cache_dir=cache, kernels=batched))
    assert batch.ok
    hits = {
        o.spec.benchmark: o.cache_hits["characterize"]
        for o in batch.outcomes
    }
    assert hits == {"gzip": True, "mcf": True, "gcc": False, "art": False}


# -- auto mode and fan-out ----------------------------------------------------


def test_auto_blocks_only_under_batched_backend(network, tmp_path):
    specs = _specs(network, names=("gzip", "mcf"))
    seen = []
    submit(
        specs,
        BatchOptions(cache_dir=str(tmp_path / "a")),
        progress=lambda o: seen.append(o.spec.benchmark),
    )
    assert seen == ["gzip", "mcf"]  # vectorized default: no fusion
    seen.clear()
    batch = submit(
        specs,
        BatchOptions(
            cache_dir=str(tmp_path / "b"),
            kernels=KernelConfig(backend="batched"),
        ),
        progress=lambda o: seen.append(o.spec.benchmark),
    )
    # progress still fires once per member, in batch order
    assert seen == ["gzip", "mcf"]
    assert [o.spec.benchmark for o in batch.outcomes] == ["gzip", "mcf"]
    assert all(not hasattr(o.spec, "members") for o in batch.outcomes)


def test_block_always_forces_fusion_without_batched(network, tmp_path):
    """block='always' fuses even on the vectorized backend (the fused
    kernel exists there too — just without the tier-2 speed)."""
    specs = _specs(network, names=("gzip", "mcf"))
    batch = submit(
        specs,
        BatchOptions(cache_dir=str(tmp_path), block="always"),
    )
    assert batch.ok and len(batch.outcomes) == 2


def test_member_failure_is_isolated(network, tmp_path):
    specs = _specs(network)
    batch = submit(
        specs,
        BatchOptions(
            cache_dir=str(tmp_path),
            raise_on_error=False,
            kernels=KernelConfig(backend="batched"),
            fault_plan="characterize@mcf:raise",
        ),
    )
    assert not batch.ok
    by_name = {o.spec.benchmark: o for o in batch.outcomes}
    assert not by_name["mcf"].ok
    assert by_name["mcf"].failed_stage == "characterize"
    for name in ("gzip", "gcc", "art"):
        assert by_name[name].ok, name


def test_block_retry_recovers_with_cached_members(network, tmp_path):
    specs = _specs(network)
    batch = submit(
        specs,
        BatchOptions(
            cache_dir=str(tmp_path),
            raise_on_error=False,
            retries=1,
            kernels=KernelConfig(backend="batched"),
            fault_plan="characterize@mcf:raise:1",
        ),
    )
    assert batch.ok
    assert batch.retries >= 1
    mcf = next(o for o in batch.outcomes if o.spec.benchmark == "mcf")
    assert mcf.attempts == 2


def test_supervised_pool_fans_out_block_members(network, tmp_path):
    specs = _specs(network, names=("gzip", "mcf", "gcc", "art", "swim"))
    batch = submit(
        specs,
        BatchOptions(
            jobs=2,
            cache_dir=str(tmp_path),
            kernels=KernelConfig(backend="batched"),
            max_block=3,
        ),
    )
    assert batch.ok
    assert [o.spec.benchmark for o in batch.outcomes] == [
        "gzip",
        "mcf",
        "gcc",
        "art",
        "swim",
    ]


def test_synthesize_member_failures(network):
    specs = _specs(network, names=("gzip", "mcf"))
    block = BlockSpec(members=tuple(specs), indices=(3, 7))
    container = JobOutcome(
        spec=block,
        error="boom",
        error_kind="timeout",
        attempts=2,
        elapsed=1.5,
    )
    members = synthesize_member_failures(container)
    assert [i for i, _ in members] == [3, 7]
    for _, outcome in members:
        assert not outcome.ok
        assert outcome.error == "boom"
        assert outcome.error_kind == "timeout"
        assert outcome.attempts == 2


def test_block_timeout_synthesis_end_to_end(network, tmp_path):
    """A hung block is killed by the supervisor; every member index
    still reports a (synthesized, then retried) outcome."""
    specs = _specs(network, names=("gzip", "mcf"))
    batch = submit(
        specs,
        BatchOptions(
            jobs=2,
            cache_dir=str(tmp_path),
            raise_on_error=False,
            retries=1,
            timeout_s=5.0,
            kernels=KernelConfig(backend="batched"),
            fault_plan="characterize@gzip:hang(30):1",
        ),
    )
    assert len(batch.outcomes) == 2
    assert batch.ok  # attempt 2 has no fault


def test_json_roundtrip_of_block_artifacts(network, tmp_path):
    """Block-written artifacts stay plain JSON-able dicts."""
    specs = _specs(network, names=("gzip", "mcf"))
    batch = submit(
        specs,
        BatchOptions(
            cache_dir=str(tmp_path),
            kernels=KernelConfig(backend="batched"),
        ),
    )
    for outcome in batch.outcomes:
        artifact = outcome.artifacts["characterize"]
        assert json.loads(json.dumps(artifact)) == artifact
        assert set(artifact) == {
            "estimated",
            "windows",
            "level_contributions",
        }

"""Streaming window iteration and its bit-identity with in-memory paths."""

import numpy as np
import pytest

from repro.core import WaveletVoltageEstimator, calibrated_supply
from repro.pipeline import (
    as_chunks,
    iter_windows,
    streaming_fraction_below,
    streaming_level_contributions,
)


def trace(n=4096, seed=3):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(40.0, 6.0, n))


class TestIterWindows:
    def test_matches_reshape_tiling(self):
        t = trace(1024)
        windows = list(iter_windows(t, 256))
        assert len(windows) == 4
        assert np.array_equal(np.concatenate(windows), t)

    def test_trailing_partial_window_dropped(self):
        windows = list(iter_windows(trace(1000), 256))
        assert len(windows) == 3

    def test_chunked_iterable_source_equivalent(self):
        t = trace(2048)
        pieces = [t[:100], t[100:700], t[700:]]
        a = [w.tolist() for w in iter_windows(t, 256)]
        b = [w.tolist() for w in iter_windows(iter(pieces), 256)]
        assert a == b

    def test_chunk_smaller_than_window_still_works(self):
        t = trace(1024)
        a = [w.tolist() for w in iter_windows(t, 256, chunk=64)]
        assert np.array_equal(np.asarray(a).ravel(), t)

    def test_npy_file_is_memory_mapped(self, tmp_path):
        t = trace(1024)
        path = tmp_path / "trace.npy"
        np.save(path, t)
        windows = list(iter_windows(path, 256))
        assert len(windows) == 4
        assert np.array_equal(np.concatenate(windows), t)

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            list(iter_windows(trace(64), 0))
        with pytest.raises(ValueError, match="1-D"):
            list(as_chunks(np.zeros((4, 4))))


class TestStreamingAggregates:
    @pytest.fixture(scope="class")
    def estimator(self):
        return WaveletVoltageEstimator(calibrated_supply(150))

    def test_fraction_below_bit_identical(self, estimator):
        t = trace(4096)
        streamed, count = streaming_fraction_below(estimator, t, 0.97)
        assert count == 16
        assert streamed == estimator.estimate_fraction_below(t, 0.97)

    def test_level_contributions_bit_identical(self, estimator):
        t = trace(2048)
        streamed = streaming_level_contributions(estimator, t)
        assert streamed == estimator.level_contributions(t)

    def test_short_trace_rejected(self, estimator):
        with pytest.raises(ValueError, match="shorter than one"):
            streaming_fraction_below(estimator, trace(100), 0.97)

"""Perf-regression tracking: directions, thresholds, noise floor, history."""

import json

import pytest

from repro.benchtrack import (
    DEFAULT_THRESHOLD,
    NOISE_MULTIPLIER,
    append_history,
    compare_benchmarks,
    compare_files,
    flatten_metrics,
    metric_direction,
    render_comparison,
)


def doc(quick=False, **overrides):
    """A small bench-document skeleton in the BENCH_kernels.json shape."""
    base = {
        "quick": quick,
        "kernels": {
            "wavedec": {
                "reference_s": 0.8,
                "vectorized_s": 0.02,
                "speedup": 40.0,
                "repeats": 5,
                "max_abs_diff": 1e-13,
            }
        },
        "end_to_end": {
            "characterize_batch": {"speedup": 42.0, "vectorized_s": 0.03}
        },
    }
    for path, value in overrides.items():
        node = base
        *parents, leaf = path.split("__")
        for part in parents:
            node = node[part]
        node[leaf] = value
    return base


class TestDirections:
    @pytest.mark.parametrize(
        "name,want",
        [
            ("kernels.wavedec.speedup", "higher"),
            ("scan.gb_per_s", "higher"),
            ("end_to_end.store_traces_per_s", "higher"),
            ("kernels.wavedec.vectorized_s", "lower"),
            ("ingest.seconds", "lower"),
            ("kernels.wavedec.max_abs_diff", "info"),
            ("kernels.wavedec.repeats", "info"),
            ("end_to_end.characterize_batch.cycles", "info"),
            ("ingest.bytes", "info"),
            ("obs_overhead.benchmarks", "info"),
        ],
    )
    def test_leaf_decides(self, name, want):
        assert metric_direction(name) == want


class TestFlatten:
    def test_nested_numeric_leaves_with_dots(self):
        flat = flatten_metrics(doc())
        assert flat["kernels.wavedec.speedup"] == 40.0
        assert flat["end_to_end.characterize_batch.vectorized_s"] == 0.03
        assert "quick" not in flat  # booleans skipped

    def test_non_numeric_leaves_skipped(self):
        flat = flatten_metrics({"a": "text", "b": {"c": [1, 2]}, "d": 3})
        assert flat == {"d": 3.0}


class TestCompare:
    def test_identical_docs_are_ok(self):
        result = compare_benchmarks(doc(), doc())
        assert result.ok
        assert result.regressions == [] and result.improvements == []

    def test_speedup_drop_beyond_threshold_regresses(self):
        current = doc(kernels__wavedec__speedup=40.0 * 0.7)  # -30% > 25%
        result = compare_benchmarks(doc(), current)
        assert not result.ok
        (r,) = result.regressions
        assert r.name == "kernels.wavedec.speedup"
        assert r.direction == "higher"

    def test_timing_growth_beyond_threshold_regresses(self):
        current = doc(kernels__wavedec__vectorized_s=0.02 * 1.5)
        result = compare_benchmarks(doc(), current)
        assert [r.name for r in result.regressions] == [
            "kernels.wavedec.vectorized_s"
        ]

    def test_moves_within_threshold_pass(self):
        current = doc(
            kernels__wavedec__speedup=40.0 * 0.8,  # -20% < 25%
            kernels__wavedec__vectorized_s=0.02 * 1.2,
        )
        assert compare_benchmarks(doc(), current).ok

    def test_info_metrics_never_gate(self):
        current = doc(kernels__wavedec__max_abs_diff=1.0)  # 13 decades worse
        assert compare_benchmarks(doc(), current).ok

    def test_improvement_flagged_not_failed(self):
        result = compare_benchmarks(doc(), doc(kernels__wavedec__speedup=80.0))
        assert result.ok
        assert [d.name for d in result.improvements] == [
            "kernels.wavedec.speedup"
        ]

    def test_noise_floor_widens_small_timings(self):
        base = doc(kernels__wavedec__vectorized_s=0.001)  # 1 ms, sub-floor
        jittery = doc(kernels__wavedec__vectorized_s=0.0018)  # +80%
        result = compare_benchmarks(base, jittery)
        assert result.ok  # widened to 25% * 4 = 100%
        delta = next(
            d for d in result.deltas
            if d.name == "kernels.wavedec.vectorized_s"
        )
        assert delta.noisy
        assert delta.threshold == DEFAULT_THRESHOLD * NOISE_MULTIPLIER
        # but a genuine blow-up still fails even under the floor
        blown = doc(kernels__wavedec__vectorized_s=0.003)  # +200%
        assert not compare_benchmarks(base, blown).ok

    def test_quick_vs_full_refused_by_default(self):
        result = compare_benchmarks(doc(quick=False), doc(quick=True))
        assert result.skipped_quick_mismatch
        assert not result.ok
        assert result.deltas == []
        assert "REFUSED" in render_comparison(result)

    def test_quick_mismatch_can_be_allowed(self):
        result = compare_benchmarks(
            doc(quick=False), doc(quick=True), allow_quick_mismatch=True
        )
        assert result.ok and result.deltas

    def test_missing_and_added_metrics_reported(self):
        current = doc()
        current["kernels"]["newkernel"] = {"speedup": 2.0}
        del current["end_to_end"]["characterize_batch"]
        result = compare_benchmarks(doc(), current)
        assert result.ok  # structure drift alone does not gate
        assert "kernels.newkernel.speedup" in result.added
        assert "end_to_end.characterize_batch.speedup" in result.missing


class TestRender:
    def test_render_names_regressions(self):
        result = compare_benchmarks(doc(), doc(kernels__wavedec__speedup=1.0))
        text = render_comparison(result)
        assert "REGRESSED" in text and "kernels.wavedec.speedup" in text
        assert "verdict: FAIL (1 regression(s)" in text

    def test_render_ok_verdict(self):
        text = render_comparison(compare_benchmarks(doc(), doc()))
        assert "verdict: OK" in text


class TestFilesAndHistory:
    def test_compare_files_round_trip(self, tmp_path):
        base_p = tmp_path / "base.json"
        cur_p = tmp_path / "cur.json"
        base_p.write_text(json.dumps(doc()))
        cur_p.write_text(json.dumps(doc(kernels__wavedec__speedup=1.0)))
        result = compare_files(base_p, cur_p)
        assert not result.ok
        assert result.baseline_path == str(base_p)

    def test_history_appends_jsonl(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        result = compare_benchmarks(doc(), doc())
        append_history(history, result, extra={"source": "test"})
        append_history(history, result)
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        entry = json.loads(lines[0])
        assert entry["ok"] is True
        assert entry["source"] == "test"
        assert entry["t"] > 0
        assert "kernels.wavedec.speedup" in entry["metrics"]


class TestTool:
    """tools/bench_compare.py exit-code contract."""

    def _run(self, *argv):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "bench_compare",
            Path(__file__).resolve().parent.parent / "tools/bench_compare.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod.main(list(argv))

    def test_ok_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "b.json"
        p.write_text(json.dumps(doc()))
        code = self._run(
            "--baseline", str(p), "--current", str(p),
            "--history", str(tmp_path / "h.jsonl"),
        )
        assert code == 0
        assert "verdict: OK" in capsys.readouterr().out
        assert (tmp_path / "h.jsonl").exists()

    def test_regression_exits_one(self, tmp_path, capsys):
        base_p = tmp_path / "base.json"
        cur_p = tmp_path / "cur.json"
        base_p.write_text(json.dumps(doc()))
        cur_p.write_text(json.dumps(doc(kernels__wavedec__speedup=1.0)))
        code = self._run(
            "--baseline", str(base_p), "--current", str(cur_p), "--no-history"
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps(doc()))
        with pytest.raises(SystemExit) as err:
            self._run("--baseline", str(p), "--current", "/nope.json")
        assert err.value.code == 2

    def test_committed_baselines_match_committed_results(self):
        """The CI gate contract: repo HEAD always compares clean."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        for name in (
            "BENCH_kernels.json",
            "BENCH_store.json",
            "BENCH_serve.json",
        ):
            result = compare_files(
                root / "benchmarks/baselines" / name, root / name
            )
            assert result.ok, render_comparison(result)

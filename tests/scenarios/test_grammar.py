"""Grammar tests: parsing, structured errors, compile semantics."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.scenarios import (
    Atom,
    Overlay,
    Ramp,
    Repeat,
    Seq,
    compile_schedule,
    parse_schedule,
    profile_names,
    schedule_units,
)

CYCLES = 1024
WARMUP = 32


class TestParsing:
    def test_bare_atom(self):
        node = parse_schedule("cache-thrash")
        assert node == Atom("cache-thrash")
        assert schedule_units(node) == 1

    def test_nested_combinators(self):
        node = parse_schedule(
            "repeat(seq(idle-spike, ramp(memory-burst, 0.5, 1.0)), 3)"
        )
        assert isinstance(node, Repeat)
        assert node.count == 3
        assert isinstance(node.child, Seq)
        assert isinstance(node.child.children[1], Ramp)
        assert schedule_units(node) == 6

    def test_overlay_units_follow_children(self):
        node = parse_schedule(
            "overlay(seq(idle-spike, cache-thrash), "
            "seq(fp-saturate, memory-burst))"
        )
        assert isinstance(node, Overlay)
        assert schedule_units(node) == 2

    def test_whitespace_is_insignificant(self):
        a = parse_schedule("seq( cache-thrash ,idle-spike )")
        b = parse_schedule("seq(cache-thrash, idle-spike)")
        assert a == b

    def test_canonical_round_trip_is_stable(self):
        node = parse_schedule("overlay(fp-saturate, ramp(branch-storm, 0.0, 2.0))")
        assert node.canonical() == {
            "overlay": [
                {"atom": "fp-saturate"},
                {
                    "ramp": {"atom": "branch-storm"},
                    "start": 0.0,
                    "stop": 2.0,
                },
            ]
        }


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "seq(cache-thrash",  # unbalanced paren
            "seq(cache-thrash,)",  # dangling comma
            "seq()",  # no operands
            "cache-thrash idle-spike",  # trailing garbage
            "repeat(idle-spike)",  # missing count
            "repeat(idle-spike, 1.5)",  # fractional count
            "ramp(idle-spike, 0.5)",  # missing stop
            "seq(cache-thrash))",  # extra paren
            "",
            "   ",
            "seq(cache-thrash, UPPER)",  # invalid token
        ],
    )
    def test_malformed_raises_spec_error(self, text):
        with pytest.raises(SpecError):
            parse_schedule(text)

    def test_parse_error_carries_position(self):
        with pytest.raises(SpecError) as err:
            parse_schedule("seq(cache-thrash,, idle-spike)")
        assert "position" in str(err.value)
        assert err.value.details.get("position") is not None

    def test_unknown_profile_lists_valid_names(self):
        with pytest.raises(SpecError) as err:
            parse_schedule("seq(cache-thrash, no-such-profile)")
        message = str(err.value)
        assert "no-such-profile" in message
        for name in profile_names():
            assert name in message
        assert err.value.details["valid_profiles"] == list(profile_names())

    def test_overlay_length_mismatch(self):
        with pytest.raises(SpecError) as err:
            parse_schedule(
                "overlay(cache-thrash, seq(idle-spike, fp-saturate))"
            )
        assert "equal relative length" in str(err.value)
        assert err.value.details["lengths"] == [1, 2]

    def test_repeat_count_zero_rejected(self):
        with pytest.raises(SpecError):
            parse_schedule("repeat(idle-spike, 0)")

    def test_negative_ramp_level_rejected(self):
        with pytest.raises(SpecError):
            Ramp(Atom("idle-spike"), -1.0, 0.5)


class TestCompile:
    def test_exact_cycle_count_under_uneven_split(self):
        # 3 units into 1000 cycles cannot split evenly; the lengths must
        # still sum exactly.
        trace = compile_schedule(
            "seq(cache-thrash, idle-spike, fp-saturate)",
            1000,
            seed=1,
            warmup_cycles=WARMUP,
        )
        assert trace.shape == (1000,)
        assert trace.dtype == np.float64

    def test_deterministic_for_same_seed(self):
        expr = "repeat(seq(idle-spike, resonance-probe), 2)"
        a = compile_schedule(expr, CYCLES, seed=9, warmup_cycles=WARMUP)
        b = compile_schedule(expr, CYCLES, seed=9, warmup_cycles=WARMUP)
        assert np.array_equal(a, b)

    def test_different_seed_differs(self):
        expr = "seq(cache-thrash, memory-burst)"
        a = compile_schedule(expr, CYCLES, seed=1, warmup_cycles=WARMUP)
        b = compile_schedule(expr, CYCLES, seed=2, warmup_cycles=WARMUP)
        assert not np.array_equal(a, b)

    def test_repeated_atoms_draw_independent_streams(self):
        # Two copies of the same atom in one schedule must not be
        # byte-identical: each instantiation derives its own stream.
        trace = compile_schedule(
            "seq(cache-thrash, cache-thrash)",
            CYCLES,
            seed=4,
            warmup_cycles=WARMUP,
        )
        half = CYCLES // 2
        assert not np.array_equal(trace[:half], trace[half:])

    def test_overlay_sums_operands(self):
        # The overlay of x with itself is NOT 2x (independent streams),
        # but the overlay mean must sit near the sum of operand means.
        a = compile_schedule("fp-saturate", CYCLES, seed=5,
                             warmup_cycles=WARMUP)
        b = compile_schedule("branch-storm", CYCLES, seed=5,
                             warmup_cycles=WARMUP)
        both = compile_schedule(
            "overlay(fp-saturate, branch-storm)",
            CYCLES,
            seed=5,
            warmup_cycles=WARMUP,
        )
        assert both.mean() == pytest.approx(a.mean() + b.mean(), rel=0.25)

    def test_ramp_envelope_scales_ends(self):
        trace = compile_schedule(
            "ramp(fp-saturate, 0.0, 1.0)", CYCLES, seed=6,
            warmup_cycles=WARMUP,
        )
        assert trace[0] == 0.0
        assert abs(trace[-1]) > 0.0
        # the first half carries less signal than the second
        assert trace[: CYCLES // 2].sum() < trace[CYCLES // 2 :].sum()

    def test_string_and_node_inputs_agree(self):
        node = parse_schedule("seq(idle-spike, lock-contention)")
        a = compile_schedule(node, CYCLES, seed=2, warmup_cycles=WARMUP)
        b = compile_schedule(
            "seq(idle-spike, lock-contention)", CYCLES, seed=2,
            warmup_cycles=WARMUP,
        )
        assert np.array_equal(a, b)

    def test_span_too_short_for_units(self):
        with pytest.raises(SpecError):
            compile_schedule(
                "seq(cache-thrash, idle-spike, fp-saturate)", 2, seed=0,
                warmup_cycles=0,
            )

    def test_every_profile_compiles(self):
        for name in profile_names():
            trace = compile_schedule(name, 512, seed=0, warmup_cycles=WARMUP)
            assert trace.shape == (512,)
            assert np.isfinite(trace).all()

"""Multi-core scenario tests: superposition, phase, DVFS edges, backends."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.kernels import KernelConfig
from repro.scenarios import (
    CoreSpec,
    DVFSEvent,
    Scenario,
    compile_scenario,
    compile_schedule,
    dvfs_envelope,
    get_scenario,
    resolve_scenario,
    scenario_from_param,
    scenario_names,
    scenario_param,
)

CYCLES = 1024
WARMUP = 32


class TestValidation:
    def test_dvfs_position_out_of_range(self):
        with pytest.raises(SpecError):
            DVFSEvent(1.0, 0.5)
        with pytest.raises(SpecError):
            DVFSEvent(-0.1, 0.5)

    def test_dvfs_negative_scale(self):
        with pytest.raises(SpecError):
            DVFSEvent(0.5, -0.5)

    def test_dvfs_events_must_be_increasing(self):
        with pytest.raises(SpecError) as err:
            CoreSpec(
                "fp-saturate",
                dvfs=(DVFSEvent(0.5, 0.0), DVFSEvent(0.25, 1.0)),
            )
        assert "increasing" in str(err.value)

    def test_duplicate_dvfs_positions_rejected(self):
        with pytest.raises(SpecError):
            CoreSpec(
                "fp-saturate",
                dvfs=(DVFSEvent(0.5, 0.0), DVFSEvent(0.5, 1.0)),
            )

    def test_phase_offset_range(self):
        with pytest.raises(SpecError):
            CoreSpec("fp-saturate", phase_offset=1.0)

    def test_core_schedule_validated_at_construction(self):
        with pytest.raises(SpecError):
            CoreSpec("seq(broken")

    def test_scenario_needs_cores(self):
        with pytest.raises(SpecError):
            Scenario("empty", "no cores", cores=())


class TestDVFSEdges:
    def test_envelope_edge_alignment(self):
        envelope = dvfs_envelope(
            (DVFSEvent(0.25, 0.5), DVFSEvent(0.75, 1.0)), 1000
        )
        assert envelope[0] == 1.0
        assert envelope[249] == 1.0
        assert envelope[250] == 0.5  # edge lands exactly at int(0.25*1000)
        assert envelope[749] == 0.5
        assert envelope[750] == 1.0
        assert envelope[-1] == 1.0

    def test_clock_gate_zeroes_exactly_from_edge(self):
        scenario = Scenario(
            "gate",
            "single gated core",
            cores=(CoreSpec("fp-saturate", dvfs=(DVFSEvent(0.5, 0.0),)),),
        )
        trace = compile_scenario(
            scenario, CYCLES, seed=3, warmup_cycles=WARMUP
        )
        edge = int(0.5 * CYCLES)
        assert np.all(trace[edge:] == 0.0)
        # fp-saturate draws hard the whole time; the cycle before the
        # edge must still be live
        assert trace[edge - 1] > 0.0

    def test_gate_then_wake_restores_signal(self):
        scenario = Scenario(
            "gate-wake",
            "gate off then on",
            cores=(
                CoreSpec(
                    "fp-saturate",
                    dvfs=(DVFSEvent(0.25, 0.0), DVFSEvent(0.5, 1.0)),
                ),
            ),
        )
        trace = compile_scenario(
            scenario, CYCLES, seed=3, warmup_cycles=WARMUP
        )
        lo, hi = int(0.25 * CYCLES), int(0.5 * CYCLES)
        assert np.all(trace[lo:hi] == 0.0)
        assert trace[hi] > 0.0


class TestSuperposition:
    def test_sum_of_single_core_compiles(self):
        cores = (
            CoreSpec("cache-thrash"),
            CoreSpec("memory-burst", gain=0.5),
        )
        combined = compile_scenario(
            Scenario("both", "two cores", cores),
            CYCLES,
            seed=7,
            warmup_cycles=WARMUP,
        )
        parts = [
            compile_scenario(
                Scenario("one", "single", (core,)),
                CYCLES,
                seed=7,
                warmup_cycles=WARMUP,
            )
            for core in cores
        ]
        # Per-core stream seeds derive from the core *index*, so core 1
        # alone (index 0) differs from core 1 in company — compare
        # against single-core compiles only for index 0.
        assert np.array_equal(
            parts[0],
            compile_scenario(
                Scenario("a", "first", (cores[0],)), CYCLES, seed=7,
                warmup_cycles=WARMUP,
            ),
        )
        assert combined.shape == (CYCLES,)
        assert combined.mean() > parts[0].mean()  # second core adds current

    def test_phase_offset_is_a_rotation(self):
        base = compile_scenario(
            Scenario("p0", "no offset", (CoreSpec("phase-oscillation"),)),
            CYCLES,
            seed=11,
            warmup_cycles=WARMUP,
        )
        shifted = compile_scenario(
            Scenario(
                "p25",
                "quarter offset",
                (CoreSpec("phase-oscillation", phase_offset=0.25),),
            ),
            CYCLES,
            seed=11,
            warmup_cycles=WARMUP,
        )
        assert np.array_equal(shifted, np.roll(base, CYCLES // 4))

    def test_aligned_beats_skewed_peak(self):
        aligned = compile_scenario(
            get_scenario("dual-core-aligned"), CYCLES, seed=13,
            warmup_cycles=WARMUP,
        )
        skewed = compile_scenario(
            get_scenario("dual-core-skewed"), CYCLES, seed=13,
            warmup_cycles=WARMUP,
        )
        # in-phase superposition must produce a larger swing than the
        # half-period-offset counterpart
        assert aligned.max() - aligned.min() >= skewed.max() - skewed.min()


class TestDeterminism:
    def test_deterministic_across_kernel_backends(self):
        scenario = get_scenario("quad-core-dvfs")
        with KernelConfig(backend="reference"):
            a = compile_scenario(
                scenario, CYCLES, seed=17, warmup_cycles=WARMUP
            )
        with KernelConfig(backend="vectorized"):
            b = compile_scenario(
                scenario, CYCLES, seed=17, warmup_cycles=WARMUP
            )
        assert np.array_equal(a, b)

    def test_param_round_trip_compiles_identically(self):
        scenario = get_scenario("quad-core-dvfs")
        rebuilt = scenario_from_param(scenario_param(scenario))
        a = compile_scenario(scenario, CYCLES, seed=19, warmup_cycles=WARMUP)
        b = compile_scenario(rebuilt, CYCLES, seed=19, warmup_cycles=WARMUP)
        assert np.array_equal(a, b)

    def test_schedule_compile_matches_single_core_scenario(self):
        expr = "seq(cache-thrash, idle-spike)"
        via_scenario = compile_scenario(
            resolve_scenario(expr), CYCLES, seed=23, warmup_cycles=WARMUP
        )
        # core index 0 derives the same stream seed every time
        direct = compile_schedule(
            expr,
            CYCLES,
            seed=(23 * 1_000_003 + 13) % (2**31 - 1),
            warmup_cycles=WARMUP,
        )
        assert np.array_equal(via_scenario, direct)


class TestCatalog:
    def test_every_catalog_scenario_compiles(self):
        for name in scenario_names():
            trace = compile_scenario(
                get_scenario(name), 512, seed=0, warmup_cycles=WARMUP
            )
            assert trace.shape == (512,)
            assert np.isfinite(trace).all()

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(SpecError) as err:
            get_scenario("warp-drive")
        assert err.value.details["valid_scenarios"] == list(scenario_names())
        assert "quad-core-dvfs" in str(err.value)

    def test_resolve_accepts_profile_names(self):
        scenario = resolve_scenario("cache-thrash")
        assert len(scenario.cores) == 1
        assert scenario.cores[0].schedule == "cache-thrash"

    def test_resolve_rejects_bare_unknown_names(self):
        with pytest.raises(SpecError):
            resolve_scenario("not-a-thing")

    def test_malformed_param_raises_spec_error(self):
        with pytest.raises(SpecError):
            scenario_from_param("{not json")
        with pytest.raises(SpecError):
            scenario_from_param('{"wrong": []}')

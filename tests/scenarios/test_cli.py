"""CLI tests for `repro scenario` and `characterize --scenario`."""

import pytest

from repro.cli import EXIT_OK, EXIT_USAGE, build_parser, main


class TestParser:
    def test_scenario_ls_parses(self):
        args = build_parser().parse_args(["scenario", "ls"])
        assert args.command == "scenario"
        assert args.scenario_command == "ls"

    def test_scenario_run_defaults(self):
        args = build_parser().parse_args(["scenario", "run", "burst-train"])
        assert args.scenarios == ["burst-train"]
        assert args.cycles is None
        assert args.warmup_cycles == 512

    def test_characterize_scenario_flag_repeats(self):
        args = build_parser().parse_args(
            ["characterize", "--scenario", "a", "--scenario", "b"]
        )
        assert args.scenario == ["a", "b"]
        assert args.benchmarks == []


class TestScenarioCommands:
    def test_ls_lists_profiles_and_scenarios(self, capsys):
        assert main(["scenario", "ls"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "cache-thrash" in out
        assert "quad-core-dvfs" in out
        assert "overlay" in out

    def test_show_names_dvfs_edges(self, capsys):
        assert main(["scenario", "show", "quad-core-dvfs"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "clock-gate" in out
        assert "phase offset" in out
        assert '"cores"' in out

    def test_show_accepts_expressions(self, capsys):
        assert (
            main(["scenario", "show", "seq(cache-thrash, idle-spike)"])
            == EXIT_OK
        )
        assert "cores" in capsys.readouterr().out

    def test_show_unknown_name_exits_usage(self, capsys):
        assert main(["scenario", "show", "warp-core"]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "valid scenarios" in err
        assert "quad-core-dvfs" in err
        assert "Traceback" not in err

    def test_run_unknown_name_exits_usage(self, capsys):
        assert main(["scenario", "run", "warp-core"]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "valid scenarios" in err
        assert "Traceback" not in err

    def test_run_malformed_expression_exits_usage(self, capsys):
        assert main(["scenario", "run", "seq(cache-thrash"]) == EXIT_USAGE
        assert "parse error" in capsys.readouterr().err

    def test_run_single_scenario(self, capsys):
        assert (
            main(
                ["scenario", "run", "burst-train",
                 "--cycles", "1024", "--warmup-cycles", "32"]
            )
            == EXIT_OK
        )
        out = capsys.readouterr().out
        assert "burst-train" in out
        assert "est %" in out

    def test_run_cache_flags_conflict(self, capsys):
        assert (
            main(
                ["scenario", "run", "burst-train",
                 "--cache-dir", "x", "--no-cache"]
            )
            == EXIT_USAGE
        )

    def test_run_with_cache_dir_hits_second_time(self, capsys, tmp_path):
        argv = [
            "scenario", "run", "quad-core-dvfs",
            "--cycles", "1024", "--warmup-cycles", "32",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == EXIT_OK
        first = capsys.readouterr().out
        assert "0 cache hits" in first
        assert main(argv) == EXIT_OK
        second = capsys.readouterr().out
        assert "3 cache hits" in second


class TestCharacterizeScenario:
    def test_unknown_scenario_exits_usage(self, capsys):
        assert (
            main(["characterize", "--scenario", "bogus"]) == EXIT_USAGE
        )
        err = capsys.readouterr().err
        assert "valid scenarios" in err
        assert "Traceback" not in err

    def test_no_inputs_exits_usage(self, capsys):
        assert main(["characterize"]) == EXIT_USAGE
        assert "--scenario" in capsys.readouterr().err

    def test_unknown_benchmark_exits_usage(self, capsys):
        assert main(["characterize", "doom"]) == EXIT_USAGE
        assert "unknown benchmark" in capsys.readouterr().err

    @pytest.mark.slow
    def test_mixed_benchmark_and_scenario(self, capsys):
        assert (
            main(
                ["characterize", "gzip",
                 "--scenario", "burst-train", "--cycles", "2048"]
            )
            == EXIT_OK
        )
        out = capsys.readouterr().out
        assert "gzip" in out
        assert "burst-train" in out

"""Scenario-through-pipeline tests: specs, caching, blocks, serve."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.pipeline import (
    SCENARIO_STAGES,
    BatchOptions,
    build_scenario_jobs,
    group_blocks,
    prediction_from_outcome,
    stage_cache_keys,
    submit,
    trace_identity,
)
from repro.power import PowerSupplyNetwork
from repro.serve.protocol import RequestError, build_spec, parse_request

CYCLES = 1024
WARMUP = 32


@pytest.fixture(scope="module")
def net():
    return PowerSupplyNetwork()


def jobs_for(net, *names, **kw):
    kw.setdefault("cycles", CYCLES)
    kw.setdefault("seed", 5)
    kw.setdefault("warmup_cycles", WARMUP)
    return build_scenario_jobs(names, net, **kw)


class TestSpecs:
    def test_stages_and_param(self, net):
        (spec,) = jobs_for(net, "quad-core-dvfs")
        assert spec.stages == SCENARIO_STAGES
        assert spec.benchmark == "quad-core-dvfs"
        assert '"cores"' in spec.param("scenario")

    def test_digest_is_stable(self, net):
        a = jobs_for(net, "burst-train")[0].digest()
        b = jobs_for(net, "burst-train")[0].digest()
        assert a == b

    def test_trace_identity_kind(self, net):
        (spec,) = jobs_for(net, "burst-train")
        identity = trace_identity(spec)
        assert identity["kind"] == "scenario"
        assert identity["dtype"] == "float64"
        assert identity["scenario"] == spec.param("scenario")

    def test_different_scenarios_never_share_trace_keys(self, net):
        a, b = jobs_for(net, "burst-train", "memory-storm")
        assert (
            stage_cache_keys(a)["scenario"] != stage_cache_keys(b)["scenario"]
        )

    def test_expression_jobs_key_on_structure_not_name(self, net):
        # Equivalent expressions with different whitespace parse to the
        # same canonical structure, but JobSpec.benchmark strings differ
        # — only the scenario *stage key* (structure hash) must match.
        a = jobs_for(net, "seq(cache-thrash, idle-spike)")[0]
        b = jobs_for(net, "seq( cache-thrash ,idle-spike )")[0]
        assert a.param("scenario") == b.param("scenario")

    def test_unknown_scenario_raises_structured_error(self, net):
        with pytest.raises(SpecError) as err:
            jobs_for(net, "made-up-scenario")
        assert "valid scenarios" in str(err.value)

    def test_default_cycles_come_from_scenario(self, net):
        (spec,) = build_scenario_jobs(["burst-train"], net)
        assert spec.cycles == 32768


class TestExecution:
    def test_second_run_hits_cache(self, net, tmp_path):
        specs = jobs_for(net, "quad-core-dvfs", "burst-train")
        first = submit(specs, BatchOptions(jobs=1, cache_dir=str(tmp_path)))
        assert all(o.ok for o in first.outcomes)
        assert all(o.hit_count == 0 for o in first.outcomes)
        second = submit(specs, BatchOptions(jobs=1, cache_dir=str(tmp_path)))
        for outcome in second.outcomes:
            assert outcome.ok
            assert set(outcome.cache_hits) == set(SCENARIO_STAGES)
            assert all(outcome.cache_hits.values())

    def test_cached_artifacts_match_fresh(self, net, tmp_path):
        specs = jobs_for(net, "gating-steps")
        first = submit(specs, BatchOptions(jobs=1, cache_dir=str(tmp_path)))
        second = submit(specs, BatchOptions(jobs=1, cache_dir=str(tmp_path)))
        fa = first.outcomes[0].artifacts["characterize"]
        sa = second.outcomes[0].artifacts["characterize"]
        assert fa == sa

    def test_prediction_from_outcome_works(self, net, tmp_path):
        specs = jobs_for(net, "resonance-sweep")
        batch = submit(specs, BatchOptions(jobs=1, cache_dir=str(tmp_path)))
        p = prediction_from_outcome(batch.outcomes[0])
        assert p.name == "resonance-sweep"
        assert 0.0 <= p.estimated <= 1.0
        assert 0.0 <= p.observed <= 1.0

    def test_scenario_trace_round_trips_result_cache(self, net, tmp_path):
        # A cache-hit scenario stage must restore the trace for the
        # voltage stage: compare voltage artifacts fresh vs cached.
        specs = jobs_for(net, "burst-train")
        first = submit(specs, BatchOptions(jobs=1, cache_dir=str(tmp_path)))
        second = submit(specs, BatchOptions(jobs=1, cache_dir=str(tmp_path)))
        assert (
            first.outcomes[0].artifacts["voltage"]
            == second.outcomes[0].artifacts["voltage"]
        )


class TestBlocks:
    def test_scenario_jobs_fuse_into_blocks(self, net):
        specs = jobs_for(net, "burst-train", "memory-storm", "gating-steps")
        units = group_blocks(list(enumerate(specs)))
        assert len(units) == 1  # all three stack despite distinct params
        _, unit = units[0]
        assert getattr(unit, "is_block", False)
        assert len(unit.members) == 3

    def test_block_run_matches_per_job(self, net, tmp_path):
        specs = jobs_for(net, "burst-train", "memory-storm")
        solo = submit(
            specs, BatchOptions(jobs=1, cache_dir=None, block="never")
        )
        fused = submit(
            specs, BatchOptions(jobs=1, cache_dir=None, block="always")
        )
        for a, b in zip(solo.outcomes, fused.outcomes):
            assert a.artifacts["characterize"]["estimated"] == pytest.approx(
                b.artifacts["characterize"]["estimated"], abs=1e-12
            )


class TestServeProtocol:
    def test_scenario_source_parses(self):
        request = parse_request(
            {"scenario": "quad-core-dvfs", "cycles": CYCLES,
             "warmup_cycles": WARMUP}
        )
        assert request.source == "scenario"
        assert request.scenario == "quad-core-dvfs"

    def test_scenario_builds_spec(self, net):
        request = parse_request(
            {"scenario": "seq(cache-thrash, idle-spike)", "cycles": CYCLES}
        )
        spec = build_spec(
            request, network_for=lambda imp: net, store=None, spool=None
        )
        assert spec.stages == SCENARIO_STAGES
        assert spec.param("scenario") is not None

    def test_unknown_scenario_maps_to_request_error(self):
        with pytest.raises(RequestError) as err:
            parse_request({"scenario": "bogus-scenario"})
        assert "valid scenarios" in str(err.value)
        assert err.value.details.get("valid_scenarios")

    def test_malformed_expression_maps_to_request_error(self):
        with pytest.raises(RequestError) as err:
            parse_request({"scenario": "seq(cache-thrash"})
        assert "parse error" in str(err.value)

    def test_two_sources_rejected(self):
        with pytest.raises(RequestError):
            parse_request({"scenario": "burst-train", "benchmark": "gcc"})

    def test_control_kind_rejects_scenarios(self):
        with pytest.raises(RequestError):
            parse_request({"kind": "control", "scenario": "burst-train"})

    def test_scenario_requests_coalesce_by_digest(self, net):
        a = build_spec(
            parse_request({"scenario": "burst-train", "cycles": CYCLES}),
            network_for=lambda imp: net, store=None, spool=None,
        )
        b = build_spec(
            parse_request({"scenario": "burst-train", "cycles": CYCLES}),
            network_for=lambda imp: net, store=None, spool=None,
        )
        assert a.digest() == b.digest()


class TestObsSpans:
    def test_scenario_stage_emits_compile_span(self, net, tmp_path):
        from repro import obs

        log = tmp_path / "obs.jsonl"
        obs.enable("jsonl", str(log))
        try:
            submit(
                jobs_for(net, "burst-train"),
                BatchOptions(jobs=1, cache_dir=None),
            )
        finally:
            obs.finish()
        text = log.read_text()
        assert "scenario.compile" in text
        assert "stage.scenario" in text


def test_superposed_trace_feeds_batched_kernels(net):
    # The batched kernel path must accept multi-core superposed traces:
    # run the fused characterize over quad-core-dvfs under the batched
    # backend and the reference backend, and agree.
    from repro.kernels import KernelConfig

    specs = build_scenario_jobs(
        ["quad-core-dvfs", "dual-core-aligned"],
        net,
        cycles=CYCLES,
        seed=5,
        warmup_cycles=WARMUP,
    )
    with KernelConfig(backend="batched"):
        fused = submit(
            specs, BatchOptions(jobs=1, cache_dir=None, block="always")
        )
    with KernelConfig(backend="reference"):
        solo = submit(
            specs, BatchOptions(jobs=1, cache_dir=None, block="never")
        )
    for a, b in zip(fused.outcomes, solo.outcomes):
        assert a.artifacts["characterize"]["estimated"] == pytest.approx(
            b.artifacts["characterize"]["estimated"], abs=1e-9
        )
        est = a.artifacts["characterize"]["estimated"]
        assert np.isfinite(est)

"""Unit tests for the one-call evaluation report."""

import pytest

from repro.report import QUICK_SUBSET, generate_report


@pytest.fixture(scope="module")
def quick_report():
    # Small subset + short traces: fast enough for the test suite while
    # exercising every section.
    return generate_report(
        cycles=8192,
        names=("gzip", "mcf", "mgrid", "gcc", "vpr"),
        include_control=False,
    )


class TestReport:
    def test_all_sections_present(self, quick_report):
        for heading in (
            "Workloads",
            "Gaussian windows (Figure 6)",
            "Offline voltage prediction (Figure 9",
            "Current Gaussianity vs L2 misses (Figure 12)",
            "Monitor error vs wavelet terms (Figure 13)",
        ):
            assert heading in quick_report

    def test_control_section_toggle(self, quick_report):
        assert "Scheme comparison (Table 2" not in quick_report

    def test_paper_references_included(self, quick_report):
        assert "paper:" in quick_report
        assert "EXPERIMENTS.md" in quick_report

    def test_benchmarks_listed(self, quick_report):
        for name in ("gzip", "mcf", "mgrid"):
            assert name in quick_report

    def test_rms_error_reported(self, quick_report):
        assert "RMS error" in quick_report

    def test_quick_subset_covers_groups(self):
        from repro.experiments import (
            HIGH_L2_MISS,
            LOW_L2_MISS,
            PROBLEMATIC,
            QUIET,
        )

        for group in (PROBLEMATIC, QUIET, LOW_L2_MISS, HIGH_L2_MISS):
            assert set(group) & set(QUICK_SUBSET), group

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        # Reuses the in-process trace cache, so this is cheap.
        assert main([
            "report", "--cycles", "8192", "--no-control"
        ]) == 0
        out = capsys.readouterr().out
        assert "evaluation report" in out

"""The committed API reference must match the live package."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_api_doc_is_current():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_doc.py"), "--check"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

"""Unit tests for the sequential prefetcher and MSHR limiting."""

import pytest

from repro.uarch import (
    CacheHierarchy,
    Instruction,
    OpClass,
    Pipeline,
    ProcessorConfig,
    TABLE_1,
    simulate_benchmark,
)


class TestPrefetchHierarchy:
    def test_prefetch_pulls_next_line(self):
        h = CacheHierarchy(TABLE_1)
        assert h.prefetch_data(0x1000)
        assert h.l1d.probe(0x1040)
        assert h.l2.probe(0x1040)
        assert h.prefetches == 1

    def test_prefetch_noop_when_resident(self):
        h = CacheHierarchy(TABLE_1)
        h.access_data(0x1040)
        assert not h.prefetch_data(0x1000)
        assert h.prefetches == 0


class TestPrefetchPipeline:
    def _streaming_loads(self, count):
        # Sequential 8-byte walks: 8 loads per line, classic prefetch food.
        return [
            Instruction(
                OpClass.LOAD, pc=0x400000 + 4 * (i % 16), addr=0x5000_0000 + 8 * i
            )
            for i in range(count)
        ]

    def _run(self, config, insts):
        pipe = Pipeline(config, iter(insts))
        for line in sorted({i.pc >> 6 for i in insts}):
            pipe.caches.access_instruction(line << 6)
        while not pipe.drained and pipe.cycle < 300_000:
            pipe.tick()
        return pipe

    def test_prefetch_speeds_up_streaming(self):
        insts = self._streaming_loads(600)
        plain = self._run(TABLE_1, insts)
        pf = self._run(ProcessorConfig(prefetch_next_line=True), insts)
        # Miss-triggered next-line prefetch halves the demand misses
        # (every other line arrives early), buying a solid speedup.
        assert pf.stats.cycles < 0.95 * plain.stats.cycles
        assert pf.stats.l1d_misses < 0.7 * plain.stats.l1d_misses
        assert pf.caches.prefetches > 0

    def test_prefetch_helps_real_streaming_benchmark(self):
        base = simulate_benchmark("swim", cycles=8192, use_cache=False)
        pf = simulate_benchmark(
            "swim",
            cycles=8192,
            config=ProcessorConfig(prefetch_next_line=True),
            use_cache=False,
        )
        assert pf.stats.ipc > base.stats.ipc

    def test_prefetch_off_by_default(self):
        assert TABLE_1.prefetch_next_line is False


class TestMshr:
    def test_outstanding_misses_bounded(self):
        cfg = ProcessorConfig(mshr_entries=2)
        # Independent loads to distinct lines: unlimited MLP if unchecked.
        insts = [
            Instruction(
                OpClass.LOAD, pc=0x400000 + 4 * (i % 16),
                addr=0x5000_0000 + 64 * i,
            )
            for i in range(60)
        ]
        pipe = Pipeline(cfg, iter(insts))
        for line in sorted({i.pc >> 6 for i in insts}):
            pipe.caches.access_instruction(line << 6)
        peak = 0
        while not pipe.drained and pipe.cycle < 100_000:
            pipe.tick()
            peak = max(peak, pipe._mem_outstanding)
        assert peak <= 2
        assert pipe.stats.committed == 60

    def test_more_mshrs_more_mlp(self):
        insts = [
            Instruction(
                OpClass.LOAD, pc=0x400000 + 4 * (i % 16),
                addr=0x5000_0000 + 64 * i,
            )
            for i in range(120)
        ]

        def run(mshrs):
            pipe = Pipeline(ProcessorConfig(mshr_entries=mshrs), iter(list(insts)))
            for line in sorted({i.pc >> 6 for i in insts}):
                pipe.caches.access_instruction(line << 6)
            while not pipe.drained and pipe.cycle < 200_000:
                pipe.tick()
            return pipe.stats.cycles

        assert run(16) < 0.5 * run(1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(mshr_entries=0)

"""Unit and behavioural tests for the out-of-order pipeline."""

import numpy as np
import pytest

from repro.uarch import (
    Instruction,
    OpClass,
    Pipeline,
    Simulator,
    TABLE_1,
    WattchPowerModel,
    simulate_benchmark,
)


def run_insts(insts, max_cycles=10_000, config=TABLE_1):
    insts = list(insts)
    pipe = Pipeline(config, iter(insts))
    # Pre-touch the code lines so tests measure steady-state behaviour
    # rather than compulsory I-cache misses; data stays cold on purpose.
    for line in sorted({i.pc >> 6 for i in insts}):
        pipe.caches.access_instruction(line << 6)
    currents = []
    while not pipe.drained and pipe.cycle < max_cycles:
        currents.append(pipe.tick())
    return pipe, np.array(currents)


def alu(n, pc0=0x400000, dep=0):
    return [
        Instruction(OpClass.IALU, pc=pc0 + 4 * i, src1_dist=dep) for i in range(n)
    ]


class TestBasicExecution:
    def test_all_instructions_commit(self):
        pipe, _ = run_insts(alu(100))
        assert pipe.stats.committed == 100

    def test_independent_alus_reach_high_ipc(self):
        pipe, _ = run_insts(alu(4000))
        # 4-wide machine on independent 1-cycle ops: IPC near the width
        # once startup is amortized.
        assert pipe.stats.ipc > 2.5

    def test_serial_chain_is_slow(self):
        pipe, _ = run_insts(alu(2000, dep=1))
        assert pipe.stats.ipc < 1.2

    def test_drained(self):
        pipe, _ = run_insts(alu(10))
        assert pipe.drained

    def test_empty_stream(self):
        pipe, currents = run_insts([])
        assert pipe.drained
        assert len(currents) == 0 or pipe.stats.committed == 0

    def test_cycle_counter_advances(self):
        pipe, currents = run_insts(alu(50))
        assert pipe.cycle == len(currents) == pipe.stats.cycles


class TestMemory:
    def test_load_latency_gates_dependents(self):
        # load (cold: 269 cycles) then a dependent chain: total time is
        # dominated by the memory access.
        insts = [Instruction(OpClass.LOAD, pc=0x400000, addr=0x5000_0000)]
        insts += alu(10, pc0=0x400100, dep=1)
        pipe, currents = run_insts(insts)
        assert len(currents) > 250

    def test_l2_outstanding_flag(self):
        insts = [Instruction(OpClass.LOAD, pc=0x400000, addr=0x5000_0000)]
        insts += alu(4, pc0=0x400100, dep=1)
        pipe = Pipeline(TABLE_1, iter(insts))
        flags = []
        while not pipe.drained and pipe.cycle < 2000:
            pipe.tick()
            flags.append(pipe.l2_miss_outstanding)
        assert sum(flags) > 200  # the miss was outstanding most of the run

    def test_l1_hits_do_not_raise_flag(self):
        warm = [Instruction(OpClass.LOAD, pc=0x400000, addr=0x1000)]
        hits = [
            Instruction(OpClass.LOAD, pc=0x400000 + 4 * i, addr=0x1000)
            for i in range(1, 50)
        ]
        pipe = Pipeline(TABLE_1, iter(warm + hits))
        flags = []
        while not pipe.drained and pipe.cycle < 2000:
            pipe.tick()
            flags.append(pipe.l2_miss_outstanding)
        # Only the first (compulsory miss) raises the flag.
        assert sum(flags) < 300

    def test_store_commits_through_cache(self):
        insts = [Instruction(OpClass.STORE, pc=0x400000, addr=0x1000)]
        pipe, _ = run_insts(insts)
        assert pipe.stats.committed == 1
        assert pipe.stats.l1d_accesses == 1

    def test_lsq_bounds_inflight_mem_ops(self):
        cfg = TABLE_1
        loads = [
            Instruction(OpClass.LOAD, pc=0x400000 + 4 * i, addr=0x5000_0000 + 64 * i)
            for i in range(200)
        ]
        pipe = Pipeline(cfg, iter(loads))
        for _ in range(60):
            pipe.tick()
        assert pipe._lsq_count <= cfg.lsq_size


class TestBranches:
    def test_correct_prediction_no_stall(self):
        # A strongly biased not-taken branch every 8 instructions.
        insts = []
        for i in range(800):
            pc = 0x400000 + 4 * (i % 64)
            if i % 8 == 7:
                insts.append(
                    Instruction(OpClass.BRANCH, pc=pc, addr=pc + 16, taken=False)
                )
            else:
                insts.append(Instruction(OpClass.IALU, pc=pc))
        pipe, _ = run_insts(insts)
        assert pipe.stats.misprediction_rate < 0.1
        assert pipe.stats.ipc > 2.0

    def test_random_branches_cause_stalls(self):
        rng = np.random.default_rng(0)
        insts = []
        for i in range(800):
            pc = 0x400000 + 4 * (i % 64)
            if i % 8 == 7:
                insts.append(
                    Instruction(
                        OpClass.BRANCH,
                        pc=pc,
                        addr=pc + 16,
                        taken=bool(rng.random() < 0.5),
                    )
                )
            else:
                insts.append(Instruction(OpClass.IALU, pc=pc))
        pipe, _ = run_insts(insts)
        assert pipe.stats.mispredictions > 10
        assert pipe.stats.ipc < 2.0

    def test_mispredict_creates_fetch_bubble(self):
        # One guaranteed-mispredicted branch (cold predictor, not-taken
        # start... initialized weakly-taken, so a not-taken branch at a
        # fresh PC mispredicts) splits two ALU blocks.
        insts = alu(8)
        insts.append(
            Instruction(OpClass.BRANCH, pc=0x500000, addr=0x500100, taken=False)
        )
        insts += alu(8, pc0=0x600000)
        pipe, currents = run_insts(insts)
        base_pipe, base_currents = run_insts(alu(16) + alu(1, pc0=0x600000))
        assert len(currents) >= len(base_currents) + TABLE_1.branch_penalty - 2


class TestControlHooks:
    def test_stall_issue_reduces_current(self):
        stream = alu(4000)
        pipe = Pipeline(TABLE_1, iter(stream))
        for line in sorted({i.pc >> 6 for i in stream}):
            pipe.caches.access_instruction(line << 6)
        free = [pipe.tick() for _ in range(300)]
        pipe.stall_issue = True
        stalled = [pipe.tick() for _ in range(300)]
        assert np.mean(stalled[50:]) < np.mean(free[50:]) - 5.0
        assert pipe.stats.stall_cycles == 300

    def test_inject_noops_raises_current(self):
        pipe = Pipeline(TABLE_1, iter([]))
        quiet = [pipe.tick() for _ in range(50)]
        pipe.inject_noops = 4
        boosted = [pipe.tick() for _ in range(50)]
        assert np.mean(boosted) > np.mean(quiet) + 10.0
        assert pipe.stats.noops_injected == 200


class TestPowerIntegration:
    def test_current_within_model_bounds(self):
        pm = WattchPowerModel()
        result = simulate_benchmark("gzip", cycles=3000, use_cache=False)
        assert result.current.min() >= pm.min_current - 1e-9
        assert result.current.max() <= pm.max_current + 4 * 4.0 + 1e-9

    def test_stall_current_near_floor(self):
        pm = WattchPowerModel()
        pipe = Pipeline(TABLE_1, iter([]))
        current = [pipe.tick() for _ in range(20)]
        assert current[-1] == pytest.approx(pm.min_current)


class TestSimulatorDriver:
    def test_max_cycles_respected(self):
        sim = Simulator()
        res = sim.run(iter(alu(100_000)), max_cycles=500)
        assert res.cycles == 500

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Simulator().run(iter([]), -1)

    def test_benchmark_cache_hit_is_same_object(self):
        a = simulate_benchmark("gzip", cycles=2000)
        b = simulate_benchmark("gzip", cycles=2000)
        assert a is b

    def test_deterministic_across_processes(self):
        a = simulate_benchmark("gzip", cycles=2000, use_cache=False)
        b = simulate_benchmark("gzip", cycles=2000, use_cache=False)
        np.testing.assert_array_equal(a.current, b.current)

    def test_seed_changes_trace(self):
        a = simulate_benchmark("gzip", cycles=2000, seed=1, use_cache=False)
        b = simulate_benchmark("gzip", cycles=2000, seed=2, use_cache=False)
        assert not np.array_equal(a.current, b.current)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            simulate_benchmark("doom", cycles=100)

    def test_controller_hook_called(self):
        calls = []

        class Recorder:
            def update(self, current):
                calls.append(current)
                return False, 0

        Simulator().run(iter(alu(500)), 200, controller=Recorder())
        assert len(calls) == 200

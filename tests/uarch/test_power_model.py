"""Unit tests for the Wattch-style power model and run statistics."""

import pytest

from repro.uarch import (
    ActivityCounters,
    ClockGating,
    RunStatistics,
    UnitPower,
    WattchPowerModel,
)


@pytest.fixture
def model():
    return WattchPowerModel()


@pytest.fixture
def idle():
    return ActivityCounters()


class TestCurrentComputation:
    def test_idle_draw_is_floor(self, model, idle):
        assert model.current(idle) == pytest.approx(model.min_current)

    def test_activity_adds_power(self, model, idle):
        base = model.current(idle)
        idle.issued_ialu = 2
        assert model.current(idle) > base + 2.0

    def test_linear_in_counts(self, model):
        a1, a2 = ActivityCounters(), ActivityCounters()
        a1.dcache_accesses = 1
        a2.dcache_accesses = 2
        idle_draw = model.current(ActivityCounters())
        one = model.current(a1)
        two = model.current(a2)
        # Going 1 -> 2 accesses adds exactly one per-access increment.
        unit = next(u for u in model.units if u.counter == "dcache_accesses")
        assert two - one == pytest.approx(unit.per_access)
        # Going 0 -> 1 also swaps the idle residual for the access cost.
        assert one - idle_draw == pytest.approx(unit.per_access - unit.idle)

    def test_noop_injection_cost(self, model, idle):
        base = model.current(idle)
        idle.injected_noops = 3
        assert model.current(idle) == pytest.approx(base + 3 * 4.0)

    def test_envelope_ordering(self, model):
        assert model.min_current < model.max_current

    def test_full_activity_below_max(self, model):
        a = ActivityCounters()
        for unit in model.units:
            setattr(a, unit.counter, unit.max_per_cycle)
        assert model.current(a) == pytest.approx(model.max_current)


class TestClockGating:
    def test_none_is_constant(self):
        model = WattchPowerModel(gating=ClockGating.NONE)
        quiet, busy = ActivityCounters(), ActivityCounters()
        busy.issued_ialu = 4
        busy.dcache_accesses = 2
        assert model.current(quiet) == pytest.approx(model.current(busy))

    def test_ideal_has_lowest_idle(self):
        cc3 = WattchPowerModel(gating=ClockGating.CC3)
        ideal = WattchPowerModel(gating=ClockGating.IDEAL)
        idle = ActivityCounters()
        assert ideal.current(idle) < cc3.current(idle)

    def test_none_has_highest_idle(self):
        cc3 = WattchPowerModel(gating=ClockGating.CC3)
        none = WattchPowerModel(gating=ClockGating.NONE)
        idle = ActivityCounters()
        assert none.current(idle) > cc3.current(idle)

    def test_idle_fraction_validation(self):
        with pytest.raises(ValueError):
            WattchPowerModel(idle_fraction=1.5)


class TestCustomUnits:
    def test_custom_unit_table(self):
        model = WattchPowerModel(
            clock_tree=1.0,
            static=0.5,
            units=(UnitPower("x", "dcache_accesses", 2.0, 0.1, 2),),
        )
        a = ActivityCounters()
        assert model.current(a) == pytest.approx(1.6)
        a.dcache_accesses = 2
        assert model.current(a) == pytest.approx(5.5)


class TestRunStatistics:
    def test_derived_rates(self):
        s = RunStatistics(
            cycles=1000,
            committed=1500,
            branches=200,
            mispredictions=20,
            l2_accesses=50,
            l2_misses=10,
        )
        assert s.ipc == pytest.approx(1.5)
        assert s.misprediction_rate == pytest.approx(0.1)
        assert s.l2_miss_rate == pytest.approx(0.2)
        assert s.l2_mpki == pytest.approx(1000 * 10 / 1500)

    def test_zero_denominators(self):
        s = RunStatistics()
        assert s.ipc == 0.0
        assert s.misprediction_rate == 0.0
        assert s.l2_miss_rate == 0.0
        assert s.l2_mpki == 0.0

"""Property-based tests (hypothesis) for the microarchitecture substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch import (
    ActivityCounters,
    BranchTargetBuffer,
    Cache,
    CacheConfig,
    CombinedPredictor,
    Instruction,
    OpClass,
    Pipeline,
    ReturnAddressStack,
    TABLE_1,
    WattchPowerModel,
)

op_strategy = st.sampled_from(
    [
        OpClass.IALU,
        OpClass.IMULT,
        OpClass.FPALU,
        OpClass.FPMULT,
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.BRANCH,
    ]
)


@st.composite
def instruction_lists(draw, max_size=120):
    n = draw(st.integers(min_value=1, max_value=max_size))
    insts = []
    for i in range(n):
        op = draw(op_strategy)
        insts.append(
            Instruction(
                op,
                pc=0x400000 + 4 * (i % 32),
                src1_dist=draw(st.integers(0, 6)),
                src2_dist=draw(st.integers(0, 6)),
                addr=0x1000 + 8 * draw(st.integers(0, 255)),
                taken=draw(st.booleans()) if op is OpClass.BRANCH else False,
            )
        )
    return insts


@settings(max_examples=25, deadline=None)
@given(instruction_lists())
def test_pipeline_commits_every_instruction(insts):
    """No instruction is lost or duplicated, whatever the mix."""
    pipe = Pipeline(TABLE_1, iter(insts))
    guard = 0
    while not pipe.drained and guard < 200_000:
        pipe.tick()
        guard += 1
    assert pipe.drained
    assert pipe.stats.committed == len(insts)
    assert pipe.stats.dispatched == len(insts)


@settings(max_examples=25, deadline=None)
@given(instruction_lists())
def test_pipeline_stat_invariants(insts):
    """Monotone pipeline-flow inequalities hold at every cycle."""
    pipe = Pipeline(TABLE_1, iter(insts))
    guard = 0
    while not pipe.drained and guard < 200_000:
        pipe.tick()
        guard += 1
        s = pipe.stats
        assert s.committed <= s.dispatched <= s.fetched
        assert s.issued <= s.dispatched
        assert s.mispredictions <= s.branches
        assert pipe._lsq_count <= TABLE_1.lsq_size
        assert len(pipe._ruu) <= TABLE_1.ruu_size


@settings(max_examples=20, deadline=None)
@given(instruction_lists(max_size=80))
def test_current_always_within_power_envelope(insts):
    pm = WattchPowerModel()
    pipe = Pipeline(TABLE_1, iter(insts), pm)
    guard = 0
    while not pipe.drained and guard < 200_000:
        amps = pipe.tick()
        guard += 1
        assert pm.min_current - 1e-9 <= amps <= pm.max_current + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 2**20), min_size=1, max_size=200),
    st.sampled_from([1, 2, 4]),  # geometry must divide evenly
)
def test_cache_hit_after_access(addresses, ways):
    """Any just-accessed address is resident (LRU never evicts the MRU)."""
    cache = Cache(CacheConfig(4096, ways, 64, 1), "t")
    for addr in addresses:
        cache.access(addr)
        assert cache.probe(addr)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=200))
def test_cache_accounting(addresses):
    cache = Cache(CacheConfig(2048, 2, 64, 1), "t")
    for addr in addresses:
        cache.access(addr)
    assert cache.hits + cache.misses == len(addresses)
    # Distinct lines touched bounds the miss count from below.
    distinct = len({a >> 6 for a in addresses})
    assert cache.misses >= min(distinct, 1)
    assert cache.misses <= len(addresses)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_predictor_rate_bounded(outcomes):
    p = CombinedPredictor(256, 256, 8, 256)
    for taken in outcomes:
        p.update(0x4040, taken)
    assert 0.0 <= p.misprediction_rate <= 1.0
    assert p.lookups == len(outcomes)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**30), min_size=1, max_size=100))
def test_ras_depth_bounded(pushes):
    ras = ReturnAddressStack(8)
    for value in pushes:
        ras.push(value)
        assert len(ras) <= 8
    # Pops come back most-recent-first for the retained suffix.
    expected = pushes[-8:][::-1]
    popped = [ras.pop() for _ in range(len(expected))]
    assert popped == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2**16), st.integers(0, 2**16)),
                min_size=1, max_size=120))
def test_btb_returns_latest_target(updates):
    btb = BranchTargetBuffer(64, 2)
    latest = {}
    for pc, target in updates:
        btb.update(4 * pc, target)
        latest[4 * pc] = target
    # The most recently updated PC is always resident with its target.
    pc, target = 4 * updates[-1][0], latest[4 * updates[-1][0]]
    assert btb.lookup(pc) == target


def test_activity_counters_reset_all_fields():
    a = ActivityCounters()
    for name in a.__slots__:
        setattr(a, name, 3)
    a.reset()
    assert all(getattr(a, name) == 0 for name in a.__slots__)

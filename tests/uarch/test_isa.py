"""Unit tests for the instruction model."""

import pytest

from repro.uarch import Instruction, OpClass
from repro.uarch.isa import FU_LATENCY_FIELD, MEM_OPS


class TestInstruction:
    def test_defaults(self):
        inst = Instruction(OpClass.IALU)
        assert inst.pc == 0
        assert inst.src1_dist == 0 and inst.src2_dist == 0
        assert not inst.taken
        assert not inst.is_call and not inst.is_return

    def test_is_mem(self):
        assert Instruction(OpClass.LOAD).is_mem
        assert Instruction(OpClass.STORE).is_mem
        assert not Instruction(OpClass.IALU).is_mem
        assert set(MEM_OPS) == {OpClass.LOAD, OpClass.STORE}

    def test_is_branch(self):
        assert Instruction(OpClass.BRANCH).is_branch
        assert not Instruction(OpClass.FPALU).is_branch

    def test_negative_dependency_rejected(self):
        with pytest.raises(ValueError):
            Instruction(OpClass.IALU, src1_dist=-1)
        with pytest.raises(ValueError):
            Instruction(OpClass.IALU, src2_dist=-2)

    def test_latency_table_covers_non_mem_ops(self):
        covered = set(FU_LATENCY_FIELD)
        everything = set(OpClass)
        assert everything - covered == {OpClass.LOAD, OpClass.STORE}

    def test_repr_mentions_op(self):
        assert "LOAD" in repr(Instruction(OpClass.LOAD, pc=0x400))

    def test_slots_prevent_typos(self):
        inst = Instruction(OpClass.IALU)
        with pytest.raises(AttributeError):
            inst.srcl_dist = 3  # typo'd attribute must not silently stick

"""Unit tests for branch predictors, BTB and RAS."""

import numpy as np
import pytest

from repro.uarch import (
    BimodalPredictor,
    BranchTargetBuffer,
    CombinedPredictor,
    GsharePredictor,
    ReturnAddressStack,
    TwoBitCounterTable,
)


class TestTwoBitCounter:
    def test_saturation_up(self):
        t = TwoBitCounterTable(16, initial=0)
        for _ in range(10):
            t.update(3, True)
        assert t.predict(3)

    def test_saturation_down(self):
        t = TwoBitCounterTable(16, initial=3)
        for _ in range(10):
            t.update(3, False)
        assert not t.predict(3)

    def test_hysteresis(self):
        t = TwoBitCounterTable(16, initial=0)
        t.update(0, True)
        t.update(0, True)
        t.update(0, True)  # counter = 3
        t.update(0, False)  # counter = 2: still predicts taken
        assert t.predict(0)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            TwoBitCounterTable(12)

    def test_initial_range(self):
        with pytest.raises(ValueError):
            TwoBitCounterTable(16, initial=4)

    def test_index_masking(self):
        t = TwoBitCounterTable(16)
        assert t.index(16) == 0
        assert t.index(17) == 1


class TestBimodal:
    def test_learns_biased_branch(self):
        p = BimodalPredictor(64)
        rng = np.random.default_rng(0)
        correct = 0
        for _ in range(2000):
            taken = bool(rng.random() < 0.9)
            if p.predict(0x4000) == taken:
                correct += 1
            p.update(0x4000, taken)
        assert correct / 2000 > 0.8

    def test_distinct_pcs_independent(self):
        p = BimodalPredictor(4096)
        for _ in range(8):
            p.update(0x1000, True)
            p.update(0x1004, False)
        assert p.predict(0x1000)
        assert not p.predict(0x1004)


class TestGshare:
    def test_learns_alternating_pattern(self):
        # T,N,T,N... is invisible to bimodal but trivial for gshare.
        p = GsharePredictor(4096, 12)
        outcomes = [bool(i % 2) for i in range(4000)]
        correct = 0
        for taken in outcomes:
            if p.predict(0x4000) == taken:
                correct += 1
            p.update(0x4000, taken)
        assert correct / len(outcomes) > 0.9

    def test_bad_history_bits(self):
        with pytest.raises(ValueError):
            GsharePredictor(64, 0)


class TestCombined:
    def test_beats_components_on_mixed_workload(self):
        rng = np.random.default_rng(1)
        combined = CombinedPredictor(1024, 1024, 10, 1024)
        # A biased branch (bimodal-friendly) and a periodic one
        # (gshare-friendly) interleaved.
        for i in range(6000):
            combined.update(0x1000, bool(rng.random() < 0.95))
            combined.update(0x2000, bool(i % 2))
        assert combined.misprediction_rate < 0.15

    def test_counts(self):
        c = CombinedPredictor()
        c.update(0x40, True)
        assert c.lookups == 1
        assert 0.0 <= c.misprediction_rate <= 1.0

    def test_empty_rate(self):
        assert CombinedPredictor().misprediction_rate == 0.0


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 2)
        assert btb.lookup(0x400) is None
        btb.update(0x400, 0x999)
        assert btb.lookup(0x400) == 0x999

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(4, 2)  # 2 sets, 2 ways
        sets = btb.sets
        # Three branches mapping to the same set: the LRU one is evicted.
        pcs = [4 * (0 + sets * k) for k in range(3)]
        btb.update(pcs[0], 1)
        btb.update(pcs[1], 2)
        btb.lookup(pcs[0])  # touch pc0 -> pc1 becomes LRU
        btb.update(pcs[2], 3)
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x400, 0x1)
        btb.update(0x400, 0x2)
        assert btb.lookup(0x400) == 0x2

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 3)


class TestRAS:
    def test_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        assert len(ras) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestPredictorHarnessAndFactory:
    def test_harness_counts(self):
        from repro.uarch import BimodalPredictor, PredictorHarness

        h = PredictorHarness(BimodalPredictor(256))
        for _ in range(20):
            h.update(0x4000, True)
        assert h.lookups == 20
        assert h.misprediction_rate < 0.2  # trains quickly on a constant

    def test_factory_kinds(self):
        from repro.uarch import (
            CombinedPredictor,
            PredictorHarness,
            ProcessorConfig,
            make_predictor,
        )

        assert isinstance(
            make_predictor(ProcessorConfig()), CombinedPredictor
        )
        assert isinstance(
            make_predictor(ProcessorConfig(predictor_kind="bimodal")),
            PredictorHarness,
        )
        assert isinstance(
            make_predictor(ProcessorConfig(predictor_kind="gshare")),
            PredictorHarness,
        )

    def test_bad_kind_rejected(self):
        from repro.uarch import ProcessorConfig

        with pytest.raises(ValueError):
            ProcessorConfig(predictor_kind="neural")

    def test_gshare_beats_bimodal_on_periodic_pattern(self):
        from repro.uarch import (
            BimodalPredictor,
            GsharePredictor,
            PredictorHarness,
        )

        bim = PredictorHarness(BimodalPredictor(4096))
        gsh = PredictorHarness(GsharePredictor(4096, 12))
        for i in range(4000):
            taken = bool(i % 3 == 0)  # T,N,N repeating
            bim.update(0x4040, taken)
            gsh.update(0x4040, taken)
        assert gsh.misprediction_rate < 0.5 * bim.misprediction_rate

"""Unit tests for trace persistence and external-trace import."""

import numpy as np
import pytest

from repro.uarch import simulate_benchmark
from repro.uarch.traceio import import_current_trace, load_result, save_result


@pytest.fixture(scope="module")
def result():
    return simulate_benchmark("gzip", cycles=4096)


class TestRoundTrip:
    def test_save_load_identical(self, result, tmp_path):
        path = save_result(result, tmp_path / "gzip.npz")
        loaded = load_result(path)
        assert loaded.name == result.name
        np.testing.assert_array_equal(loaded.current, result.current)
        np.testing.assert_array_equal(
            loaded.l2_outstanding, result.l2_outstanding
        )
        assert loaded.stats.committed == result.stats.committed
        assert loaded.stats.ipc == pytest.approx(result.stats.ipc)

    def test_suffix_added(self, result, tmp_path):
        path = save_result(result, tmp_path / "trace")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_wrong_format_rejected(self, tmp_path):
        p = tmp_path / "other.npz"
        np.savez(p, something=np.arange(4))
        with pytest.raises(ValueError):
            load_result(p)

    def test_characterization_works_on_loaded(self, result, tmp_path):
        from repro.core import calibrated_supply, predict_trace

        path = save_result(result, tmp_path / "gzip.npz")
        loaded = load_result(path)
        net = calibrated_supply(150)
        a = predict_trace(net, result.current)
        b = predict_trace(net, loaded.current)
        assert a.estimated == b.estimated


class TestImport:
    def test_npy(self, tmp_path):
        trace = np.abs(np.random.default_rng(0).normal(30, 5, 1000))
        p = tmp_path / "ext.npy"
        np.save(p, trace)
        r = import_current_trace(p)
        np.testing.assert_array_equal(r.current, trace)
        assert r.name == "ext"
        assert r.cycles == 1000

    def test_text_single_column(self, tmp_path):
        p = tmp_path / "trace.txt"
        p.write_text("10.0\n20.5\n15.25\n")
        r = import_current_trace(p, name="probe")
        np.testing.assert_allclose(r.current, [10.0, 20.5, 15.25])
        assert r.name == "probe"

    def test_text_multi_column(self, tmp_path):
        p = tmp_path / "gem5.txt"
        p.write_text("0 12.5 0.9\n1 13.5 0.91\n2 11.0 0.92\n")
        r = import_current_trace(p, column=1)
        np.testing.assert_allclose(r.current, [12.5, 13.5, 11.0])

    def test_npz_generic(self, tmp_path):
        p = tmp_path / "foreign.npz"
        np.savez(p, current=np.array([1.0, 2.0, 3.0]))
        r = import_current_trace(p)
        np.testing.assert_allclose(r.current, [1.0, 2.0, 3.0])

    def test_own_format_passthrough(self, result, tmp_path):
        path = save_result(result, tmp_path / "own.npz")
        r = import_current_trace(path)
        assert r.stats.committed == result.stats.committed

    def test_validation(self, tmp_path):
        p = tmp_path / "bad.npy"
        np.save(p, np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            import_current_trace(p)
        p2 = tmp_path / "nan.npy"
        np.save(p2, np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            import_current_trace(p2)
        p3 = tmp_path / "cols.txt"
        p3.write_text("1 2\n3 4\n")
        with pytest.raises(ValueError):
            import_current_trace(p3, column=5)


class TestSanitizeNonFinite:
    """NaN/Inf samples must never reach the wavelet transform silently."""

    def test_error_message_counts_and_locates(self, tmp_path):
        p = tmp_path / "dirty.npy"
        np.save(p, np.array([1.0, np.nan, np.inf, 2.0, np.nan]))
        with pytest.raises(ValueError) as err:
            import_current_trace(p)
        msg = str(err.value)
        assert "2 NaN" in msg and "1 infinite" in msg
        assert "index 1" in msg

    def test_drop_policy_removes_bad_samples(self, tmp_path):
        p = tmp_path / "dirty.npy"
        np.save(p, np.array([1.0, np.nan, 2.0, np.inf, 3.0]))
        r = import_current_trace(p, nan_policy="drop")
        np.testing.assert_allclose(r.current, [1.0, 2.0, 3.0])
        assert r.stats.cycles == 3

    def test_zero_policy_keeps_alignment(self, tmp_path):
        p = tmp_path / "dirty.npy"
        np.save(p, np.array([1.0, np.nan, 2.0]))
        r = import_current_trace(p, nan_policy="zero")
        np.testing.assert_allclose(r.current, [1.0, 0.0, 2.0])

    def test_own_format_archives_are_validated_too(self, tmp_path):
        from repro.uarch.events import RunStatistics
        from repro.uarch.simulator import SimulationResult

        dirty = SimulationResult(
            name="dirty",
            current=np.array([1.0, np.nan, 2.0]),
            l2_outstanding=np.zeros(3, dtype=bool),
            stats=RunStatistics(cycles=3),
        )
        path = save_result(dirty, tmp_path / "dirty.npz")
        with pytest.raises(ValueError, match="NaN"):
            import_current_trace(path)
        repaired = import_current_trace(path, nan_policy="zero")
        np.testing.assert_allclose(repaired.current, [1.0, 0.0, 2.0])

    def test_all_nan_trace_rejected_even_with_drop(self, tmp_path):
        p = tmp_path / "void.npy"
        np.save(p, np.array([np.nan, np.nan]))
        with pytest.raises(ValueError, match="no finite samples"):
            import_current_trace(p, nan_policy="drop")

    def test_unknown_policy_rejected(self, tmp_path):
        p = tmp_path / "ok.npy"
        np.save(p, np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="nan_policy"):
            import_current_trace(p, nan_policy="ignore")


class TestStreamingTextImport:
    """Text traces parse block by block: constant memory, row-accurate
    errors (the whole-file load never sees more than one block)."""

    def test_blocks_concatenate_seamlessly(self, tmp_path, monkeypatch):
        from repro.uarch import traceio

        monkeypatch.setattr(traceio, "_TEXT_BLOCK_LINES", 16)
        values = np.linspace(1.0, 50.0, 50)
        p = tmp_path / "long.txt"
        p.write_text("".join(f"{v}\n" for v in values))
        r = import_current_trace(p)
        np.testing.assert_allclose(r.current, values)

    def test_nan_error_names_the_data_row(self, tmp_path, monkeypatch):
        from repro.uarch import traceio

        monkeypatch.setattr(traceio, "_TEXT_BLOCK_LINES", 8)
        lines = ["1.0"] * 20
        lines[13] = "nan"
        p = tmp_path / "dirty.txt"
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError) as err:
            import_current_trace(p)
        assert "data row 13" in str(err.value)
        assert err.value.details["row"] == 13

    def test_drop_policy_spans_blocks(self, tmp_path, monkeypatch):
        from repro.uarch import traceio

        monkeypatch.setattr(traceio, "_TEXT_BLOCK_LINES", 4)
        lines = ["1.0", "nan", "2.0", "3.0", "inf", "4.0"]
        p = tmp_path / "dirty.txt"
        p.write_text("\n".join(lines) + "\n")
        r = import_current_trace(p, nan_policy="drop")
        np.testing.assert_allclose(r.current, [1.0, 2.0, 3.0, 4.0])

    def test_zero_policy_spans_blocks(self, tmp_path, monkeypatch):
        from repro.uarch import traceio

        monkeypatch.setattr(traceio, "_TEXT_BLOCK_LINES", 4)
        lines = ["1.0", "nan", "2.0", "3.0", "inf", "4.0"]
        p = tmp_path / "dirty.txt"
        p.write_text("\n".join(lines) + "\n")
        r = import_current_trace(p, nan_policy="zero")
        np.testing.assert_allclose(
            r.current, [1.0, 0.0, 2.0, 3.0, 0.0, 4.0]
        )

    def test_column_error_message_preserved(self, tmp_path):
        p = tmp_path / "cols.txt"
        p.write_text("1 2\n3 4\n")
        with pytest.raises(ValueError, match="out of range for 2-column"):
            import_current_trace(p, column=5)

    def test_comments_and_blanks_do_not_shift_rows(self, tmp_path):
        p = tmp_path / "sparse.txt"
        p.write_text("# header\n1.0\n\n2.0\nnan\n")
        with pytest.raises(ValueError) as err:
            import_current_trace(p)
        assert err.value.details["row"] == 2  # data rows, not file lines

    def test_empty_text_file_rejected(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("")
        with pytest.raises(ValueError, match="no samples"):
            import_current_trace(p)

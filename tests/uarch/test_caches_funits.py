"""Unit tests for the cache hierarchy and functional units."""

import pytest

from repro.uarch import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    FunctionalUnits,
    OpClass,
    ProcessorConfig,
    ServiceLevel,
    TABLE_1,
)
from repro.uarch.funits import FunctionalUnitPool


class TestCacheConfig:
    def test_table1_l1_geometry(self):
        assert TABLE_1.l1d.sets == 512  # 64KB / (2 ways * 64B)
        assert TABLE_1.l2.sets == 8192  # 2MB / (4 ways * 64B)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64, 1)
        with pytest.raises(ValueError):
            CacheConfig(64 * 1024, 2, 64, 0)


class TestCache:
    def make(self, size=1024, ways=2, line=64):
        return Cache(CacheConfig(size, ways, line, 1), "test")

    def test_miss_then_hit(self):
        c = self.make()
        assert not c.access(0x1000)
        assert c.access(0x1000)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_hits(self):
        c = self.make()
        c.access(0x1000)
        assert c.access(0x1001)
        assert c.access(0x103F)

    def test_adjacent_line_misses(self):
        c = self.make()
        c.access(0x1000)
        assert not c.access(0x1040)

    def test_lru_eviction(self):
        c = self.make(size=256, ways=2, line=64)  # 2 sets
        sets = c.config.sets
        lines = [64 * (0 + sets * k) for k in range(3)]  # same set
        c.access(lines[0])
        c.access(lines[1])
        c.access(lines[0])  # refresh line 0
        c.access(lines[2])  # evicts line 1
        assert c.probe(lines[0])
        assert not c.probe(lines[1])

    def test_probe_does_not_count(self):
        c = self.make()
        c.probe(0x1000)
        assert c.accesses == 0

    def test_miss_rate(self):
        c = self.make()
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)
        assert Cache(CacheConfig(256, 2, 64, 1), "x").miss_rate == 0.0

    def test_flush(self):
        c = self.make()
        c.access(0x1000)
        c.flush()
        assert not c.probe(0x1000)

    def test_capacity(self):
        # A working set equal to capacity survives a sequential sweep.
        c = self.make(size=1024, ways=2, line=64)
        for addr in range(0, 1024, 64):
            c.access(addr)
        assert all(c.probe(a) for a in range(0, 1024, 64))


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = CacheHierarchy(TABLE_1)
        h.access_data(0x1000)
        latency, level = h.access_data(0x1000)
        assert latency == TABLE_1.l1d.latency == 3
        assert level is ServiceLevel.L1

    def test_l2_hit_latency(self):
        h = CacheHierarchy(TABLE_1)
        h.access_data(0x1000)  # now resident in L1 and L2
        h.l1d.flush()
        latency, level = h.access_data(0x1000)
        assert latency == 3 + 16
        assert level is ServiceLevel.L2

    def test_memory_latency(self):
        h = CacheHierarchy(TABLE_1)
        latency, level = h.access_data(0x5000_0000)
        assert latency == 3 + 16 + 250
        assert level is ServiceLevel.MEMORY
        assert h.memory_accesses == 1

    def test_instruction_path_separate_from_data(self):
        h = CacheHierarchy(TABLE_1)
        h.access_data(0x1000)
        _, level = h.access_instruction(0x1000)
        # Same address: missed L1I but hit the (unified) L2.
        assert level is ServiceLevel.L2


class TestFunctionalUnits:
    def test_pipelined_pool_issue_limit(self):
        pool = FunctionalUnitPool("alu", 2, pipelined=True)
        pool.begin_cycle()
        assert pool.try_issue(0, 1)
        assert pool.try_issue(0, 1)
        assert not pool.try_issue(0, 1)
        pool.begin_cycle()
        assert pool.try_issue(1, 1)

    def test_unpipelined_pool_blocks(self):
        pool = FunctionalUnitPool("div", 1, pipelined=False)
        pool.begin_cycle()
        assert pool.try_issue(0, 20)
        pool.begin_cycle()
        assert not pool.try_issue(1, 20)  # busy until cycle 20
        pool.begin_cycle()
        assert pool.try_issue(20, 20)

    def test_latencies_match_config(self):
        fu = FunctionalUnits(TABLE_1)
        assert fu.latency_of(OpClass.IALU) == 1
        assert fu.latency_of(OpClass.IDIV) == 20
        assert fu.latency_of(OpClass.FPMULT) == 4

    def test_div_shares_mult_unit(self):
        fu = FunctionalUnits(TABLE_1)
        fu.begin_cycle()
        assert fu.try_issue(OpClass.IMULT, 0) is not None
        # The single IntMult/IntDiv unit is now claimed this cycle.
        assert fu.try_issue(OpClass.IDIV, 0) is None

    def test_ialu_width(self):
        fu = FunctionalUnits(TABLE_1)
        fu.begin_cycle()
        issued = sum(fu.try_issue(OpClass.IALU, 0) is not None for _ in range(6))
        assert issued == TABLE_1.int_alus == 4

    def test_mem_ops_have_no_pool(self):
        fu = FunctionalUnits(TABLE_1)
        with pytest.raises(ValueError):
            fu.pool_for(OpClass.LOAD)

    def test_pool_count_validation(self):
        with pytest.raises(ValueError):
            FunctionalUnitPool("x", 0, True)


class TestProcessorConfig:
    def test_table1_values(self):
        assert TABLE_1.clock_hz == 3.0e9
        assert TABLE_1.ruu_size == 80
        assert TABLE_1.lsq_size == 40
        assert TABLE_1.branch_penalty == 12
        assert TABLE_1.fetch_width == 4
        assert TABLE_1.memory_latency == 250
        assert TABLE_1.btb_entries == 1024
        assert TABLE_1.ras_entries == 32
        assert TABLE_1.gshare_history == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(ruu_size=0)
        with pytest.raises(ValueError):
            ProcessorConfig(lsq_size=100, ruu_size=80)

"""Unit tests for the opt-in per-unit power breakdown."""

import numpy as np
import pytest

from repro.uarch import (
    ActivityCounters,
    ClockGating,
    Pipeline,
    TABLE_1,
    WattchPowerModel,
)
from repro.workloads import generate
from repro.workloads.generator import prewarm_caches


def breakdown_for(name: str, cycles: int = 5000) -> tuple[dict, float]:
    pipe = Pipeline(TABLE_1, iter(generate(name)), track_breakdown=True)
    prewarm_caches(pipe.caches, name)
    mean = float(np.mean([pipe.tick() for _ in range(cycles)]))
    return pipe.power_breakdown, mean


class TestUnitCurrents:
    def test_sums_to_total(self):
        pm = WattchPowerModel()
        a = ActivityCounters()
        a.issued_ialu = 3
        a.dcache_accesses = 2
        a.injected_noops = 1
        assert sum(pm.unit_currents(a).values()) == pytest.approx(
            pm.current(a)
        )

    def test_sums_to_total_every_gating(self):
        for gating in ClockGating:
            pm = WattchPowerModel(gating=gating)
            a = ActivityCounters()
            a.issued_fpalu = 1
            assert sum(pm.unit_currents(a).values()) == pytest.approx(
                pm.current(a)
            ), gating

    def test_active_unit_attributed(self):
        pm = WattchPowerModel()
        idle = pm.unit_currents(ActivityCounters())
        a = ActivityCounters()
        a.l2_accesses = 1
        busy = pm.unit_currents(a)
        assert busy["l2"] > idle["l2"]
        assert busy["ialu"] == idle["ialu"]


class TestPipelineBreakdown:
    def test_breakdown_sums_to_mean_current(self):
        breakdown, mean = breakdown_for("gzip", cycles=3000)
        assert sum(breakdown.values()) == pytest.approx(mean, rel=1e-9)

    def test_opt_in_required(self):
        pipe = Pipeline(TABLE_1, iter(generate("gzip")))
        with pytest.raises(RuntimeError):
            _ = pipe.power_breakdown

    def test_memory_bound_shifts_power_to_memory_system(self):
        cpu, _ = breakdown_for("gzip", cycles=4000)
        mem, _ = breakdown_for("mcf", cycles=4000)

        def mem_share(b):
            total = sum(b.values())
            return (b["l2"] + b["membus"] + b["dcache"]) / total

        def alu_share(b):
            total = sum(b.values())
            return (b["ialu"] + b["fpalu"]) / total

        # mcf spends most cycles stalled, so its absolute memory power is
        # modest — but its *share* still leans toward the memory system,
        # while compute-bound gzip leans hard toward the ALUs.
        assert mem_share(mem) > 1.15 * mem_share(cpu)
        assert alu_share(cpu) > 1.8 * alu_share(mem)

    def test_clock_always_present(self):
        breakdown, _ = breakdown_for("eon", cycles=1000)
        assert breakdown["clock"] == pytest.approx(8.0)
        assert breakdown["static"] == pytest.approx(3.0)

"""Precise pipeline-behaviour tests: ordering, backpressure, forwarding.

These pin down cycle-level contracts that the statistical tests would
never notice: in-order commit, RUU/fetch-queue backpressure, issue-width
saturation, and store-to-load forwarding timing.
"""


from repro.uarch import Instruction, OpClass, Pipeline, ProcessorConfig, TABLE_1


def warm_pipe(insts, config=TABLE_1):
    pipe = Pipeline(config, iter(insts))
    for line in sorted({i.pc >> 6 for i in insts}):
        pipe.caches.access_instruction(line << 6)
    # Warm-up traffic must not pollute the counters the tests assert on.
    for cache in (pipe.caches.l1i, pipe.caches.l1d, pipe.caches.l2):
        cache.hits = cache.misses = 0
    pipe.caches.memory_accesses = 0
    return pipe


def run_to_drain(pipe, limit=100_000):
    while not pipe.drained and pipe.cycle < limit:
        pipe.tick()
    assert pipe.drained
    return pipe


def alu(n, pc0=0x400000, dep=0):
    return [
        Instruction(OpClass.IALU, pc=pc0 + 4 * (i % 64), src1_dist=dep)
        for i in range(n)
    ]


class TestStoreToLoadForwarding:
    def test_aliasing_load_forwards(self):
        # store to X, then (far enough later to have issued) load from X:
        # without forwarding the load would miss to memory (cold address).
        insts = [Instruction(OpClass.STORE, pc=0x400000, addr=0x7000_0000)]
        insts += alu(4, pc0=0x400100)
        insts += [Instruction(OpClass.LOAD, pc=0x400200, addr=0x7000_0000)]
        pipe = run_to_drain(warm_pipe(insts))
        assert pipe.stats.store_forwards == 1
        # The load never went to the (cold) cache: no L1D load miss before
        # the store's own commit-time access.
        assert pipe.cycle < 100

    def test_non_aliasing_load_does_not_forward(self):
        insts = [Instruction(OpClass.STORE, pc=0x400000, addr=0x7000_0000)]
        insts += [Instruction(OpClass.LOAD, pc=0x400100, addr=0x7100_0000)]
        pipe = run_to_drain(warm_pipe(insts))
        assert pipe.stats.store_forwards == 0

    def test_forwarding_ends_after_store_commits(self):
        # A lone store, long gap (drain), then a load: by then the store
        # has committed and written the cache, so the load simply hits.
        first = [Instruction(OpClass.STORE, pc=0x400000, addr=0x7000_0000)]
        pipe = warm_pipe(
            first + alu(300, pc0=0x401000)
            + [Instruction(OpClass.LOAD, pc=0x402000, addr=0x7000_0000)]
        )
        run_to_drain(pipe)
        # Either forwarded (if still in flight) or an L1 hit; never a
        # memory miss for that line.
        assert pipe.caches.memory_accesses <= 1  # the store's own fill


class TestBackpressure:
    def test_ruu_never_overflows_under_stall(self):
        cfg = ProcessorConfig(ruu_size=16, lsq_size=8)
        # One cold load blocks commit; independent ALUs pile up behind it.
        insts = [Instruction(OpClass.LOAD, pc=0x400000, addr=0x7000_0000)]
        insts += alu(200, pc0=0x400100, dep=1)
        pipe = warm_pipe(insts, cfg)
        peak = 0
        while not pipe.drained and pipe.cycle < 50_000:
            pipe.tick()
            peak = max(peak, len(pipe._ruu))
        assert peak <= 16

    def test_fetch_queue_bounded(self):
        cfg = ProcessorConfig(fetch_queue_size=8)
        insts = [Instruction(OpClass.LOAD, pc=0x400000, addr=0x7000_0000)]
        insts += [
            Instruction(OpClass.LOAD, pc=0x400100 + 4 * i,
                        addr=0x7000_0000, src1_dist=1)
            for i in range(100)
        ]
        pipe = warm_pipe(insts, cfg)
        peak = 0
        while not pipe.drained and pipe.cycle < 80_000:
            pipe.tick()
            peak = max(peak, len(pipe._fetch_buffer))
        assert peak <= 8

    def test_commit_is_in_order(self):
        # A slow head (cold load) must delay the commit of younger fast
        # instructions: nothing commits until it completes.
        insts = [Instruction(OpClass.LOAD, pc=0x400000, addr=0x7000_0000)]
        insts += alu(8, pc0=0x400100)
        pipe = warm_pipe(insts)
        committed_before_memory = 0
        while not pipe.drained and pipe.cycle < 50_000:
            pipe.tick()
            if pipe.cycle < 200:  # well inside the 269-cycle miss
                committed_before_memory = max(
                    committed_before_memory, pipe.stats.committed
                )
        assert committed_before_memory == 0


class TestIssueWidth:
    def test_issue_capped_at_width(self):
        insts = alu(400)
        pipe = warm_pipe(insts)
        peak = 0
        while not pipe.drained and pipe.cycle < 10_000:
            pipe.tick()
            peak = max(peak, pipe.activity.issued_ialu)
        assert peak <= TABLE_1.issue_width

    def test_commit_capped_at_width(self):
        insts = alu(400)
        pipe = warm_pipe(insts)
        peak = 0
        while not pipe.drained and pipe.cycle < 10_000:
            pipe.tick()
            peak = max(peak, pipe.activity.committed)
        assert peak <= TABLE_1.commit_width

    def test_narrow_machine_is_slower(self):
        wide = run_to_drain(warm_pipe(alu(800)))
        narrow_cfg = ProcessorConfig(
            fetch_width=1, decode_width=1, issue_width=1, commit_width=1
        )
        narrow = run_to_drain(warm_pipe(alu(800), narrow_cfg))
        assert narrow.cycle > 2.5 * wide.cycle


class TestMispredictionTiming:
    def test_penalty_at_least_configured(self):
        # One surprise not-taken branch at a fresh PC among ALUs.
        insts = alu(8)
        insts += [
            Instruction(OpClass.BRANCH, pc=0x500000, addr=0x500100, taken=False)
        ]
        insts += alu(8, pc0=0x600000)
        with_branch = run_to_drain(warm_pipe(list(insts)))
        without = run_to_drain(warm_pipe(alu(17)))
        assert with_branch.stats.mispredictions == 1
        assert with_branch.cycle >= without.cycle + TABLE_1.branch_penalty - 2

    def test_shorter_penalty_config_is_faster(self):
        def build():
            insts = alu(8)
            insts += [
                Instruction(
                    OpClass.BRANCH, pc=0x500000, addr=0x500100, taken=False
                )
            ]
            insts += alu(8, pc0=0x600000)
            return insts

        slow = run_to_drain(warm_pipe(build(), ProcessorConfig(branch_penalty=30)))
        fast = run_to_drain(warm_pipe(build(), ProcessorConfig(branch_penalty=2)))
        assert slow.cycle > fast.cycle


class TestBranchRecoverySignal:
    def test_recovery_flag_during_penalty(self):
        # A guaranteed mispredict: not-taken branch at a fresh PC.
        insts = alu(4)
        insts += [
            Instruction(OpClass.BRANCH, pc=0x500000, addr=0x500100, taken=False)
        ]
        insts += alu(12, pc0=0x600000)
        pipe = warm_pipe(insts)
        flags = []
        while not pipe.drained and pipe.cycle < 5000:
            pipe.tick()
            flags.append(pipe.branch_recovery)
        # The recovery window covers at least the configured penalty.
        assert sum(flags) >= TABLE_1.branch_penalty

    def test_no_recovery_without_mispredicts(self):
        pipe = warm_pipe(alu(100))
        flags = []
        while not pipe.drained and pipe.cycle < 5000:
            pipe.tick()
            flags.append(pipe.branch_recovery)
        assert sum(flags) == 0

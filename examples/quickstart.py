#!/usr/bin/env python3
"""Quickstart: wavelet analysis of a processor current trace.

Walks through the paper's §2 machinery on real simulator output:

1. the worked Haar example of Figure 3 (exact coefficient values),
2. a current trace from the cycle-accurate simulator,
3. its coefficient matrix (Figure 2) and ASCII scalogram (Figure 4),
4. subband superposition and Parseval's identity,
5. the supply network's voltage response (Eq. 6).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import calibrated_supply
from repro.power import simulate_voltage
from repro.uarch import simulate_benchmark
from repro.wavelets import (
    decompose,
    render_ascii,
    scalogram,
    subband_signals,
    wavedec,
    wavelet_variances,
)


def haar_worked_example() -> None:
    """Figure 3: decompose an 8-sample staircase by hand and by library."""
    x = np.array([2.0, 2.0, 4.0, 0.0, 2.0, 2.0, 2.0, 2.0])
    coeffs = wavedec(x, "haar")  # [a3, d3, d2, d1]
    print("Figure 3 worked example")
    print(f"  signal        : {x.tolist()}")
    print(f"  approximation : {np.round(coeffs[0], 4).tolist()}")
    for lvl, det in zip((3, 2, 1), coeffs[1:]):
        print(f"  detail level {lvl}: {np.round(det, 4).tolist()}")
    print()


def current_trace_analysis() -> None:
    """Figures 2 and 4 on a simulated gzip window."""
    result = simulate_benchmark("gzip", cycles=4096)
    window = result.current[1024 : 1024 + 256]
    dec = decompose(window)

    print("gzip, 256-cycle current window")
    print(f"  mean current : {window.mean():.1f} A")
    print(f"  coefficient matrix shape (Figure 2): "
          f"{dec.coefficient_matrix().shape}")
    print(f"  sparsity (|c| < 1): {dec.sparsity(1.0) * 100:.0f}% of "
          f"coefficients are negligible")

    print("\n  scalogram (Figure 4) — rows are scales, finest on top:")
    art = render_ascii(scalogram(window), width=64)
    for line in art.split("\n"):
        print("  " + line)

    bands = subband_signals(dec)
    recon = sum(bands.values())
    print(f"\n  subband superposition error : "
          f"{np.max(np.abs(recon - window)):.2e}")
    variances = wavelet_variances(window)
    total = sum(variances.values())
    print(f"  Parseval: sum of scale variances {total:.2f} "
          f"== window variance {window.var():.2f}")
    print("  per-scale variance (A^2):",
          {lvl: round(v, 2) for lvl, v in variances.items()})
    print()


def voltage_response() -> None:
    """Eq. 6: what the supply does to that current."""
    net = calibrated_supply(150)
    result = simulate_benchmark("gzip", cycles=8192)
    v = simulate_voltage(net, result.current)[2048:]
    print("Supply response at 150% target impedance")
    print(f"  resonance        : {net.resonant_hz / 1e6:.0f} MHz "
          f"({net.resonant_period_cycles:.0f} cycles at 3 GHz)")
    print(f"  voltage range    : {v.min():.4f} .. {v.max():.4f} V")
    print(f"  cycles < 0.97 V  : {np.mean(v < 0.97) * 100:.2f}%")
    print(f"  fault band       : {net.v_min:.2f} .. {net.v_max:.2f} V")


if __name__ == "__main__":
    haar_worked_example()
    current_trace_analysis()
    voltage_response()

#!/usr/bin/env python3
"""Spatial IR-drop maps for busy vs. stalled cycles (grid extension).

The paper's lumped supply model answers *when* the voltage sags; the
on-die grid extension answers *where*.  This example simulates a
benchmark, finds its highest- and lowest-current cycles, spatializes each
cycle's activity over a 21264-style floorplan, and renders the IR-drop
maps side by side.

Run:  python examples/ir_drop_map.py [benchmark]
"""

import sys

import numpy as np

from repro.power import DEFAULT_FLOORPLAN, PowerGrid
from repro.uarch import Pipeline, TABLE_1, WattchPowerModel
from repro.workloads import generate
from repro.workloads.generator import prewarm_caches

_SHADES = " .:-=+*#%@"


def render(drop: np.ndarray, scale: float) -> list[str]:
    lines = []
    for row in drop:
        cells = "".join(
            _SHADES[min(int(v / scale * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            * 2
            for v in row
        )
        lines.append(cells)
    return lines


def main(benchmark: str = "gcc") -> None:
    model = WattchPowerModel()
    pipe = Pipeline(TABLE_1, iter(generate(benchmark)), model)
    prewarm_caches(pipe.caches, benchmark)
    for _ in range(2048):
        pipe.tick()

    # Capture the activity snapshot of the busiest and quietest cycles.
    best = (0.0, None)
    worst = (float("inf"), None)
    for _ in range(4096):
        amps = pipe.tick()
        snapshot = {
            name: getattr(pipe.activity, name)
            for name in pipe.activity.__slots__
        }
        if amps > best[0]:
            best = (amps, snapshot)
        if amps < worst[0]:
            worst = (amps, snapshot)

    grid = PowerGrid()
    fp = DEFAULT_FLOORPLAN

    def drop_for(snapshot):
        act = type(pipe.activity)()
        for name, value in snapshot.items():
            setattr(act, name, value)
        return grid.ir_drop_map(fp.current_map(model, act))

    busy = drop_for(best[1])
    idle = drop_for(worst[1])
    scale = busy.max()

    print(f"=== {benchmark}: spatial IR drop (corner-pad 8x8 grid) ===\n")
    print(f"busiest cycle ({best[0]:.1f} A total)      "
          f"quietest cycle ({worst[0]:.1f} A total)")
    for lb, li in zip(render(busy, scale), render(idle, scale)):
        print(f"{lb}      {li}")
    rb, cb, db = grid.worst_node(fp.current_map(model, _restore(best[1])))
    print(f"\nworst node busy: ({rb},{cb}) at {db * 1e3:.1f} mV below Vdd")
    print(f"busy/idle worst-drop ratio: {busy.max() / idle.max():.1f}x")


def _restore(snapshot):
    from repro.uarch import ActivityCounters

    act = ActivityCounters()
    for name, value in snapshot.items():
        setattr(act, name, value)
    return act


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gcc")

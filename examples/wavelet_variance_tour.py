#!/usr/bin/env python3
"""A tour of the wavelet-variance machinery behind §4.

Walks one benchmark's current trace through the statistical tools the
paper builds on:

1. decimated per-scale wavelet variance (Parseval, the paper's choice),
2. the MODWT-based unbiased estimator of Serroukh/Walden/Percival
   (the paper's reference [19]) with chi-squared confidence intervals,
3. adjacent-coefficient correlation (the paper's pulse-train detector),
4. where the supply's resonance sits relative to the variance profile.

Run:  python examples/wavelet_variance_tour.py [benchmark]
"""

import sys


from repro import viz
from repro.core import calibrate_scale_factors, calibrated_supply
from repro.uarch import simulate_benchmark
from repro.wavelets import (
    decompose,
    modwt_variance,
    scale_correlations,
    variance_confidence_interval,
    wavelet_variances,
)


def main(benchmark: str = "galgel") -> None:
    net = calibrated_supply(150)
    result = simulate_benchmark(benchmark, cycles=32768)
    trace = result.current

    print(f"=== Wavelet variance tour: {benchmark} "
          f"({trace.mean():.1f} A mean) ===\n")

    dwt_var = wavelet_variances(trace, level=8)
    modwt_var = modwt_variance(trace, level=8)
    print(viz.table(
        {
            f"level {lvl} (~{2**lvl:4d} cyc)": [
                dwt_var[lvl],
                modwt_var[lvl],
            ]
            for lvl in range(1, 9)
        },
        headers=["DWT", "MODWT"],
        title="per-scale variance (A^2): decimated vs unbiased MODWT",
    ))

    # Confidence intervals from the decimated coefficients.  The interval
    # bounds E[d^2]; dividing by 2^level converts to the Parseval
    # per-scale signal variance shown in the table above.
    dec = decompose(trace[: 1 << 14], level=8)
    print("\n95% confidence intervals (chi-squared, decimated details):")
    for lvl in (4, 5, 6):
        lo, hi = variance_confidence_interval(dec.detail(lvl))
        print(f"  level {lvl}: [{lo / 2**lvl:7.2f}, {hi / 2**lvl:7.2f}] A^2")

    corr = scale_correlations(trace[: 1 << 14], level=8)
    print("\nadjacent-coefficient correlation (pulse-train detector):")
    print("  " + "  ".join(f"L{lvl}:{corr[lvl]:+.2f}" for lvl in range(1, 9)))

    factors = calibrate_scale_factors(net)
    print("\nsupply amplification by scale (calibrated factors, rho=0):")
    print(viz.bar_chart(
        {f"level {lvl}": factors.factor(lvl) * 1e6 for lvl in range(1, 9)},
        fmt="{:8.2f}",
    ))
    peak = factors.peak_level()
    contribution = {
        lvl: factors.factor(lvl, corr[lvl]) * dwt_var[lvl]
        for lvl in range(1, 9)
    }
    top = max(contribution, key=contribution.get)
    print(f"\nthe supply amplifies level {peak} most "
          f"(~{0.75 * net.clock_hz / 2**peak / 1e6:.0f} MHz); this trace's "
          f"voltage variance is dominated by level {top}.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "galgel")

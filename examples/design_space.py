#!/usr/bin/env python3
"""Design-space exploration for the wavelet voltage monitor.

A hardware designer adopting the paper's scheme has three knobs:

* how weak a power-supply network to ship (target impedance %),
* how many wavelet coefficient terms to build (K, = hardware cost),
* how conservative a control threshold to set (margin, = performance).

This script sweeps all three on a stressful workload, printing the
accuracy/cost/performance trade-off surface — the engineering summary of
Figures 13 and 15.

Run:  python examples/design_space.py
"""

import numpy as np

from repro.core import (
    ShiftRegisterMonitor,
    ThresholdController,
    WaveletVoltageMonitor,
    calibrated_supply,
    coefficient_error_curve,
    run_control_experiment,
)
from repro.uarch import simulate_benchmark

BENCH = "gcc"
PERCENTS = (125.0, 150.0, 200.0)
TERMS = (5, 9, 13, 20, 30)


def accuracy_sweep(trace: np.ndarray) -> None:
    print("monitor accuracy: max voltage error (mV) vs terms kept")
    header = "  impedance " + "".join(f"  K={k:<4d}" for k in TERMS)
    print(header)
    for pct in PERCENTS:
        net = calibrated_supply(pct)
        errs = coefficient_error_curve(net, trace, list(TERMS))
        row = "".join(f"  {errs[k] * 1e3:6.1f}" for k in TERMS)
        print(f"  {pct:6.0f}%  {row}")
    print()


def cost_sweep() -> None:
    net = calibrated_supply(150)
    print("hardware cost: adds per cycle (vs full convolution)")
    for k in TERMS:
        hw = ShiftRegisterMonitor(net, terms=k)
        print(f"  K={k:<3d}: {hw.adds_per_cycle:4d} adds/cycle")
    full_ops = 2 * ShiftRegisterMonitor(net, terms=1).window - 1
    print(f"  full convolution: {full_ops} multiply-adds/cycle\n")


def control_sweep() -> None:
    print(f"closed-loop control on {BENCH}: slowdown vs margin "
          f"(150% impedance, K=13)")
    net = calibrated_supply(150)
    for margin_mv in (10, 20, 30):
        result = run_control_experiment(
            BENCH,
            net,
            lambda: ThresholdController(
                WaveletVoltageMonitor(net, terms=13),
                net,
                margin=margin_mv / 1000.0,
            ),
            cycles=8192,
        )
        print(f"  margin {margin_mv:2d} mV: slowdown "
              f"{result.slowdown * 100:5.2f}%, faults "
              f"{result.baseline_faults} -> {result.controlled_faults}")
    print()


if __name__ == "__main__":
    trace = simulate_benchmark(BENCH, cycles=16384).current
    accuracy_sweep(trace)
    cost_sweep()
    control_sweep()

#!/usr/bin/env python3
"""Characterizing an external (gem5-style) current trace.

The offline pipeline needs nothing but a per-cycle current waveform, so
traces from other toolchains plug straight in.  This example plays the
other toolchain's role: it takes a simulated galgel trace, adds probe
noise, and writes it as the whitespace-separated text file a gem5+McPAT
post-processing script would emit.  Then it imports the file with
``repro.uarch.import_current_trace``, diagnoses its periodicity with the
CWT, estimates and removes the probe noise, and runs the §4
characterization — all without knowing where the trace came from.

Run:  python examples/external_trace.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import WaveletVoltageEstimator, calibrated_supply, predict_trace
from repro.uarch import import_current_trace, simulate_benchmark
from repro.wavelets import denoise, dominant_period, estimate_noise_sigma

PROBE_SIGMA = 1.5  # amperes of measurement noise on the "probed" trace


def write_foreign_trace(path: Path) -> np.ndarray:
    """Export a noisy galgel trace in 3-column text form; returns truth."""
    rng = np.random.default_rng(42)
    truth = simulate_benchmark("galgel", cycles=16384).current
    probed = np.abs(truth + PROBE_SIGMA * rng.normal(size=truth.size))
    with path.open("w") as f:
        for k, amps in enumerate(probed):
            f.write(f"{k} {amps:.4f} 0.0\n")
    return truth


def main() -> None:
    net = calibrated_supply(150)
    estimator = WaveletVoltageEstimator(net)

    with tempfile.TemporaryDirectory() as tmp:
        trace_file = Path(tmp) / "foreign_trace.txt"
        truth = write_foreign_trace(trace_file)

        result = import_current_trace(trace_file, name="gem5-run", column=1)
        print(f"imported {result.cycles} cycles from {trace_file.name}")
        print(f"  mean current   : {result.mean_current:.1f} A")

        period = dominant_period(result.current, min_period=8.0,
                                 max_period=256.0)
        print(f"  dominant period: {period:.0f} cycles "
              f"(supply resonance: {net.resonant_period_cycles:.0f})")

        sigma = estimate_noise_sigma(result.current)
        cleaned = denoise(result.current)
        print(f"  probe noise    : sigma ~ {sigma:.2f} A "
              f"(injected: {PROBE_SIGMA} A)")

        print("\ncharacterization at 150% target impedance "
              "(% cycles < 0.97 V):")
        for label, trace in (
            ("ground truth", truth),
            ("probed (raw)", result.current),
            ("de-noised", cleaned),
        ):
            p = predict_trace(net, trace, name=label, estimator=estimator)
            print(f"  {label:13s}: est {p.estimated * 100:5.2f}%  "
                  f"obs {p.observed * 100:5.2f}%")
        print("\n(the import path changes nothing: probed and de-noised "
              "traces characterize like the ground truth they wrap)")


if __name__ == "__main__":
    main()

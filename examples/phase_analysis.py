#!/usr/bin/env python3
"""Phase-resolved dI/dt analysis with wavelet signatures.

The paper stresses that wavelet analysis localizes in time — "we can
independently characterize different time phases of program execution and
assess their individual impact on the voltage level" (§4).  This example
does exactly that: cluster a benchmark's 256-cycle windows by wavelet
signature, then show each phase's share of execution, current level,
dominant time scale and emergency exposure — revealing *which phase* of a
program is the dI/dt problem.

Run:  python examples/phase_analysis.py [benchmark] [phases]
"""

import sys

from repro import viz
from repro.core import WaveletPhaseClassifier, calibrated_supply
from repro.uarch import simulate_benchmark


def main(benchmark: str = "applu", phases: int = 3) -> None:
    net = calibrated_supply(150)
    result = simulate_benchmark(benchmark, cycles=32768)
    clf = WaveletPhaseClassifier(phases=phases).fit(result.current)
    summaries = clf.summarize(net)

    print(f"=== Phase-resolved dI/dt: {benchmark}, {phases} phases, "
          f"150% target impedance ===\n")

    print("phase timeline (one mark per 256-cycle window, 0 = hottest):")
    marks = "".join(str(l) for l in clf.labels_)
    for k in range(0, len(marks), 64):
        print("  " + marks[k : k + 64])

    print()
    print(viz.table(
        {
            f"phase {s.phase}": [
                s.fraction * 100,
                s.mean_current,
                float(s.dominant_level),
                (s.emergency_probability or 0.0) * 100,
            ]
            for s in summaries
        },
        headers=["% windows", "mean A", "top level", "% < 0.97V"],
        title="per-phase characterization",
    ))

    exposed = max(summaries, key=lambda s: s.emergency_probability or 0.0)
    weight = exposed.fraction * (exposed.emergency_probability or 0.0)
    total = sum(
        s.fraction * (s.emergency_probability or 0.0) for s in summaries
    )
    if total > 0:
        print(f"\nphase {exposed.phase} contributes "
              f"{weight / total * 100:.0f}% of the emergency exposure while "
              f"occupying {exposed.fraction * 100:.0f}% of execution — "
              f"a phase-aware controller could arm itself only there.")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "applu"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(name, k)

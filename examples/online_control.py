#!/usr/bin/env python3
"""Closed-loop dI/dt control with the wavelet voltage monitor (§5).

Runs a dI/dt-stressing benchmark on the Table-1 machine against a supply
at 150 % target impedance, twice: free-running (counting voltage faults)
and under the wavelet-convolution controller (counting residual faults,
interventions and slowdown).  Then repeats with the pipeline-damping
baseline to show the false-positive cost of sensing current slew instead
of voltage.

Run:  python examples/online_control.py [benchmark]
"""

import sys

from repro.core import (
    PipelineDampingController,
    ShiftRegisterMonitor,
    ThresholdController,
    WaveletVoltageMonitor,
    calibrated_supply,
    run_control_experiment,
)
from repro.core import FullConvolutionMonitor


def report(label: str, result, extra: str = "") -> None:
    print(f"{label}")
    print(f"  slowdown          : {result.slowdown * 100:6.2f}%")
    print(f"  faults            : {result.baseline_faults} -> "
          f"{result.controlled_faults}")
    print(f"  stall cycles      : {result.stall_cycles}")
    print(f"  no-op boosts      : {result.boost_cycles}")
    print(f"  false-positive rate: {result.false_positive_rate * 100:.0f}%")
    if extra:
        print(f"  {extra}")
    print()


def main(benchmark: str = "mgrid") -> None:
    net = calibrated_supply(150)
    terms = 13  # Figure 13's sweet spot for 150% target impedance
    print(f"=== Online dI/dt control on {benchmark}, 150% target impedance "
          f"===\n")

    monitor = WaveletVoltageMonitor(net, terms=terms)
    hw = ShiftRegisterMonitor(net, terms=terms)
    full = FullConvolutionMonitor(net)
    print(f"wavelet monitor: {terms} of {monitor.convolver.total_terms} "
          f"coefficient terms")
    print(f"hardware cost  : {hw.adds_per_cycle} adds/cycle vs "
          f"{full.ops_per_cycle} ops/cycle for full convolution\n")

    wavelet = run_control_experiment(
        benchmark,
        net,
        lambda: ThresholdController(
            WaveletVoltageMonitor(net, terms=terms), net, margin=0.012
        ),
        cycles=12288,
    )
    report("wavelet convolution controller (this paper):", wavelet)

    damping = run_control_experiment(
        benchmark,
        net,
        lambda: PipelineDampingController(net, delta=6.0, window=8),
        cycles=12288,
    )
    report("pipeline damping baseline (Powell & Vijaykumar):", damping)

    ratio = (damping.slowdown + 1e-9) / (wavelet.slowdown + 1e-9)
    print(f"damping costs {ratio:.1f}x the slowdown of wavelet control "
          f"on this workload.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mgrid")

#!/usr/bin/env python3
"""Offline dI/dt characterization of a benchmark (the paper's §4).

For a chosen SPEC2000 workload model this script:

1. simulates a per-cycle current trace on the Table-1 machine,
2. calibrates the per-scale voltage-variance factors for the supply,
3. runs the five-step wavelet-variance method on every 256-cycle window,
4. prints the per-scale breakdown for the worst window, and
5. compares the estimated fraction of cycles below the 0.97 V control
   point against the convolution-simulated truth (Figure 9's comparison).

Run:  python examples/characterize_benchmark.py [benchmark] [impedance%]
e.g.  python examples/characterize_benchmark.py mgrid 150
"""

import sys


from repro.core import (
    WINDOW,
    WaveletVoltageEstimator,
    calibrate_scale_factors,
    calibrated_supply,
    predict_trace,
)
from repro.uarch import simulate_benchmark


def main(benchmark: str = "mgrid", percent: float = 150.0) -> None:
    print(f"=== Offline characterization: {benchmark} at {percent:.0f}% "
          f"target impedance ===\n")
    net = calibrated_supply(percent)
    result = simulate_benchmark(benchmark, cycles=32768)
    s = result.stats
    print(f"machine: IPC {s.ipc:.2f}, branch mispredict "
          f"{s.misprediction_rate * 100:.1f}%, L2 {s.l2_mpki:.1f} MPKI")
    print(f"current: {result.mean_current:.1f} A mean, "
          f"{result.current.std():.1f} A std\n")

    factors = calibrate_scale_factors(net)
    print("calibrated per-scale voltage-variance factors (rho = 0):")
    for lvl in factors.levels:
        period = 2**lvl
        freq = 0.75 * net.clock_hz / 2**lvl / 1e6
        marker = "  <-- resonance band" if 50 <= freq <= 200 else ""
        print(f"  level {lvl} (~{period:4d} cycles, ~{freq:6.0f} MHz): "
              f"{factors.factor(lvl):.3e}{marker}")

    estimator = WaveletVoltageEstimator(net)
    windows = result.current[: (len(result.current) // WINDOW) * WINDOW]
    windows = windows.reshape(-1, WINDOW)
    chars = [estimator.characterize_window(w) for w in windows]
    worst = max(chars, key=lambda c: c.voltage_model.variance)
    print("\nworst 256-cycle window:")
    print(f"  mean current      : {worst.mean_current:.1f} A")
    print(f"  est voltage sigma : {worst.voltage_model.std * 1e3:.1f} mV")
    print(f"  P(V < 0.97 V)     : {worst.prob_below(0.97) * 100:.1f}%")
    print("  scale variances   :",
          {lvl: round(v, 2) for lvl, v in worst.scale_variances.items()})
    print("  adjacent corr     :",
          {lvl: round(r, 2) for lvl, r in worst.scale_correlations.items()})

    prediction = predict_trace(net, result.current, name=benchmark,
                               estimator=estimator)
    print("\nFigure-9 comparison (fraction of cycles below 0.97 V):")
    print(f"  wavelet estimate  : {prediction.estimated * 100:.2f}%")
    print(f"  simulated truth   : {prediction.observed * 100:.2f}%")
    print(f"  error             : {prediction.error * 100:+.2f}%")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "mgrid"
    pct = float(sys.argv[2]) if len(sys.argv) > 2 else 150.0
    main(name, pct)

#!/usr/bin/env python3
"""Batch characterization through the parallel pipeline (Figure 9 at scale).

Runs the full simulate -> convolution-truth -> wavelet-estimate chain for
a set of benchmarks as declarative pipeline jobs:

1. builds one :class:`~repro.pipeline.JobSpec` per benchmark,
2. executes them across worker processes with an on-disk result cache,
3. prints per-job timings and cache hit/miss telemetry, and
4. aggregates the predictions into Figure 9's RMS error.

Run it twice to watch the cache work: the second run re-reads every
artifact instead of re-simulating and reports an identical RMS error.

Run:  python examples/batch_characterize.py [jobs] [cache_dir] [bench ...]
e.g.  python examples/batch_characterize.py 4 /tmp/repro-cache gzip mcf mgrid
"""

import sys

from repro.core import calibrated_supply
from repro.experiments import Figure9Result
from repro.pipeline import (
    BatchOptions,
    build_characterization_jobs,
    predictions_from,
    submit,
)


def main(
    jobs: int = 2,
    cache_dir: str = "/tmp/repro-batch-cache",
    names: tuple[str, ...] = ("gzip", "vpr", "mcf", "mgrid"),
) -> None:
    print(f"=== Batch characterization: {len(names)} benchmarks, "
          f"{jobs} workers, cache {cache_dir} ===\n")
    net = calibrated_supply(150)
    specs = build_characterization_jobs(
        names, net, cycles=16384, impedance=150.0
    )
    batch = submit(specs, BatchOptions(jobs=jobs, cache_dir=cache_dir))

    print(f"{'benchmark':<10} {'simulate':>9} {'voltage':>9} "
          f"{'character':>9}  cache")
    for o in batch.outcomes:
        hits = "+".join(
            "hit" if o.cache_hits[s] else "miss" for s in o.spec.stages
        )
        print(f"{o.spec.benchmark:<10} "
              + " ".join(f"{o.timings[s]:8.2f}s" for s in o.spec.stages)
              + f"  {hits}")

    fig9 = Figure9Result(
        threshold=0.97, predictions=predictions_from(batch)
    )
    print(f"\n{len(specs)} jobs in {batch.elapsed:.2f}s via "
          f"{batch.workers} worker(s); "
          f"{batch.cache_hits}/{batch.stage_runs} stage cache hits")
    print(f"figure9 rms error {fig9.rms_error:.6f}, "
          f"rank correlation {fig9.rank_correlation:.3f}")
    print("\nrun me again: every stage should hit the cache and the "
          "rms error must not change")


if __name__ == "__main__":
    args = sys.argv[1:]
    jobs = int(args[0]) if args else 2
    cache = args[1] if len(args) > 1 else "/tmp/repro-batch-cache"
    names = tuple(args[2:]) if len(args) > 2 else ("gzip", "vpr", "mcf", "mgrid")
    main(jobs, cache, names)

"""The scenario composition grammar: profiles in, schedules out.

A *schedule expression* is a small text grammar over the atomic stress
profiles (:mod:`repro.scenarios.profiles`)::

    schedule := atom | combinator
    atom     := profile-name                     # "cache-thrash"
    seq(a, b, ...)        # run operands in order, cycle budget split
                          # proportional to their relative lengths
    overlay(a, b, ...)    # superpose operands (currents sum); operands
                          # must have equal relative length
    repeat(x, n)          # n copies of x in sequence
    ramp(x, start, stop)  # x with a linear amplitude envelope

Examples::

    seq(cache-thrash, memory-burst, idle-spike)
    repeat(seq(idle-spike, resonance-probe), 4)
    overlay(fp-saturate, ramp(memory-burst, 0.0, 1.0))

Parsing produces a :class:`ScheduleNode` tree; :func:`compile_schedule`
lowers the tree onto the Table-1 machine — every atom span is a real
:func:`~repro.uarch.simulate_benchmark` run of the profile's workload
model — and returns one float64 per-cycle current trace.  All
randomness derives deterministically from the caller's seed and each
atom's position in the tree, so the same ``(expression, cycles, seed)``
triple always compiles to the identical trace, on any backend and in
any worker process.

Every malformed expression raises :class:`~repro.errors.SpecError` with
the offending position; unknown profile names list the valid ones.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from .profiles import get_stress_profile, profile_names

__all__ = [
    "Atom",
    "Overlay",
    "Ramp",
    "Repeat",
    "ScheduleNode",
    "Seq",
    "compile_schedule",
    "parse_schedule",
    "schedule_units",
]

#: Combinator names reserved by the grammar (not valid profile names).
_COMBINATORS = ("seq", "overlay", "repeat", "ramp")


class ScheduleNode:
    """Base class of every schedule AST node."""

    def canonical(self) -> dict:
        """The node as a JSON-ready dict (the cache-identity payload)."""
        raise NotImplementedError

    def units(self) -> int:
        """Relative length in atom units (an atom spans one unit)."""
        raise NotImplementedError

    def text(self) -> str:
        """The canonical source rendering: whitespace-normalized, so
        equivalent expressions produce identical cache identities."""
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(ScheduleNode):
    """One atomic stress profile occupying one relative time unit."""

    profile: str

    def __post_init__(self) -> None:
        get_stress_profile(self.profile)  # unknown names fail loudly here

    def canonical(self) -> dict:
        return {"atom": self.profile}

    def units(self) -> int:
        return 1

    def text(self) -> str:
        return self.profile


@dataclass(frozen=True)
class Seq(ScheduleNode):
    """Operands in order; cycles split proportional to their units."""

    children: tuple[ScheduleNode, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 1:
            raise SpecError("seq() needs at least one operand")

    def canonical(self) -> dict:
        return {"seq": [c.canonical() for c in self.children]}

    def units(self) -> int:
        return sum(c.units() for c in self.children)

    def text(self) -> str:
        return f"seq({', '.join(c.text() for c in self.children)})"


@dataclass(frozen=True)
class Overlay(ScheduleNode):
    """Superposed operands: compiled over the same span and summed.

    Operands must agree on relative length — overlaying a one-unit atom
    onto a three-unit sequence has no meaningful alignment, so it is a
    :class:`~repro.errors.SpecError` at construction time.
    """

    children: tuple[ScheduleNode, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise SpecError("overlay() needs at least two operands")
        lengths = {c.units() for c in self.children}
        if len(lengths) != 1:
            raise SpecError(
                "overlay() operands must have equal relative length; "
                f"got lengths {sorted(lengths)}",
                lengths=sorted(lengths),
            )

    def canonical(self) -> dict:
        return {"overlay": [c.canonical() for c in self.children]}

    def units(self) -> int:
        return self.children[0].units()

    def text(self) -> str:
        return f"overlay({', '.join(c.text() for c in self.children)})"


@dataclass(frozen=True)
class Repeat(ScheduleNode):
    """``count`` copies of the operand, back to back."""

    child: ScheduleNode
    count: int

    def __post_init__(self) -> None:
        if not isinstance(self.count, int) or self.count < 1:
            raise SpecError(
                f"repeat() count must be a positive integer, "
                f"got {self.count!r}"
            )

    def canonical(self) -> dict:
        return {"repeat": self.child.canonical(), "count": self.count}

    def units(self) -> int:
        return self.count * self.child.units()

    def text(self) -> str:
        return f"repeat({self.child.text()}, {self.count})"


@dataclass(frozen=True)
class Ramp(ScheduleNode):
    """The operand under a linear amplitude envelope start → stop."""

    child: ScheduleNode
    start: float
    stop: float

    def __post_init__(self) -> None:
        for label, value in (("start", self.start), ("stop", self.stop)):
            if not (isinstance(value, (int, float)) and value >= 0.0):
                raise SpecError(
                    f"ramp() {label} must be a non-negative number, "
                    f"got {value!r}"
                )

    def canonical(self) -> dict:
        return {
            "ramp": self.child.canonical(),
            "start": float(self.start),
            "stop": float(self.stop),
        }

    def units(self) -> int:
        return self.child.units()

    def text(self) -> str:
        return (
            f"ramp({self.child.text()}, {float(self.start)!r}, "
            f"{float(self.stop)!r})"
        )


def schedule_units(node: ScheduleNode) -> int:
    """Relative length of a schedule in atom units."""
    return node.units()


# -- parser --------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)"
    r"|(?P<number>\d+(?:\.\d+)?)|(?P<name>[a-z][a-z0-9-]*))"
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.end() == match.start():
            remainder = text[pos:].lstrip()
            if not remainder:
                break
            raise SpecError(
                f"schedule parse error at position {pos}: "
                f"unexpected {remainder[0]!r} in {text!r}",
                position=pos,
                expression=text,
            )
        kind = match.lastgroup
        tokens.append((kind, match.group(kind), match.start(kind)))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return (None, None, len(self.text))

    def take(self, kind: str, what: str):
        tok_kind, value, pos = self.peek()
        if tok_kind != kind:
            raise SpecError(
                f"schedule parse error at position {pos}: expected "
                f"{what}, got {value!r} in {self.text!r}",
                position=pos,
                expression=self.text,
            )
        self.index += 1
        return value, pos

    def parse(self) -> ScheduleNode:
        node = self.expression()
        tok_kind, value, pos = self.peek()
        if tok_kind is not None:
            raise SpecError(
                f"schedule parse error at position {pos}: trailing "
                f"{value!r} after a complete expression in {self.text!r}",
                position=pos,
                expression=self.text,
            )
        return node

    def expression(self) -> ScheduleNode:
        name, pos = self.take("name", "a profile or combinator name")
        if name not in _COMBINATORS:
            return Atom(name)
        self.take("lparen", "'('")
        if name == "seq":
            node = Seq(tuple(self.operand_list()))
        elif name == "overlay":
            node = Overlay(tuple(self.operand_list()))
        elif name == "repeat":
            child = self.expression()
            self.take("comma", "','")
            count, cpos = self.take("number", "a repeat count")
            if "." in count:
                raise SpecError(
                    f"schedule parse error at position {cpos}: repeat "
                    f"count must be an integer, got {count!r}",
                    position=cpos,
                    expression=self.text,
                )
            node = Repeat(child, int(count))
        else:  # ramp
            child = self.expression()
            self.take("comma", "','")
            start, _ = self.take("number", "a ramp start level")
            self.take("comma", "','")
            stop, _ = self.take("number", "a ramp stop level")
            node = Ramp(child, float(start), float(stop))
        self.take("rparen", "')'")
        return node

    def operand_list(self) -> list[ScheduleNode]:
        nodes = [self.expression()]
        while self.peek()[0] == "comma":
            self.index += 1
            nodes.append(self.expression())
        return nodes


def parse_schedule(expression: str) -> ScheduleNode:
    """Parse one schedule expression into its AST.

    Raises :class:`~repro.errors.SpecError` on malformed syntax (with
    the character position) and on unknown profile names (listing the
    valid profiles).
    """
    if not isinstance(expression, str) or not expression.strip():
        raise SpecError("schedule expression must be a non-empty string")
    return _Parser(expression.strip()).parse()


# -- compilation ---------------------------------------------------------------


def _atom_seed(base_seed: int, ordinal: int) -> int:
    """A deterministic per-atom-instantiation stream seed.

    Mixes the scenario seed with the atom's traversal ordinal through an
    LCG-style step, so every atom span draws an independent stream while
    the whole schedule stays a pure function of ``(expression, seed)``.
    """
    return (base_seed * 2_654_435_761 + ordinal * 40_503 + 97) % (2**31 - 1)


def _simulate_atom(
    node: Atom, cycles: int, seed: int, warmup_cycles: int
) -> np.ndarray:
    from ..uarch import simulate_benchmark

    profile = get_stress_profile(node.profile)
    result = simulate_benchmark(
        profile.workload,
        cycles=cycles,
        seed=seed,
        warmup_cycles=warmup_cycles,
    )
    return np.asarray(result.current, dtype=np.float64)


class _Compiler:
    """Lowers a schedule tree onto the simulator, one atom span at a time."""

    def __init__(self, base_seed: int, warmup_cycles: int) -> None:
        self.base_seed = base_seed
        self.warmup_cycles = warmup_cycles
        self.ordinal = 0

    def compile(self, node: ScheduleNode, cycles: int) -> np.ndarray:
        if cycles <= 0:
            raise SpecError("schedule span must be at least one cycle")
        if isinstance(node, Atom):
            self.ordinal += 1
            return _simulate_atom(
                node,
                cycles,
                _atom_seed(self.base_seed, self.ordinal),
                self.warmup_cycles,
            )
        if isinstance(node, Seq):
            return self._sequence(node.children, cycles)
        if isinstance(node, Repeat):
            return self._sequence((node.child,) * node.count, cycles)
        if isinstance(node, Overlay):
            parts = [self.compile(c, cycles) for c in node.children]
            return np.sum(parts, axis=0)
        if isinstance(node, Ramp):
            trace = self.compile(node.child, cycles)
            envelope = np.linspace(node.start, node.stop, cycles)
            return trace * envelope
        raise SpecError(f"unknown schedule node {type(node).__name__}")

    def _sequence(self, children, cycles: int) -> np.ndarray:
        total_units = sum(c.units() for c in children)
        segments = []
        consumed_units = 0
        consumed_cycles = 0
        for child in children:
            consumed_units += child.units()
            # Proportional split with the remainder folded into the last
            # segment, so the lengths always sum to exactly ``cycles``.
            end = round(cycles * consumed_units / total_units)
            span = int(end) - consumed_cycles
            if span <= 0:
                raise SpecError(
                    f"schedule span of {cycles} cycles is too short for "
                    f"{total_units} sequence unit(s); give each unit at "
                    "least one cycle",
                    cycles=cycles,
                    units=total_units,
                )
            segments.append(self.compile(child, span))
            consumed_cycles += span
        return np.concatenate(segments)


def compile_schedule(
    schedule: ScheduleNode | str,
    cycles: int,
    *,
    seed: int | None = None,
    warmup_cycles: int = 512,
) -> np.ndarray:
    """Lower one schedule to a float64 per-cycle current trace.

    ``seed`` defaults to 0; every atom span derives its own stream seed
    from it deterministically, so the result is a pure function of
    ``(schedule, cycles, seed, warmup_cycles)``.
    """
    if isinstance(schedule, str):
        schedule = parse_schedule(schedule)
    if cycles <= 0:
        raise SpecError("cycles must be positive")
    if warmup_cycles < 0:
        raise SpecError("warmup_cycles must be non-negative")
    compiler = _Compiler(0 if seed is None else int(seed), warmup_cycles)
    trace = compiler.compile(schedule, int(cycles))
    if trace.shape != (cycles,):
        raise SpecError(
            f"schedule compiled to {trace.shape[0]} cycles, "
            f"expected {cycles}"
        )
    return trace


def _valid_names_hint() -> str:
    return ", ".join(profile_names())

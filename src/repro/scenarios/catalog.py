"""The named-scenario catalog and the name-or-expression resolver.

Two ways to name a stimulus:

* a **catalog name** (``quad-core-dvfs``, ``resonance-sweep``, ...) —
  a curated :class:`~repro.scenarios.multicore.Scenario` below;
* a **schedule expression** (``seq(cache-thrash, idle-spike)``) — any
  grammar string, wrapped on the fly into an anonymous single-core
  scenario.

:func:`resolve_scenario` accepts either.  A bare name that is neither a
catalog scenario nor a parseable expression raises a structured
:class:`~repro.errors.SpecError` listing every valid scenario and
profile name — the CLI maps that to exit code 2 and the serve protocol
to HTTP 400.

:func:`scenario_param` renders a scenario's content identity as
canonical JSON: the string a pipeline :class:`~repro.pipeline.JobSpec`
carries in ``params["scenario"]`` and the ``scenario`` stage hashes
into its cache key.
"""

from __future__ import annotations

import json

from ..errors import SpecError
from .grammar import parse_schedule
from .multicore import CoreSpec, DVFSEvent, Scenario
from .profiles import profile_names

__all__ = [
    "SCENARIOS",
    "get_scenario",
    "resolve_scenario",
    "scenario_names",
    "scenario_param",
    "scenario_from_param",
]


#: Curated scenario catalog.  Each entry is a complete multi-core
#: stimulus; single-core entries exist so the interesting compositions
#: have stable names in CI and the serve protocol.
SCENARIOS: dict[str, Scenario] = {
    "resonance-sweep": Scenario(
        "resonance-sweep",
        "a ramped resonance probe over an fp-saturate carrier: walks the "
        "pump amplitude through the supply's resonant band",
        cores=(
            CoreSpec(
                "overlay(fp-saturate, ramp(resonance-probe, 0.0, 1.0))"
            ),
        ),
    ),
    "burst-train": Scenario(
        "burst-train",
        "four idle-to-burst steps back to back: repeated maximal "
        "single-edge current transients",
        cores=(CoreSpec("repeat(seq(idle-spike, cache-thrash), 2)"),),
    ),
    "memory-storm": Scenario(
        "memory-storm",
        "streaming misses over pointer chasing, then a thrash tail: the "
        "memory-bound worst case",
        cores=(
            CoreSpec(
                "seq(overlay(memory-burst, pointer-chase), cache-thrash)"
            ),
        ),
    ),
    "dual-core-aligned": Scenario(
        "dual-core-aligned",
        "two cores running the same oscillation in phase: worst-case "
        "constructive superposition on the shared network",
        cores=(
            CoreSpec("phase-oscillation"),
            CoreSpec("phase-oscillation"),
        ),
    ),
    "dual-core-skewed": Scenario(
        "dual-core-skewed",
        "the same two oscillating cores, half a period apart: the "
        "phase-offset cancellation counterpart of dual-core-aligned",
        cores=(
            CoreSpec("phase-oscillation"),
            CoreSpec("phase-oscillation", phase_offset=0.5),
        ),
    ),
    "quad-core-dvfs": Scenario(
        "quad-core-dvfs",
        "four staggered cores under a DVFS storm: one down-steps then "
        "recovers, one clock-gates mid-run, one wakes from gated — "
        "every edge a first-class dI/dt step on the shared network",
        cores=(
            CoreSpec("seq(cache-thrash, memory-burst)"),
            CoreSpec(
                "phase-oscillation",
                phase_offset=0.25,
                dvfs=(DVFSEvent(0.375, 0.6), DVFSEvent(0.75, 1.0)),
            ),
            CoreSpec(
                "fp-saturate",
                phase_offset=0.5,
                dvfs=(DVFSEvent(0.5, 0.0),),
            ),
            CoreSpec(
                "branch-storm",
                phase_offset=0.125,
                dvfs=(DVFSEvent(0.0, 0.0), DVFSEvent(0.25, 1.0)),
                gain=0.8,
            ),
        ),
    ),
    "gating-steps": Scenario(
        "gating-steps",
        "a steady fp plateau chopped by gate-off/gate-on pairs: isolates "
        "the pure DVFS step response of the network",
        cores=(
            CoreSpec(
                "fp-saturate",
                dvfs=(
                    DVFSEvent(0.25, 0.0),
                    DVFSEvent(0.375, 1.0),
                    DVFSEvent(0.625, 0.0),
                    DVFSEvent(0.75, 1.0),
                ),
            ),
        ),
    ),
}


def scenario_names() -> tuple[str, ...]:
    """The catalog scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    """Look up one catalog scenario; unknown names list the valid ones."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise SpecError(
            f"unknown scenario {name!r}; valid scenarios: "
            f"{', '.join(scenario_names())}; or compose atomic profiles "
            f"({', '.join(profile_names())}) with "
            "seq()/overlay()/repeat()/ramp()",
            scenario=name,
            valid_scenarios=list(scenario_names()),
            valid_profiles=list(profile_names()),
        ) from None


def resolve_scenario(name_or_expression: str) -> Scenario:
    """A scenario from a catalog name or a schedule expression.

    Catalog names win; anything containing ``(`` is treated as an
    expression and wrapped into an anonymous single-core scenario; a
    bare unknown name raises the structured catalog error.
    """
    text = (name_or_expression or "").strip()
    if not text:
        raise SpecError("scenario name must be non-empty")
    if text in SCENARIOS:
        return SCENARIOS[text]
    if "(" not in text:
        # A bare name: either an atomic profile (a valid one-atom
        # expression) or a typo — get_scenario's error lists both sets.
        if text in profile_names():
            return Scenario(text, f"single-core {text}", (CoreSpec(text),))
        get_scenario(text)  # raises the structured unknown-name error
    parse_schedule(text)  # surface expression errors with positions
    return Scenario(text, "ad-hoc schedule expression", (CoreSpec(text),))


def scenario_param(scenario: Scenario) -> str:
    """A scenario's content identity as canonical compact JSON."""
    return json.dumps(
        scenario.canonical(), sort_keys=True, separators=(",", ":")
    )


def scenario_from_param(param: str) -> Scenario:
    """Rebuild an executable scenario from its canonical JSON identity."""
    try:
        payload = json.loads(param)
        cores = tuple(
            CoreSpec(
                schedule=core["schedule"],
                phase_offset=core.get("phase_offset", 0.0),
                dvfs=tuple(
                    DVFSEvent(at, scale)
                    for at, scale in core.get("dvfs", [])
                ),
                gain=core.get("gain", 1.0),
            )
            for core in payload["cores"]
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise SpecError(
            f"malformed scenario parameter: {exc}", param=param
        ) from exc
    return Scenario("scenario", "from pipeline parameter", cores)

"""The atomic stress-profile library: named dI/dt stimulus generators.

The paper characterizes dI/dt behavior from the fixed 26-benchmark SPEC
suite, but its own conclusion is that voltage emergencies are driven by
*burst structure* — exactly what a canned benchmark list under-samples.
Each profile here is a small, deliberately extreme workload model
(:class:`~repro.workloads.WorkloadProfile`) targeting one burst
mechanism: L1 thrash, L2 streaming, pointer chasing, mispredict drains,
cold-code excursions, resonance-period alternation, idle/active steps.

Profiles are the *atoms* of the scenario grammar
(:mod:`repro.scenarios.grammar`): composable into sequences, overlays,
repeats and ramps, and superposable across cores
(:mod:`repro.scenarios.multicore`).  They lower to the existing
``workloads.spec``/``generator`` machinery, so every scenario exercises
the same Table-1 machine as the paper's benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError
from ..workloads import PhaseSpec, WorkloadProfile

__all__ = [
    "STRESS_PROFILES",
    "StressProfile",
    "get_stress_profile",
    "profile_names",
]


@dataclass(frozen=True)
class StressProfile:
    """One named atomic stimulus: a workload model plus its intent."""

    name: str
    description: str
    workload: WorkloadProfile


def _workload(name: str, phases, **kw) -> WorkloadProfile:
    kw.setdefault("suite", "int")
    # Seeds live in a dedicated 9xx range so a stress profile can never
    # collide with a SPEC2000 model in the simulator's (name, seed) memo.
    return WorkloadProfile(name=name, phases=tuple(phases), **kw)


#: The atomic stress-profile catalog, in the ``STRESS_PROFILES`` dict
#: idiom: one entry per burst mechanism, each a complete workload model.
STRESS_PROFILES: dict[str, StressProfile] = {
    "cache-thrash": StressProfile(
        "cache-thrash",
        "L1-thrashing walks over an L2-resident set: dense bursts of "
        "short miss stalls (poor locality, stress-ng cache style)",
        _workload(
            "cache-thrash",
            [
                PhaseSpec("thrash", 700.0, load_fraction=0.45,
                          store_fraction=0.15, warm=0.8, cold=0.02,
                          serial=0.2),
                PhaseSpec("compute", 300.0, warm=0.10, serial=0.15),
            ],
            warm_bytes=1024 * 1024,
            seed=901,
        ),
    ),
    "memory-burst": StressProfile(
        "memory-burst",
        "streaming L2-missing bursts alternating with compute: the "
        "long-stall/spike pattern of the memory-bound group (swim/mcf)",
        _workload(
            "memory-burst",
            [
                PhaseSpec("stream", 800.0, load_fraction=0.4, cold=0.35,
                          serial=0.1),
                PhaseSpec("compute", 400.0, warm=0.05, serial=0.2),
            ],
            suite="fp",
            warm_bytes=4 * 1024 * 1024,
            seed=902,
        ),
    ),
    "pointer-chase": StressProfile(
        "pointer-chase",
        "serial cold loads (dependent pointer walks): no memory-level "
        "parallelism, so every miss is a full-depth current trough",
        _workload(
            "pointer-chase",
            [
                PhaseSpec("chase", 1200.0, load_fraction=0.45, cold=0.25,
                          serial=0.9),
            ],
            warm_bytes=4 * 1024 * 1024,
            seed=903,
        ),
    ),
    "fork-storm": StressProfile(
        "fork-storm",
        "constant excursions into never-before-seen code: I-cache misses "
        "and front-end restarts (short-lived-process churn)",
        _workload(
            "fork-storm",
            [
                PhaseSpec("spawn", 900.0, warm=0.15, serial=0.3,
                          hard_branch=0.10),
            ],
            code_bytes=512 * 1024,
            cold_code=0.3,
            seed=904,
        ),
    ),
    "lock-contention": StressProfile(
        "lock-contention",
        "spin-wait acquire/release: serial chains punctuated by "
        "data-dependent branches — mispredict drains at lock hand-off",
        _workload(
            "lock-contention",
            [
                PhaseSpec("spin", 400.0, load_fraction=0.3,
                          branch_fraction=0.4, serial=0.8,
                          hard_branch=0.6),
                PhaseSpec("critical", 250.0, warm=0.2, serial=0.3,
                          store_fraction=0.2),
            ],
            seed=905,
        ),
    ),
    "branch-storm": StressProfile(
        "branch-storm",
        "50/50 data-dependent branches back to back: the window drains "
        "and refills every few cycles (full-swing current pulses)",
        _workload(
            "branch-storm",
            [
                PhaseSpec("storm", 800.0, load_fraction=0.1,
                          store_fraction=0.02, branch_fraction=0.55,
                          serial=0.7, hard_branch=0.9,
                          mult_fraction=0.2),
            ],
            seed=906,
        ),
    ),
    "phase-oscillation": StressProfile(
        "phase-oscillation",
        "slow compute/memory alternation at hundreds of cycles: pumps "
        "the low-frequency bands the window-level estimator owns",
        _workload(
            "phase-oscillation",
            [
                PhaseSpec("hot", 320.0, warm=0.02, serial=0.05,
                          hard_branch=0.002, easy_bias=(0.99, 0.999)),
                PhaseSpec("cold", 280.0, load_fraction=0.4, cold=0.3,
                          serial=0.5),
            ],
            suite="fp",
            warm_bytes=3 * 1024 * 1024,
            seed=907,
        ),
    ),
    "resonance-probe": StressProfile(
        "resonance-probe",
        "burst/stall alternation sized to the supply's ~30-cycle "
        "resonant period: the worst-case dI/dt pump (gcc/mgrid family)",
        _workload(
            "resonance-probe",
            [
                PhaseSpec("burst", 40.0, serial=0.02, warm=0.02,
                          hard_branch=0.02, easy_bias=(0.97, 0.999)),
                PhaseSpec("stall", 4.0, serial=0.9, load_fraction=0.10,
                          store_fraction=0.02, branch_fraction=0.55,
                          mult_fraction=0.3, hard_branch=0.95),
            ],
            seed=908,
        ),
    ),
    "idle-spike": StressProfile(
        "idle-spike",
        "long near-idle serial stretches broken by short full-width "
        "bursts: maximal single-step current edges (wake-up transients)",
        _workload(
            "idle-spike",
            [
                PhaseSpec("idle", 600.0, load_fraction=0.05,
                          store_fraction=0.02, branch_fraction=0.05,
                          serial=0.97, div_fraction=0.2),
                PhaseSpec("spike", 60.0, serial=0.01, warm=0.01,
                          hard_branch=0.001, easy_bias=(0.995, 0.9995)),
            ],
            seed=909,
        ),
    ),
    "fp-saturate": StressProfile(
        "fp-saturate",
        "sustained high-ILP FP multiply pressure with few misses: a "
        "high near-Gaussian current plateau (the overlay carrier)",
        _workload(
            "fp-saturate",
            [
                PhaseSpec("saturate", 3000.0, fp_fraction=0.85,
                          mult_fraction=0.35, warm=0.01, serial=0.05,
                          hard_branch=0.001, easy_bias=(0.995, 0.9995)),
            ],
            suite="fp",
            seed=910,
        ),
    ),
}


def profile_names() -> tuple[str, ...]:
    """The atomic profile names, sorted."""
    return tuple(sorted(STRESS_PROFILES))


def get_stress_profile(name: str) -> StressProfile:
    """Look up one atomic profile; unknown names list the valid ones."""
    try:
        return STRESS_PROFILES[name]
    except KeyError:
        raise SpecError(
            f"unknown stress profile {name!r}; "
            f"valid profiles: {', '.join(profile_names())}",
            profile=name,
            valid_profiles=list(profile_names()),
        ) from None

"""Scenario universe: stress profiles, composition grammar, multi-core.

The paper's 26-benchmark suite under-samples exactly the burst
structures that drive voltage emergencies.  This package opens that
workload space declaratively:

* :mod:`~repro.scenarios.profiles` — ~10 named atomic stress profiles
  (``STRESS_PROFILES``), each a complete workload model targeting one
  burst mechanism;
* :mod:`~repro.scenarios.grammar` — ``seq``/``overlay``/``repeat``/
  ``ramp`` composition of profiles into schedules, compiled onto the
  Table-1 simulator;
* :mod:`~repro.scenarios.multicore` — per-core schedules with phase
  offsets and DVFS/clock-gating step events, superposed onto one shared
  supply network;
* :mod:`~repro.scenarios.catalog` — curated named scenarios
  (``quad-core-dvfs``, ...) and the name-or-expression resolver the CLI
  and serve protocol share.

Every scenario lowers to a pipeline :class:`~repro.pipeline.JobSpec`
(the ``scenario`` stage), so it inherits caching, fault tolerance,
block dispatch and observability unchanged.  See ``docs/SCENARIOS.md``.
"""

from .catalog import (
    SCENARIOS,
    get_scenario,
    resolve_scenario,
    scenario_from_param,
    scenario_names,
    scenario_param,
)
from .grammar import (
    Atom,
    Overlay,
    Ramp,
    Repeat,
    ScheduleNode,
    Seq,
    compile_schedule,
    parse_schedule,
    schedule_units,
)
from .multicore import (
    CoreSpec,
    DVFSEvent,
    Scenario,
    compile_scenario,
    dvfs_envelope,
)
from .profiles import (
    STRESS_PROFILES,
    StressProfile,
    get_stress_profile,
    profile_names,
)

__all__ = [
    "Atom",
    "CoreSpec",
    "DVFSEvent",
    "Overlay",
    "Ramp",
    "Repeat",
    "SCENARIOS",
    "STRESS_PROFILES",
    "Scenario",
    "ScheduleNode",
    "Seq",
    "StressProfile",
    "compile_scenario",
    "compile_schedule",
    "dvfs_envelope",
    "get_scenario",
    "get_stress_profile",
    "parse_schedule",
    "profile_names",
    "resolve_scenario",
    "scenario_from_param",
    "scenario_names",
    "scenario_param",
    "schedule_units",
]

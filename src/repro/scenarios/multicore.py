"""Multi-core scenarios: superposed per-core currents plus DVFS steps.

A :class:`Scenario` is the top of the stimulus stack: one or more
:class:`CoreSpec` entries, each running a schedule expression from the
grammar (:mod:`repro.scenarios.grammar`), all drawing from **one shared
power network**.  The supply sees the *sum* of the per-core currents —
the same superposition a package-level PDN sees — so cross-core
alignment matters: two cores hitting their burst phase in step double
the dI/dt excursion, while a half-period ``phase_offset`` lets them
partially cancel.

DVFS and clock-gating enter as first-class current events.  A
:class:`DVFSEvent` is a piecewise-constant amplitude step at a fractional
position in the trace: frequency/voltage scaling multiplies a core's
draw by ``scale`` (< 1 for a down-step), and ``scale = 0.0`` models a
clock-gated core.  The *edges* of that envelope are themselves maximal
dI/dt steps — exactly the transients the monitor has to survive — and
they land on exact cycle boundaries (``int(at * cycles)``) so tests can
pin their alignment.

Everything compiles deterministically from ``(scenario, cycles, seed)``:
per-core stream seeds derive from the scenario seed and the core index,
then the grammar derives per-atom seeds below that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from .grammar import compile_schedule, parse_schedule

__all__ = [
    "CoreSpec",
    "DVFSEvent",
    "Scenario",
    "compile_scenario",
    "dvfs_envelope",
]


@dataclass(frozen=True)
class DVFSEvent:
    """One frequency/voltage (or clock-gate) amplitude step.

    ``at`` is the fractional trace position of the edge in ``[0, 1)``;
    the edge lands on cycle ``int(at * cycles)``.  ``scale`` is the
    current multiplier in force from that edge until the next one
    (``0.0`` = clock-gated, ``1.0`` = nominal).
    """

    at: float
    scale: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.at < 1.0):
            raise SpecError(
                f"DVFS event position must be in [0, 1), got {self.at!r}",
                at=self.at,
            )
        if self.scale < 0.0:
            raise SpecError(
                f"DVFS scale must be non-negative, got {self.scale!r}",
                scale=self.scale,
            )


@dataclass(frozen=True)
class CoreSpec:
    """One core's contribution to the shared supply network.

    ``schedule`` is a grammar expression; ``phase_offset`` rotates the
    core's trace by that fraction of the interval (cross-core
    de-alignment); ``dvfs`` is the core's amplitude-step sequence,
    strictly increasing in ``at``; ``gain`` is a static per-core
    current weight (an asymmetric little core might carry 0.4).
    """

    schedule: str
    phase_offset: float = 0.0
    dvfs: tuple[DVFSEvent, ...] = ()
    gain: float = 1.0

    def __post_init__(self) -> None:
        parse_schedule(self.schedule)  # malformed schedules fail here
        if not (0.0 <= self.phase_offset < 1.0):
            raise SpecError(
                f"phase_offset must be in [0, 1), "
                f"got {self.phase_offset!r}",
                phase_offset=self.phase_offset,
            )
        if self.gain < 0.0:
            raise SpecError(
                f"core gain must be non-negative, got {self.gain!r}",
                gain=self.gain,
            )
        positions = [event.at for event in self.dvfs]
        if positions != sorted(set(positions)):
            raise SpecError(
                "DVFS events must be strictly increasing in position; "
                f"got {positions}",
                positions=positions,
            )

    def canonical(self) -> dict:
        return {
            # whitespace-normalized rendering, so equivalent expressions
            # share one cache identity
            "schedule": parse_schedule(self.schedule).text(),
            "phase_offset": float(self.phase_offset),
            "dvfs": [[float(e.at), float(e.scale)] for e in self.dvfs],
            "gain": float(self.gain),
        }


@dataclass(frozen=True)
class Scenario:
    """A named multi-core stimulus against one shared supply network."""

    name: str
    description: str
    cores: tuple[CoreSpec, ...]
    cycles: int = 32768

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("scenario name must be non-empty")
        if not self.cores:
            raise SpecError(
                f"scenario {self.name!r} needs at least one core",
                scenario=self.name,
            )
        if self.cycles <= 0:
            raise SpecError("scenario cycles must be positive")

    def canonical(self) -> dict:
        """The scenario's content identity (what the cache key hashes)."""
        return {"cores": [core.canonical() for core in self.cores]}


def dvfs_envelope(events: tuple[DVFSEvent, ...], cycles: int) -> np.ndarray:
    """The piecewise-constant amplitude envelope of a DVFS sequence.

    Scale is 1.0 (nominal) from cycle 0 up to the first edge; each edge
    at ``int(event.at * cycles)`` switches to ``event.scale`` for the
    rest of the trace (until the next edge).
    """
    envelope = np.ones(cycles, dtype=np.float64)
    for event in events:
        edge = int(event.at * cycles)
        envelope[edge:] = event.scale
    return envelope


def _core_seed(base_seed: int, core_index: int) -> int:
    """A deterministic per-core stream seed below the scenario seed."""
    return (base_seed * 1_000_003 + core_index * 7_919 + 13) % (2**31 - 1)


def compile_scenario(
    scenario: Scenario,
    cycles: int | None = None,
    *,
    seed: int | None = None,
    warmup_cycles: int = 512,
) -> np.ndarray:
    """Lower a scenario to the summed per-cycle current all cores draw.

    Each core's schedule compiles independently (own derived stream
    seed), is rotated by its phase offset, shaped by its DVFS envelope
    and gain, then all cores superpose by plain addition — one shared
    supply network sees the total.
    """
    span = int(scenario.cycles if cycles is None else cycles)
    if span <= 0:
        raise SpecError("cycles must be positive")
    base_seed = 0 if seed is None else int(seed)
    total = np.zeros(span, dtype=np.float64)
    for index, core in enumerate(scenario.cores):
        trace = compile_schedule(
            core.schedule,
            span,
            seed=_core_seed(base_seed, index),
            warmup_cycles=warmup_cycles,
        )
        offset = int(core.phase_offset * span)
        if offset:
            trace = np.roll(trace, offset)
        if core.dvfs:
            trace = trace * dvfs_envelope(core.dvfs, span)
        total += core.gain * trace
    return total

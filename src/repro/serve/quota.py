"""Per-client token-bucket quotas for the characterization service.

A classic token bucket: ``burst`` tokens of capacity, refilled at
``rate`` tokens/second, one token per accepted request.  Buckets are
created lazily per client id (the ``X-Client`` header, the request's
``client`` field, or the peer address), so "millions of users" cost one
small object per *active* client, and idle buckets are pruned once they
are indistinguishable from a fresh one (full again).

The clock is injectable so tests exercise refill behavior without
sleeping.  A denied request learns ``retry_after_s`` — the exact time
until one token exists — which the server surfaces as a 429 with a
``Retry-After`` header; a well-behaved loadgen backs off by it.
"""

from __future__ import annotations

import time

__all__ = ["TokenBucket", "QuotaRegistry"]


class TokenBucket:
    """``burst``-deep bucket refilling at ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "updated", "_clock")

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self.updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now

    def try_acquire(self, n: float = 1.0) -> tuple[bool, float]:
        """``(granted, retry_after_s)`` — retry_after is 0 when granted."""
        self._refill()
        if self.tokens >= n:
            self.tokens -= n
            return True, 0.0
        return False, (n - self.tokens) / self.rate

    @property
    def full(self) -> bool:
        self._refill()
        return self.tokens >= self.burst


class QuotaRegistry:
    """Lazily-created per-client buckets; ``rate <= 0`` disables quotas."""

    def __init__(
        self,
        rate: float,
        burst: float = 8.0,
        clock=time.monotonic,
        prune_every: int = 1024,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._prune_every = prune_every
        self._checks = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client: str) -> tuple[bool, float]:
        """Spend one token of ``client``'s bucket (always granted when
        quotas are disabled)."""
        if not self.enabled:
            return True, 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, clock=self._clock
            )
        self._checks += 1
        if self._checks % self._prune_every == 0:
            self.prune()
        return bucket.try_acquire()

    def prune(self) -> int:
        """Drop buckets that refilled to full (same as never existing)."""
        idle = [c for c, b in self._buckets.items() if b.full]
        for client in idle:
            del self._buckets[client]
        return len(idle)

    @property
    def active_clients(self) -> int:
        return len(self._buckets)

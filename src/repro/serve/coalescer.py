"""Request→batch coalescing between the asyncio front-end and the pool.

The server's unit of work is a :class:`~repro.pipeline.JobSpec`, whose
content digest is a complete description of the computation.  That
digest is the coalescing key:

* a request whose digest is already **pending** (waiting for the next
  batch) or **in flight** (dispatched to the pool) subscribes to the
  existing entry — N concurrent identical requests cost exactly one
  pipeline job and produce N result streams;
* distinct digests accumulate for up to ``batch_window_s`` (or until
  ``max_batch`` of them are waiting) and dispatch as **one**
  ``submit`` call, so a burst of arrivals pays one pool round-trip,
  one ``pipeline.batch`` span, one cache scan per stage — the serving
  layer inherits the batch pipeline's economics instead of defeating
  them one request at a time.

The bridge to the (synchronous, multiprocessing) executor is a
dedicated thread per dispatch via ``asyncio.to_thread``; outcomes hop
back onto the loop with ``call_soon_threadsafe`` as each job completes,
so subscribers of a fast job in a slow batch are not held hostage by
the stragglers.

Admission control is a hard bound on queued + in-flight *jobs* (not
subscribers — coalesced duplicates are free): past ``max_pending`` a
submit raises :class:`~repro.serve.protocol.AdmissionError`, which the
server turns into an explicit 503 instead of an unbounded queue.
``drain()`` flips the coalescer into shutdown: new submits raise
:class:`~repro.serve.protocol.DrainingError`, pending work still
dispatches, and the call returns once the last in-flight batch has
delivered every event — the graceful-drain half of SIGTERM handling.

A ``try_cache`` hook short-circuits all of it: a request whose every
stage artifact is already in the content-addressed cache is answered
directly (one thread hop to read the files), never touching the pending
queue or the pool — the cache-hit fast path the service's tail latency
is built on.
"""

from __future__ import annotations

import asyncio
import time

from ..obs import trace as obs
from .protocol import AdmissionError, DrainingError

__all__ = ["BatchCoalescer", "Subscription"]

#: Terminal event types — a subscription stream ends after one of these.
_TERMINAL = ("done",)


class Subscription:
    """One request's private event stream (an asyncio queue of dicts)."""

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self.queue: asyncio.Queue = asyncio.Queue()

    def push(self, event: dict) -> None:
        payload = dict(event)
        payload["request_id"] = self.request_id
        self.queue.put_nowait(payload)

    async def events(self):
        """Yield events until (and including) the terminal ``done``."""
        while True:
            event = await self.queue.get()
            yield event
            if event["type"] in _TERMINAL:
                return


class _Entry:
    """One unique job (digest) and everybody waiting on it."""

    __slots__ = ("spec", "digest", "subs", "t_submit")

    def __init__(self, spec, digest: str, t_submit: float) -> None:
        self.spec = spec
        self.digest = digest
        self.subs: list[Subscription] = []
        self.t_submit = t_submit

    def push(self, event: dict) -> None:
        for sub in self.subs:
            sub.push(event)


class BatchCoalescer:
    """Coalesce identical requests and batch distinct ones to a runner.

    ``runner(specs, progress)`` executes a list of specs synchronously
    (the server passes a :func:`repro.pipeline.submit` closure) and
    calls ``progress(outcome)`` as each job completes.  ``try_cache``,
    if given, maps a spec to a finished outcome when every stage is
    already cached (or returns ``None``).  Both run off-loop in worker
    threads.
    """

    def __init__(
        self,
        runner,
        *,
        try_cache=None,
        batch_window_s: float = 0.02,
        max_batch: int = 8,
        max_pending: int = 32,
    ) -> None:
        self.runner = runner
        self.try_cache = try_cache
        self.batch_window_s = float(batch_window_s)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self._pending: dict[str, _Entry] = {}
        self._inflight: dict[str, _Entry] = {}
        self._work = asyncio.Event()
        self._drain_evt = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._task: asyncio.Task | None = None
        self.stats = {
            "submitted": 0,
            "coalesced": 0,
            "cache_fastpath": 0,
            "dispatched_jobs": 0,
            "batches": 0,
            "job_errors": 0,
            "rejected_admission": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "BatchCoalescer":
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="repro-serve-coalescer"
            )
        return self

    async def drain(self) -> None:
        """Refuse new work, flush pending + in-flight, stop the loop."""
        self._draining = True
        self._drain_evt.set()  # interrupt a batch-window sleep
        self._work.set()  # wake the loop so it can notice the drain
        await self._idle.wait()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Unique jobs queued or in flight (the admission meter)."""
        return len(self._pending) + len(self._inflight)

    # -- submission ------------------------------------------------------------

    async def submit(self, spec, request_id: str) -> Subscription:
        """Admit one request; returns its private event stream.

        Raises :class:`DrainingError` after :meth:`drain` began and
        :class:`AdmissionError` when the bounded queue is full.
        """
        if self._draining:
            raise DrainingError(
                "server is draining; retry against another instance"
            )
        self.stats["submitted"] += 1
        sub = Subscription(request_id)

        if self.try_cache is not None:
            outcome = await asyncio.to_thread(self.try_cache, spec)
            if outcome is not None:
                self.stats["cache_fastpath"] += 1
                obs.counter_inc(
                    "serve_cache_fastpath_total",
                    1,
                    "requests answered from the cache without a dispatch",
                )
                sub.push({"type": "status", "state": "cached"})
                self._finish(sub, outcome)
                return sub

        digest = spec.digest()
        entry = self._pending.get(digest) or self._inflight.get(digest)
        if entry is not None:
            # identical computation already queued or running: piggyback
            self.stats["coalesced"] += 1
            obs.counter_inc(
                "serve_coalesced_total",
                1,
                "requests coalesced onto an identical queued/running job",
            )
            entry.subs.append(sub)
            sub.push(
                {
                    "type": "status",
                    "state": "coalesced",
                    "digest": digest,
                    "subscribers": len(entry.subs),
                }
            )
            return sub

        if self.depth >= self.max_pending:
            self.stats["rejected_admission"] += 1
            obs.counter_inc(
                "serve_rejected_total",
                1,
                "requests rejected before execution, by reason",
                reason="admission",
            )
            raise AdmissionError(
                f"admission queue full ({self.depth} jobs >= "
                f"{self.max_pending}); retry later",
                queue_depth=self.depth,
            )

        entry = _Entry(spec, digest, time.monotonic())
        entry.subs.append(sub)
        self._pending[digest] = entry
        self._idle.clear()
        self._work.set()
        sub.push(
            {
                "type": "status",
                "state": "queued",
                "digest": digest,
                "queue_depth": self.depth,
            }
        )
        return sub

    # -- dispatch --------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._work.wait()
            self._work.clear()
            if not self._pending:
                if self._draining and not self._inflight:
                    self._idle.set()
                continue
            # the coalescing window: let a burst of arrivals pile into
            # one batch (cut short the moment a drain begins)
            if not self._draining and len(self._pending) < self.max_batch:
                try:
                    await asyncio.wait_for(
                        self._drain_evt.wait(), timeout=self.batch_window_s
                    )
                except asyncio.TimeoutError:
                    pass
            batch = list(self._pending.values())[: self.max_batch]
            for entry in batch:
                del self._pending[entry.digest]
                self._inflight[entry.digest] = entry
                entry.push(
                    {
                        "type": "status",
                        "state": "dispatched",
                        "digest": entry.digest,
                        "batch_size": len(batch),
                    }
                )
            if self._pending:
                self._work.set()  # more than one batch is waiting
            asyncio.get_running_loop().create_task(
                self._run_batch(batch), name="repro-serve-batch"
            )

    async def _run_batch(self, batch: list[_Entry]) -> None:
        loop = asyncio.get_running_loop()
        specs = [entry.spec for entry in batch]
        by_digest = {entry.digest: entry for entry in batch}
        self.stats["batches"] += 1
        self.stats["dispatched_jobs"] += len(specs)
        obs.counter_inc(
            "serve_dispatched_jobs_total",
            len(specs),
            "unique jobs dispatched to the pipeline",
        )

        def progress(outcome) -> None:
            # runs in the dispatch thread: hop back onto the loop
            loop.call_soon_threadsafe(self._route, by_digest, outcome)

        def run():
            with obs.span(
                "serve.batch",
                jobs=len(specs),
                requests=sum(len(e.subs) for e in batch),
            ):
                return self.runner(specs, progress)

        try:
            await asyncio.to_thread(run)
        except Exception as exc:  # the runner itself blew up: fail all
            for entry in list(by_digest.values()):
                entry.push(
                    {
                        "type": "error",
                        "ok": False,
                        "kind": "internal",
                        "stage": None,
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                )
                entry.push({"type": "done", "ok": False})
                self._inflight.pop(entry.digest, None)
                by_digest.pop(entry.digest, None)
        # anything progress() never delivered (defensive — run_batch
        # reports every job) fails loudly instead of hanging the stream
        for entry in list(by_digest.values()):
            if entry.digest in self._inflight:
                entry.push(
                    {
                        "type": "error",
                        "ok": False,
                        "kind": "internal",
                        "stage": None,
                        "message": "job produced no outcome",
                    }
                )
                entry.push({"type": "done", "ok": False})
                self._inflight.pop(entry.digest, None)
        if self._draining and not self._pending and not self._inflight:
            self._idle.set()

    def _route(self, by_digest: dict, outcome) -> None:
        """Deliver one finished job to exactly its own subscribers."""
        entry = by_digest.pop(outcome.spec.digest(), None)
        if entry is None:
            return  # late duplicate (e.g. a stale retry attempt)
        self._inflight.pop(entry.digest, None)
        if not outcome.ok:
            self.stats["job_errors"] += 1
        for sub in entry.subs:
            self._finish(sub, outcome)
        if self._draining and not self._pending and not self._inflight:
            self._idle.set()

    def _finish(self, sub: Subscription, outcome) -> None:
        from .protocol import error_event, result_event

        if outcome.ok:
            sub.push(result_event(sub.request_id, outcome))
        else:
            sub.push(error_event(sub.request_id, outcome))
        sub.push({"type": "done", "ok": outcome.ok})

"""Characterization-as-a-service: the asyncio front-end over the batch
pipeline.

The batch substrate (PRs 1–6) made one characterization cheap —
content-addressed caching, vectorized kernels, a supervised pool, a
zero-copy trace store.  This package puts a *service* in front of it
for the paper's "heavy traffic from millions of users" regime:

* :mod:`~repro.serve.protocol` — the JSON request / JSONL
  event-stream wire format, and the mapping from one request to one
  :class:`~repro.pipeline.JobSpec`;
* :mod:`~repro.serve.coalescer` — digest-keyed request coalescing and
  batch dispatch (N identical concurrent requests → one pipeline job,
  N result streams) with bounded admission;
* :mod:`~repro.serve.quota` — per-client token-bucket rate limits;
* :mod:`~repro.serve.server` — the zero-dependency asyncio HTTP
  server (``repro serve``): cache hits answered without a worker,
  misses batched to the supervised pool, backpressure as explicit
  429/503, graceful drain on SIGTERM;
* :mod:`~repro.serve.loadgen` — deterministic constant/Poisson/burst
  load generation (``repro loadgen``) writing ``BENCH_serve.json``
  for the benchtrack compare gate.

See ``docs/SERVE.md`` for the protocol and operational semantics.
"""

from .coalescer import BatchCoalescer, Subscription
from .loadgen import (
    HttpResponse,
    build_requests,
    build_schedule,
    http_request,
    percentile,
    run_loadgen,
    summarize,
)
from .protocol import (
    MAX_INLINE_SAMPLES,
    PROTOCOL_VERSION,
    REQUEST_KINDS,
    AdmissionError,
    DrainingError,
    QuotaError,
    RequestError,
    ServeRequest,
    build_spec,
    encode_event,
    error_event,
    parse_request,
    result_event,
)
from .quota import QuotaRegistry, TokenBucket
from .server import ServeConfig, ServeServer

__all__ = [
    "AdmissionError",
    "BatchCoalescer",
    "DrainingError",
    "HttpResponse",
    "MAX_INLINE_SAMPLES",
    "PROTOCOL_VERSION",
    "QuotaError",
    "QuotaRegistry",
    "REQUEST_KINDS",
    "RequestError",
    "ServeConfig",
    "ServeRequest",
    "ServeServer",
    "Subscription",
    "TokenBucket",
    "build_requests",
    "build_schedule",
    "build_spec",
    "encode_event",
    "error_event",
    "http_request",
    "parse_request",
    "percentile",
    "result_event",
    "run_loadgen",
    "summarize",
]

"""The asyncio characterization server (``repro serve``).

Zero dependencies: a hand-rolled HTTP/1.1 layer over
``asyncio.start_server`` — request line + headers + Content-Length body
in, either a plain JSON response or a chunked JSONL event stream out.
Endpoints:

* ``POST /v1/characterize`` (alias ``/v1/monitor``) — submit one
  request (:mod:`repro.serve.protocol`); the response streams
  ``accepted`` → ``status`` → ``result``/``error`` → ``done`` events as
  chunked JSONL, so a client watches its request move through the
  coalescer and the pool live;
* ``GET /healthz`` — liveness JSON (state, uptime, queue depth);
* ``GET /stats`` — the server's counters (requests, cache fast-path
  hits, dispatches, rejections) as JSON — the loadgen's ground truth
  for "zero worker dispatches on a warm cache";
* ``GET /metrics`` — the process :mod:`repro.obs` registry in
  Prometheus text format (serve metrics included).

Admission happens *before* a request touches the pipeline: a draining
server answers 503, an empty token bucket 429 (with ``Retry-After``),
a full admission queue 503 — explicit backpressure instead of an
unbounded queue.  ``serve_until_shutdown`` installs SIGTERM/SIGINT
handlers that trigger a graceful drain: stop accepting, flush every
queued and in-flight job, finish every open response stream, then
return — a request accepted before the signal always gets its result.

Binding port 0 is first-class: the OS assigns an ephemeral port, the
real bound address is printed (and optionally written to
``--port-file``) before any request is accepted, so tests and CI never
race on fixed ports.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
import time

from ..core import calibrated_supply
from ..obs import trace as obs
from ..pipeline import BatchOptions, submit
from ..pipeline.cache import ResultCache
from ..pipeline.executor import execute_job
from ..pipeline.stages import get_stage, stage_cache_keys
from .coalescer import BatchCoalescer
from .protocol import (
    PROTOCOL_VERSION,
    AdmissionError,
    DrainingError,
    RequestError,
    build_spec,
    encode_event,
    parse_request,
)
from .quota import QuotaRegistry

__all__ = ["ServeConfig", "ServeServer"]

#: Hard cap on request bodies (inline traces included).
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Per-connection header/body read budget.
READ_TIMEOUT_S = 30.0


class ServeConfig:
    """Everything ``repro serve`` is configured by (plain values)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        cache_dir: str | None = ".repro-cache",
        store_dir: str | None = None,
        spool_dir: str | None = None,
        quota_rate: float = 0.0,
        quota_burst: float = 8.0,
        max_pending: int = 32,
        batch_window_s: float = 0.02,
        max_batch: int = 8,
        retries: int = 0,
        timeout_s: float | None = None,
        backoff_s: float = 0.2,
    ) -> None:
        self.host = host
        self.port = port
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.store_dir = store_dir
        self.spool_dir = spool_dir
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.max_pending = max_pending
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.retries = retries
        self.timeout_s = timeout_s
        self.backoff_s = backoff_s


class ServeServer:
    """One serving instance; ``start()`` binds, ``drain()`` shuts down."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.t_start = time.time()
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._connections = 0
        self._conn_idle: asyncio.Event | None = None
        self._networks: dict[float, object] = {}
        self._store = None
        self._spool = None
        self._spool_tmp: tempfile.TemporaryDirectory | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.stats = {
            "requests": 0,
            "ok": 0,
            "errors": 0,
            "rejected_400": 0,
            "rejected_429": 0,
            "rejected_503": 0,
        }
        options = BatchOptions(
            jobs=self.config.jobs,
            cache_dir=self.config.cache_dir,
            retries=self.config.retries,
            timeout_s=self.config.timeout_s,
            backoff_s=self.config.backoff_s,
            raise_on_error=False,
        )

        def runner(specs, progress):
            return submit(specs, options, progress=progress)

        self.coalescer = BatchCoalescer(
            runner,
            try_cache=self._make_try_cache(),
            batch_window_s=self.config.batch_window_s,
            max_batch=self.config.max_batch,
            max_pending=self.config.max_pending,
        )
        self.quotas = QuotaRegistry(
            self.config.quota_rate, self.config.quota_burst
        )

    # -- pipeline plumbing -----------------------------------------------------

    def _make_try_cache(self):
        """The cache-hit fast path: serve fully-cached specs poolless."""
        if not self.config.cache_dir:
            return None
        cache = ResultCache(self.config.cache_dir)

        def try_cache(spec):
            keys = stage_cache_keys(spec)
            if not all(
                cache.has(keys[name], get_stage(name).kind)
                for name in spec.stages
            ):
                return None
            # every artifact is on disk: execute_job degenerates to a
            # cache read (no stage function runs on the all-hit path)
            outcome = execute_job(spec, cache)
            return outcome if outcome.ok else None

        return try_cache

    def network_for(self, impedance: float):
        """The calibrated supply network at ``impedance`` (memoized)."""
        key = round(float(impedance), 6)
        if key not in self._networks:
            self._networks[key] = calibrated_supply(key)
        return self._networks[key]

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        host = "127.0.0.1" if self.host in ("0.0.0.0", "") else self.host
        return f"http://{host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "ServeServer":
        if self.config.store_dir:
            from ..store import TraceStore

            self._store = TraceStore(self.config.store_dir)
        if self.config.spool_dir:
            from ..store import TraceStore

            self._spool = TraceStore(self.config.spool_dir, mode="a")
        else:
            from ..store import TraceStore

            self._spool_tmp = tempfile.TemporaryDirectory(
                prefix="repro-serve-spool-"
            )
            self._spool = TraceStore(self._spool_tmp.name, mode="a")
        self._conn_idle = asyncio.Event()
        self._conn_idle.set()
        self.coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self

    async def drain(self) -> None:
        """Graceful shutdown: finish everything accepted, then stop."""
        if self._draining:
            return
        self._draining = True
        obs.event("serve_drain", queue_depth=self.coalescer.depth)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.coalescer.drain()
        if self._conn_idle is not None:
            await self._conn_idle.wait()
        if self._spool_tmp is not None:
            self._spool_tmp.cleanup()
            self._spool_tmp = None

    async def serve_until_shutdown(
        self, duration: float | None = None
    ) -> None:
        """Run until SIGTERM/SIGINT (or ``duration`` seconds), then drain."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop / non-main thread
        try:
            if duration is None:
                await stop.wait()
            else:
                try:
                    await asyncio.wait_for(stop.wait(), timeout=duration)
                except asyncio.TimeoutError:
                    pass
            await self.drain()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    # -- HTTP plumbing ---------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections += 1
        self._conn_idle.clear()
        try:
            await self._handle_request(reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ):
            pass  # client went away or dawdled; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._connections -= 1
            if self._connections == 0:
                self._conn_idle.set()

    async def _handle_request(self, reader, writer) -> None:
        request_line = await asyncio.wait_for(
            reader.readline(), READ_TIMEOUT_S
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), READ_TIMEOUT_S)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > MAX_BODY_BYTES:
                await self._send_json(
                    writer,
                    413,
                    {"error": f"body over {MAX_BODY_BYTES} bytes"},
                )
                return
            body = await asyncio.wait_for(
                reader.readexactly(length), READ_TIMEOUT_S
            )
        peer = writer.get_extra_info("peername")
        client_hint = headers.get("x-client") or (
            f"{peer[0]}" if isinstance(peer, tuple) else "anonymous"
        )

        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, self.health())
        elif method == "GET" and path == "/stats":
            await self._send_json(writer, 200, self.snapshot_stats())
        elif method == "GET" and path == "/metrics":
            await self._send_text(
                writer,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                obs.registry().to_prometheus(),
            )
        elif method == "GET" and path == "/":
            await self._send_text(
                writer,
                200,
                "text/plain; charset=utf-8",
                "repro serve endpoints: POST /v1/characterize "
                "/v1/monitor; GET /healthz /stats /metrics\n",
            )
        elif method == "POST" and path in (
            "/v1/characterize",
            "/v1/monitor",
        ):
            await self._handle_submit(writer, body, client_hint)
        else:
            await self._send_json(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    # -- the characterization route --------------------------------------------

    async def _handle_submit(self, writer, body: bytes, client_hint: str):
        t0 = time.monotonic()
        self.stats["requests"] += 1
        if self._draining:
            self.stats["rejected_503"] += 1
            await self._send_json(
                writer,
                503,
                {"error": "draining", "retry_after_s": 1.0},
                extra_headers={"Retry-After": "1"},
            )
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.stats["rejected_400"] += 1
            await self._send_json(
                writer, 400, {"error": f"bad JSON body: {exc}"}
            )
            return
        try:
            request = parse_request(payload)
            client = request.client or client_hint
            granted, retry_after = self.quotas.check(client)
            if not granted:
                self.stats["rejected_429"] += 1
                obs.counter_inc(
                    "serve_rejected_total",
                    1,
                    "requests rejected before execution, by reason",
                    reason="quota",
                )
                await self._send_json(
                    writer,
                    429,
                    {
                        "error": f"quota exhausted for client {client!r}",
                        "retry_after_s": round(retry_after, 4),
                    },
                    extra_headers={
                        "Retry-After": str(max(1, int(retry_after + 0.5)))
                    },
                )
                return
            spec = await asyncio.to_thread(
                build_spec,
                request,
                network_for=self.network_for,
                store=self._store,
                spool=self._spool,
            )
        except RequestError as exc:
            self.stats["rejected_400"] += 1
            await self._send_json(
                writer, 400, {"error": str(exc), **exc.details}
            )
            return

        request_id = os.urandom(8).hex()
        try:
            sub = await self.coalescer.submit(spec, request_id)
        except DrainingError as exc:
            self.stats["rejected_503"] += 1
            await self._send_json(
                writer,
                503,
                {"error": str(exc), "retry_after_s": 1.0},
                extra_headers={"Retry-After": "1"},
            )
            return
        except AdmissionError as exc:
            self.stats["rejected_503"] += 1
            await self._send_json(
                writer,
                503,
                {"error": str(exc), **exc.details, "retry_after_s": 0.5},
                extra_headers={"Retry-After": "1"},
            )
            return

        obs.event(
            "serve_request",
            request_id=request_id,
            client=client,
            kind=request.kind,
            source=request.source,
            benchmark=spec.benchmark,
            digest=spec.digest()[:16],
        )
        # accepted: everything from here streams as chunked JSONL
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await self._send_chunk(
            writer,
            encode_event(
                {
                    "type": "accepted",
                    "request_id": request_id,
                    "protocol": PROTOCOL_VERSION,
                    "digest": spec.digest(),
                    "benchmark": spec.benchmark,
                    "trace_id": obs.current_trace_id(),
                }
            ),
        )
        ok = False
        try:
            async for event in sub.events():
                await self._send_chunk(writer, encode_event(event))
                if event["type"] == "done":
                    ok = bool(event.get("ok"))
            await self._send_chunk(writer, b"")  # terminal 0-chunk
        finally:
            elapsed = time.monotonic() - t0
            self.stats["ok" if ok else "errors"] += 1
            obs.counter_inc(
                "serve_requests_total",
                1,
                "requests accepted, by final status",
                status="ok" if ok else "error",
            )
            obs.histogram_observe(
                "serve_request_seconds",
                elapsed,
                "accepted-request wall time to the done event",
            )

    # -- response helpers ------------------------------------------------------

    async def _send_chunk(self, writer, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("ascii"))
        writer.write(data + b"\r\n")
        await writer.drain()

    async def _send_json(
        self, writer, code: int, doc: dict, extra_headers: dict | None = None
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            413: "Payload Too Large",
            429: "Too Many Requests",
            503: "Service Unavailable",
        }.get(code, "OK")
        head = [
            f"HTTP/1.1 {code} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _send_text(
        self, writer, code: int, content_type: str, text: str
    ) -> None:
        body = text.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {code} OK\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    # -- introspection ---------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.t_start, 3),
            "queue_depth": self.coalescer.depth,
            "protocol": PROTOCOL_VERSION,
        }

    def snapshot_stats(self) -> dict:
        return {
            **self.stats,
            **self.coalescer.stats,
            "queue_depth": self.coalescer.depth,
            "active_clients": self.quotas.active_clients,
            "draining": self._draining,
        }

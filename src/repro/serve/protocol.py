"""The characterization service's wire protocol.

One request = one JSON document POSTed to ``/v1/characterize`` (or
``/v1/monitor`` — the path is an alias; ``kind`` selects the stage
chain).  The trace a request characterizes arrives one of three ways:

* **named workload** — ``{"benchmark": "gzip", "cycles": 32768}``
  simulates the SPEC2000 workload model on the server (the batch
  pipeline's ``simulate`` stage);
* **store reference** — ``{"trace_id": "tr-..."}`` names a trace in the
  server's configured :class:`~repro.store.TraceStore`; workers attach
  it zero-copy (``load_trace`` stage);
* **inline upload** — ``{"trace": {"samples": [...], "label": "x"}}``
  ships the samples in the request body; the server ingests them into
  its *spool* store (content-addressed, so re-uploads dedupe) and the
  job again runs by reference.

Every accepted request maps to exactly one
:class:`~repro.pipeline.JobSpec`, which is what makes the serving layer
inherit the whole batch substrate for free: the spec digest is the
coalescing key, the content-addressed cache serves repeats without a
worker, and fault tolerance/observability apply unchanged.

The response is a stream of JSONL events (chunked transfer, one event
per line)::

    {"type": "accepted", "request_id": ..., "digest": ...}
    {"type": "status", "state": "queued" | "coalesced" | "cached" |
     "dispatched" | "draining", ...}
    {"type": "result", "ok": true, "benchmark": ..., ...}
    {"type": "error", "kind": "exception" | "timeout" | "crash", ...}
    {"type": "done", "ok": ...}

Requests rejected *before* acceptance get a plain JSON error body with
an HTTP status instead: 400 (malformed), 429 (quota, with
``retry_after_s``), 503 (admission queue full, or draining).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, SpecError
from ..pipeline.spec import (
    DEFAULT_STAGES,
    SCENARIO_STAGES,
    STORE_STAGES,
    JobSpec,
)
from ..workloads import SPEC2000

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_KINDS",
    "AdmissionError",
    "DrainingError",
    "QuotaError",
    "RequestError",
    "ServeRequest",
    "build_spec",
    "error_event",
    "parse_request",
    "result_event",
]

#: Bump on incompatible wire-format changes; echoed in ``accepted``.
PROTOCOL_VERSION = 1

#: ``characterize`` runs the §4 estimate-vs-truth chain; ``control``
#: (the "monitor" flow) runs one closed-loop §5 control experiment.
REQUEST_KINDS = ("characterize", "control")

#: Inline uploads above this many samples are refused — ship big traces
#: through the store instead (`repro store ingest` + by-reference).
MAX_INLINE_SAMPLES = 4_000_000


class RequestError(ReproError, ValueError):
    """A malformed or unsatisfiable request (HTTP 400)."""


class QuotaError(ReproError):
    """The client's token bucket is empty (HTTP 429)."""


class AdmissionError(ReproError):
    """The admission queue is full — back off and retry (HTTP 503)."""


class DrainingError(ReproError):
    """The server is draining and accepts no new work (HTTP 503)."""


@dataclass(frozen=True)
class ServeRequest:
    """One validated request, pre-spec: plain values only."""

    kind: str = "characterize"
    benchmark: str | None = None
    trace_id: str | None = None
    samples: tuple[float, ...] | None = None
    label: str | None = None
    scenario: str | None = None
    cycles: int = 32768
    seed: int | None = None
    warmup_cycles: int = 4096
    window: int = 256
    threshold: float = 0.97
    impedance: float = 150.0
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    client: str | None = None

    @property
    def source(self) -> str:
        """How the trace arrives: ``workload`` / ``ref`` / ``inline`` /
        ``scenario``."""
        if self.samples is not None:
            return "inline"
        if self.trace_id is not None:
            return "ref"
        if self.scenario is not None:
            return "scenario"
        return "workload"


def _require(condition: bool, message: str, **details) -> None:
    if not condition:
        raise RequestError(message, **details)


def parse_request(payload: dict) -> ServeRequest:
    """Validate one request document into a :class:`ServeRequest`.

    Raises :class:`RequestError` (→ HTTP 400) on anything malformed;
    the message is safe to echo to the client.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    kind = payload.get("kind", "characterize")
    _require(
        kind in REQUEST_KINDS,
        f"unknown kind {kind!r}; expected one of {REQUEST_KINDS}",
        kind=str(kind),
    )
    benchmark = payload.get("benchmark")
    trace_id = payload.get("trace_id")
    trace = payload.get("trace")
    scenario = payload.get("scenario")
    sources = sum(
        x is not None for x in (benchmark, trace_id, trace, scenario)
    )
    _require(
        sources == 1,
        "give exactly one trace source: 'benchmark' (named workload), "
        "'trace_id' (store reference), 'trace' (inline upload) or "
        "'scenario' (named stress scenario / schedule expression)",
    )
    if scenario is not None:
        _require(
            kind == "characterize",
            "control requests need a named workload (the closed loop "
            "re-executes the machine, not a composed scenario)",
        )
        _require(
            isinstance(scenario, str) and scenario.strip(),
            "'scenario' must be a non-empty string",
        )
        from ..scenarios import resolve_scenario

        try:
            resolve_scenario(scenario)
        except SpecError as exc:
            # unknown name / malformed expression → HTTP 400 with the
            # valid-name lists in the structured details
            raise RequestError(str(exc), **exc.details) from None
    samples: tuple[float, ...] | None = None
    label = None
    if trace is not None:
        _require(
            kind == "characterize",
            "control requests need a named workload (the closed loop "
            "re-executes the machine, not a recorded trace)",
        )
        _require(
            isinstance(trace, dict) and isinstance(trace.get("samples"), list),
            "inline 'trace' must be {'samples': [...], 'label': ...}",
        )
        raw = trace["samples"]
        _require(len(raw) > 0, "inline trace has no samples")
        _require(
            len(raw) <= MAX_INLINE_SAMPLES,
            f"inline trace too large ({len(raw)} samples > "
            f"{MAX_INLINE_SAMPLES}); ingest it into a store and send a "
            "trace_id instead",
            samples=len(raw),
        )
        try:
            samples = tuple(float(v) for v in raw)
        except (TypeError, ValueError):
            raise RequestError(
                "inline trace samples must be numbers"
            ) from None
        label = str(trace.get("label") or "inline")
    if trace_id is not None:
        _require(
            kind == "characterize",
            "control requests need a named workload (the closed loop "
            "re-executes the machine, not a recorded trace)",
        )
        _require(
            isinstance(trace_id, str) and trace_id,
            "'trace_id' must be a non-empty string",
        )
    if benchmark is not None:
        _require(
            benchmark in SPEC2000,
            f"unknown benchmark {benchmark!r}; see `repro list`",
            benchmark=str(benchmark),
        )

    def number(name, default, cast, minimum=None):
        value = payload.get(name, default)
        try:
            value = cast(value)
        except (TypeError, ValueError):
            raise RequestError(
                f"{name!r} must be a number, got {value!r}", field=name
            ) from None
        if minimum is not None and value < minimum:
            raise RequestError(
                f"{name!r} must be >= {minimum}", field=name
            )
        return value

    seed = payload.get("seed")
    _require(
        seed is None or isinstance(seed, int),
        "'seed' must be an integer or null",
    )
    params = payload.get("params") or {}
    _require(
        isinstance(params, dict)
        and all(
            isinstance(v, (str, int, float, bool, type(None)))
            for v in params.values()
        ),
        "'params' must be an object of scalar values",
    )
    client = payload.get("client")
    _require(
        client is None or isinstance(client, str),
        "'client' must be a string",
    )
    return ServeRequest(
        kind=kind,
        benchmark=benchmark,
        trace_id=trace_id,
        samples=samples,
        label=label,
        scenario=scenario,
        cycles=number("cycles", 32768, int, minimum=1),
        seed=seed,
        warmup_cycles=number("warmup_cycles", 4096, int, minimum=0),
        window=number("window", 256, int, minimum=2),
        threshold=number("threshold", 0.97, float),
        impedance=number("impedance", 150.0, float, minimum=1.0),
        params=tuple(sorted(params.items())),
        client=client,
    )


def build_spec(request: ServeRequest, *, network_for, store, spool) -> JobSpec:
    """One request → one :class:`~repro.pipeline.JobSpec`.

    ``network_for(impedance)`` supplies (and memoizes) the calibrated
    supply network; ``store`` is the server's read-only reference corpus
    (or ``None``); ``spool`` is the append-mode store inline uploads are
    ingested into (or ``None`` to refuse uploads).
    """
    network = network_for(request.impedance)
    common = dict(
        cycles=request.cycles,
        seed=request.seed,
        warmup_cycles=request.warmup_cycles,
        window=request.window,
        threshold=request.threshold,
        impedance=request.impedance,
    )
    if request.kind == "control":
        return JobSpec.make(
            request.benchmark,
            network=network,
            stages=("control",),
            params=dict(request.params) or {"scheme": "wavelet"},
            **common,
        )
    if request.source == "workload":
        return JobSpec.make(
            request.benchmark,
            network=network,
            stages=DEFAULT_STAGES,
            **common,
        )
    if request.source == "scenario":
        from ..scenarios import resolve_scenario, scenario_param

        try:
            scenario = resolve_scenario(request.scenario)
        except SpecError as exc:  # re-validated post-parse; same mapping
            raise RequestError(str(exc), **exc.details) from None
        return JobSpec.make(
            scenario.name,
            network=network,
            stages=SCENARIO_STAGES,
            params={"scenario": scenario_param(scenario)},
            **common,
        )
    if request.source == "ref":
        if store is None:
            raise RequestError(
                "this server has no trace store configured "
                "(start it with --store DIR to serve by-reference "
                "requests)"
            )
        record = next(
            (r for r in store.records() if r.trace_id == request.trace_id),
            None,
        )
        if record is None:
            raise RequestError(
                f"trace {request.trace_id!r} not found in the server's "
                "store",
                trace_id=request.trace_id,
            )
        generator = record.generator or {}
        common["cycles"] = record.cycles
        common["seed"] = generator.get("seed")
        common["warmup_cycles"] = int(generator.get("warmup_cycles", 0))
        return JobSpec.make(
            record.benchmark,
            network=network,
            stages=STORE_STAGES,
            trace=store.ref(record),
            **common,
        )
    # inline upload → spool store (idempotent: the store's content hash
    # dedupes byte-identical re-uploads into one stored trace)
    if spool is None:
        raise RequestError(
            "this server accepts no inline uploads (no spool store)"
        )
    samples = np.asarray(request.samples, dtype=np.float64)
    record = spool.ingest(samples, request.label or "inline")
    common["cycles"] = record.cycles
    common["seed"] = None
    common["warmup_cycles"] = 0
    return JobSpec.make(
        record.benchmark,
        network=network,
        stages=STORE_STAGES,
        trace=spool.ref(record),
        **common,
    )


# -- response events -----------------------------------------------------------


def result_event(request_id: str, outcome) -> dict:
    """The terminal ``result`` event of a successful job."""
    summary: dict[str, object] = {}
    characterize = outcome.artifacts.get("characterize")
    voltage = outcome.artifacts.get("voltage")
    control = outcome.artifacts.get("control")
    if characterize is not None:
        summary["estimated"] = characterize["estimated"]
    if voltage is not None:
        summary["observed"] = voltage["observed"]
        if "estimated" in summary:
            summary["error"] = summary["estimated"] - voltage["observed"]
    if control is not None:
        summary.update(
            {
                k: control[k]
                for k in (
                    "scheme",
                    "slowdown",
                    "baseline_faults",
                    "controlled_faults",
                )
                if k in control
            }
        )
    return {
        "type": "result",
        "request_id": request_id,
        "ok": True,
        "benchmark": outcome.spec.benchmark,
        "stages": list(outcome.spec.stages),
        "cache_hit": bool(outcome.cache_hits)
        and all(outcome.cache_hits.values()),
        "attempts": outcome.attempts,
        "elapsed_s": round(outcome.elapsed, 6),
        **summary,
    }


def error_event(request_id: str, outcome) -> dict:
    """The terminal ``error`` event of a failed job (structured, never a
    raw traceback)."""
    failure = outcome.failure() or {}
    return {
        "type": "error",
        "request_id": request_id,
        "ok": False,
        "benchmark": outcome.spec.benchmark,
        "kind": failure.get("kind", "exception"),
        "stage": failure.get("stage"),
        "attempts": failure.get("attempts", outcome.attempts),
        "message": failure.get("error", ""),
    }


def encode_event(event: dict) -> bytes:
    """One event as a JSONL line (the unit the server streams)."""
    return (json.dumps(event, sort_keys=True, default=str) + "\n").encode(
        "utf-8"
    )

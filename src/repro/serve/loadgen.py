"""Deterministic load generation against a live ``repro serve``.

Three arrival patterns, all driven by one seeded PRNG so a run is
reproducible end to end (same seed + same knobs → the same request
sequence at the same offsets):

* ``constant`` — evenly spaced arrivals at ``rate`` requests/second;
* ``poisson`` — exponential inter-arrival gaps at mean ``1/rate`` (the
  "heavy traffic from millions of users" shape: memoryless arrivals
  with real bursts and lulls);
* ``burst`` — arrivals in back-to-back groups of ``burst_size``, groups
  spaced so the long-run rate still averages ``rate`` — the worst case
  for admission control and the best case for batch coalescing.

The request mix cycles deterministically over a benchmark list, so a
second identical run re-requests the same specs — which is exactly how
the cache-hit ratio acceptance check works: run once cold, run again,
and the second pass must be answered from the content-addressed cache
with zero pool dispatches.

The module also carries the minimal asyncio HTTP/1.1 client the
generator (and the test battery) uses: plain requests with
Content-Length bodies and chunked JSONL event-stream responses.  The
summary written to ``BENCH_serve.json`` follows the benchtrack naming
contract — ``requests_per_s`` gates higher-is-better,
``latency_p50_s``/``latency_p99_s`` gate lower-is-better (with the
noise floor), counts stay informational.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

__all__ = [
    "HttpResponse",
    "build_requests",
    "build_schedule",
    "http_request",
    "percentile",
    "run_loadgen",
    "summarize",
]

PATTERNS = ("constant", "poisson", "burst")

#: The default deterministic request mix (small SPEC2000 subset).
DEFAULT_BENCHMARKS = ("gzip", "gcc", "mcf", "art")


# -- deterministic schedules ---------------------------------------------------


def build_schedule(
    pattern: str,
    *,
    rate: float,
    count: int,
    seed: int = 0,
    burst_size: int = 4,
) -> tuple[float, ...]:
    """Arrival offsets (seconds from start) for ``count`` requests.

    Pure function of its arguments — the loadgen determinism contract.
    """
    if pattern not in PATTERNS:
        raise ValueError(
            f"unknown arrival pattern {pattern!r}; expected one of "
            f"{PATTERNS}"
        )
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 1:
        raise ValueError("count must be at least 1")
    if pattern == "constant":
        return tuple(i / rate for i in range(count))
    if pattern == "poisson":
        rng = random.Random(seed)
        t = 0.0
        offsets = []
        for _ in range(count):
            offsets.append(t)
            t += rng.expovariate(rate)
        return tuple(offsets)
    # burst: groups of burst_size arriving together, spaced so the
    # long-run average is still `rate`
    burst_size = max(1, int(burst_size))
    gap = burst_size / rate
    return tuple((i // burst_size) * gap for i in range(count))


def build_requests(
    count: int,
    *,
    seed: int = 0,
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    cycles: int = 2048,
    warmup_cycles: int = 0,
    window: int = 64,
    client: str = "loadgen",
) -> tuple[dict, ...]:
    """The deterministic request mix: ``count`` payload documents.

    Benchmarks cycle in seeded-shuffle order; seeds for the simulated
    workloads come from the same PRNG, so two runs with the same
    arguments request byte-identical spec digests (the cache-hit
    contract between a cold and a warm pass).
    """
    rng = random.Random(seed)
    order = list(benchmarks)
    rng.shuffle(order)
    payloads = []
    for i in range(count):
        payloads.append(
            {
                "kind": "characterize",
                "benchmark": order[i % len(order)],
                "cycles": cycles,
                "warmup_cycles": warmup_cycles,
                "window": window,
                "seed": rng.randrange(2**31),
                "client": client,
            }
        )
    return tuple(payloads)


# -- minimal asyncio HTTP client -----------------------------------------------


class HttpResponse:
    """One parsed response: status, headers, body, and (for JSONL
    streams) the decoded event list."""

    def __init__(self, status: int, headers: dict, body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def events(self) -> list[dict]:
        """The body as decoded JSONL events (empty for non-stream
        bodies that fail to parse line-wise)."""
        events = []
        for line in self.body.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                return []
        return events

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | dict | None = None,
    headers: dict | None = None,
    timeout: float = 60.0,
) -> HttpResponse:
    """One HTTP/1.1 request; handles Content-Length and chunked bodies.

    A chunked JSONL stream is read to its terminal chunk, so the
    returned ``events`` list always ends with the server's ``done``
    event (or the connection raised).
    """
    if isinstance(body, dict):
        body = json.dumps(body).encode("utf-8")
    body = body or b""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if body:
            head.append("Content-Type: application/json")
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2:
            raise ConnectionError(f"bad status line {status_line!r}")
        status = int(parts[1])
        resp_headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()

        if resp_headers.get("transfer-encoding", "").lower() == "chunked":
            chunks = []
            while True:
                size_line = await asyncio.wait_for(reader.readline(), timeout)
                size = int(size_line.strip() or b"0", 16)
                data = await asyncio.wait_for(
                    reader.readexactly(size + 2), timeout
                )
                if size == 0:
                    break
                chunks.append(data[:-2])
            payload = b"".join(chunks)
        elif "content-length" in resp_headers:
            payload = await asyncio.wait_for(
                reader.readexactly(int(resp_headers["content-length"])),
                timeout,
            )
        else:
            payload = await asyncio.wait_for(reader.read(), timeout)
        return HttpResponse(status, resp_headers, payload)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# -- the generator -------------------------------------------------------------


async def _one_request(
    host: str, port: int, payload: dict, timeout: float
) -> dict:
    """Fire one request and distill its outcome for the summary."""
    t0 = time.monotonic()
    try:
        response = await http_request(
            host, port, "POST", "/v1/characterize", payload, timeout=timeout
        )
    except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
        return {
            "status": 0,
            "ok": False,
            "cached": False,
            "coalesced": False,
            "latency_s": time.monotonic() - t0,
            "error": f"{type(exc).__name__}: {exc}",
        }
    latency = time.monotonic() - t0
    events = response.events if response.status == 200 else []
    states = {
        e.get("state") for e in events if e.get("type") == "status"
    }
    result = next(
        (e for e in events if e.get("type") == "result"), None
    )
    done = next((e for e in events if e.get("type") == "done"), None)
    return {
        "status": response.status,
        "ok": bool(done and done.get("ok")),
        "cached": "cached" in states
        or bool(result and result.get("cache_hit")),
        "coalesced": "coalesced" in states,
        "latency_s": latency,
    }


async def run_loadgen(
    host: str,
    port: int,
    *,
    pattern: str = "poisson",
    rate: float = 20.0,
    count: int = 20,
    seed: int = 0,
    burst_size: int = 4,
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    cycles: int = 2048,
    window: int = 64,
    timeout: float = 120.0,
    client: str = "loadgen",
) -> dict:
    """Replay one deterministic schedule; returns the raw run record.

    The server's ``/stats`` endpoint is sampled before and after, so the
    summary can report *server-side* truth (dispatched jobs, fast-path
    answers) next to the client-side latencies.
    """
    schedule = build_schedule(
        pattern, rate=rate, count=count, seed=seed, burst_size=burst_size
    )
    payloads = build_requests(
        count,
        seed=seed,
        benchmarks=benchmarks,
        cycles=cycles,
        window=window,
        client=client,
    )
    stats_before = (
        await http_request(host, port, "GET", "/stats", timeout=timeout)
    ).json()

    t_start = time.monotonic()

    async def fire(offset: float, payload: dict) -> dict:
        delay = offset - (time.monotonic() - t_start)
        if delay > 0:
            await asyncio.sleep(delay)
        return await _one_request(host, port, payload, timeout)

    records = list(
        await asyncio.gather(
            *(fire(o, p) for o, p in zip(schedule, payloads))
        )
    )
    wall = time.monotonic() - t_start
    stats_after = (
        await http_request(host, port, "GET", "/stats", timeout=timeout)
    ).json()
    return {
        "pattern": pattern,
        "rate": rate,
        "count": count,
        "seed": seed,
        "records": records,
        "wall_s": wall,
        "stats_before": stats_before,
        "stats_after": stats_after,
    }


# -- summarization -------------------------------------------------------------


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def summarize(run: dict, *, quick: bool = False) -> dict:
    """One run record → the ``BENCH_serve.json`` document.

    Leaf names follow the benchtrack direction contract:
    ``requests_per_s`` gates higher, ``latency_*_s`` gate lower, counts
    are informational.
    """
    records = run["records"]
    accepted = [r for r in records if r["status"] == 200]
    latencies = [r["latency_s"] for r in accepted]
    delta = {
        key: run["stats_after"].get(key, 0) - run["stats_before"].get(key, 0)
        for key in ("submitted", "cache_fastpath", "dispatched_jobs",
                    "coalesced", "batches")
    }
    cached = sum(1 for r in accepted if r["cached"])
    doc = {
        "quick": bool(quick),
        "loadgen": {
            "pattern": run["pattern"],
            "seed": run["seed"],
            "offered_rate_per_s": run["rate"],
            "requests": len(records),
            "accepted": len(accepted),
            "ok": sum(1 for r in accepted if r["ok"]),
            "rejected": len(records) - len(accepted),
            "wall_seconds": round(run["wall_s"], 6),
            "requests_per_s": (
                round(len(accepted) / run["wall_s"], 6)
                if run["wall_s"] > 0
                else 0.0
            ),
            "latency_p50_s": round(percentile(latencies, 50), 6),
            "latency_p99_s": round(percentile(latencies, 99), 6),
            "cache_hit_ratio": (
                round(cached / len(accepted), 6) if accepted else 0.0
            ),
        },
        "server": {
            "submitted": delta["submitted"],
            "cache_fastpath": delta["cache_fastpath"],
            "coalesced": delta["coalesced"],
            "dispatched_jobs": delta["dispatched_jobs"],
            "batches": delta["batches"],
        },
    }
    return doc


def write_bench(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")

"""Command-line interface: ``python -m repro <command>``.

Four commands cover the repo's main flows:

* ``list`` — the 26 available benchmark models and their suites.
* ``simulate`` — run one benchmark on the Table-1 machine, show run
  statistics and the current waveform.
* ``characterize`` — the paper's offline §4 pipeline: estimated vs.
  observed emergency exposure for one or more benchmarks, optionally
  across ``--jobs`` worker processes with an on-disk result cache.
* ``pipeline`` — the batch-characterization subsystem: ``run`` a whole
  suite through the worker pool with per-job timing and cache-hit
  accounting, ``status``/``clear`` the content-addressed result cache.
* ``control`` — the paper's online §5 pipeline: closed-loop dI/dt control
  with a selectable scheme, reporting slowdown and fault suppression.
* ``phases`` — wavelet-signature phase classification with per-phase
  dI/dt exposure.
* ``breakdown`` — Wattch-style per-unit power breakdown of a benchmark.
* ``sizing`` — the largest target impedance a workload set tolerates.
* ``report`` — the whole evaluation as one text report.
* ``bench`` — time every reference/vectorized kernel pair and write
  ``BENCH_kernels.json`` (see ``docs/KERNELS.md``); ``bench --store``
  times the trace store instead (``BENCH_store.json``).
* ``store`` — the zero-copy trace store (``docs/STORE.md``): ``ingest``
  benchmarks or external files into a corpus, ``ls`` it, ``verify``
  integrity, ``gc`` reclaimable bytes; ``pipeline run --store DIR``
  characterizes the stored corpus without re-simulating.
* ``obs`` — observability utilities: ``obs report`` renders a JSONL
  log, ``obs chrome`` converts one to a Perfetto-viewable Chrome trace,
  ``obs serve`` exposes a recorded log over the live HTTP endpoint.
* ``serve`` — the characterization service (``docs/SERVE.md``): an
  asyncio front-end that answers cache hits without a worker, coalesces
  misses into pool batches, enforces per-client quotas and bounded
  admission, streams results as chunked JSONL and drains gracefully on
  SIGTERM.  Binds port 0 by default and prints (and ``--port-file``
  writes) the actual bound address, so nothing ever races on a fixed
  port.
* ``loadgen`` — deterministic constant/Poisson/burst load against a
  live server; writes ``BENCH_serve.json`` (requests/sec, p50/p99
  latency, cache-hit ratio) for the benchtrack compare gate.

Every command accepts the global ``--obs {off,summary,jsonl,prom,chrome}``
flag (before or after the subcommand) selecting the telemetry exporter,
plus ``--obs-path`` for the log location, ``--obs-listen HOST:PORT`` to
serve live ``/metrics``, ``/healthz`` and ``/events`` endpoints while
the command runs, and ``--obs-profile SECONDS`` to start the continuous
resource profiler at that sampling period (supervisor and every pool
worker); see ``docs/OBSERVABILITY.md``.
``--kernel-backend {batched,vectorized,reference}`` (again before or
after the subcommand) pins the numerical kernel backend for the whole
run, including pipeline worker processes; ``batched`` additionally
fuses compatible characterization jobs into block dispatch units (see
``docs/KERNELS.md``).

Exit codes are uniform across commands: 0 — success; 1 — the work ran
but some of it failed (a partial-failure batch, a failed job); 2 — the
invocation itself was wrong (argparse errors, conflicting flags); 3 —
an internal error (a genuine bug; the only case that prints a
traceback).  Job-level failures print the batch's structured failure
report instead of a traceback; see ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback

import numpy as np

from .errors import ReproError, SpecError, UsageError

from . import obs, viz
from .core import (
    AnalogVoltageSensor,
    FullConvolutionMonitor,
    PipelineDampingController,
    ThresholdController,
    WaveletVoltageMonitor,
    calibrated_supply,
    run_control_experiment,
)
from .uarch import simulate_benchmark
from .workloads import SPEC2000, SPEC_FP, SPEC_INT

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_PARTIAL",
    "EXIT_USAGE",
    "EXIT_INTERNAL",
]


OBS_MODES = ("off", "summary", "jsonl", "prom", "chrome")

#: Uniform CLI exit codes (see the module docstring).
EXIT_OK = 0
EXIT_PARTIAL = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3


def _obs_options() -> argparse.ArgumentParser:
    """Shared ``--obs`` options, attachable to any subparser.

    Subparsers default to ``SUPPRESS`` so a flag given after the
    subcommand overrides the root default while its absence leaves the
    root-level value (``repro --obs summary pipeline run`` and
    ``repro pipeline run --obs summary`` both work).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--obs",
        choices=OBS_MODES,
        default=argparse.SUPPRESS,
        help="telemetry exporter: console summary, JSONL log, "
             "Prometheus dump, Chrome trace (default off)",
    )
    parent.add_argument(
        "--obs-path",
        default=argparse.SUPPRESS,
        help="log path for --obs jsonl/chrome (defaults "
             "repro-obs.jsonl / repro-trace.json)",
    )
    parent.add_argument(
        "--obs-listen",
        default=argparse.SUPPRESS,
        metavar="HOST:PORT",
        help="serve live /metrics, /healthz and /events while running "
             "(implies --obs summary when --obs is off)",
    )
    parent.add_argument(
        "--obs-profile",
        type=float,
        default=argparse.SUPPRESS,
        metavar="SECONDS",
        help="continuous resource-profiler sampling period for the "
             "supervisor and every pool worker (default off)",
    )
    parent.add_argument(
        "--obs-port-file",
        default=argparse.SUPPRESS,
        metavar="PATH",
        help="write the bound obs endpoint address as 'host port' "
             "(use with --obs-listen HOST:0 for ephemeral ports)",
    )
    parent.add_argument(
        "--kernel-backend",
        choices=("batched", "vectorized", "reference"),
        default=argparse.SUPPRESS,
        help="numerical kernel backend (default vectorized; batched "
             "fuses multi-trace work, reference is the scalar oracle)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wavelet-based dI/dt characterization (HPCA 2004 repro)",
    )
    parser.add_argument(
        "--obs",
        choices=OBS_MODES,
        default="off",
        help="telemetry exporter (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument("--obs-path", default=None, help=argparse.SUPPRESS)
    parser.add_argument(
        "--obs-listen",
        default=None,
        metavar="HOST:PORT",
        help="serve live /metrics, /healthz and /events while running",
    )
    parser.add_argument(
        "--obs-profile",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="resource-profiler sampling period (default off)",
    )
    parser.add_argument(
        "--obs-port-file",
        default=None,
        metavar="PATH",
        help="write the bound obs endpoint address as 'host port' "
             "(use with --obs-listen HOST:0 for ephemeral ports)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=("batched", "vectorized", "reference"),
        default=None,
        help="numerical kernel backend (default vectorized)",
    )
    obs_opts = _obs_options()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmark models")

    sim = sub.add_parser(
        "simulate", help="simulate one benchmark", parents=[obs_opts]
    )
    sim.add_argument("benchmark", choices=sorted(SPEC2000))
    sim.add_argument("--cycles", type=int, default=16384)

    char = sub.add_parser(
        "characterize", help="offline §4 characterization",
        parents=[obs_opts],
    )
    # no argparse choices= here: nargs="*" rejects the empty list against
    # them (the --scenario-only form passes no benchmarks); validated in
    # the handler instead
    char.add_argument("benchmarks", nargs="*", metavar="benchmark",
                      help="SPEC2000 benchmark models to characterize")
    char.add_argument("--scenario", action="append", default=None,
                      metavar="NAME",
                      help="also characterize a named scenario, atomic "
                           "stress profile, or schedule expression (see "
                           "'repro scenario ls'); repeatable")
    char.add_argument("--cycles", type=int, default=32768)
    char.add_argument("--impedance", type=float, default=150.0,
                      help="target impedance percent (default 150)")
    char.add_argument("--threshold", type=float, default=0.97)
    char.add_argument("--jobs", type=int, default=1,
                      help="worker processes (default 1; -1 = all cores)")
    char.add_argument("--cache-dir", default=None,
                      help="on-disk result cache directory (default: none)")

    ctl = sub.add_parser(
        "control", help="closed-loop §5 dI/dt control", parents=[obs_opts]
    )
    ctl.add_argument("benchmark", choices=sorted(SPEC2000))
    ctl.add_argument("--cycles", type=int, default=12288)
    ctl.add_argument("--impedance", type=float, default=150.0)
    ctl.add_argument("--terms", type=int, default=13,
                     help="wavelet coefficient terms (K)")
    ctl.add_argument("--margin-mv", type=float, default=12.0,
                     help="control threshold tolerance in millivolts")
    ctl.add_argument(
        "--scheme",
        choices=("wavelet", "fullconv", "analog", "damping"),
        default="wavelet",
    )
    ctl.add_argument("--damping-delta", type=float, default=6.0)

    ph = sub.add_parser(
        "phases", help="phase-resolved dI/dt exposure", parents=[obs_opts]
    )
    ph.add_argument("benchmark", choices=sorted(SPEC2000))
    ph.add_argument("--cycles", type=int, default=32768)
    ph.add_argument("--phases", type=int, default=3)
    ph.add_argument("--impedance", type=float, default=150.0)

    bd = sub.add_parser(
        "breakdown", help="per-unit power breakdown", parents=[obs_opts]
    )
    bd.add_argument("benchmark", choices=sorted(SPEC2000))
    bd.add_argument("--cycles", type=int, default=8192)

    sz = sub.add_parser(
        "sizing", help="max tolerable target impedance for a workload set",
        parents=[obs_opts],
    )
    sz.add_argument("benchmarks", nargs="+", choices=sorted(SPEC2000))
    sz.add_argument("--cycles", type=int, default=16384)
    sz.add_argument("--budget", type=float, default=0.0,
                    help="allowed fraction of fault cycles (default 0)")

    rep = sub.add_parser(
        "report", help="run the evaluation and print a report",
        parents=[obs_opts],
    )
    rep.add_argument("--cycles", type=int, default=16384)
    rep.add_argument("--full", action="store_true",
                     help="all 26 benchmarks (slow) instead of the quick subset")
    rep.add_argument("--no-control", action="store_true",
                     help="skip the closed-loop Table-2 section")

    bench = sub.add_parser(
        "bench",
        help="time reference vs vectorized kernels, write BENCH_kernels.json",
        parents=[obs_opts],
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI-smoke sizes (seconds instead of minutes)")
    bench.add_argument("--output", default=None,
                       help="result JSON path (default BENCH_kernels.json; "
                            "'-' to skip writing)")
    bench.add_argument("--store", action="store_true",
                       help="bench the trace store instead of the kernels: "
                            "ingest/scan GB/s and characterize-from-store "
                            "vs regenerate (writes BENCH_store.json)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff the fresh results against this committed "
                            "baseline JSON; exit 1 on regression (see "
                            "tools/bench_compare.py)")
    bench.add_argument("--compare-threshold", type=float, default=None,
                       metavar="FRACTION",
                       help="relative regression threshold for --compare "
                            "(default 0.25)")

    pipe = sub.add_parser(
        "pipeline", help="parallel batch characterization with result cache"
    )
    psub = pipe.add_subparsers(dest="pipeline_command", required=True)
    prun = psub.add_parser(
        "run", help="run a characterization batch", parents=[obs_opts]
    )
    prun.add_argument("--suite", choices=("spec2000", "int", "fp"),
                      default=None, help="run a whole benchmark suite")
    prun.add_argument("--benchmarks", nargs="+", choices=sorted(SPEC2000),
                      default=None, metavar="NAME",
                      help="explicit benchmark list (alternative to --suite)")
    prun.add_argument("--jobs", type=int, default=1,
                      help="worker processes (default 1; -1 = all cores)")
    prun.add_argument("--cycles", type=int, default=32768)
    prun.add_argument("--impedance", type=float, default=150.0)
    prun.add_argument("--threshold", type=float, default=0.97)
    prun.add_argument("--window", type=int, default=256)
    prun.add_argument("--seed", type=int, default=None)
    prun.add_argument("--cache-dir", default=".repro-cache",
                      help="result cache directory (default .repro-cache)")
    prun.add_argument("--no-cache", action="store_true",
                      help="compute everything fresh, touch no cache")
    prun.add_argument("--resume", action="store_true",
                      help="satisfy fully-cached jobs from disk without "
                           "occupying the pool (pick up an aborted batch)")
    prun.add_argument("--retries", type=int, default=2,
                      help="retry budget per job after the first attempt "
                           "(default 2)")
    prun.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                      help="per-job wall-clock budget; a job over budget is "
                           "killed and requeued (default: none)")
    prun.add_argument("--backoff", type=float, default=0.5, metavar="SECONDS",
                      help="base retry backoff, doubling per attempt with "
                           "deterministic jitter (default 0.5)")
    prun.add_argument("--inject-faults", default=None, metavar="PLAN",
                      help="deterministic fault plan (or a named plan like "
                           "'ci-plan'); see docs/ROBUSTNESS.md")
    prun.add_argument("--store", default=None, metavar="DIR",
                      help="characterize stored traces from this trace-store "
                           "directory (zero-copy attach) instead of "
                           "re-simulating; --benchmarks filters the corpus")
    pstat = psub.add_parser("status", help="show result-cache contents")
    pstat.add_argument("--cache-dir", default=".repro-cache")
    pclear = psub.add_parser("clear", help="delete every cache entry")
    pclear.add_argument("--cache-dir", default=".repro-cache")

    scen = sub.add_parser(
        "scenario",
        help="composable stress scenarios (see docs/SCENARIOS.md)",
    )
    scsub = scen.add_subparsers(dest="scenario_command", required=True)
    scsub.add_parser(
        "ls", help="list atomic stress profiles and catalog scenarios"
    )
    scshow = scsub.add_parser(
        "show", help="describe one scenario, profile or expression"
    )
    scshow.add_argument("name", metavar="NAME",
                        help="catalog scenario, atomic profile, or "
                             "schedule expression")
    scrun = scsub.add_parser(
        "run", help="characterize scenarios through the pipeline",
        parents=[obs_opts],
    )
    scrun.add_argument("scenarios", nargs="+", metavar="NAME",
                       help="catalog scenarios, atomic profiles, or "
                            "schedule expressions")
    scrun.add_argument("--cycles", type=int, default=None,
                       help="override each scenario's own cycle count")
    scrun.add_argument("--seed", type=int, default=None)
    scrun.add_argument("--warmup-cycles", type=int, default=512)
    scrun.add_argument("--impedance", type=float, default=150.0)
    scrun.add_argument("--threshold", type=float, default=0.97)
    scrun.add_argument("--window", type=int, default=256)
    scrun.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1; -1 = all cores)")
    scrun.add_argument("--cache-dir", default=None,
                       help="on-disk result cache directory (default: none)")
    scrun.add_argument("--no-cache", action="store_true",
                       help="compute everything fresh, touch no cache")

    storep = sub.add_parser(
        "store", help="zero-copy trace store (see docs/STORE.md)"
    )
    ssub = storep.add_subparsers(dest="store_command", required=True)
    sing = ssub.add_parser(
        "ingest", help="simulate benchmarks (or import a file) into a store",
        parents=[obs_opts],
    )
    # no argparse choices= here: nargs="*" rejects the empty list against
    # them (the --from-file form passes no benchmarks); validated in the
    # handler instead
    sing.add_argument("benchmarks", nargs="*", metavar="benchmark",
                      help="benchmarks to simulate and store")
    sing.add_argument("--store", default=".trace-store", metavar="DIR",
                      help="store directory (default .trace-store)")
    sing.add_argument("--cycles", type=int, default=32768)
    sing.add_argument("--seed", type=int, default=None)
    sing.add_argument("--warmup-cycles", type=int, default=4096)
    sing.add_argument("--dtype", choices=("float32", "float64"),
                      default=None,
                      help="stored sample dtype (default: the trace's own)")
    sing.add_argument("--from-file", default=None, metavar="PATH",
                      help="ingest an external trace file (.npy/.npz/.csv/"
                           ".txt) instead of simulating; requires a "
                           "benchmark label via --label")
    sing.add_argument("--label", default=None,
                      help="benchmark label for --from-file traces")
    sls = ssub.add_parser("ls", help="list stored traces", parents=[obs_opts])
    sls.add_argument("--store", default=".trace-store", metavar="DIR")
    sver = ssub.add_parser(
        "verify", help="check index/chunk integrity and content hashes",
        parents=[obs_opts],
    )
    sver.add_argument("--store", default=".trace-store", metavar="DIR")
    sgc = ssub.add_parser(
        "gc", help="compact chunks: reclaim removed/orphaned bytes",
        parents=[obs_opts],
    )
    sgc.add_argument("--store", default=".trace-store", metavar="DIR")

    obsp = sub.add_parser("obs", help="observability utilities")
    osub = obsp.add_subparsers(dest="obs_command", required=True)
    orep = osub.add_parser(
        "report", help="render a JSONL observability log"
    )
    orep.add_argument("log", help="path to a run's JSONL log")
    ochrome = osub.add_parser(
        "chrome",
        help="convert a JSONL log to a Chrome trace-event file "
             "(view in Perfetto or chrome://tracing)",
    )
    ochrome.add_argument("log", help="path to a run's JSONL log")
    ochrome.add_argument(
        "--output", default=None,
        help="trace-event JSON path (default repro-trace.json)",
    )
    oserve = osub.add_parser(
        "serve",
        help="serve /metrics, /healthz and /events over HTTP "
             "(from a recorded log, or empty-live for smoke tests)",
    )
    oserve.add_argument(
        "--listen", default="127.0.0.1:9100", metavar="HOST:PORT",
        help="bind address (default %(default)s; port 0 = ephemeral)",
    )
    oserve.add_argument(
        "--log", default=None,
        help="serve this recorded JSONL log's metrics and events",
    )
    oserve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop after this long (default: run until interrupted)",
    )
    oserve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the actual bound 'host port' here once listening "
             "(for scripts/CI using an ephemeral port)",
    )

    serve = sub.add_parser(
        "serve",
        help="characterization service (see docs/SERVE.md)",
        parents=[obs_opts],
    )
    serve.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (default %(default)s; port 0 = ephemeral, "
             "the real address is printed once bound)",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the actual bound 'host port' here once listening",
    )
    serve.add_argument("--jobs", type=int, default=1,
                       help="pipeline worker processes (default 1)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="content-addressed result cache the fast "
                            "path answers from (default .repro-cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache (every request "
                            "computes; for benchmarking the miss path)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="trace-store directory served for "
                            "by-reference (trace_id) requests")
    serve.add_argument("--spool", default=None, metavar="DIR",
                       help="store directory inline uploads are "
                            "ingested into (default: a temp spool)")
    serve.add_argument("--quota-rate", type=float, default=0.0,
                       metavar="PER_S",
                       help="per-client token refill rate; 0 disables "
                            "quotas (default 0)")
    serve.add_argument("--quota-burst", type=float, default=8.0,
                       help="per-client token bucket depth (default 8)")
    serve.add_argument("--max-pending", type=int, default=32,
                       help="bounded admission: max unique jobs queued "
                            "or in flight before 503 (default 32)")
    serve.add_argument("--batch-window", type=float, default=0.02,
                       metavar="SECONDS",
                       help="coalescing window before a batch "
                            "dispatches (default 0.02)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="max unique jobs per pool batch (default 8)")
    serve.add_argument("--retries", type=int, default=0,
                       help="per-job retry budget (default 0)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock budget (forces the "
                            "supervised pool; default none)")
    serve.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="drain and exit after this long (default: "
                            "run until SIGTERM/SIGINT)")

    loadgen = sub.add_parser(
        "loadgen",
        help="deterministic load generation against a live `repro serve`",
        parents=[obs_opts],
    )
    loadgen.add_argument("--target", required=True, metavar="HOST:PORT",
                         help="the server's bound address (as printed "
                              "by `repro serve` / its --port-file)")
    loadgen.add_argument("--pattern", choices=("constant", "poisson",
                                               "burst"),
                         default="poisson",
                         help="arrival pattern (default poisson)")
    loadgen.add_argument("--rate", type=float, default=20.0,
                         help="offered load, requests/second "
                              "(default 20)")
    loadgen.add_argument("--count", type=int, default=40,
                         help="total requests (default 40)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="PRNG seed: same seed + knobs replays the "
                              "identical request sequence (default 0)")
    loadgen.add_argument("--burst-size", type=int, default=4,
                         help="arrivals per group for --pattern burst "
                              "(default 4)")
    loadgen.add_argument("--cycles", type=int, default=2048,
                         help="cycles per requested characterization "
                              "(default 2048)")
    loadgen.add_argument("--quick", action="store_true",
                         help="CI-smoke sizes (8 requests, small "
                              "cycles); marks the bench doc quick")
    loadgen.add_argument("--output", default="BENCH_serve.json",
                         help="bench JSON path (default BENCH_serve."
                              "json; '-' to skip writing)")
    loadgen.add_argument("--compare", default=None, metavar="BASELINE",
                         help="diff against this committed baseline; "
                              "exit 1 on regression")
    loadgen.add_argument("--compare-threshold", type=float, default=None,
                         metavar="FRACTION",
                         help="relative regression threshold for "
                              "--compare (default 0.25)")
    return parser


def _cmd_list() -> str:
    lines = ["SPECint2000:"]
    lines += [f"  {name}" for name in SPEC_INT]
    lines.append("SPECfp2000:")
    lines += [f"  {name}" for name in SPEC_FP]
    return "\n".join(lines)


def _cmd_simulate(args) -> str:
    result = simulate_benchmark(args.benchmark, cycles=args.cycles)
    s = result.stats
    lines = [
        f"{args.benchmark}: {result.cycles} cycles, "
        f"{s.committed} instructions (IPC {s.ipc:.2f})",
        f"  branches     : {s.branches} "
        f"({s.misprediction_rate * 100:.1f}% mispredicted)",
        f"  L1D/L2 misses: {s.l1d_misses}/{s.l2_misses} "
        f"({s.l2_mpki:.1f} L2 MPKI)",
        f"  current      : {result.mean_current:.1f} A mean, "
        f"{result.current.std():.1f} A std",
        "",
        viz.line_plot(result.current[:4096], title="current (A), first 4K cycles"),
    ]
    return "\n".join(lines)


def _cmd_characterize(args) -> str:
    from .pipeline import (
        BatchOptions,
        build_characterization_jobs,
        build_scenario_jobs,
        prediction_from_outcome,
        submit,
    )

    unknown = sorted(set(args.benchmarks) - set(SPEC2000))
    if unknown:
        raise UsageError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(SPEC2000))}"
        )
    scenarios = args.scenario or []
    if not args.benchmarks and not scenarios:
        raise UsageError("give benchmarks to characterize, or --scenario")
    net = calibrated_supply(args.impedance)
    specs = build_characterization_jobs(
        args.benchmarks,
        net,
        cycles=args.cycles,
        threshold=args.threshold,
        impedance=args.impedance,
    )
    if scenarios:
        # Unknown scenario names are a usage error (exit 2), not a
        # pipeline failure: surface the valid-name list on stderr.
        try:
            specs += build_scenario_jobs(
                scenarios,
                net,
                cycles=args.cycles,
                threshold=args.threshold,
                impedance=args.impedance,
            )
        except SpecError as exc:
            raise UsageError(str(exc)) from None
    batch = submit(
        specs, BatchOptions(jobs=args.jobs, cache_dir=args.cache_dir)
    )
    if len(batch.outcomes) == 1:
        outcome = batch.outcomes[0]
        p = prediction_from_outcome(outcome)
        contributions = outcome.artifacts["characterize"][
            "level_contributions"
        ]
        lines = [
            f"{p.name} at {args.impedance:.0f}% target impedance:",
            f"  estimated % cycles < {args.threshold} V : "
            f"{p.estimated * 100:.2f}%",
            f"  observed  % cycles < {args.threshold} V : "
            f"{p.observed * 100:.2f}%",
            f"  error                         : {p.error * 100:+.2f}%",
            "",
            viz.bar_chart(
                {
                    f"level {lvl}": v * 1e6
                    for lvl, v in contributions.items()
                },
                title="per-scale voltage-variance contribution (uV^2)",
                fmt="{:10.2f}",
            ),
        ]
        return "\n".join(lines)
    rows = {}
    for outcome in batch.outcomes:
        p = prediction_from_outcome(outcome)
        rows[p.name] = [
            p.estimated * 100,
            p.observed * 100,
            p.error * 100,
            outcome.elapsed,
        ]
    table = viz.table(
        rows,
        headers=["est %", "obs %", "err %", "secs"],
        title=f"{len(rows)} benchmarks at {args.impedance:.0f}% impedance "
              f"(threshold {args.threshold} V)",
    )
    return "\n".join(
        [
            table,
            "",
            _batch_footer(batch),
        ]
    )


def _batch_footer(batch) -> str:
    """Shared telemetry line: workers, stage runs, cache hits, wall time."""
    s = batch.summary()
    line = (
        f"{s['jobs']} jobs via {s['workers']} worker(s) in "
        f"{s['wall_s']:.2f}s: {s['stage_runs']} stage runs, "
        f"{s['cache_hits']} cache hits / {s['cache_misses']} misses"
    )
    if s["retries"]:
        line += f", {s['retries']} retries"
    if s["resumed"]:
        line += f", {s['resumed']} resumed"
    if s["errors"]:
        line += f", {s['errors']} errors"
    return line


def _cmd_pipeline_run(args) -> int:
    from .experiments import Figure9Result
    from .pipeline import (
        BatchOptions,
        build_characterization_jobs,
        build_store_jobs,
        faults,
        predictions_from,
        submit,
        suite_names,
    )

    if args.suite and args.benchmarks:
        raise UsageError("give either --suite or --benchmarks, not both")
    if args.suite and args.store:
        raise UsageError(
            "--store runs the stored corpus; --suite selects simulations "
            "— give one or the other (--benchmarks filters either)"
        )
    if args.retries < 0:
        raise UsageError("--retries must be non-negative")
    if args.inject_faults:
        faults.parse_plan(args.inject_faults)  # reject bad plans up front
    names = suite_names(args.suite or "spec2000")
    if args.benchmarks:
        names = tuple(args.benchmarks)
    cache_dir = None if args.no_cache else args.cache_dir
    if args.resume and not cache_dir:
        raise UsageError("--resume needs a cache (drop --no-cache)")
    options = BatchOptions(
        jobs=args.jobs,
        cache_dir=cache_dir,
        retries=args.retries,
        timeout_s=args.timeout,
        backoff_s=args.backoff,
        resume=args.resume,
        raise_on_error=False,  # degrade gracefully: report, don't raise
        store=args.store or None,
        fault_plan=args.inject_faults or None,
    )
    net = calibrated_supply(args.impedance)
    if args.store:
        from .store import TraceStore

        specs = build_store_jobs(
            TraceStore(args.store),
            net,
            benchmarks=tuple(args.benchmarks) if args.benchmarks else None,
            threshold=args.threshold,
            window=args.window,
            impedance=args.impedance,
        )
    else:
        specs = build_characterization_jobs(
            names,
            net,
            cycles=args.cycles,
            threshold=args.threshold,
            window=args.window,
            seed=args.seed,
            impedance=args.impedance,
        )

    def progress(outcome):
        if not outcome.ok:
            f = outcome.failure()
            print(
                f"  {outcome.spec.benchmark:<10} FAILED "
                f"({f['kind']}, {f['attempts']} attempts)",
                flush=True,
            )
            return
        stages = "  ".join(
            f"{name} {outcome.timings[name]:6.2f}s"
            f"[{'hit ' if hit else 'miss'}]"
            for name, hit in outcome.cache_hits.items()
        )
        retried = f"  (attempt {outcome.attempts})" if outcome.attempts > 1 else ""
        print(f"  {outcome.spec.benchmark:<10} {stages}{retried}", flush=True)

    print(
        f"pipeline: {len(specs)} jobs x {' > '.join(specs[0].stages)}, "
        f"{args.jobs} worker(s), cache "
        f"{cache_dir if cache_dir else 'disabled'}",
        flush=True,
    )
    # submit() exports the fault plan (and kernel backend, when one is
    # configured) to the environment for pool workers, restoring after.
    batch = submit(specs, options, progress=progress)
    lines = ["", _batch_footer(batch)]
    predictions = predictions_from(batch)
    if predictions:
        fig9 = Figure9Result(
            threshold=args.threshold, predictions=predictions
        )
        obs.event("experiment_result", **fig9.summary())
        lines.append(f"figure9 rms error        : {fig9.rms_error!r}")
        if len(predictions) > 1:  # rank needs two benchmarks to mean anything
            lines.append(
                f"figure9 rank correlation : {fig9.rank_correlation:.4f}"
            )
        worst = max(predictions.values(), key=lambda p: abs(p.error))
        lines.append(
            f"worst benchmark          : {worst.name} "
            f"(error {worst.error * 100:+.2f}%)"
        )
    if not batch.ok:
        lines += ["", batch.describe_failures()]
    print("\n".join(lines))
    return EXIT_OK if batch.ok else EXIT_PARTIAL


def _cmd_pipeline_status(args) -> str:
    from .pipeline import CACHE_SALT, ResultCache

    stats = ResultCache(args.cache_dir).on_disk_stats()
    lines = [
        f"cache directory : {stats.root}",
        f"code salt       : {CACHE_SALT}",
        f"entries         : {stats.entries}",
        f"total size      : {stats.total_bytes / 1e6:.2f} MB",
    ]
    for kind in sorted(stats.by_kind):
        lines.append(f"  {kind:<14}: {stats.by_kind[kind]}")
    return "\n".join(lines)


def _cmd_pipeline_clear(args) -> str:
    from .pipeline import ResultCache

    removed = ResultCache(args.cache_dir).clear()
    return f"removed {removed} cache entries from {args.cache_dir}"


def _cmd_scenario_ls() -> str:
    from .scenarios import SCENARIOS, STRESS_PROFILES

    lines = ["atomic stress profiles:"]
    for name in sorted(STRESS_PROFILES):
        profile = STRESS_PROFILES[name]
        lines.append(f"  {name:<18} {profile.description}")
    lines += ["", "catalog scenarios:"]
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        lines.append(
            f"  {name:<18} {len(scenario.cores)} core(s) x "
            f"{scenario.cycles} cycles — {scenario.description}"
        )
    lines += [
        "",
        "compose profiles with seq(a, b, ...), overlay(a, b, ...), "
        "repeat(x, n), ramp(x, start, stop)",
    ]
    return "\n".join(lines)


def _cmd_scenario_show(args) -> str:
    from .scenarios import resolve_scenario, scenario_param

    try:
        scenario = resolve_scenario(args.name)
    except SpecError as exc:
        raise UsageError(str(exc)) from None
    lines = [
        f"{scenario.name}: {scenario.description}",
        f"  default cycles : {scenario.cycles}",
        f"  cores          : {len(scenario.cores)}",
    ]
    for index, core in enumerate(scenario.cores):
        lines.append(f"  core {index}: {core.schedule}")
        if core.phase_offset:
            lines.append(
                f"    phase offset : {core.phase_offset:.3f} of the interval"
            )
        if core.gain != 1.0:
            lines.append(f"    gain         : {core.gain}")
        for event in core.dvfs:
            kind = "clock-gate" if event.scale == 0.0 else "dvfs step"
            lines.append(
                f"    {kind} @ {event.at:.3f}: scale -> {event.scale}"
            )
    lines.append(f"  identity       : {scenario_param(scenario)}")
    return "\n".join(lines)


def _cmd_scenario_run(args) -> int:
    from .pipeline import (
        BatchOptions,
        build_scenario_jobs,
        prediction_from_outcome,
        submit,
    )

    if args.no_cache and args.cache_dir:
        raise UsageError("give --cache-dir or --no-cache, not both")
    net = calibrated_supply(args.impedance)
    try:
        specs = build_scenario_jobs(
            args.scenarios,
            net,
            cycles=args.cycles,
            threshold=args.threshold,
            window=args.window,
            seed=args.seed,
            warmup_cycles=args.warmup_cycles,
            impedance=args.impedance,
        )
    except SpecError as exc:
        raise UsageError(str(exc)) from None
    cache_dir = None if args.no_cache else args.cache_dir
    batch = submit(
        specs,
        BatchOptions(
            jobs=args.jobs, cache_dir=cache_dir, raise_on_error=False
        ),
    )
    rows = {}
    for outcome in batch.outcomes:
        if not outcome.ok:
            continue
        p = prediction_from_outcome(outcome)
        rows[outcome.spec.benchmark] = [
            p.estimated * 100,
            p.observed * 100,
            p.error * 100,
            outcome.elapsed,
        ]
    lines = []
    if rows:
        lines.append(
            viz.table(
                rows,
                headers=["est %", "obs %", "err %", "secs"],
                title=f"{len(rows)} scenario(s) at "
                      f"{args.impedance:.0f}% impedance "
                      f"(threshold {args.threshold} V)",
            )
        )
    lines += ["", _batch_footer(batch)]
    if not batch.ok:
        lines += ["", batch.describe_failures()]
    print("\n".join(lines))
    return EXIT_OK if batch.ok else EXIT_PARTIAL


def _cmd_control(args) -> str:
    net = calibrated_supply(args.impedance)
    margin = args.margin_mv / 1000.0

    def factory():
        if args.scheme == "wavelet":
            return ThresholdController(
                WaveletVoltageMonitor(net, terms=args.terms), net, margin
            )
        if args.scheme == "fullconv":
            return ThresholdController(FullConvolutionMonitor(net), net, margin)
        if args.scheme == "analog":
            return ThresholdController(
                AnalogVoltageSensor(net, delay=2), net, margin
            )
        return PipelineDampingController(net, delta=args.damping_delta)

    result = run_control_experiment(args.benchmark, net, factory,
                                    cycles=args.cycles)
    return "\n".join(
        [
            f"{args.scheme} control of {args.benchmark} at "
            f"{args.impedance:.0f}% impedance:",
            f"  slowdown        : {result.slowdown * 100:.2f}%",
            f"  faults          : {result.baseline_faults} -> "
            f"{result.controlled_faults}",
            f"  interventions   : {result.stall_cycles} stalls, "
            f"{result.boost_cycles} boosts",
            f"  false positives : {result.false_positive_rate * 100:.0f}%",
        ]
    )


def _cmd_phases(args) -> str:
    from .core import WaveletPhaseClassifier

    net = calibrated_supply(args.impedance)
    result = simulate_benchmark(args.benchmark, cycles=args.cycles)
    clf = WaveletPhaseClassifier(phases=args.phases).fit(result.current)
    rows = {}
    for s in clf.summarize(net):
        rows[f"phase {s.phase}"] = [
            s.fraction * 100,
            s.mean_current,
            float(s.dominant_level),
            (s.emergency_probability or 0.0) * 100,
        ]
    return viz.table(
        rows,
        headers=["% windows", "mean A", "top level", "% < 0.97V"],
        title=f"{args.benchmark}: wavelet-signature phases "
              f"({args.impedance:.0f}% impedance)",
    )


def _cmd_breakdown(args) -> str:
    from .uarch import Pipeline, TABLE_1
    from .workloads import generate
    from .workloads.generator import prewarm_caches

    pipe = Pipeline(
        TABLE_1, iter(generate(args.benchmark)), track_breakdown=True
    )
    prewarm_caches(pipe.caches, args.benchmark)
    for _ in range(2048):
        pipe.tick()
    total = float(np.mean([pipe.tick() for _ in range(args.cycles)]))
    breakdown = dict(
        sorted(pipe.power_breakdown.items(), key=lambda kv: -kv[1])
    )
    chart = viz.bar_chart(
        {name: amps for name, amps in breakdown.items() if amps > 0.01},
        title=f"{args.benchmark}: mean per-unit current (A), "
              f"total {total:.1f} A",
        fmt="{:7.2f}",
    )
    return chart


def _cmd_sizing(args) -> str:
    from .power import max_tolerable_impedance

    base = calibrated_supply(100)
    traces = {
        name: simulate_benchmark(name, cycles=args.cycles).current
        for name in args.benchmarks
    }
    pct = max_tolerable_impedance(base, traces, budget=args.budget)
    lines = [
        f"workloads: {', '.join(args.benchmarks)}",
        f"fault budget: {args.budget * 100:.2f}% of cycles",
        f"max tolerable target impedance (uncontrolled): {pct:.0f}%",
        "",
        "anything above this needs microarchitectural dI/dt control",
        "(see `repro control` for the closed-loop experiment).",
    ]
    return "\n".join(lines)


def _cmd_bench(args) -> int:
    if args.store:
        from .store.bench import (
            DEFAULT_STORE_OUTPUT,
            format_store_results,
            run_store_bench,
        )

        output = args.output or DEFAULT_STORE_OUTPUT
        results = run_store_bench(
            quick=args.quick, output=None if output == "-" else output
        )
        text = format_store_results(results)
    else:
        from .kernels.bench import DEFAULT_OUTPUT, format_results, run_bench

        output = args.output or DEFAULT_OUTPUT
        results = run_bench(
            quick=args.quick, output=None if output == "-" else output
        )
        text = format_results(results)
    if output != "-":
        text += f"\nwrote {output}"
    print(text)
    if not args.compare:
        return EXIT_OK

    import json

    from .benchtrack import (
        DEFAULT_THRESHOLD,
        append_history,
        compare_benchmarks,
        render_comparison,
    )

    try:
        with open(args.compare, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except OSError as exc:
        raise UsageError(f"cannot read --compare baseline: {exc}") from None
    comparison = compare_benchmarks(
        baseline,
        results,
        threshold=args.compare_threshold or DEFAULT_THRESHOLD,
        baseline_path=args.compare,
        current_path=output if output != "-" else "<fresh run>",
    )
    print(render_comparison(comparison))
    append_history("BENCH_history.jsonl", comparison)
    return EXIT_OK if comparison.ok else EXIT_PARTIAL


def _cmd_store_ingest(args) -> str:
    from .store import TraceStore

    if args.from_file and args.benchmarks:
        raise UsageError(
            "give benchmarks to simulate or --from-file, not both"
        )
    if not args.from_file and not args.benchmarks:
        raise UsageError("give benchmarks to simulate, or --from-file")
    unknown = sorted(set(args.benchmarks) - set(SPEC2000))
    if unknown:
        raise UsageError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            "see `repro list`"
        )
    store = TraceStore(args.store, mode="a")
    lines = []
    if args.from_file:
        from .uarch.traceio import import_current_trace

        result = import_current_trace(args.from_file, name=args.label)
        record = store.ingest(
            result.current, args.label or result.name, dtype=args.dtype
        )
        lines.append(
            f"  {record.trace_id}  {record.benchmark:<12} "
            f"{record.cycles:>9} samples  {record.dtype}"
        )
    else:
        for name in args.benchmarks:
            result = simulate_benchmark(
                name,
                cycles=args.cycles,
                seed=args.seed,
                warmup_cycles=args.warmup_cycles,
            )
            record = store.ingest(
                result.current,
                name,
                dtype=args.dtype,
                generator={
                    "benchmark": name,
                    "cycles": args.cycles,
                    "seed": args.seed,
                    "warmup_cycles": args.warmup_cycles,
                },
            )
            lines.append(
                f"  {record.trace_id}  {record.benchmark:<12} "
                f"{record.cycles:>9} samples  {record.dtype}"
            )
    s = store.stats()
    lines.append(
        f"store {s['root']}: {s['traces']} traces, "
        f"{s['live_bytes'] / 1e6:.1f} MB live"
    )
    return "\n".join(lines)


def _cmd_store_ls(args) -> str:
    from .store import TraceStore

    store = TraceStore(args.store)
    records = store.records()
    if not records:
        return f"store {store.root}: empty"
    lines = [
        f"{'trace id':<18} {'benchmark':<12} {'samples':>9} "
        f"{'dtype':<8} {'src':<9} sha256"
    ]
    for r in records:
        lines.append(
            f"{r.trace_id:<18} {r.benchmark:<12} {r.cycles:>9} "
            f"{r.dtype:<8} {'simulate' if r.generator else 'external':<9} "
            f"{r.sha256[:12]}"
        )
    s = store.stats()
    lines.append(
        f"{s['traces']} traces, {s['cycles']} samples, "
        f"{s['live_bytes'] / 1e6:.1f} MB live in {s['chunk_files']} "
        f"chunk(s) ({s['reclaimable_bytes'] / 1e6:.1f} MB reclaimable)"
    )
    return "\n".join(lines)


def _cmd_store_verify(args) -> int:
    from .store import TraceStore

    store = TraceStore(args.store)
    problems = store.verify()
    count = len(store.records())
    if not problems:
        print(f"store {store.root}: {count} traces intact")
        return EXIT_OK
    print(f"store {store.root}: {len(problems)} problem(s):")
    for p in problems:
        detail = ", ".join(
            f"{k}={v}" for k, v in p.items() if k != "problem"
        )
        print(f"  {p['problem']:<16} {detail}")
    return EXIT_PARTIAL


def _cmd_store_gc(args) -> str:
    from .store import TraceStore

    result = TraceStore(args.store, mode="a").gc()
    return (
        f"store {args.store}: {result['live']} live traces, "
        f"reclaimed {result['reclaimed_bytes'] / 1e6:.1f} MB"
    )


def _cmd_obs_report(args) -> str:
    return obs.render_report(args.log)


def _cmd_obs_chrome(args) -> str:
    from .obs.trace import DEFAULT_CHROME_PATH

    records, skipped = obs.scan_records(args.log)
    output = args.output or DEFAULT_CHROME_PATH
    count = obs.write_chrome_trace(records, output)
    line = (
        f"chrome trace: {output} ({count} events from "
        f"{len(records)} records) — open in Perfetto "
        f"(https://ui.perfetto.dev) or chrome://tracing"
    )
    if skipped:
        line += f"\nskipped {skipped} malformed line(s) in {args.log}"
    return line


def _cmd_obs_serve(args) -> int:
    import time as _time

    try:
        host, port = obs.parse_listen(args.listen)
    except ValueError as exc:
        raise UsageError(str(exc)) from None
    registry = None
    records: list = []
    skipped = 0
    if args.log:
        records, skipped = obs.scan_records(args.log)
        registry = obs.registry_from_records(records)
    server = obs.ObsServer(
        host, port, registry=registry, subscribe=args.log is None
    )
    if records:
        server.feed(records)
    server.start()
    source = f"log {args.log}" if args.log else "live process registry"
    print(
        f"obs endpoint {server.url} — /metrics /healthz /events "
        f"(serving {source}"
        + (f", {skipped} malformed line(s) skipped" if skipped else "")
        + ")",
        flush=True,
    )
    if args.port_file:
        _write_port_file(args.port_file, server.host, server.port)
    try:
        if args.duration is not None:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return EXIT_OK


def _write_port_file(path: str, host: str, port: int) -> None:
    """Publish the actual bound address for scripts waiting on it.

    Written atomically (temp + rename), so a reader polling the path
    never sees a half-written line.
    """
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{host} {port}\n")
    os.replace(tmp, path)


def _cmd_serve(args) -> int:
    import asyncio as _asyncio

    from .serve import ServeConfig, ServeServer

    try:
        host, port = obs.parse_listen(args.listen)
    except ValueError as exc:
        raise UsageError(str(exc)) from None
    config = ServeConfig(
        host=host,
        port=port,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        store_dir=args.store,
        spool_dir=args.spool,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        max_pending=args.max_pending,
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
        retries=args.retries,
        timeout_s=args.timeout,
    )

    async def run() -> dict:
        server = await ServeServer(config).start()
        print(f"serve listening on {server.url}", flush=True)
        if args.port_file:
            _write_port_file(args.port_file, server.host, server.port)
        await server.serve_until_shutdown(duration=args.duration)
        return server.snapshot_stats()

    stats = _asyncio.run(run())
    print(
        f"serve drained: {stats['requests']} requests "
        f"({stats['ok']} ok, {stats['errors']} failed, "
        f"{stats['cache_fastpath']} from cache, "
        f"{stats['dispatched_jobs']} jobs dispatched)",
        flush=True,
    )
    return EXIT_OK


def _cmd_loadgen(args) -> int:
    import asyncio as _asyncio
    import json

    from .serve import loadgen as lg

    try:
        host, port = obs.parse_listen(args.target)
    except ValueError as exc:
        raise UsageError(str(exc)) from None
    count = min(args.count, 8) if args.quick else args.count
    cycles = min(args.cycles, 1024) if args.quick else args.cycles
    try:
        run = _asyncio.run(
            lg.run_loadgen(
                host,
                port,
                pattern=args.pattern,
                rate=args.rate,
                count=count,
                seed=args.seed,
                burst_size=args.burst_size,
                cycles=cycles,
            )
        )
    except (ConnectionError, OSError) as exc:
        raise UsageError(
            f"cannot reach server at {args.target}: {exc}"
        ) from None
    doc = lg.summarize(run, quick=args.quick)
    summary = doc["loadgen"]
    if args.output != "-":
        lg.write_bench(doc, args.output)
    print(
        f"loadgen {summary['pattern']} x{summary['requests']} "
        f"(seed {run['seed']}): "
        f"{summary['requests_per_s']:.1f} req/s, "
        f"p50 {summary['latency_p50_s'] * 1000:.1f} ms, "
        f"p99 {summary['latency_p99_s'] * 1000:.1f} ms, "
        f"cache-hit {summary['cache_hit_ratio'] * 100:.0f}%, "
        f"{summary['rejected']} rejected"
        + (f"\nwrote {args.output}" if args.output != "-" else "")
    )
    failed = summary["accepted"] - summary["ok"]
    if not args.compare:
        return EXIT_PARTIAL if failed else EXIT_OK

    from .benchtrack import (
        DEFAULT_THRESHOLD,
        append_history,
        compare_benchmarks,
        render_comparison,
    )

    try:
        with open(args.compare, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except OSError as exc:
        raise UsageError(f"cannot read --compare baseline: {exc}") from None
    comparison = compare_benchmarks(
        baseline,
        doc,
        threshold=args.compare_threshold or DEFAULT_THRESHOLD,
        baseline_path=args.compare,
        current_path=args.output if args.output != "-" else "<fresh run>",
    )
    print(render_comparison(comparison))
    append_history("BENCH_history.jsonl", comparison)
    return EXIT_OK if comparison.ok and not failed else EXIT_PARTIAL


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    backend = getattr(args, "kernel_backend", None)
    if backend:
        from .kernels import ENV_VAR, KernelConfig

        # The env var carries the choice into pipeline worker processes.
        os.environ[ENV_VAR] = backend
        KernelConfig(backend=backend).activate()
    obs_mode = getattr(args, "obs", "off")
    obs_listen = getattr(args, "obs_listen", None)
    obs_profile = float(getattr(args, "obs_profile", 0.0) or 0.0)
    if obs_mode == "off" and (
        obs_listen or obs_profile > 0 or args.command == "serve"
    ):
        # a live endpoint or profiler without an exporter still needs
        # the telemetry plane on (as does the serve command's /metrics
        # route); summary is the cheapest exporter
        obs_mode = "summary"
    server = None
    if obs_mode != "off":
        obs.enable(
            obs_mode,
            getattr(args, "obs_path", None),
            profile_interval=obs_profile,
        )
        if obs_listen:
            try:
                host, port = obs.parse_listen(obs_listen)
            except ValueError as exc:
                print(f"repro: usage error: {exc}", file=sys.stderr)
                obs.disable()
                return EXIT_USAGE
            server = obs.ObsServer(host, port).start()
            print(
                f"obs endpoint {server.url} — /metrics /healthz /events",
                flush=True,
            )
            port_file = getattr(args, "obs_port_file", None)
            if port_file:
                _write_port_file(port_file, server.host, server.port)
    try:
        return _dispatch(args)
    except UsageError as exc:
        print(f"repro: usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as exc:
        # Structured failure from the pipeline/analysis layer — report it
        # without the traceback noise; details carry the context.
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        for key, value in exc.details.items():
            if key == "failures" and isinstance(value, list):
                for f in value:
                    print(
                        f"repro:   job {f.get('job')} stage={f.get('stage')} "
                        f"kind={f.get('kind')} attempts={f.get('attempts')}",
                        file=sys.stderr,
                    )
            else:
                print(f"repro:   {key}: {value}", file=sys.stderr)
        return EXIT_PARTIAL
    except Exception:  # a genuine bug: full traceback, distinct code
        traceback.print_exc()
        return EXIT_INTERNAL
    finally:
        if server is not None:
            server.stop()
        if obs_mode != "off":
            tail = obs.finish()
            if tail:
                print(tail)


def _dispatch(args) -> int:
    """Route parsed arguments to their command handler."""
    if args.command == "list":
        print(_cmd_list())
    elif args.command == "simulate":
        print(_cmd_simulate(args))
    elif args.command == "characterize":
        print(_cmd_characterize(args))
    elif args.command == "control":
        print(_cmd_control(args))
    elif args.command == "phases":
        print(_cmd_phases(args))
    elif args.command == "breakdown":
        print(_cmd_breakdown(args))
    elif args.command == "sizing":
        print(_cmd_sizing(args))
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "pipeline":
        if args.pipeline_command == "run":
            return _cmd_pipeline_run(args)
        elif args.pipeline_command == "status":
            print(_cmd_pipeline_status(args))
        elif args.pipeline_command == "clear":
            print(_cmd_pipeline_clear(args))
    elif args.command == "scenario":
        if args.scenario_command == "ls":
            print(_cmd_scenario_ls())
        elif args.scenario_command == "show":
            print(_cmd_scenario_show(args))
        elif args.scenario_command == "run":
            return _cmd_scenario_run(args)
    elif args.command == "store":
        if args.store_command == "ingest":
            print(_cmd_store_ingest(args))
        elif args.store_command == "ls":
            print(_cmd_store_ls(args))
        elif args.store_command == "verify":
            return _cmd_store_verify(args)
        elif args.store_command == "gc":
            print(_cmd_store_gc(args))
    elif args.command == "obs":
        if args.obs_command == "report":
            print(_cmd_obs_report(args))
        elif args.obs_command == "chrome":
            print(_cmd_obs_chrome(args))
        elif args.obs_command == "serve":
            return _cmd_obs_serve(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "loadgen":
        return _cmd_loadgen(args)
    elif args.command == "report":
        from .report import QUICK_SUBSET, generate_report

        print(
            generate_report(
                cycles=args.cycles,
                names=None if args.full else QUICK_SUBSET,
                include_control=not args.no_control,
            )
        )
    return EXIT_OK

"""Command-line interface: ``python -m repro <command>``.

Four commands cover the repo's main flows:

* ``list`` — the 26 available benchmark models and their suites.
* ``simulate`` — run one benchmark on the Table-1 machine, show run
  statistics and the current waveform.
* ``characterize`` — the paper's offline §4 pipeline: estimated vs.
  observed emergency exposure for one benchmark.
* ``control`` — the paper's online §5 pipeline: closed-loop dI/dt control
  with a selectable scheme, reporting slowdown and fault suppression.
* ``phases`` — wavelet-signature phase classification with per-phase
  dI/dt exposure.
* ``breakdown`` — Wattch-style per-unit power breakdown of a benchmark.
* ``sizing`` — the largest target impedance a workload set tolerates.
* ``report`` — the whole evaluation as one text report.
"""

from __future__ import annotations

import argparse

import numpy as np

from . import viz
from .core import (
    AnalogVoltageSensor,
    FullConvolutionMonitor,
    PipelineDampingController,
    ThresholdController,
    WaveletVoltageEstimator,
    WaveletVoltageMonitor,
    calibrated_supply,
    predict_trace,
    run_control_experiment,
)
from .uarch import simulate_benchmark
from .workloads import SPEC2000, SPEC_FP, SPEC_INT

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wavelet-based dI/dt characterization (HPCA 2004 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmark models")

    sim = sub.add_parser("simulate", help="simulate one benchmark")
    sim.add_argument("benchmark", choices=sorted(SPEC2000))
    sim.add_argument("--cycles", type=int, default=16384)

    char = sub.add_parser("characterize", help="offline §4 characterization")
    char.add_argument("benchmark", choices=sorted(SPEC2000))
    char.add_argument("--cycles", type=int, default=32768)
    char.add_argument("--impedance", type=float, default=150.0,
                      help="target impedance percent (default 150)")
    char.add_argument("--threshold", type=float, default=0.97)

    ctl = sub.add_parser("control", help="closed-loop §5 dI/dt control")
    ctl.add_argument("benchmark", choices=sorted(SPEC2000))
    ctl.add_argument("--cycles", type=int, default=12288)
    ctl.add_argument("--impedance", type=float, default=150.0)
    ctl.add_argument("--terms", type=int, default=13,
                     help="wavelet coefficient terms (K)")
    ctl.add_argument("--margin-mv", type=float, default=12.0,
                     help="control threshold tolerance in millivolts")
    ctl.add_argument(
        "--scheme",
        choices=("wavelet", "fullconv", "analog", "damping"),
        default="wavelet",
    )
    ctl.add_argument("--damping-delta", type=float, default=6.0)

    ph = sub.add_parser("phases", help="phase-resolved dI/dt exposure")
    ph.add_argument("benchmark", choices=sorted(SPEC2000))
    ph.add_argument("--cycles", type=int, default=32768)
    ph.add_argument("--phases", type=int, default=3)
    ph.add_argument("--impedance", type=float, default=150.0)

    bd = sub.add_parser("breakdown", help="per-unit power breakdown")
    bd.add_argument("benchmark", choices=sorted(SPEC2000))
    bd.add_argument("--cycles", type=int, default=8192)

    sz = sub.add_parser(
        "sizing", help="max tolerable target impedance for a workload set"
    )
    sz.add_argument("benchmarks", nargs="+", choices=sorted(SPEC2000))
    sz.add_argument("--cycles", type=int, default=16384)
    sz.add_argument("--budget", type=float, default=0.0,
                    help="allowed fraction of fault cycles (default 0)")

    rep = sub.add_parser("report", help="run the evaluation and print a report")
    rep.add_argument("--cycles", type=int, default=16384)
    rep.add_argument("--full", action="store_true",
                     help="all 26 benchmarks (slow) instead of the quick subset")
    rep.add_argument("--no-control", action="store_true",
                     help="skip the closed-loop Table-2 section")
    return parser


def _cmd_list() -> str:
    lines = ["SPECint2000:"]
    lines += [f"  {name}" for name in SPEC_INT]
    lines.append("SPECfp2000:")
    lines += [f"  {name}" for name in SPEC_FP]
    return "\n".join(lines)


def _cmd_simulate(args) -> str:
    result = simulate_benchmark(args.benchmark, cycles=args.cycles)
    s = result.stats
    lines = [
        f"{args.benchmark}: {result.cycles} cycles, "
        f"{s.committed} instructions (IPC {s.ipc:.2f})",
        f"  branches     : {s.branches} "
        f"({s.misprediction_rate * 100:.1f}% mispredicted)",
        f"  L1D/L2 misses: {s.l1d_misses}/{s.l2_misses} "
        f"({s.l2_mpki:.1f} L2 MPKI)",
        f"  current      : {result.mean_current:.1f} A mean, "
        f"{result.current.std():.1f} A std",
        "",
        viz.line_plot(result.current[:4096], title="current (A), first 4K cycles"),
    ]
    return "\n".join(lines)


def _cmd_characterize(args) -> str:
    net = calibrated_supply(args.impedance)
    result = simulate_benchmark(args.benchmark, cycles=args.cycles)
    estimator = WaveletVoltageEstimator(net)
    p = predict_trace(net, result.current, args.threshold,
                      args.benchmark, estimator)
    contributions = estimator.level_contributions(result.current)
    lines = [
        f"{args.benchmark} at {args.impedance:.0f}% target impedance:",
        f"  estimated % cycles < {args.threshold} V : "
        f"{p.estimated * 100:.2f}%",
        f"  observed  % cycles < {args.threshold} V : "
        f"{p.observed * 100:.2f}%",
        f"  error                         : {p.error * 100:+.2f}%",
        "",
        viz.bar_chart(
            {f"level {lvl}": v * 1e6 for lvl, v in contributions.items()},
            title="per-scale voltage-variance contribution (uV^2)",
            fmt="{:10.2f}",
        ),
    ]
    return "\n".join(lines)


def _cmd_control(args) -> str:
    net = calibrated_supply(args.impedance)
    margin = args.margin_mv / 1000.0

    def factory():
        if args.scheme == "wavelet":
            return ThresholdController(
                WaveletVoltageMonitor(net, terms=args.terms), net, margin
            )
        if args.scheme == "fullconv":
            return ThresholdController(FullConvolutionMonitor(net), net, margin)
        if args.scheme == "analog":
            return ThresholdController(
                AnalogVoltageSensor(net, delay=2), net, margin
            )
        return PipelineDampingController(net, delta=args.damping_delta)

    result = run_control_experiment(args.benchmark, net, factory,
                                    cycles=args.cycles)
    return "\n".join(
        [
            f"{args.scheme} control of {args.benchmark} at "
            f"{args.impedance:.0f}% impedance:",
            f"  slowdown        : {result.slowdown * 100:.2f}%",
            f"  faults          : {result.baseline_faults} -> "
            f"{result.controlled_faults}",
            f"  interventions   : {result.stall_cycles} stalls, "
            f"{result.boost_cycles} boosts",
            f"  false positives : {result.false_positive_rate * 100:.0f}%",
        ]
    )


def _cmd_phases(args) -> str:
    from .core import WaveletPhaseClassifier

    net = calibrated_supply(args.impedance)
    result = simulate_benchmark(args.benchmark, cycles=args.cycles)
    clf = WaveletPhaseClassifier(phases=args.phases).fit(result.current)
    rows = {}
    for s in clf.summarize(net):
        rows[f"phase {s.phase}"] = [
            s.fraction * 100,
            s.mean_current,
            float(s.dominant_level),
            (s.emergency_probability or 0.0) * 100,
        ]
    return viz.table(
        rows,
        headers=["% windows", "mean A", "top level", "% < 0.97V"],
        title=f"{args.benchmark}: wavelet-signature phases "
              f"({args.impedance:.0f}% impedance)",
    )


def _cmd_breakdown(args) -> str:
    from .uarch import Pipeline, TABLE_1
    from .workloads import generate
    from .workloads.generator import prewarm_caches

    pipe = Pipeline(
        TABLE_1, iter(generate(args.benchmark)), track_breakdown=True
    )
    prewarm_caches(pipe.caches, args.benchmark)
    for _ in range(2048):
        pipe.tick()
    total = float(np.mean([pipe.tick() for _ in range(args.cycles)]))
    breakdown = dict(
        sorted(pipe.power_breakdown.items(), key=lambda kv: -kv[1])
    )
    chart = viz.bar_chart(
        {name: amps for name, amps in breakdown.items() if amps > 0.01},
        title=f"{args.benchmark}: mean per-unit current (A), "
              f"total {total:.1f} A",
        fmt="{:7.2f}",
    )
    return chart


def _cmd_sizing(args) -> str:
    from .power import max_tolerable_impedance

    base = calibrated_supply(100)
    traces = {
        name: simulate_benchmark(name, cycles=args.cycles).current
        for name in args.benchmarks
    }
    pct = max_tolerable_impedance(base, traces, budget=args.budget)
    lines = [
        f"workloads: {', '.join(args.benchmarks)}",
        f"fault budget: {args.budget * 100:.2f}% of cycles",
        f"max tolerable target impedance (uncontrolled): {pct:.0f}%",
        "",
        "anything above this needs microarchitectural dI/dt control",
        "(see `repro control` for the closed-loop experiment).",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_cmd_list())
    elif args.command == "simulate":
        print(_cmd_simulate(args))
    elif args.command == "characterize":
        print(_cmd_characterize(args))
    elif args.command == "control":
        print(_cmd_control(args))
    elif args.command == "phases":
        print(_cmd_phases(args))
    elif args.command == "breakdown":
        print(_cmd_breakdown(args))
    elif args.command == "sizing":
        print(_cmd_sizing(args))
    elif args.command == "report":
        from .report import QUICK_SUBSET, generate_report

        print(
            generate_report(
                cycles=args.cycles,
                names=None if args.full else QUICK_SUBSET,
                include_control=not args.no_control,
            )
        )
    return 0

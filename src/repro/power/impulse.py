"""Discrete impulse response of the supply network (Eq. 6's ``h``).

The continuous impedance ``Z(s) = (R + sL) / (LC s^2 + RC s + 1)`` is
discretized with the bilinear (Tustin) transform, pre-warped at the
resonant frequency, so the digital filter matches the analog impedance
*exactly at DC* (faithful IR drop) and *exactly at resonance* (faithful
ripple amplification), with only mild warping elsewhere.  Impulse
invariance is unsuitable here: the resonant impulse response's per-period
cancellation makes its sampled DC gain alias badly.

Both the finite convolution kernel used for offline "truth" simulation and
the O(1)-per-cycle streaming biquad come from the same coefficients, so
the two engines agree to machine precision over the kernel's length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import PowerSupplyNetwork

__all__ = [
    "BiquadCoefficients",
    "biquad_coefficients",
    "impulse_response",
    "default_tap_count",
    "settle_cycles",
]


@dataclass(frozen=True)
class BiquadCoefficients:
    """Second-order digital filter.

    ``y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]``
    """

    b0: float
    b1: float
    b2: float
    a1: float
    a2: float

    def dc_gain(self) -> float:
        """``H(z=1)`` — the IR-drop resistance of the discrete model."""
        return (self.b0 + self.b1 + self.b2) / (1.0 + self.a1 + self.a2)

    def gain_at(self, freq_hz: float, clock_hz: float) -> float:
        """``|H(e^{j w T})|`` at a physical frequency."""
        z = np.exp(-1j * 2.0 * np.pi * freq_hz / clock_hz)
        num = self.b0 + self.b1 * z + self.b2 * z * z
        den = 1.0 + self.a1 * z + self.a2 * z * z
        return float(np.abs(num / den))

    def impulse(self, taps: int) -> np.ndarray:
        """First ``taps`` samples of the filter's impulse response."""
        if taps < 1:
            raise ValueError("taps must be positive")
        h = np.empty(taps)
        y1 = y2 = 0.0
        for n in range(taps):
            x0 = 1.0 if n == 0 else 0.0
            x1 = 1.0 if n == 1 else 0.0
            x2 = 1.0 if n == 2 else 0.0
            y = (
                self.b0 * x0
                + self.b1 * x1
                + self.b2 * x2
                - self.a1 * y1
                - self.a2 * y2
            )
            h[n] = y
            y2, y1 = y1, y
        return h


def biquad_coefficients(network: PowerSupplyNetwork) -> BiquadCoefficients:
    """Bilinear-transform discretization, pre-warped at the resonance.

    Substituting ``s = k (1 - z^-1)/(1 + z^-1)`` with
    ``k = w0 / tan(w0 T / 2)`` into ``Z(s)`` gives a biquad whose response
    equals the analog impedance exactly at DC and at ``w0``.
    """
    p = network.parameters
    t = network.cycle_time
    w0 = p.resonant_rad
    k = w0 / np.tan(w0 * t / 2.0)
    r, l, c = p.resistance, p.inductance, p.capacitance

    lck2 = l * c * k * k
    rck = r * c * k
    lk = l * k
    d0 = lck2 + rck + 1.0
    return BiquadCoefficients(
        b0=(r + lk) / d0,
        b1=2.0 * r / d0,
        b2=(r - lk) / d0,
        a1=(2.0 - 2.0 * lck2) / d0,
        a2=(lck2 - rck + 1.0) / d0,
    )


def settle_cycles(network: PowerSupplyNetwork, fraction: float = 0.01) -> int:
    """Cycles until the ring-down envelope decays to ``fraction``."""
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    alpha = network.parameters.damping_rate
    t = -np.log(fraction) / alpha
    return int(np.ceil(t * network.clock_hz))


def default_tap_count(network: PowerSupplyNetwork) -> int:
    """Power-of-two tap count covering the ring-down to 1 %.

    A power of two keeps the online monitor's DWT window aligned.
    """
    need = settle_cycles(network, 0.01)
    taps = 1
    while taps < need:
        taps *= 2
    return taps


def impulse_response(
    network: PowerSupplyNetwork, taps: int | None = None
) -> np.ndarray:
    """Per-cycle impulse response ``h[0..taps-1]`` in volts per ampere.

    ``h[0]`` weights the current cycle's draw; convolving a current trace
    with this kernel gives the voltage droop, ``v(t) = vdd - (h * i)(t)``.
    """
    if taps is None:
        taps = default_tap_count(network)
    return biquad_coefficients(network).impulse(taps)

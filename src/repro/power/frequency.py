"""Frequency response of the supply network (Figure 5).

Provides the analytic impedance magnitude ``|Z(j 2 pi f)|`` of the
second-order model and a DFT-based response of the sampled impulse
response, so tests can check that the discrete kernel used for simulation
actually realizes the bandpass curve the paper draws.
"""

from __future__ import annotations

import numpy as np

from .impulse import impulse_response
from .network import PowerSupplyNetwork

__all__ = [
    "impedance_magnitude",
    "discrete_impedance_magnitude",
    "resonant_peak",
    "response_curve",
]


def impedance_magnitude(network: PowerSupplyNetwork, freqs_hz) -> np.ndarray:
    """Analytic ``|Z(j w)|`` of the continuous model at the given frequencies."""
    p = network.parameters
    w = 2.0 * np.pi * np.asarray(freqs_hz, dtype=float)
    s = 1j * w
    z = (p.resistance + s * p.inductance) / (
        p.inductance * p.capacitance * s**2 + p.resistance * p.capacitance * s + 1.0
    )
    return np.abs(z)


def discrete_impedance_magnitude(
    network: PowerSupplyNetwork, freqs_hz, taps: int | None = None
) -> np.ndarray:
    """``|H(e^{j w T})|`` of the sampled impulse response at given frequencies."""
    h = impulse_response(network, taps)
    w_norm = 2.0 * np.pi * np.asarray(freqs_hz, dtype=float) / network.clock_hz
    n = np.arange(len(h))
    # Direct DTFT evaluation: small frequency lists, so O(F * taps) is fine.
    kernel = np.exp(-1j * np.outer(w_norm, n))
    return np.abs(kernel @ h)


def resonant_peak(
    network: PowerSupplyNetwork, points: int = 4096
) -> tuple[float, float]:
    """Locate the impedance peak: ``(frequency_hz, |Z| ohm)``.

    Scanned over DC..clock/2 on a log grid; the peak should land at the
    configured ``resonant_hz`` (tested) and its magnitude defines the
    effective target impedance.
    """
    freqs = np.logspace(
        np.log10(network.resonant_hz / 100.0),
        np.log10(network.clock_hz / 2.0),
        points,
    )
    mags = impedance_magnitude(network, freqs)
    k = int(np.argmax(mags))
    return float(freqs[k]), float(mags[k])


def response_curve(
    network: PowerSupplyNetwork, points: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced (freqs, |Z|) arrays for plotting Figure 5."""
    freqs = np.logspace(6.0, np.log10(network.clock_hz / 2.0), points)
    return freqs, impedance_magnitude(network, freqs)

"""On-die power grid: spatial IR-drop analysis (extension).

The paper treats the supply as a single lumped node — correct for the
package-resonance dI/dt problem it studies — but its §3 background (power
distribution design, Blaauw et al.) is inherently spatial: the on-die
grid's sheet resistance makes the voltage sag *differently across the
die*, deepest far from the Vdd pads.  This module adds that early-stage
planning view: a rectangular resistive grid with configurable pads, DC
IR-drop solved by sparse factorization, and a floorplan mapping the
Wattch activity model's per-unit power onto grid regions so a cycle's
activity becomes a voltage map.

It deliberately models the *resistive* (DC) component only; the dynamic
resonance remains the lumped second-order model of
:mod:`repro.power.network` — the two compose by superposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csc_matrix, lil_matrix
from scipy.sparse.linalg import splu

from ..uarch.power_model import ActivityCounters, WattchPowerModel

__all__ = ["PowerGrid", "Floorplan", "DEFAULT_FLOORPLAN"]


class PowerGrid:
    """A rows x cols resistive mesh fed from Vdd pads.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (one node per tile).
    segment_resistance:
        Resistance of each horizontal/vertical grid segment (ohms).
    pad_nodes:
        ``(row, col)`` positions wired to the Vdd pad ring; defaults to
        the four corners (a deliberately weak network, so gradients are
        visible).  Flip-chip designs would pepper the whole area.
    pad_resistance:
        Resistance from each pad node up to the ideal Vdd (ohms).
    vdd:
        Nominal rail voltage.
    """

    def __init__(
        self,
        rows: int = 8,
        cols: int = 8,
        segment_resistance: float = 2.0e-3,
        pad_nodes: tuple[tuple[int, int], ...] | None = None,
        pad_resistance: float = 1.0e-3,
        vdd: float = 1.0,
    ) -> None:
        if rows < 2 or cols < 2:
            raise ValueError("grid needs at least 2x2 nodes")
        if segment_resistance <= 0 or pad_resistance <= 0:
            raise ValueError("resistances must be positive")
        self.rows = rows
        self.cols = cols
        self.vdd = vdd
        self.segment_resistance = segment_resistance
        self.pad_resistance = pad_resistance
        if pad_nodes is None:
            pad_nodes = (
                (0, 0),
                (0, cols - 1),
                (rows - 1, 0),
                (rows - 1, cols - 1),
            )
        for r, c in pad_nodes:
            if not (0 <= r < rows and 0 <= c < cols):
                raise ValueError(f"pad ({r},{c}) outside the grid")
        self.pad_nodes = tuple(pad_nodes)
        self._lu = splu(self._conductance_matrix())

    def _index(self, r: int, c: int) -> int:
        return r * self.cols + c

    def _conductance_matrix(self) -> csc_matrix:
        n = self.rows * self.cols
        g_seg = 1.0 / self.segment_resistance
        g_pad = 1.0 / self.pad_resistance
        m = lil_matrix((n, n))
        for r in range(self.rows):
            for c in range(self.cols):
                i = self._index(r, c)
                for dr, dc in ((0, 1), (1, 0)):
                    rr, cc = r + dr, c + dc
                    if rr < self.rows and cc < self.cols:
                        j = self._index(rr, cc)
                        m[i, i] += g_seg
                        m[j, j] += g_seg
                        m[i, j] -= g_seg
                        m[j, i] -= g_seg
        for r, c in self.pad_nodes:
            i = self._index(r, c)
            m[i, i] += g_pad
        return csc_matrix(m)

    # -- analysis ---------------------------------------------------------------

    def voltage_map(self, current_map: np.ndarray) -> np.ndarray:
        """Per-node voltage for a per-node current-draw map (amperes).

        Solves ``G v_drop = i`` (nodal analysis with the pad rail folded
        into the diagonal), then returns ``vdd - v_drop`` per node.
        """
        i = np.asarray(current_map, dtype=float)
        if i.shape != (self.rows, self.cols):
            raise ValueError(
                f"current map must be {self.rows}x{self.cols}, got {i.shape}"
            )
        if np.any(i < 0):
            raise ValueError("current draws must be non-negative")
        drop = self._lu.solve(i.ravel())
        return self.vdd - drop.reshape(self.rows, self.cols)

    def ir_drop_map(self, current_map: np.ndarray) -> np.ndarray:
        """Per-node IR drop (volts below Vdd)."""
        return self.vdd - self.voltage_map(current_map)

    def worst_node(self, current_map: np.ndarray) -> tuple[int, int, float]:
        """(row, col, drop) of the deepest-sagging node."""
        drop = self.ir_drop_map(current_map)
        r, c = np.unravel_index(int(np.argmax(drop)), drop.shape)
        return int(r), int(c), float(drop[r, c])


@dataclass(frozen=True)
class Floorplan:
    """Maps power-model units onto grid regions.

    ``regions`` assigns each :class:`ActivityCounters` field a rectangle
    ``(r0, r1, c0, c1)`` (half-open) of grid tiles over which that unit's
    power is spread uniformly.  Unassigned power (clock tree, static) is
    spread over the whole die.
    """

    rows: int
    cols: int
    regions: dict[str, tuple[int, int, int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, (r0, r1, c0, c1) in self.regions.items():
            if not (0 <= r0 < r1 <= self.rows and 0 <= c0 < c1 <= self.cols):
                raise ValueError(f"region {name!r} outside the {self.rows}x"
                                 f"{self.cols} grid")

    def current_map(
        self, model: WattchPowerModel, activity: ActivityCounters
    ) -> np.ndarray:
        """Spatialize one cycle's activity into a per-tile current map.

        The map always sums to exactly ``model.current(activity)``, so
        grid analyses conserve the lumped model's total.
        """
        out = np.zeros((self.rows, self.cols))
        total = model.current(activity)
        placed = 0.0
        for unit in model.units:
            rect = self.regions.get(unit.counter)
            if rect is None:
                continue
            count = getattr(activity, unit.counter)
            amps = unit.per_access * count if count > 0 else unit.idle
            r0, r1, c0, c1 = rect
            tiles = (r1 - r0) * (c1 - c0)
            out[r0:r1, c0:c1] += amps / tiles
            placed += amps
        # Everything unassigned (clock, static, unmapped units, no-ops)
        # spreads uniformly over the die.
        out += (total - placed) / (self.rows * self.cols)
        return out


#: An 8x8 floorplan in the spirit of a 21264 die photo: front end on top,
#: execution core in the middle, caches at the bottom/right.
DEFAULT_FLOORPLAN = Floorplan(
    rows=8,
    cols=8,
    regions={
        "icache_accesses": (0, 2, 0, 3),
        "bpred_lookups": (0, 1, 3, 5),
        "decoded": (1, 2, 3, 6),
        "dispatched": (2, 3, 2, 6),
        "issued_ialu": (3, 5, 0, 3),
        "issued_imult": (3, 4, 3, 4),
        "issued_fpalu": (3, 5, 4, 7),
        "issued_fpmult": (4, 5, 3, 4),
        "lsq_issues": (5, 6, 2, 5),
        "dcache_accesses": (6, 8, 0, 4),
        "l2_accesses": (6, 8, 4, 8),
        "memory_accesses": (7, 8, 7, 8),
        "regfile_reads": (2, 3, 6, 8),
        "regfile_writes": (3, 4, 6, 8),
        "completions": (4, 5, 7, 8),
        "wakeups": (2, 3, 0, 2),
        "committed": (5, 6, 5, 7),
    },
)

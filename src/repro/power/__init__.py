"""Power-delivery network substrate (§3.1 of the paper).

Second-order supply model, analytic/discrete impulse and frequency
responses, convolution and streaming voltage simulation, and the
target-impedance calibration procedure.
"""

from .impedance import (
    calibrate_peak_impedance,
    calibrated_network,
    didt_reduction,
    worst_case_current,
)
from .impulse import (
    BiquadCoefficients,
    biquad_coefficients,
    default_tap_count,
    impulse_response,
    settle_cycles,
)
from .grid import DEFAULT_FLOORPLAN, Floorplan, PowerGrid
from .frequency import (
    discrete_impedance_magnitude,
    impedance_magnitude,
    resonant_peak,
    response_curve,
)
from .network import PowerSupplyNetwork, SupplyParameters
from .sizing import exposure_at, max_tolerable_impedance
from .simulate import (
    ConvolutionVoltageSimulator,
    StreamingVoltageModel,
    count_emergencies,
    emergency_fraction,
    simulate_voltage,
)

__all__ = [
    "BiquadCoefficients",
    "ConvolutionVoltageSimulator",
    "DEFAULT_FLOORPLAN",
    "Floorplan",
    "PowerGrid",
    "PowerSupplyNetwork",
    "StreamingVoltageModel",
    "SupplyParameters",
    "biquad_coefficients",
    "calibrate_peak_impedance",
    "calibrated_network",
    "count_emergencies",
    "default_tap_count",
    "didt_reduction",
    "discrete_impedance_magnitude",
    "emergency_fraction",
    "exposure_at",
    "impedance_magnitude",
    "impulse_response",
    "max_tolerable_impedance",
    "resonant_peak",
    "response_curve",
    "settle_cycles",
    "simulate_voltage",
    "worst_case_current",
]

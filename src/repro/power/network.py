"""Second-order model of the microprocessor power-supply network (§3.1).

The paper models the supply network, for mid-frequency (50–200 MHz) dI/dt
purposes, as a second-order linear system: the package inductance ``L`` and
loop resistance ``R`` in series, feeding the on-die decoupling capacitance
``C`` from which the core draws its current.  The impedance seen by the die,

    Z(s) = (R + sL) / (LC s^2 + RC s + 1),

equals ``R`` at DC, peaks near the resonance ``w0 = 1/sqrt(LC)`` and falls
as the on-die capacitance shorts high frequencies — exactly the bandpass
shape of Figure 5.  Voltage is then computed by convolving the current with
the network's impulse response (Eq. 6).

Rather than asking users for raw ``R/L/C``, the model is parameterized by
design-facing quantities — resonant frequency, quality factor and peak
impedance — plus an ``impedance_scale`` implementing the paper's "percent
of target impedance" axis (100 % = ripple exactly reaches the ±5 % band
under the worst-case stressmark; 150 % = 1.5x that impedance).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["PowerSupplyNetwork", "SupplyParameters"]


@dataclass(frozen=True)
class SupplyParameters:
    """Raw electrical parameters derived from the design-facing spec."""

    resistance: float  # ohm (DC/IR-drop resistance)
    inductance: float  # henry
    capacitance: float  # farad

    @property
    def resonant_rad(self) -> float:
        """Natural frequency ``w0 = 1/sqrt(LC)`` in rad/s."""
        return 1.0 / np.sqrt(self.inductance * self.capacitance)

    @property
    def damping_rate(self) -> float:
        """Pole real part ``alpha = R / 2L`` in 1/s."""
        return self.resistance / (2.0 * self.inductance)

    @property
    def damped_rad(self) -> float:
        """Damped oscillation frequency ``wd = sqrt(w0^2 - alpha^2)``."""
        w0, a = self.resonant_rad, self.damping_rate
        if a >= w0:
            raise ValueError("supply model must be underdamped (Q > 0.5)")
        return float(np.sqrt(w0 * w0 - a * a))


@dataclass(frozen=True)
class PowerSupplyNetwork:
    """The processor's power-delivery network as a second-order system.

    Parameters
    ----------
    vdd:
        Nominal supply voltage (the paper uses 1.0 V).
    clock_hz:
        Core clock; per-cycle current samples are spaced ``1/clock_hz``.
    resonant_hz:
        Supply resonance — the paper places the troublesome band at
        50–200 MHz; the default 100 MHz gives a 30-cycle period at 3 GHz.
    quality_factor:
        Sharpness of the resonance (underdamped, Q > 0.5).
    peak_impedance:
        |Z| at resonance in ohms, *before* ``impedance_scale`` is applied.
    impedance_scale:
        The paper's target-impedance percentage as a fraction: 1.0 = 100 %
        target impedance (ripple exactly tolerable under the worst case),
        1.5 = the paper's "150 % target impedance" systems that need
        microarchitectural control.
    tolerance:
        Allowed relative voltage excursion (±5 % in the paper).
    """

    vdd: float = 1.0
    clock_hz: float = 3.0e9
    resonant_hz: float = 100.0e6
    quality_factor: float = 8.0
    peak_impedance: float = 1.0e-3
    impedance_scale: float = 1.0
    tolerance: float = 0.05

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.clock_hz <= 0 or self.resonant_hz <= 0:
            raise ValueError("vdd, clock and resonance must be positive")
        if self.quality_factor <= 0.5:
            raise ValueError("quality_factor must exceed 0.5 (underdamped)")
        if self.peak_impedance <= 0 or self.impedance_scale <= 0:
            raise ValueError("impedances must be positive")
        if not 0.0 < self.tolerance < 1.0:
            raise ValueError("tolerance must be a fraction in (0, 1)")
        if self.resonant_hz * 4 > self.clock_hz:
            raise ValueError("resonance must be far below the clock rate")

    # -- electrical parameters ------------------------------------------------

    @cached_property
    def parameters(self) -> SupplyParameters:
        """Solve (R, L, C) from (f0, Q, Z_peak, scale).

        For the series-RL/shunt-C network, ``Q = w0 L / R``, and at the
        natural frequency the denominator collapses to ``j w0 R C`` so that
        ``|Z(j w0)| = Q R sqrt(1 + Q^2)``; hence
        ``R = Z_peak / (Q sqrt(1 + Q^2))``, ``L = Q R / w0``,
        ``C = 1/(w0^2 L)``.
        """
        w0 = 2.0 * np.pi * self.resonant_hz
        q = self.quality_factor
        r = self.impedance_scale * self.peak_impedance / (q * np.sqrt(1.0 + q * q))
        ind = q * r / w0
        c = 1.0 / (w0 * w0 * ind)
        return SupplyParameters(resistance=r, inductance=ind, capacitance=c)

    @property
    def cycle_time(self) -> float:
        """Seconds per core clock cycle."""
        return 1.0 / self.clock_hz

    @property
    def resonant_period_cycles(self) -> float:
        """Resonant period expressed in core clock cycles."""
        return self.clock_hz / self.resonant_hz

    @property
    def dc_resistance(self) -> float:
        """DC impedance (sets the IR drop for the mean current)."""
        return self.parameters.resistance

    # -- voltage limits ---------------------------------------------------------

    @property
    def v_min(self) -> float:
        """Lowest safe voltage (-tolerance band edge): 0.95 V by default."""
        return self.vdd * (1.0 - self.tolerance)

    @property
    def v_max(self) -> float:
        """Highest safe voltage (+tolerance band edge): 1.05 V by default."""
        return self.vdd * (1.0 + self.tolerance)

    # -- scaling ---------------------------------------------------------------

    def with_scale(self, impedance_scale: float) -> "PowerSupplyNetwork":
        """Same network at a different target-impedance percentage."""
        return PowerSupplyNetwork(
            vdd=self.vdd,
            clock_hz=self.clock_hz,
            resonant_hz=self.resonant_hz,
            quality_factor=self.quality_factor,
            peak_impedance=self.peak_impedance,
            impedance_scale=impedance_scale,
            tolerance=self.tolerance,
        )

    def with_peak_impedance(self, peak_impedance: float) -> "PowerSupplyNetwork":
        """Same network with a re-based 100 % target impedance."""
        return PowerSupplyNetwork(
            vdd=self.vdd,
            clock_hz=self.clock_hz,
            resonant_hz=self.resonant_hz,
            quality_factor=self.quality_factor,
            peak_impedance=peak_impedance,
            impedance_scale=self.impedance_scale,
            tolerance=self.tolerance,
        )

"""Voltage simulation: Eq. 6 applied to per-cycle current traces.

Two equivalent engines:

* :class:`ConvolutionVoltageSimulator` — the offline "truth" used for all
  characterization experiments: FFT convolution of the whole current trace
  with the finite impulse-response kernel, exactly the direct application
  of Eq. 6 the paper uses to simulate voltage levels.
* :class:`StreamingVoltageModel` — the same second-order system as a
  two-pole recursion advanced one cycle at a time, used inside the online
  control loop where the controller's stall/no-op decisions feed back into
  the current stream.

Both are derived from the same biquad coefficients and agree to machine
precision (tested), so offline characterization and online control see the
same physics.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve, lfilter

from .impulse import biquad_coefficients, default_tap_count, impulse_response
from .network import PowerSupplyNetwork

__all__ = [
    "ConvolutionVoltageSimulator",
    "StreamingVoltageModel",
    "simulate_voltage",
    "count_emergencies",
    "emergency_fraction",
]


class ConvolutionVoltageSimulator:
    """Offline whole-trace voltage computation (Eq. 6).

    Parameters
    ----------
    network:
        The supply model.
    taps:
        Kernel length; defaults to a power of two covering the ring-down.
    """

    def __init__(self, network: PowerSupplyNetwork, taps: int | None = None) -> None:
        self.network = network
        self.taps = default_tap_count(network) if taps is None else taps
        self.kernel = impulse_response(network, self.taps)

    def droop(self, current: np.ndarray) -> np.ndarray:
        """Voltage droop ``(h * i)(t)`` for each cycle of ``current``."""
        i = np.asarray(current, dtype=float)
        if i.ndim != 1:
            raise ValueError("current trace must be 1-D")
        if len(i) == 0:
            return np.empty(0)
        return fftconvolve(i, self.kernel)[: len(i)]

    def voltage(self, current: np.ndarray) -> np.ndarray:
        """Per-cycle supply voltage ``vdd - droop``."""
        return self.network.vdd - self.droop(current)


class StreamingVoltageModel:
    """Cycle-by-cycle voltage evolution for closed-loop control.

    Uses the biquad recursion directly (infinite impulse response), so it
    matches the convolution engine up to the kernel truncation tail.
    """

    def __init__(self, network: PowerSupplyNetwork) -> None:
        self.network = network
        self._bq = biquad_coefficients(network)
        self._x1 = 0.0
        self._x2 = 0.0
        self._y1 = 0.0
        self._y2 = 0.0

    def step(self, current: float) -> float:
        """Advance one cycle with the given current draw; returns voltage."""
        bq = self._bq
        y = (
            bq.b0 * current
            + bq.b1 * self._x1
            + bq.b2 * self._x2
            - bq.a1 * self._y1
            - bq.a2 * self._y2
        )
        self._x2, self._x1 = self._x1, current
        self._y2, self._y1 = self._y1, y
        return self.network.vdd - y

    def run(self, current: np.ndarray) -> np.ndarray:
        """Vectorized batch run (scipy ``lfilter``), same recursion."""
        i = np.asarray(current, dtype=float)
        bq = self._bq
        droop = lfilter([bq.b0, bq.b1, bq.b2], [1.0, bq.a1, bq.a2], i)
        return self.network.vdd - droop

    def reset(self) -> None:
        """Clear filter state (history of a previous trace)."""
        self._x1 = self._x2 = self._y1 = self._y2 = 0.0


def simulate_voltage(
    network: PowerSupplyNetwork, current: np.ndarray, taps: int | None = None
) -> np.ndarray:
    """One-shot convenience: voltage trace for a current trace (Eq. 6)."""
    return ConvolutionVoltageSimulator(network, taps).voltage(current)


def count_emergencies(network: PowerSupplyNetwork, voltage: np.ndarray) -> int:
    """Cycles outside the safe band (voltage faults, §3)."""
    v = np.asarray(voltage, dtype=float)
    return int(np.sum((v < network.v_min) | (v > network.v_max)))


def emergency_fraction(network: PowerSupplyNetwork, voltage: np.ndarray) -> float:
    """Fraction of cycles in voltage-fault territory."""
    v = np.asarray(voltage, dtype=float)
    if v.size == 0:
        return 0.0
    return count_emergencies(network, v) / v.size

"""Target-impedance calibration (§3.1).

The paper calibrates its supply model the way industry does [1]: find the
maximum impedance that still keeps the voltage within ±5 % of Vdd under a
custom worst-case execution sequence, and call that *100 % target
impedance*.  Systems quoted at "150 % target impedance" have 1.5x that
impedance and will fault without microarchitectural control; eliminating
faults there "reduces dI/dt by 33 %".

Because the model is linear, the droop scales exactly linearly with the
impedance scale, so calibration is a single simulation plus a division.
"""

from __future__ import annotations

import numpy as np

from .network import PowerSupplyNetwork
from .simulate import ConvolutionVoltageSimulator

__all__ = [
    "worst_case_current",
    "calibrate_peak_impedance",
    "calibrated_network",
    "didt_reduction",
]


def worst_case_current(
    network: PowerSupplyNetwork,
    cycles: int,
    i_min: float,
    i_max: float,
) -> np.ndarray:
    """Resonance-tuned square-wave stressmark.

    Alternates between the machine's minimum and maximum current draw at
    the supply's resonant period — the malicious pattern commercial
    designers craft into dI/dt microbenchmarks.  After an initial stretch
    at the midpoint current (so the trace starts from steady state), the
    square wave pumps the resonance to its worst-case amplitude.
    """
    if cycles < 1:
        raise ValueError("cycles must be positive")
    if i_max < i_min:
        raise ValueError("i_max must be >= i_min")
    period = max(2, int(round(network.resonant_period_cycles)))
    half = period // 2
    mid = 0.5 * (i_min + i_max)
    warmup = min(cycles, 4 * period)
    trace = np.full(cycles, mid)
    phase = (np.arange(cycles - warmup) // half) % 2
    trace[warmup:] = np.where(phase == 0, i_max, i_min)
    return trace


def calibrate_peak_impedance(
    network: PowerSupplyNetwork,
    current: np.ndarray,
) -> float:
    """Peak impedance at which ``current`` exactly reaches the ±5 % band.

    Returns the re-based ``peak_impedance`` value (ohms) such that the
    worst AC excursion of the droop under ``current`` equals
    ``tolerance * vdd``; this defines 100 % target impedance.
    """
    sim = ConvolutionVoltageSimulator(network)
    droop = sim.droop(np.asarray(current, dtype=float))
    # "Within ±5 % of Vdd" bounds the total droop (IR drop + resonant
    # ripple), so the binding quantity is the largest |droop| once the
    # kernel has filled (the leading taps see zero-padded history).
    settled = droop[min(len(droop) - 1, sim.taps) :]
    if settled.size == 0:
        settled = droop
    excursion = float(np.max(np.abs(settled)))
    if excursion <= 0.0:
        raise ValueError("stressmark produced no voltage excursion")
    allowed = network.tolerance * network.vdd
    return network.peak_impedance * network.impedance_scale * allowed / excursion


def calibrated_network(
    base: PowerSupplyNetwork,
    i_min: float,
    i_max: float,
    percent: float = 100.0,
    cycles: int = 8192,
) -> PowerSupplyNetwork:
    """A network calibrated to ``percent`` target impedance.

    Runs the worst-case stressmark against ``base``, re-bases the peak
    impedance so that stressmark exactly fills the tolerance band at
    100 %, and applies the requested percentage.
    """
    if percent <= 0:
        raise ValueError("percent must be positive")
    stress = worst_case_current(base, cycles, i_min, i_max)
    z100 = calibrate_peak_impedance(base, stress)
    return base.with_peak_impedance(z100).with_scale(percent / 100.0)


def didt_reduction(percent: float) -> float:
    """The paper's bookkeeping: control at P % impedance reduces dI/dt by ``1 - 100/P``.

    E.g. eliminating faults at 150 % target impedance = 33 % dI/dt reduction.
    """
    if percent < 100.0:
        raise ValueError("percent below 100 needs no architectural control")
    return 1.0 - 100.0 / percent

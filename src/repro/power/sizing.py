"""Supply-network sizing helpers (the designer's inverse problems).

The paper frames microarchitectural control as a way to ship a *weaker*
(cheaper) supply network.  These helpers answer the two sizing questions
that framing raises, using the linearity of the model:

* :func:`max_tolerable_impedance` — given representative current traces
  and an emergency budget, the largest peak impedance (in % of target
  impedance) the uncontrolled machine tolerates;
* :func:`impedance_headroom` — given a controller's measured residual
  faults at some impedance, how much further the impedance could rise
  before the budget is exceeded (bisection over closed-loop reruns is
  the caller's job; this gives the open-loop bound to start from).
"""

from __future__ import annotations

import numpy as np

from .network import PowerSupplyNetwork
from .simulate import ConvolutionVoltageSimulator

__all__ = ["exposure_at", "max_tolerable_impedance"]


def exposure_at(
    network: PowerSupplyNetwork,
    traces: dict[str, np.ndarray],
    threshold: float | None = None,
    settle: int = 1024,
) -> dict[str, float]:
    """Fraction of cycles outside the limit, per trace, at one impedance.

    ``threshold=None`` uses the fault limit ``v_min``; pass 0.97 for the
    paper's control-point exposure instead.
    """
    limit = network.v_min if threshold is None else threshold
    sim = ConvolutionVoltageSimulator(network)
    out = {}
    for name, trace in traces.items():
        v = sim.voltage(np.asarray(trace, dtype=float))[settle:]
        if v.size == 0:
            raise ValueError(f"trace {name!r} too short for the settle window")
        out[name] = float(np.mean(v < limit))
    return out


def max_tolerable_impedance(
    base: PowerSupplyNetwork,
    traces: dict[str, np.ndarray],
    budget: float = 0.0,
    threshold: float | None = None,
    lo: float = 50.0,
    hi: float = 400.0,
    tolerance: float = 1.0,
    settle: int = 1024,
) -> float:
    """Largest impedance percentage keeping every trace within budget.

    ``budget`` is the allowed fraction of cycles below the limit (0 =
    no emergencies at all).  Because droop scales linearly with the
    impedance percentage, exposure is monotone in it and bisection over
    ``[lo, hi]`` percent converges; the result is conservative by
    ``tolerance`` percentage points.

    Raises if even ``lo`` percent already violates the budget.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if not lo < hi:
        raise ValueError("need lo < hi")

    def ok(percent: float) -> bool:
        net = base.with_scale(percent / 100.0)
        exposure = exposure_at(net, traces, threshold, settle)
        return max(exposure.values()) <= budget

    if not ok(lo):
        raise ValueError(
            f"even {lo:.0f}% target impedance violates the budget"
        )
    if ok(hi):
        return hi
    low, high = lo, hi
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if ok(mid):
            low = mid
        else:
            high = mid
    return low

"""Stage registry: the pipeline's unit computations.

Each stage wraps one existing entry point — the out-of-order simulator,
the convolution voltage engine, the §4 wavelet-variance estimator, the
§5 closed-loop controllers — behind a uniform signature::

    stage(ctx: StageContext) -> artifact

Artifacts are either a :class:`~repro.uarch.SimulationResult` (``kind
= "result"``, persisted via :mod:`repro.uarch.traceio`) or a JSON-ready
dict of scalars (``kind = "json"``), so every artifact round-trips the
on-disk cache byte-identically.

Cache keys chain: stage *n*'s key hashes its own spec fields together
with stage *n-1*'s key, so editing the characterization threshold
invalidates ``voltage``/``characterize`` entries while the expensive
``simulate`` entry stays valid.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable

import numpy as np

from ..core import (
    AnalogVoltageSensor,
    ControlResult,
    FullConvolutionMonitor,
    PipelineDampingController,
    ThresholdController,
    WaveletVoltageEstimator,
    WaveletVoltageMonitor,
    run_control_experiment,
)
from ..obs import trace as obs
from ..power import ConvolutionVoltageSimulator
from ..uarch import RunStatistics, SimulationResult, simulate_benchmark
from ..errors import SpecError
from .spec import CACHE_SALT, JobSpec, hash_payload
from .windows import streaming_characterize

__all__ = [
    "Stage",
    "StageContext",
    "available_stages",
    "get_stage",
    "register_stage",
    "stage_cache_keys",
    "control_result_from_artifact",
]


@dataclass(frozen=True)
class Stage:
    """One registered pipeline stage.

    ``key_name`` is the stage's cache-key namespace (default: its own
    name).  Stages that can *substitute* for one another — ``simulate``
    and ``load_trace`` both produce the job's current trace — share one
    namespace, so jobs whose trace identity matches chain to the same
    downstream cache entries regardless of which stage supplied the
    trace.
    """

    name: str
    func: Callable[["StageContext"], object]
    fields: tuple[str, ...]  # spec fields hashed into this stage's key
    kind: str = "json"  # artifact serialization: "json" | "result"
    key_name: str | None = None


_REGISTRY: dict[str, Stage] = {}


def register_stage(
    name: str,
    *,
    fields: tuple[str, ...],
    kind: str = "json",
    key_name: str | None = None,
):
    """Decorator registering a stage function under ``name``."""

    def wrap(func):
        if name in _REGISTRY:
            raise SpecError(f"stage {name!r} already registered")
        if kind not in ("json", "result"):
            raise SpecError(f"unknown artifact kind {kind!r}")
        _REGISTRY[name] = Stage(
            name=name, func=func, fields=fields, kind=kind, key_name=key_name
        )
        return func

    return wrap


def get_stage(name: str) -> Stage:
    """Look up a registered stage."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown stage {name!r}; available: {sorted(_REGISTRY)}",
            stage=name,
        ) from None


def available_stages() -> tuple[str, ...]:
    """Registered stage names, sorted."""
    return tuple(sorted(_REGISTRY))


def stage_cache_keys(spec: JobSpec) -> dict[str, str]:
    """The chained content-address of every stage of a job."""
    keys: dict[str, str] = {}
    prev = ""
    for name in spec.stages:
        stage = get_stage(name)
        payload = {
            "salt": CACHE_SALT,
            "stage": stage.key_name or name,
            "prev": prev,
            "fields": {f: spec.field_value(f) for f in stage.fields},
        }
        prev = hash_payload(payload)
        keys[name] = prev
    return keys


# Process-level estimator memo: calibrating scale factors costs a
# stressmark-sized simulation, and every job against the same network
# shares the result (exactly as the figure code shared one estimator).
_ESTIMATORS: dict[tuple, WaveletVoltageEstimator] = {}


class StageContext:
    """Per-job execution context handed to every stage.

    Lazily builds (and memoizes per process) the shared heavy objects —
    supply network, calibrated estimator, convolution engine — and
    carries the artifacts of already-executed stages in ``artifacts``.
    """

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.artifacts: dict[str, object] = {}
        self._current: np.ndarray | None = None

    @property
    def network(self):
        return self.spec.resolve_network()

    @property
    def estimator(self) -> WaveletVoltageEstimator:
        key = (self.spec.network, self.spec.window)
        if key not in _ESTIMATORS:
            with obs.span("pipeline.calibrate", window=self.spec.window):
                _ESTIMATORS[key] = WaveletVoltageEstimator(
                    self.network, window=self.spec.window
                )
            obs.counter_inc(
                "pipeline_estimator_builds_total",
                1,
                "cold wavelet-estimator calibrations (memo misses)",
            )
        return _ESTIMATORS[key]

    def simulation(self):
        """The upstream simulation artifact (most stages' input)."""
        try:
            return self.artifacts["simulate"]
        except KeyError:
            raise SpecError(
                f"stage chain {self.spec.stages} needs 'simulate' first"
            ) from None

    def current_trace(self) -> np.ndarray:
        """The job's per-cycle current trace, however it is sourced.

        Specs carrying a :class:`~repro.store.TraceRef` resolve it here
        (zero-copy mmap / shared-memory attach, memoized per job — also
        when ``load_trace`` itself was a cache hit); plain specs read
        the upstream simulation artifact.
        """
        if self._current is None:
            if self.spec.trace is not None:
                with obs.span(
                    "store.attach", benchmark=self.spec.benchmark
                ):
                    self._current = self.spec.resolve_trace_ref().resolve()
            elif "scenario" in self.artifacts:
                self._current = self.artifacts["scenario"].current
            else:
                self._current = self.simulation().current
        return self._current


# -- built-in stages ----------------------------------------------------------


@register_stage(
    "simulate",
    fields=("trace_identity",),
    kind="result",
    key_name="trace",
)
def _stage_simulate(ctx: StageContext):
    """Run the Table-1 machine over the workload model (§3.2)."""
    return simulate_benchmark(
        ctx.spec.benchmark,
        cycles=ctx.spec.cycles,
        seed=ctx.spec.seed,
        warmup_cycles=ctx.spec.warmup_cycles,
    )


@register_stage(
    "scenario",
    fields=("trace_identity",),
    kind="result",
    key_name="trace",
)
def _stage_scenario(ctx: StageContext):
    """Compile a composed stress scenario into the job's current trace.

    The spec carries the scenario's canonical JSON in
    ``params["scenario"]`` (see
    :func:`repro.scenarios.scenario_param`); compiling it runs every
    atom span through the Table-1 simulator, superposes cores, and
    applies DVFS envelopes.  The artifact is a synthetic
    :class:`~repro.uarch.SimulationResult` so scenario traces
    round-trip the ``kind = "result"`` cache exactly like simulated
    ones — a cache hit restores the trace for downstream stages.
    """
    from ..scenarios import compile_scenario, scenario_from_param

    spec = ctx.spec
    param = spec.param("scenario")
    if param is None:
        raise SpecError(
            f"job {spec.label} has a 'scenario' stage but no "
            "'scenario' parameter",
            job=spec.label,
        )
    scenario = scenario_from_param(str(param))
    with obs.span(
        "scenario.compile",
        benchmark=spec.benchmark,
        cores=len(scenario.cores),
        cycles=spec.cycles,
    ):
        current = compile_scenario(
            scenario,
            spec.cycles,
            seed=spec.seed,
            warmup_cycles=spec.warmup_cycles,
        )
    return SimulationResult(
        name=spec.benchmark,
        current=current,
        l2_outstanding=np.zeros(current.size, dtype=bool),
        stats=RunStatistics(),
    )


@register_stage("load_trace", fields=("trace_identity",), key_name="trace")
def _stage_load_trace(ctx: StageContext):
    """Resolve the spec's :class:`~repro.store.TraceRef` in place.

    The zero-copy replacement for ``simulate``: the worker attaches the
    stored trace read-only (mmap or shared memory) and downstream stages
    run kernels directly on the view.  The artifact is a small JSON
    descriptor — the samples themselves never enter the cache or the
    job result channel.
    """
    ref = ctx.spec.resolve_trace_ref()
    current = ctx.current_trace()
    if current.size != ref.samples:
        raise SpecError(
            f"trace {ref.trace_id} resolved to {current.size} samples, "
            f"ref promises {ref.samples}",
            trace_id=ref.trace_id,
            store=ref.store,
        )
    return {
        "trace_id": ref.trace_id,
        "store": ref.store,
        "dtype": ref.dtype,
        "samples": int(current.size),
        "sha256": ref.sha256,
    }


@register_stage("voltage", fields=("network", "threshold"))
def _stage_voltage(ctx: StageContext):
    """Convolution-simulated supply voltage: the §4 ground truth."""
    sim = ConvolutionVoltageSimulator(ctx.network)
    current = ctx.current_trace()
    voltage = sim.voltage(current)[min(sim.taps, len(current) // 4) :]
    return {
        "observed": float(np.mean(voltage < ctx.spec.threshold)),
        "min_voltage": float(voltage.min()) if voltage.size else None,
        "mean_voltage": float(voltage.mean()) if voltage.size else None,
        "settled_cycles": int(voltage.size),
    }


@register_stage("characterize", fields=("network", "threshold", "window"))
def _stage_characterize(ctx: StageContext):
    """The §4.1 wavelet-variance estimate, streamed block by block.

    One pass through the kernel-dispatched batch path yields both the
    below-threshold estimate and the per-level contributions.
    """
    estimator = ctx.estimator
    estimated, count, levels = streaming_characterize(
        estimator, ctx.current_trace(), ctx.spec.threshold
    )
    if obs.ENABLED:
        for lvl, contribution in levels.items():
            obs.gauge_set(
                "characterize_level_contribution",
                contribution,
                "per-scale voltage-variance contribution of the last trace",
                level=str(lvl),
            )
    return {
        "estimated": estimated,
        "windows": count,
        # JSON object keys are strings; keep them strings from the start
        # so cached and fresh artifacts compare equal.
        "level_contributions": {str(lvl): v for lvl, v in levels.items()},
    }


def build_controller(scheme: str, network, spec: JobSpec):
    """Construct a §5/§6 controller from declarative spec params."""
    margin = float(spec.param("margin", 0.012))
    if scheme == "wavelet":
        terms = int(spec.param("terms", 13))
        return ThresholdController(
            WaveletVoltageMonitor(network, terms=terms), network, margin
        )
    if scheme == "fullconv":
        return ThresholdController(
            FullConvolutionMonitor(network), network, margin
        )
    if scheme == "analog":
        delay = int(spec.param("sensor_delay", 2))
        return ThresholdController(
            AnalogVoltageSensor(network, delay=delay), network, margin
        )
    if scheme == "damping":
        kwargs = {"delta": float(spec.param("damping_delta", 6.0))}
        window = spec.param("damping_window")
        if window is not None:
            kwargs["window"] = int(window)
        return PipelineDampingController(network, **kwargs)
    raise SpecError(f"unknown control scheme {scheme!r}", scheme=scheme)


@register_stage(
    "control",
    fields=("benchmark", "cycles", "warmup_cycles", "network", "params"),
)
def _stage_control(ctx: StageContext):
    """One closed-loop control experiment (§5.3 / Table 2)."""
    spec = ctx.spec
    scheme = str(spec.param("scheme", "wavelet"))
    network = ctx.network
    result = run_control_experiment(
        spec.benchmark,
        network,
        lambda: build_controller(scheme, network, spec),
        cycles=spec.cycles,
        warmup_cycles=spec.warmup_cycles,
    )
    return {"scheme": scheme, **asdict(result)}


def control_result_from_artifact(artifact: dict) -> ControlResult:
    """Rebuild the live :class:`ControlResult` from a control artifact."""
    data = {k: v for k, v in artifact.items() if k != "scheme"}
    return ControlResult(**data)

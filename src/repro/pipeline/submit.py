"""The single batch-submission entry point: ``submit(specs, options)``.

Every execution knob that used to travel as a growing kwarg list on
``run_batch`` (and drift between the CLI and ``serve/``) lives on one
frozen :class:`BatchOptions` value.  Spec *construction* stays with the
builders (``build_characterization_jobs`` and friends) — they describe
*what* to compute; :class:`BatchOptions` describes *how hard and where*
to compute it.

``submit`` also owns the two environment bridges that the CLI used to
set up by hand:

* ``options.kernels`` (a :class:`~repro.kernels.KernelConfig`) is
  entered as a context for the run and mirrored into
  ``REPRO_KERNEL_BACKEND`` so spawn-started pool workers resolve the
  same backend;
* ``options.fault_plan`` is mirrored into ``REPRO_FAULT_PLAN`` for the
  run (workers read the plan from the environment).

Both are restored on exit, so nested/serial submits cannot leak state
into each other.
"""

from __future__ import annotations

import os
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, replace

from ..errors import SpecError
from ..kernels import ENV_VAR as KERNEL_ENV_VAR
from ..kernels import KernelConfig
from . import faults
from .executor import BatchResult, PipelineExecutor, RetryPolicy

__all__ = ["BatchOptions", "submit"]


@dataclass(frozen=True)
class BatchOptions:
    """How a batch of specs is executed — the whole surface, one value.

    Attributes
    ----------
    jobs:
        Worker processes (1 = inline, no pool; negative = CPU count).
    cache_dir:
        On-disk result cache root, or ``None`` for no cache.
    retries / timeout_s / backoff_s:
        Fault-tolerance shorthand: ``retries`` extra attempts per job,
        an optional per-dispatch wall-clock budget (a block job's budget
        covers all its members) and the base backoff delay.  Ignored
        when an explicit ``policy`` is given.
    policy:
        A full :class:`~repro.pipeline.RetryPolicy`, overriding the
        shorthand fields.
    resume:
        Pre-scan the cache and satisfy fully-cached jobs without
        occupying the pool.
    raise_on_error:
        Raise :class:`~repro.errors.PipelineError` on any failure
        (``False`` degrades to a structured failure report).
    store:
        Trace-store root the batch's specs were built against, recorded
        for provenance (the spec builders consume the live store; the
        executor never touches it).
    fault_plan:
        Fault-injection plan (directive string or named plan) exported
        to ``REPRO_FAULT_PLAN`` for the duration of the run.
    kernels:
        A :class:`~repro.kernels.KernelConfig` active for the run (and
        mirrored to the environment for spawned workers).
    block / max_block:
        Block-dispatch mode (``"auto"`` fuses compatible characterize
        jobs when the batched backend is active; ``"always"`` /
        ``"never"`` force it) and the member cap per block.
    """

    jobs: int = 1
    cache_dir: str | None = None
    retries: int = 0
    timeout_s: float | None = None
    backoff_s: float = 0.1
    policy: RetryPolicy | None = None
    resume: bool = False
    raise_on_error: bool = True
    store: str | None = None
    fault_plan: str | None = None
    kernels: KernelConfig | None = None
    block: str = "auto"
    max_block: int = 32

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise SpecError("retries must be non-negative")
        if self.block not in ("auto", "always", "never"):
            raise SpecError(
                f"block must be 'auto', 'always' or 'never', "
                f"not {self.block!r}"
            )

    def retry_policy(self) -> RetryPolicy:
        """The effective policy: explicit ``policy`` wins, else the
        shorthand fields build one."""
        if self.policy is not None:
            return self.policy
        return RetryPolicy(
            max_attempts=self.retries + 1,
            timeout_s=self.timeout_s,
            backoff_s=self.backoff_s,
        )

    def with_(self, **changes) -> "BatchOptions":
        """A copy with ``changes`` applied (frozen-dataclass ergonomics)."""
        return replace(self, **changes)


@contextmanager
def _env_var(name: str, value: str):
    """Set ``name`` for the duration, restoring the prior value after."""
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


def submit(specs, options: BatchOptions | None = None, *, progress=None) -> BatchResult:
    """Execute ``specs`` under ``options`` — the one way batches run.

    ``progress``, if given, receives each per-job
    :class:`~repro.pipeline.JobOutcome` as it completes (block results
    are fanned out per member before reaching it).  Every internal
    caller — CLI, ``serve/``, experiments, benches — routes through
    here, so execution behavior cannot drift between entry points.
    """
    options = options or BatchOptions()
    executor = PipelineExecutor(
        workers=options.jobs,
        cache_dir=options.cache_dir,
        raise_on_error=options.raise_on_error,
        policy=options.retry_policy(),
        block=options.block,
        max_block=options.max_block,
    )
    with ExitStack() as stack:
        if options.kernels is not None:
            stack.enter_context(options.kernels)
            if options.kernels.backend is not None:
                stack.enter_context(
                    _env_var(KERNEL_ENV_VAR, options.kernels.backend)
                )
        if options.fault_plan is not None:
            stack.enter_context(_env_var(faults.ENV_VAR, options.fault_plan))
        return executor.run(
            specs, progress=progress, resume=options.resume
        )

"""High-level batch helpers: suites in, figure-ready results out.

Bridges the declarative executor and the paper-facing result types —
build a suite's worth of :class:`JobSpec`, run it through the pool, and
convert the artifacts back into :class:`~repro.core.TracePrediction` /
:class:`~repro.core.ControlResult` objects the figure code consumes.
"""

from __future__ import annotations

from ..core import TracePrediction
from ..errors import SpecError
from ..power import PowerSupplyNetwork
from ..workloads import SPEC2000, SPEC_FP, SPEC_INT
from .executor import BatchResult, JobOutcome, RetryPolicy
from .spec import DEFAULT_STAGES, SCENARIO_STAGES, STORE_STAGES, JobSpec
from .stages import control_result_from_artifact

__all__ = [
    "suite_names",
    "build_characterization_jobs",
    "build_control_jobs",
    "build_scenario_jobs",
    "build_store_jobs",
    "run_batch",
    "prediction_from_outcome",
    "predictions_from",
    "control_results_from",
]

_SUITES = {
    "spec2000": tuple(SPEC2000),
    "int": tuple(SPEC_INT),
    "fp": tuple(SPEC_FP),
}


def suite_names(suite: str) -> tuple[str, ...]:
    """Benchmark names of a named suite (``spec2000``/``int``/``fp``)."""
    try:
        return _SUITES[suite]
    except KeyError:
        raise SpecError(
            f"unknown suite {suite!r}; available: {sorted(_SUITES)}",
            suite=suite,
        ) from None


def build_characterization_jobs(
    names,
    network: PowerSupplyNetwork,
    *,
    cycles: int = 32768,
    threshold: float = 0.97,
    window: int = 256,
    seed: int | None = None,
    warmup_cycles: int = 4096,
    impedance: float | None = None,
    stages: tuple[str, ...] = DEFAULT_STAGES,
) -> list[JobSpec]:
    """The full §4 chain for every benchmark in ``names``."""
    return [
        JobSpec.make(
            name,
            network=network,
            cycles=cycles,
            threshold=threshold,
            window=window,
            seed=seed,
            warmup_cycles=warmup_cycles,
            impedance=impedance,
            stages=stages,
        )
        for name in names
    ]


def build_store_jobs(
    store,
    network: PowerSupplyNetwork,
    *,
    trace_ids=None,
    benchmarks=None,
    threshold: float = 0.97,
    window: int = 256,
    impedance: float | None = None,
    stages: tuple[str, ...] = STORE_STAGES,
) -> list[JobSpec]:
    """The §4 chain fed from a :class:`~repro.store.TraceStore`.

    One job per stored trace (filtered by ``trace_ids`` and/or
    ``benchmarks``), each carrying a :class:`~repro.store.TraceRef`
    instead of re-simulating — workers attach the samples zero-copy.
    Traces ingested with their generator params recorded produce the
    same cache keys as the equivalent ``simulate`` jobs, so a stored
    corpus and a regenerated sweep share downstream artifacts.
    """
    wanted_ids = set(trace_ids) if trace_ids is not None else None
    wanted_benchmarks = set(benchmarks) if benchmarks is not None else None
    specs = []
    for record in store.records():
        if wanted_ids is not None and record.trace_id not in wanted_ids:
            continue
        if (
            wanted_benchmarks is not None
            and record.benchmark not in wanted_benchmarks
        ):
            continue
        if record.cycles == 0:
            continue  # nothing to characterize in an empty trace
        generator = record.generator or {}
        specs.append(
            JobSpec.make(
                record.benchmark,
                network=network,
                cycles=record.cycles,
                threshold=threshold,
                window=window,
                seed=generator.get("seed"),
                warmup_cycles=int(generator.get("warmup_cycles", 0)),
                impedance=impedance,
                stages=stages,
                trace=store.ref(record),
            )
        )
    if not specs:
        raise SpecError(
            f"no matching traces in store {store.root}",
            store=str(store.root),
        )
    return specs


def build_scenario_jobs(
    names,
    network: PowerSupplyNetwork,
    *,
    cycles: int | None = None,
    threshold: float = 0.97,
    window: int = 256,
    seed: int | None = None,
    warmup_cycles: int = 512,
    impedance: float | None = None,
    stages: tuple[str, ...] = SCENARIO_STAGES,
) -> list[JobSpec]:
    """The §4 chain fed from composed stress scenarios.

    ``names`` are catalog scenario names, atomic profile names, or
    schedule expressions (see :func:`repro.scenarios.resolve_scenario`
    — unknown names raise a structured :class:`SpecError` listing the
    valid ones).  Each job carries the scenario's canonical JSON in
    ``params["scenario"]``; the ``scenario`` stage compiles it and the
    rest of the chain (voltage, characterize, caching, blocks, obs)
    runs unchanged.  ``cycles=None`` uses each scenario's own default.
    """
    from ..scenarios import resolve_scenario, scenario_param

    specs = []
    for name in names:
        scenario = resolve_scenario(name)
        specs.append(
            JobSpec.make(
                scenario.name,
                network=network,
                cycles=int(cycles if cycles is not None else scenario.cycles),
                threshold=threshold,
                window=window,
                seed=seed,
                warmup_cycles=warmup_cycles,
                impedance=impedance,
                stages=stages,
                params={"scenario": scenario_param(scenario)},
            )
        )
    return specs


def build_control_jobs(
    names,
    network: PowerSupplyNetwork,
    *,
    scheme: str = "wavelet",
    cycles: int = 16384,
    warmup_cycles: int = 4096,
    impedance: float | None = None,
    **params,
) -> list[JobSpec]:
    """Closed-loop §5/§6 control jobs for every benchmark in ``names``."""
    return [
        JobSpec.make(
            name,
            network=network,
            cycles=cycles,
            warmup_cycles=warmup_cycles,
            impedance=impedance,
            stages=("control",),
            params={"scheme": scheme, **params},
        )
        for name in names
    ]


def run_batch(
    specs,
    jobs: int = 1,
    cache_dir: str | None = None,
    progress=None,
    raise_on_error: bool = True,
    policy: RetryPolicy | None = None,
    resume: bool = False,
) -> BatchResult:
    """Deprecated: use :func:`repro.pipeline.submit` with
    :class:`~repro.pipeline.BatchOptions`.

    Thin shim kept for callers of the old kwarg surface; behaves
    identically to ``submit(specs, BatchOptions(...))``.
    """
    import warnings

    from .submit import BatchOptions, submit

    warnings.warn(
        "run_batch() is deprecated; use "
        "repro.pipeline.submit(specs, BatchOptions(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return submit(
        specs,
        BatchOptions(
            jobs=jobs,
            cache_dir=cache_dir,
            raise_on_error=raise_on_error,
            policy=policy,
            resume=resume,
        ),
        progress=progress,
    )


def prediction_from_outcome(outcome: JobOutcome) -> TracePrediction:
    """Recompose Figure 9's estimate-vs-truth pair from artifacts."""
    characterize = outcome.artifacts.get("characterize")
    voltage = outcome.artifacts.get("voltage")
    if characterize is None or voltage is None:
        raise SpecError(
            f"{outcome.spec.label}: prediction needs the 'voltage' and "
            f"'characterize' stages (got {tuple(outcome.artifacts)})",
            job=outcome.spec.label,
        )
    return TracePrediction(
        name=outcome.spec.benchmark,
        threshold=outcome.spec.threshold,
        estimated=characterize["estimated"],
        observed=voltage["observed"],
    )


def predictions_from(batch: BatchResult) -> dict[str, TracePrediction]:
    """Per-benchmark predictions of a characterization batch, in order."""
    return {
        o.spec.benchmark: prediction_from_outcome(o)
        for o in batch.outcomes
        if o.ok
    }


def control_results_from(batch: BatchResult) -> list:
    """Live :class:`ControlResult` objects of a control batch, in order."""
    return [
        control_result_from_artifact(o.artifacts["control"])
        for o in batch.outcomes
        if o.ok
    ]

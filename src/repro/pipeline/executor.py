"""Fault-tolerant executor: jobs in, ordered outcomes out.

Each job runs its stage chain in one worker process, consulting the
on-disk cache before computing each stage and persisting what it
computed, so a re-run after an interrupted batch only pays for the jobs
that never finished.  On top of that sits the fault-tolerance layer
(see ``docs/ROBUSTNESS.md``):

* a :class:`RetryPolicy` gives every job a bounded number of attempts
  with exponential backoff and deterministic jitter, plus an optional
  per-job wall-clock timeout;
* failures are classified (``exception`` / ``timeout`` / ``crash``) and
  retried up to the budget — a hung job is killed and requeued, a dead
  worker is detected, its job requeued and the pool replenished (the
  supervised pool lives in :mod:`repro.pipeline.supervisor`);
* with ``raise_on_error=False`` a batch degrades gracefully: it returns
  every successful outcome plus a structured per-job failure report
  instead of raising;
* ``resume=True`` pre-scans the cache and satisfies fully-cached jobs
  without touching the pool, so an aborted batch picks up where it
  stopped.

``workers <= 1`` with no timeout and no hang/kill fault plan executes
inline — no processes, no pickling — which is both the test path and
what the figure code uses by default.  Every recovery path is exercised
deterministically via :mod:`repro.pipeline.faults`.

With observability on (:mod:`repro.obs`), every batch, job and stage is
a tracing span; retries, timeouts, requeues and worker crashes bump
dedicated counters, and each worker ships its metric delta plus captured
span records back on the :class:`JobOutcome`, where the parent folds
them into the process-wide registry — so ``--obs`` totals cover the
whole pool, not just the coordinating process.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    ArtifactNotFoundError,
    PipelineError,
    RetryExhaustedError,
    SpecError,
)
from ..obs import trace as obs
from . import faults
from .cache import ResultCache
from .spec import JobSpec
from .stages import StageContext, get_stage, stage_cache_keys

__all__ = [
    "JobOutcome",
    "BatchResult",
    "PipelineError",
    "PipelineExecutor",
    "RetryPolicy",
]


#: Set by the supervised pool inside worker processes.  When true, every
#: trace byte in a job's artifacts is about to be pickled back to the
#: parent — the ``pipeline_trace_pickle_bytes_total`` counter measures
#: exactly that, and store-backed batches assert it stays at zero.
_IN_POOL_WORKER = False


def _trace_channel_bytes(artifacts: dict) -> int:
    """Trace-array bytes that would cross the result pickle channel."""
    total = 0
    for artifact in artifacts.values():
        if isinstance(artifact, np.ndarray):
            total += artifact.nbytes
            continue
        for name in ("current", "l2_outstanding"):
            value = getattr(artifact, name, None)
            if isinstance(value, np.ndarray):
                total += value.nbytes
    return total


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a batch tries to finish every job.

    ``max_attempts`` counts *total* attempts (1 = no retries).  The delay
    before attempt *n* is ``backoff_s * backoff_factor**(n-2)``, capped
    at ``max_backoff_s``, stretched by up to ``jitter`` of itself — the
    jitter is a pure function of (job digest, attempt), so schedules are
    reproducible run to run.  ``timeout_s`` is the per-job wall-clock
    budget; exceeding it kills the worker and requeues the job (which
    requires process isolation, so the executor promotes an inline run
    to a one-worker supervised pool when a timeout is set).
    """

    max_attempts: int = 1
    timeout_s: float | None = None
    backoff_s: float = 0.1
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SpecError("max_attempts must be at least 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SpecError("timeout_s must be positive (or None)")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise SpecError("backoff durations must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise SpecError("jitter must be within [0, 1]")

    @property
    def retries_enabled(self) -> bool:
        return self.max_attempts > 1

    def delay_before(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before ``attempt`` (1-based; 0 for the first)."""
        if attempt <= 1:
            return 0.0
        base = min(
            self.backoff_s * self.backoff_factor ** (attempt - 2),
            self.max_backoff_s,
        )
        if not self.jitter:
            return base
        frac = random.Random(f"{key}:{attempt}").random()
        return base * (1.0 + self.jitter * frac)


@dataclass
class JobOutcome:
    """Everything one job produced, plus its execution telemetry."""

    spec: JobSpec
    artifacts: dict[str, object] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)  # seconds/stage
    cache_hits: dict[str, bool] = field(default_factory=dict)
    elapsed: float = 0.0
    error: str | None = None
    error_kind: str | None = None  # "exception" | "timeout" | "crash"
    failed_stage: str | None = None
    attempts: int = 1
    resumed: bool = False  # satisfied by the --resume cache pre-scan
    # worker-side observability payloads, folded in by the parent
    metrics: dict | None = None
    obs_records: list = field(default_factory=list)
    pid: int = 0
    # peak RSS the resource profiler sampled while the job span was open
    # (0 when profiling is off)
    peak_rss_bytes: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def hit_count(self) -> int:
        return sum(self.cache_hits.values())

    def failure(self) -> dict | None:
        """This job's entry in the batch failure report, or ``None``."""
        if self.ok:
            return None
        lines = (self.error or "").strip().splitlines()
        return {
            "job": self.spec.label,
            "benchmark": self.spec.benchmark,
            "stage": self.failed_stage,
            "kind": self.error_kind or "exception",
            "attempts": self.attempts,
            "error": lines[-1] if lines else "",
        }


@dataclass
class BatchResult:
    """Ordered outcomes of one executor run."""

    outcomes: list[JobOutcome]
    elapsed: float
    workers: int

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(o.hit_count for o in self.outcomes)

    @property
    def stage_runs(self) -> int:
        return sum(len(o.cache_hits) for o in self.outcomes)

    @property
    def retries(self) -> int:
        return sum(max(0, o.attempts - 1) for o in self.outcomes)

    @property
    def resumed(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    def summary(self) -> dict:
        """The batch's headline numbers as a plain dict."""
        return {
            "jobs": len(self.outcomes),
            "errors": len(self.errors),
            "cache_hits": self.cache_hits,
            "cache_misses": self.stage_runs - self.cache_hits,
            "stage_runs": self.stage_runs,
            "retries": self.retries,
            "resumed": self.resumed,
            "wall_s": self.elapsed,
            "workers": self.workers,
        }

    def failure_report(self) -> list[dict]:
        """One structured entry per failed job (empty when all ok)."""
        return [o.failure() for o in self.errors]

    def describe_failures(self) -> str:
        """The failure report as human-readable text for the CLI."""
        if self.ok:
            return ""
        lines = [
            f"{len(self.errors)} of {len(self.outcomes)} jobs failed:"
        ]
        for f in self.failure_report():
            stage = f["stage"] or "?"
            lines.append(
                f"  {f['job']:<16} stage={stage:<12} kind={f['kind']:<9} "
                f"attempts={f['attempts']}"
            )
            if f["error"]:
                lines.append(f"    last error: {f['error']}")
        return "\n".join(lines)

    def artifact(self, benchmark: str, stage: str):
        """The first matching artifact, for quick interactive poking."""
        for o in self.outcomes:
            if o.spec.benchmark == benchmark and stage in o.artifacts:
                return o.artifacts[stage]
        raise ArtifactNotFoundError(
            f"no {stage!r} artifact for {benchmark!r}",
            benchmark=benchmark,
            stage=stage,
        )


def execute_job(
    spec: JobSpec, cache: ResultCache | None = None, attempt: int = 1
) -> JobOutcome:
    """Run one job's stage chain, cache-aware, never raising.

    Per-stage wall time is recorded even for the stage that raises, so a
    failed job still reports every timing it accumulated (the partial
    telemetry matters most exactly when diagnosing the failure).
    ``attempt`` is threaded through so the fault-injection harness can
    fire on the Nth attempt and error messages carry the retry context.
    """
    if getattr(spec, "is_block", False):
        from .blocks import execute_block

        return execute_block(spec, cache, attempt)
    outcome = JobOutcome(spec=spec, pid=os.getpid(), attempts=attempt)
    plan = faults.active_plan()
    snap_before = obs.registry().snapshot() if obs.ENABLED else None
    t_job = time.perf_counter()
    with obs.span(
        "pipeline.job", attempt=attempt, **spec.obs_attrs()
    ) as job_span:
        try:
            keys = stage_cache_keys(spec)
            ctx = StageContext(spec)
            for name in spec.stages:
                stage = get_stage(name)
                t0 = time.perf_counter()
                hit = False
                try:
                    artifact = None
                    if cache is not None:
                        hit, artifact = cache.get(name, keys[name], stage.kind)
                    if not hit:
                        if plan is not None:
                            faults.apply_fault(
                                plan, name, spec.benchmark, attempt
                            )
                        with obs.span(
                            f"stage.{name}", benchmark=spec.benchmark
                        ):
                            artifact = stage.func(ctx)
                        if cache is not None:
                            cache.put(name, keys[name], stage.kind, artifact)
                finally:
                    stage_s = time.perf_counter() - t0
                    outcome.timings[name] = stage_s
                    outcome.cache_hits[name] = hit
                    if obs.ENABLED:
                        obs.histogram_observe(
                            "pipeline_stage_seconds",
                            stage_s,
                            "stage wall time including cache lookups",
                            stage=name,
                        )
                ctx.artifacts[name] = artifact
                outcome.artifacts[name] = artifact
        except Exception as exc:
            outcome.failed_stage = next(
                (
                    name
                    for name in spec.stages
                    if name not in outcome.artifacts
                ),
                None,
            )
            # Thread job identity into the chain: the traceback alone
            # does not say which of a 26-job batch it belongs to.
            outcome.error = (
                f"job {spec.label}: stage {outcome.failed_stage!r} raised "
                f"{type(exc).__name__} on attempt {attempt}\n"
                + traceback.format_exc()
            )
            outcome.error_kind = "exception"
    outcome.elapsed = time.perf_counter() - t_job
    outcome.peak_rss_bytes = int(job_span.rss_peak)
    if obs.ENABLED:
        obs.counter_inc(
            "pipeline_jobs_total",
            1,
            "job attempts executed by outcome status",
            status="ok" if outcome.ok else "error",
        )
        if _IN_POOL_WORKER:
            # before snapshot_delta, so the worker's delta ships it back
            obs.counter_inc(
                "pipeline_trace_pickle_bytes_total",
                _trace_channel_bytes(outcome.artifacts),
                "trace-array bytes pickled through the worker result "
                "channel (zero on the store path)",
            )
        outcome.metrics = obs.snapshot_delta(snap_before)
        outcome.obs_records = obs.drain_records()
    return outcome


def note_retry(spec: JobSpec, attempt: int, kind: str, delay: float) -> None:
    """Record one scheduled retry in the telemetry (shared by both the
    inline path and the supervised pool)."""
    obs.counter_inc(
        "pipeline_retries_total",
        1,
        "job retries scheduled, by failure kind",
        kind=kind,
    )
    obs.event(
        "job_retry",
        job=spec.label,
        next_attempt=attempt,
        kind=kind,
        delay_s=round(delay, 4),
    )


def _pool_context():
    """Prefer fork (cheap, shares warm process caches) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class PipelineExecutor:
    """Run batches of :class:`JobSpec` with a configurable worker pool."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | None = None,
        raise_on_error: bool = True,
        policy: RetryPolicy | None = None,
        block: str = "auto",
        max_block: int = 32,
    ) -> None:
        if workers < 0:
            workers = multiprocessing.cpu_count()
        if block not in ("auto", "always", "never"):
            raise SpecError(
                f"block must be 'auto', 'always' or 'never', not {block!r}"
            )
        if max_block < 2:
            raise SpecError("max_block must be at least 2")
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.raise_on_error = raise_on_error
        self.policy = policy or RetryPolicy()
        self.block = block
        self.max_block = max_block

    def _blocking_enabled(self) -> bool:
        """Whether compatible jobs fuse into block dispatch units.

        ``"auto"`` follows the kernel backend: block grouping only pays
        when the fused ``characterize_block`` kernel actually batches,
        i.e. on the ``batched`` backend.
        """
        if self.block == "always":
            return True
        if self.block == "never":
            return False
        from ..kernels import resolve_backend

        return resolve_backend() == "batched"

    # -- resume ----------------------------------------------------------------

    def _fully_cached(self, spec: JobSpec, cache: ResultCache) -> bool:
        """True when every stage artifact of ``spec`` is already on disk."""
        keys = stage_cache_keys(spec)
        return all(
            cache.has(keys[name], get_stage(name).kind)
            for name in spec.stages
        )

    # -- execution -------------------------------------------------------------

    def run(self, specs, progress=None, resume: bool = False) -> BatchResult:
        """Execute ``specs``; outcomes come back in submission order.

        ``progress``, if given, is called with each :class:`JobOutcome`
        as it is collected (submission order inline, completion order
        under the supervised pool).  ``resume`` pre-scans the cache and
        loads fully-cached jobs without occupying the pool.
        """
        specs = list(specs)
        t0 = time.perf_counter()
        by_index: dict[int, JobOutcome] = {}

        def collect(index: int, outcome: JobOutcome) -> None:
            # fold a pool worker's telemetry into this process exactly
            # once; inline outcomes already recorded here directly
            if outcome.pid != os.getpid():
                obs.absorb(outcome.metrics, outcome.obs_records)
            if getattr(outcome.spec, "is_block", False):
                # a block container: fan its per-member outcomes back
                # out so the batch keeps per-trace results and progress
                members = getattr(outcome, "members", None)
                if not members:
                    # supervisor-synthesized timeout/crash failure —
                    # it never ran, so manufacture per-member failures
                    from .blocks import synthesize_member_failures

                    members = synthesize_member_failures(outcome)
                for member_index, member in members:
                    by_index[member_index] = member
                    if progress is not None:
                        progress(member)
                return
            by_index[index] = outcome
            if progress is not None:
                progress(outcome)

        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        plan = faults.active_plan()
        needs_isolation = self.policy.timeout_s is not None or (
            plan is not None and plan.needs_isolation
        )
        pool_size = min(max(self.workers, 1), max(len(specs), 1))

        with obs.span(
            "pipeline.batch", jobs=len(specs), workers=pool_size
        ):
            # where worker-side root spans hang: (trace_id, batch span id)
            trace_ctx = obs.propagation_context()
            remaining = list(enumerate(specs))
            if resume and cache is not None:
                remaining = []
                for index, spec in enumerate(specs):
                    if self._fully_cached(spec, cache):
                        outcome = execute_job(spec, cache)
                        outcome.resumed = True
                        obs.counter_inc(
                            "pipeline_resumed_jobs_total",
                            1,
                            "jobs satisfied from cache by --resume",
                        )
                        collect(index, outcome)
                    else:
                        remaining.append((index, spec))
            if len(remaining) > 1 and self._blocking_enabled():
                from .blocks import group_blocks

                remaining = group_blocks(remaining, self.max_block)
            if remaining:
                if pool_size <= 1 and not needs_isolation:
                    self._run_inline(remaining, cache, collect)
                else:
                    from .supervisor import run_supervised

                    run_supervised(
                        remaining,
                        workers=min(pool_size, len(remaining)),
                        cache_dir=self.cache_dir,
                        policy=self.policy,
                        collect=collect,
                        trace_ctx=trace_ctx,
                        profile_interval=obs.profile_interval(),
                    )
        result = BatchResult(
            outcomes=[by_index[i] for i in range(len(specs))],
            elapsed=time.perf_counter() - t0,
            workers=pool_size,
        )
        if self.raise_on_error and result.errors:
            bad = result.errors[0]
            raise PipelineError(
                f"{len(result.errors)} of {len(specs)} jobs failed; first "
                f"({bad.spec.label}):\n{bad.error}",
                failures=result.failure_report(),
            )
        return result

    def _run_inline(self, indexed_specs, cache, collect) -> None:
        """Single-process execution with the same retry semantics."""
        for index, spec in indexed_specs:
            attempt = 1
            while True:
                outcome = execute_job(spec, cache, attempt=attempt)
                if outcome.ok or attempt >= self.policy.max_attempts:
                    break
                attempt += 1
                delay = self.policy.delay_before(attempt, spec.digest())
                note_retry(spec, attempt, "exception", delay)
                if delay:
                    time.sleep(delay)
            if not outcome.ok and self.policy.retries_enabled:
                outcome.error = (
                    f"{RetryExhaustedError.__name__}: job {spec.label} "
                    f"failed on all {attempt} attempts\n{outcome.error}"
                )
            collect(index, outcome)

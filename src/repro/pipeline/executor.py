"""Multiprocessing executor: jobs in, ordered outcomes out.

Each job runs its stage chain in one worker process; the pool streams
results back with ``imap`` so outcomes arrive **in submission order**
(deterministic aggregation downstream) while still overlapping
execution.  A worker consults the on-disk cache before computing each
stage and persists what it computed, so a re-run after an interrupted
batch only pays for the jobs that never finished.

``workers <= 1`` executes inline — no processes, no pickling — which is
both the test path and what the figure code uses by default.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field

from .cache import ResultCache
from .spec import JobSpec
from .stages import StageContext, get_stage, stage_cache_keys

__all__ = ["JobOutcome", "BatchResult", "PipelineError", "PipelineExecutor"]


class PipelineError(RuntimeError):
    """At least one job in a batch failed."""


@dataclass
class JobOutcome:
    """Everything one job produced, plus its execution telemetry."""

    spec: JobSpec
    artifacts: dict[str, object] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)  # seconds/stage
    cache_hits: dict[str, bool] = field(default_factory=dict)
    elapsed: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def hit_count(self) -> int:
        return sum(self.cache_hits.values())


@dataclass
class BatchResult:
    """Ordered outcomes of one executor run."""

    outcomes: list[JobOutcome]
    elapsed: float
    workers: int

    @property
    def errors(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(o.hit_count for o in self.outcomes)

    @property
    def stage_runs(self) -> int:
        return sum(len(o.cache_hits) for o in self.outcomes)

    def artifact(self, benchmark: str, stage: str):
        """The first matching artifact, for quick interactive poking."""
        for o in self.outcomes:
            if o.spec.benchmark == benchmark and stage in o.artifacts:
                return o.artifacts[stage]
        raise KeyError(f"no {stage!r} artifact for {benchmark!r}")


def execute_job(spec: JobSpec, cache: ResultCache | None = None) -> JobOutcome:
    """Run one job's stage chain, cache-aware, never raising."""
    outcome = JobOutcome(spec=spec)
    t_job = time.perf_counter()
    try:
        keys = stage_cache_keys(spec)
        ctx = StageContext(spec)
        for name in spec.stages:
            stage = get_stage(name)
            t0 = time.perf_counter()
            hit = False
            artifact = None
            if cache is not None:
                hit, artifact = cache.get(name, keys[name], stage.kind)
            if not hit:
                artifact = stage.func(ctx)
                if cache is not None:
                    cache.put(name, keys[name], stage.kind, artifact)
            ctx.artifacts[name] = artifact
            outcome.artifacts[name] = artifact
            outcome.cache_hits[name] = hit
            outcome.timings[name] = time.perf_counter() - t0
    except Exception:
        outcome.error = traceback.format_exc()
    outcome.elapsed = time.perf_counter() - t_job
    return outcome


def _execute_payload(payload: tuple[JobSpec, str | None]) -> JobOutcome:
    """Pool entry point: rebuild the cache handle inside the worker."""
    spec, cache_dir = payload
    cache = ResultCache(cache_dir) if cache_dir else None
    return execute_job(spec, cache)


def _pool_context():
    """Prefer fork (cheap, shares warm process caches) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class PipelineExecutor:
    """Run batches of :class:`JobSpec` with a configurable worker pool."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | None = None,
        raise_on_error: bool = True,
    ) -> None:
        if workers < 0:
            workers = multiprocessing.cpu_count()
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.raise_on_error = raise_on_error

    def run(self, specs, progress=None) -> BatchResult:
        """Execute ``specs``; outcomes come back in submission order.

        ``progress``, if given, is called with each :class:`JobOutcome`
        as it is collected (already ordered).
        """
        specs = list(specs)
        t0 = time.perf_counter()
        outcomes: list[JobOutcome] = []
        pool_size = min(self.workers, len(specs))
        if pool_size <= 1:
            cache = ResultCache(self.cache_dir) if self.cache_dir else None
            for spec in specs:
                outcome = execute_job(spec, cache)
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
        else:
            payloads = [(spec, self.cache_dir) for spec in specs]
            with _pool_context().Pool(pool_size) as pool:
                for outcome in pool.imap(_execute_payload, payloads):
                    outcomes.append(outcome)
                    if progress is not None:
                        progress(outcome)
        result = BatchResult(
            outcomes=outcomes,
            elapsed=time.perf_counter() - t0,
            workers=pool_size,
        )
        if self.raise_on_error and result.errors:
            bad = result.errors[0]
            raise PipelineError(
                f"{len(result.errors)} of {len(specs)} jobs failed; first "
                f"({bad.spec.label}):\n{bad.error}"
            )
        return result

"""Multiprocessing executor: jobs in, ordered outcomes out.

Each job runs its stage chain in one worker process; the pool streams
results back with ``imap`` so outcomes arrive **in submission order**
(deterministic aggregation downstream) while still overlapping
execution.  A worker consults the on-disk cache before computing each
stage and persists what it computed, so a re-run after an interrupted
batch only pays for the jobs that never finished.

``workers <= 1`` executes inline — no processes, no pickling — which is
both the test path and what the figure code uses by default.

With observability on (:mod:`repro.obs`), every batch, job and stage is
a tracing span, and each worker ships its metric delta plus captured
span records back on the :class:`JobOutcome`, where the parent folds
them into the process-wide registry — so ``--obs`` totals cover the
whole pool, not just the coordinating process.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field

from ..obs import trace as obs
from .cache import ResultCache
from .spec import JobSpec
from .stages import StageContext, get_stage, stage_cache_keys

__all__ = ["JobOutcome", "BatchResult", "PipelineError", "PipelineExecutor"]


class PipelineError(RuntimeError):
    """At least one job in a batch failed."""


@dataclass
class JobOutcome:
    """Everything one job produced, plus its execution telemetry."""

    spec: JobSpec
    artifacts: dict[str, object] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)  # seconds/stage
    cache_hits: dict[str, bool] = field(default_factory=dict)
    elapsed: float = 0.0
    error: str | None = None
    failed_stage: str | None = None
    # worker-side observability payloads, folded in by the parent
    metrics: dict | None = None
    obs_records: list = field(default_factory=list)
    pid: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def hit_count(self) -> int:
        return sum(self.cache_hits.values())


@dataclass
class BatchResult:
    """Ordered outcomes of one executor run."""

    outcomes: list[JobOutcome]
    elapsed: float
    workers: int

    @property
    def errors(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(o.hit_count for o in self.outcomes)

    @property
    def stage_runs(self) -> int:
        return sum(len(o.cache_hits) for o in self.outcomes)

    def summary(self) -> dict:
        """The batch's headline numbers as a plain dict."""
        return {
            "jobs": len(self.outcomes),
            "errors": len(self.errors),
            "cache_hits": self.cache_hits,
            "cache_misses": self.stage_runs - self.cache_hits,
            "stage_runs": self.stage_runs,
            "wall_s": self.elapsed,
            "workers": self.workers,
        }

    def artifact(self, benchmark: str, stage: str):
        """The first matching artifact, for quick interactive poking."""
        for o in self.outcomes:
            if o.spec.benchmark == benchmark and stage in o.artifacts:
                return o.artifacts[stage]
        raise KeyError(f"no {stage!r} artifact for {benchmark!r}")


def execute_job(spec: JobSpec, cache: ResultCache | None = None) -> JobOutcome:
    """Run one job's stage chain, cache-aware, never raising.

    Per-stage wall time is recorded even for the stage that raises, so a
    failed job still reports every timing it accumulated (the partial
    telemetry matters most exactly when diagnosing the failure).
    """
    outcome = JobOutcome(spec=spec, pid=os.getpid())
    snap_before = obs.registry().snapshot() if obs.ENABLED else None
    t_job = time.perf_counter()
    with obs.span("pipeline.job", **spec.obs_attrs()):
        try:
            keys = stage_cache_keys(spec)
            ctx = StageContext(spec)
            for name in spec.stages:
                stage = get_stage(name)
                t0 = time.perf_counter()
                hit = False
                try:
                    artifact = None
                    if cache is not None:
                        hit, artifact = cache.get(name, keys[name], stage.kind)
                    if not hit:
                        with obs.span(
                            f"stage.{name}", benchmark=spec.benchmark
                        ):
                            artifact = stage.func(ctx)
                        if cache is not None:
                            cache.put(name, keys[name], stage.kind, artifact)
                finally:
                    stage_s = time.perf_counter() - t0
                    outcome.timings[name] = stage_s
                    outcome.cache_hits[name] = hit
                    if obs.ENABLED:
                        obs.histogram_observe(
                            "pipeline_stage_seconds",
                            stage_s,
                            "stage wall time including cache lookups",
                            stage=name,
                        )
                ctx.artifacts[name] = artifact
                outcome.artifacts[name] = artifact
        except Exception:
            outcome.error = traceback.format_exc()
            outcome.failed_stage = next(
                (
                    name
                    for name in spec.stages
                    if name not in outcome.artifacts
                ),
                None,
            )
    outcome.elapsed = time.perf_counter() - t_job
    if obs.ENABLED:
        obs.counter_inc(
            "pipeline_jobs_total",
            1,
            "jobs executed by outcome status",
            status="ok" if outcome.ok else "error",
        )
        outcome.metrics = obs.snapshot_delta(snap_before)
        outcome.obs_records = obs.drain_records()
    return outcome


def _execute_payload(
    payload: tuple[JobSpec, str | None, bool],
) -> JobOutcome:
    """Pool entry point: rebuild the cache handle inside the worker."""
    spec, cache_dir, obs_enabled = payload
    obs.worker_mode(obs_enabled)
    cache = ResultCache(cache_dir) if cache_dir else None
    return execute_job(spec, cache)


def _pool_context():
    """Prefer fork (cheap, shares warm process caches) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class PipelineExecutor:
    """Run batches of :class:`JobSpec` with a configurable worker pool."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | None = None,
        raise_on_error: bool = True,
    ) -> None:
        if workers < 0:
            workers = multiprocessing.cpu_count()
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.raise_on_error = raise_on_error

    def run(self, specs, progress=None) -> BatchResult:
        """Execute ``specs``; outcomes come back in submission order.

        ``progress``, if given, is called with each :class:`JobOutcome`
        as it is collected (already ordered).
        """
        specs = list(specs)
        t0 = time.perf_counter()
        outcomes: list[JobOutcome] = []
        pool_size = min(self.workers, len(specs))

        def collect(outcome: JobOutcome) -> None:
            # fold a pool worker's telemetry into this process exactly
            # once; inline outcomes already recorded here directly
            if outcome.pid != os.getpid():
                obs.absorb(outcome.metrics, outcome.obs_records)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)

        with obs.span(
            "pipeline.batch", jobs=len(specs), workers=pool_size
        ):
            if pool_size <= 1:
                cache = ResultCache(self.cache_dir) if self.cache_dir else None
                for spec in specs:
                    collect(execute_job(spec, cache))
            else:
                payloads = [
                    (spec, self.cache_dir, obs.ENABLED) for spec in specs
                ]
                with _pool_context().Pool(pool_size) as pool:
                    for outcome in pool.imap(_execute_payload, payloads):
                        collect(outcome)
        result = BatchResult(
            outcomes=outcomes,
            elapsed=time.perf_counter() - t0,
            workers=pool_size,
        )
        if self.raise_on_error and result.errors:
            bad = result.errors[0]
            raise PipelineError(
                f"{len(result.errors)} of {len(specs)} jobs failed; first "
                f"({bad.spec.label}):\n{bad.error}"
            )
        return result

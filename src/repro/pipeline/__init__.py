"""Parallel batch-characterization pipeline with an on-disk result cache.

The execution subsystem behind the paper's 26-benchmark sweeps: a
declarative job model (:class:`JobSpec`), a registry of analysis stages
wrapping the simulator / voltage engine / wavelet estimator /
controllers, a fault-tolerant ``multiprocessing`` executor with
ordered result collection (per-job timeouts, bounded retries with
backoff, worker-crash recovery and checkpoint/resume — see
``docs/ROBUSTNESS.md``), a deterministic fault-injection harness
(:mod:`repro.pipeline.faults`), streaming window iteration for
arbitrarily long traces, and a content-addressed cache so re-running a
figure only recomputes invalidated jobs.

Quickstart::

    from repro.core import calibrated_supply
    from repro.pipeline import BatchOptions, submit
    from repro.pipeline import build_characterization_jobs
    from repro.pipeline import predictions_from

    specs = build_characterization_jobs(
        ("gzip", "mcf"), calibrated_supply(150), cycles=16384
    )
    batch = submit(
        specs, BatchOptions(jobs=2, cache_dir=".repro-cache")
    )
    print(predictions_from(batch))

``submit`` + :class:`BatchOptions` is the one execution entry point
(``run_batch`` survives as a deprecation shim).  Compatible
characterization jobs fuse into block dispatch units when the
``batched`` kernel backend is active — see
:mod:`repro.pipeline.blocks`.

See ``docs/PIPELINE.md`` for the job model, cache layout and worker
tuning guidance.
"""

from .batch import (
    build_characterization_jobs,
    build_control_jobs,
    build_scenario_jobs,
    build_store_jobs,
    control_results_from,
    prediction_from_outcome,
    predictions_from,
    run_batch,
    suite_names,
)
from .blocks import BlockOutcome, BlockSpec, group_blocks
from .cache import CacheStats, ResultCache
from .executor import (
    BatchResult,
    JobOutcome,
    PipelineError,
    PipelineExecutor,
    RetryPolicy,
)
from .faults import FaultDirective, FaultPlan, active_plan, parse_plan
from .spec import (
    CACHE_SALT,
    CACHE_SCHEMA_VERSION,
    DEFAULT_STAGES,
    SCENARIO_STAGES,
    STORE_STAGES,
    JobSpec,
    deserialize_network,
    serialize_network,
    trace_identity,
)
from .submit import BatchOptions, submit
from .stages import (
    Stage,
    StageContext,
    available_stages,
    get_stage,
    register_stage,
    stage_cache_keys,
)
from .windows import (
    as_chunks,
    iter_windows,
    streaming_fraction_below,
    streaming_level_contributions,
)

__all__ = [
    "BatchOptions",
    "BatchResult",
    "BlockOutcome",
    "BlockSpec",
    "CACHE_SALT",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DEFAULT_STAGES",
    "FaultDirective",
    "FaultPlan",
    "JobOutcome",
    "JobSpec",
    "PipelineError",
    "PipelineExecutor",
    "ResultCache",
    "RetryPolicy",
    "SCENARIO_STAGES",
    "STORE_STAGES",
    "Stage",
    "StageContext",
    "active_plan",
    "as_chunks",
    "available_stages",
    "build_characterization_jobs",
    "build_control_jobs",
    "build_scenario_jobs",
    "build_store_jobs",
    "control_results_from",
    "deserialize_network",
    "get_stage",
    "group_blocks",
    "iter_windows",
    "parse_plan",
    "prediction_from_outcome",
    "predictions_from",
    "register_stage",
    "run_batch",
    "serialize_network",
    "stage_cache_keys",
    "streaming_fraction_below",
    "streaming_level_contributions",
    "submit",
    "suite_names",
    "trace_identity",
]

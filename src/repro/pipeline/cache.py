"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` for scalar artifacts and
``<root>/<key[:2]>/<key>.npz`` for simulation results (the
:mod:`repro.uarch.traceio` archive format), where ``key`` is the chained
stage hash from :func:`repro.pipeline.stages.stage_cache_keys`.  The key
already folds in a code-version salt, so entries written by a different
release never alias; a spec change simply addresses different files and
the stale ones age out via ``clear``.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
computing the same key race benignly — last writer wins with identical
bytes.  Reads treat any unreadable entry as a miss.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..obs import trace as obs
from ..uarch.traceio import load_result, save_result

__all__ = ["CacheStats", "ResultCache"]

_MISS = object()


@dataclass
class CacheStats:
    """On-disk footprint summary for ``repro pipeline status``."""

    root: Path
    entries: int = 0
    total_bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)


class ResultCache:
    """Get/put artifacts by content hash, with hit/miss accounting."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}

    # -- paths ----------------------------------------------------------------

    def path_for(self, key: str, kind: str) -> Path:
        """The entry's on-disk location for an artifact ``kind``."""
        ext = "npz" if kind == "result" else "json"
        return self.root / key[:2] / f"{key}.{ext}"

    # -- access ---------------------------------------------------------------

    def has(self, key: str, kind: str) -> bool:
        """Whether an entry exists on disk (no read, no accounting) —
        the ``--resume`` pre-scan primitive."""
        return self.path_for(key, kind).is_file()

    def get(self, stage: str, key: str, kind: str):
        """``(hit, artifact)`` — a failed read of a present file is a miss."""
        path = self.path_for(key, kind)
        value = _MISS
        if path.is_file():
            try:
                if kind == "result":
                    value = load_result(path)
                else:
                    with open(path, encoding="utf-8") as fh:
                        value = json.load(fh)["artifact"]
            except (OSError, ValueError, KeyError):
                value = _MISS  # corrupt or foreign entry: recompute
                obs.counter_inc(
                    "pipeline_cache_invalidations_total",
                    1,
                    "unreadable cache entries treated as misses",
                    stage=stage,
                )
        if value is _MISS:
            self.misses[stage] = self.misses.get(stage, 0) + 1
            obs.counter_inc(
                "pipeline_cache_misses_total",
                1,
                "cache lookups that had to recompute",
                stage=stage,
            )
            return False, None
        self.hits[stage] = self.hits.get(stage, 0) + 1
        obs.counter_inc(
            "pipeline_cache_hits_total",
            1,
            "cache lookups served from disk",
            stage=stage,
        )
        return True, value

    def put(self, stage: str, key: str, kind: str, artifact) -> Path:
        """Persist one artifact atomically; returns its final path."""
        path = self.path_for(key, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        # np.savez appends ".npz" unless the name already ends with it,
        # so the temp name must keep the real extension.
        tmp = path.parent / f".{key}.{os.getpid()}.tmp{path.suffix}"
        try:
            if kind == "result":
                save_result(artifact, tmp)
            else:
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(
                        {"stage": stage, "artifact": artifact},
                        fh,
                        sort_keys=True,
                    )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        obs.counter_inc(
            "pipeline_cache_writes_total",
            1,
            "artifacts persisted to the cache",
            stage=stage,
        )
        return path

    # -- accounting -----------------------------------------------------------

    @property
    def hit_count(self) -> int:
        return sum(self.hits.values())

    @property
    def miss_count(self) -> int:
        return sum(self.misses.values())

    def on_disk_stats(self) -> CacheStats:
        """Walk the cache directory and summarize its contents."""
        stats = CacheStats(root=self.root)
        if not self.root.is_dir():
            return stats
        for path in sorted(self.root.glob("*/*")):
            if not path.is_file() or path.name.startswith("."):
                continue
            kind = "result" if path.suffix == ".npz" else "scalar"
            stats.entries += 1
            stats.total_bytes += path.stat().st_size
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        return stats

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*"):
            if path.is_file():
                path.unlink()
                removed += 1
        obs.counter_inc(
            "pipeline_cache_invalidations_total",
            removed,
            "unreadable cache entries treated as misses",
            stage="<clear>",
        )
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed

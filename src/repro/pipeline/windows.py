"""Chunked/streaming window iteration over current traces.

The §4 characterization consumes a trace strictly as a sequence of
non-overlapping power-of-two windows, so no stage ever needs the whole
trace resident: this module turns any source — an in-memory array, a
memory-mapped ``.npy`` file, or an arbitrary iterable of sample chunks —
into a stream of exact-size windows with O(window) working memory.

The streaming aggregators mirror the accumulation order of
:class:`~repro.core.WaveletVoltageEstimator`'s whole-trace methods
exactly, so a streamed estimate is bit-identical to the in-memory one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..obs import trace as obs

__all__ = [
    "as_chunks",
    "iter_windows",
    "streaming_fraction_below",
    "streaming_level_contributions",
]

#: Default samples per chunk when re-chunking an array-like source.
CHUNK = 1 << 16


def as_chunks(source, chunk: int = CHUNK) -> Iterator[np.ndarray]:
    """Yield 1-D float chunks from any trace source.

    Accepts a 1-D array (or memmap), a ``.npy``/``.npz`` path, or an
    iterable of scalars/arrays.  ``.npy`` files are memory-mapped so an
    arbitrarily long on-disk trace is never fully materialized; ``.npz``
    archives (our :mod:`~repro.uarch.traceio` format) decompress fully —
    prefer ``.npy`` for traces that do not fit in memory.
    """
    if chunk < 1:
        raise ValueError("chunk must be at least one sample")
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.suffix == ".npy":
            source = np.load(path, mmap_mode="r")
        else:
            from ..uarch.traceio import import_current_trace

            source = import_current_trace(path).current
    if isinstance(source, np.ndarray):
        if source.ndim != 1:
            raise ValueError("current trace must be 1-D")
        for start in range(0, len(source), chunk):
            yield np.asarray(source[start : start + chunk], dtype=float)
        return
    buf: list[float] = []
    for piece in source:
        arr = np.atleast_1d(np.asarray(piece, dtype=float))
        if arr.ndim != 1:
            raise ValueError("trace chunks must be scalars or 1-D arrays")
        if len(buf) + arr.size >= chunk:
            yield np.concatenate([np.asarray(buf), arr]) if buf else arr
            buf = []
        else:
            buf.extend(arr.tolist())
    if buf:
        yield np.asarray(buf, dtype=float)


def iter_windows(
    source, window: int, chunk: int = CHUNK
) -> Iterator[np.ndarray]:
    """Non-overlapping ``window``-sized views of a trace, streamed.

    The trailing partial window (fewer than ``window`` samples) is
    dropped, matching the whole-trace estimators' tiling.
    """
    if window < 1:
        raise ValueError("window must be at least one sample")
    carry = np.empty(0)
    emitted = 0
    try:
        for arr in as_chunks(source, chunk=max(chunk, window)):
            if carry.size:
                arr = np.concatenate([carry, arr])
            count = len(arr) // window
            for k in range(count):
                yield arr[k * window : (k + 1) * window]
            emitted += count
            carry = arr[count * window :]
    finally:
        # one batched bump per trace, so streaming costs nothing per window
        if emitted:
            obs.counter_inc(
                "pipeline_windows_total",
                emitted,
                "characterization windows streamed",
            )


def streaming_fraction_below(
    estimator, source, threshold: float
) -> tuple[float, int]:
    """Streamed equivalent of ``estimator.estimate_fraction_below``.

    Returns ``(estimate, windows_seen)``; accumulation order matches the
    in-memory method, so results are bit-identical for the same trace.
    """
    total = 0.0
    count = 0
    for w in iter_windows(source, estimator.window):
        total += estimator.characterize_window(w).prob_below(threshold)
        count += 1
    if count == 0:
        raise ValueError(
            f"trace shorter than one {estimator.window}-cycle window"
        )
    return total / count, count


def streaming_level_contributions(estimator, source) -> dict[int, float]:
    """Streamed equivalent of ``estimator.level_contributions``."""
    totals = {lvl: 0.0 for lvl in range(1, estimator.levels + 1)}
    count = 0
    for w in iter_windows(source, estimator.window):
        ch = estimator.characterize_window(w)
        for lvl in totals:
            totals[lvl] += (
                estimator.factors.factor(lvl, ch.scale_correlations[lvl])
                * ch.scale_variances[lvl]
            )
        count += 1
    if count == 0:
        raise ValueError(
            f"trace shorter than one {estimator.window}-cycle window"
        )
    return {lvl: v / count for lvl, v in totals.items()}

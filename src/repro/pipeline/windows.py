"""Chunked/streaming window iteration over current traces.

The §4 characterization consumes a trace strictly as a sequence of
non-overlapping power-of-two windows, so no stage ever needs the whole
trace resident: this module turns any source — an in-memory array, a
memory-mapped ``.npy`` file, or an arbitrary iterable of sample chunks —
into a stream of exact-size windows with O(window) working memory.

The streaming aggregators feed whole *blocks* of windows (one chunk's
worth at a time) through the same batched kernel path as
:class:`~repro.core.WaveletVoltageEstimator`'s whole-trace methods.
Because every kernel reduction is row-local and the final reduction runs
over the concatenated per-window results, a streamed estimate is
bit-identical to the in-memory one on either kernel backend.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import SpecError
from ..obs import trace as obs

__all__ = [
    "as_chunks",
    "iter_windows",
    "iter_window_blocks",
    "streaming_fraction_below",
    "streaming_level_contributions",
    "streaming_characterize",
]

#: Default samples per chunk when re-chunking an array-like source.
CHUNK = 1 << 16


def as_chunks(source, chunk: int = CHUNK) -> Iterator[np.ndarray]:
    """Yield 1-D float chunks from any trace source.

    Accepts a 1-D array (or memmap), a ``.npy``/``.npz`` path, or an
    iterable of scalars/arrays.  ``.npy`` files are memory-mapped so an
    arbitrarily long on-disk trace is never fully materialized; ``.npz``
    archives (our :mod:`~repro.uarch.traceio` format) decompress fully —
    prefer ``.npy`` for traces that do not fit in memory.
    """
    if chunk < 1:
        raise SpecError("chunk must be at least one sample")
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.suffix == ".npy":
            source = np.load(path, mmap_mode="r")
        else:
            from ..uarch.traceio import import_current_trace

            source = import_current_trace(path).current
    if isinstance(source, np.ndarray):
        if source.ndim != 1:
            raise SpecError("current trace must be 1-D")
        for start in range(0, len(source), chunk):
            yield np.asarray(source[start : start + chunk], dtype=float)
        return
    buf: list[float] = []
    for piece in source:
        arr = np.atleast_1d(np.asarray(piece, dtype=float))
        if arr.ndim != 1:
            raise SpecError("trace chunks must be scalars or 1-D arrays")
        if len(buf) + arr.size >= chunk:
            yield np.concatenate([np.asarray(buf), arr]) if buf else arr
            buf = []
        else:
            buf.extend(arr.tolist())
    if buf:
        yield np.asarray(buf, dtype=float)


def iter_windows(
    source, window: int, chunk: int = CHUNK
) -> Iterator[np.ndarray]:
    """Non-overlapping ``window``-sized views of a trace, streamed.

    The trailing partial window (fewer than ``window`` samples) is
    dropped, matching the whole-trace estimators' tiling.
    """
    if window < 1:
        raise SpecError("window must be at least one sample")
    carry = np.empty(0)
    emitted = 0
    try:
        for arr in as_chunks(source, chunk=max(chunk, window)):
            if carry.size:
                arr = np.concatenate([carry, arr])
            count = len(arr) // window
            for k in range(count):
                yield arr[k * window : (k + 1) * window]
            emitted += count
            carry = arr[count * window :]
    finally:
        # one batched bump per trace, so streaming costs nothing per window
        if emitted:
            obs.counter_inc(
                "pipeline_windows_total",
                emitted,
                "characterization windows streamed",
            )


def iter_window_blocks(
    source, window: int, chunk: int = CHUNK
) -> Iterator[np.ndarray]:
    """Stream ``(k, window)`` matrices of consecutive full windows.

    The block form of :func:`iter_windows`: each yielded matrix holds
    every full window of one chunk (so the batched kernels get real
    work per call), the trailing partial window is dropped, and working
    memory stays O(chunk).
    """
    if window < 1:
        raise SpecError("window must be at least one sample")
    carry = np.empty(0)
    emitted = 0
    try:
        for arr in as_chunks(source, chunk=max(chunk, window)):
            if carry.size:
                arr = np.concatenate([carry, arr])
            count = len(arr) // window
            if count:
                yield arr[: count * window].reshape(count, window)
            emitted += count
            carry = arr[count * window :]
    finally:
        if emitted:
            obs.counter_inc(
                "pipeline_windows_total",
                emitted,
                "characterization windows streamed",
            )


def streaming_fraction_below(
    estimator, source, threshold: float
) -> tuple[float, int]:
    """Streamed equivalent of ``estimator.estimate_fraction_below``.

    Returns ``(estimate, windows_seen)``.  Each block goes through the
    estimator's batched ``window_probs_below`` (kernel-dispatched), and
    the final reduction runs over the concatenated per-window
    probabilities — the same floats, reduced the same way, as the
    in-memory method, so results are bit-identical for the same trace.
    """
    probs = [
        estimator.window_probs_below(block, threshold)
        for block in iter_window_blocks(source, estimator.window)
    ]
    if not probs:
        raise SpecError(
            f"trace shorter than one {estimator.window}-cycle window"
        )
    flat = np.concatenate(probs)
    return float(flat.sum()) / len(flat), len(flat)


def streaming_level_contributions(estimator, source) -> dict[int, float]:
    """Streamed equivalent of ``estimator.level_contributions``."""
    blocks = [
        estimator.window_contribution_terms(block)
        for block in iter_window_blocks(source, estimator.window)
    ]
    if not blocks:
        raise SpecError(
            f"trace shorter than one {estimator.window}-cycle window"
        )
    terms = np.concatenate(blocks, axis=1)
    totals = terms.sum(axis=1)
    count = terms.shape[1]
    return {
        lvl: float(totals[lvl - 1]) / count
        for lvl in range(1, estimator.levels + 1)
    }


def streaming_characterize(
    estimator, source, threshold: float
) -> tuple[float, int, dict[int, float]]:
    """Both §4.1 trace outputs from one streamed pass over the windows.

    Returns ``(estimate, windows_seen, level_contributions)``.  Each
    block is decomposed once via ``estimator.characterize_windows``, so
    the characterize pipeline stage pays for one wavelet pass instead of
    two.  Per-window results are bit-identical to the separate
    :func:`streaming_fraction_below` / :func:`streaming_level_contributions`
    calls (and to the in-memory estimator methods).
    """
    prob_blocks: list[np.ndarray] = []
    term_blocks: list[np.ndarray] = []
    for block in iter_window_blocks(source, estimator.window):
        probs, terms = estimator.characterize_windows(block, threshold)
        prob_blocks.append(probs)
        term_blocks.append(terms)
    if not prob_blocks:
        raise SpecError(
            f"trace shorter than one {estimator.window}-cycle window"
        )
    flat = np.concatenate(prob_blocks)
    count = len(flat)
    totals = np.concatenate(term_blocks, axis=1).sum(axis=1)
    contributions = {
        lvl: float(totals[lvl - 1]) / count
        for lvl in range(1, estimator.levels + 1)
    }
    return float(flat.sum()) / count, count, contributions

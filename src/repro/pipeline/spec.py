"""Declarative job model for the batch-characterization pipeline.

A :class:`JobSpec` names everything one unit of work depends on — the
benchmark, the simulated interval, the supply network and the analysis
stages to run — as plain values, never live objects.  That buys three
things at once:

* jobs can cross a process boundary (the executor pickles specs, not
  simulators);
* two specs that describe the same computation hash identically, which
  is what makes the on-disk result cache content-addressed;
* a spec is self-describing, so ``repro pipeline status`` and the cache
  layout stay debuggable with nothing but a JSON viewer.

The supply network travels as its design-facing parameter tuple (the
frozen-dataclass fields of :class:`~repro.power.PowerSupplyNetwork`), so
a worker reconstructs the *exact* network without re-running the
stressmark calibration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields as dataclass_fields

from .. import __version__
from ..errors import SpecError
from ..power import PowerSupplyNetwork
from ..store.ref import TraceRef

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CACHE_SALT",
    "DEFAULT_STAGES",
    "STORE_STAGES",
    "SCENARIO_STAGES",
    "JobSpec",
    "serialize_network",
    "deserialize_network",
    "trace_identity",
]

#: Bump when artifact layouts change; invalidates every cache entry.
#: v2: characterize artifacts come from the vectorized kernel backend,
#: whose floats can differ from v1's sequential loop in the last ulp.
#: v3: trace-producing stages key on a dtype-explicit trace identity, so
#: a float32 store trace and a float64 regenerated trace never collide
#: (and equivalent ones dedupe across ``simulate``/``load_trace``).
#: v4: the ``scenario`` stage joins the ``trace`` namespace; scenario
#: jobs identify their trace by the canonical-JSON scenario parameter.
CACHE_SCHEMA_VERSION = 4

#: Code-version salt folded into every cache key, so results computed by
#: a different release or schema never alias.
CACHE_SALT = f"repro/{__version__}/pipeline-schema-{CACHE_SCHEMA_VERSION}"

#: The §4 characterization chain (Figure 9's estimate vs. truth).
DEFAULT_STAGES = ("simulate", "voltage", "characterize")

#: The same chain fed from the trace store instead of the simulator.
STORE_STAGES = ("load_trace", "voltage", "characterize")

#: The same chain fed from a compiled stress scenario
#: (:mod:`repro.scenarios`) instead of a single benchmark simulation.
SCENARIO_STAGES = ("scenario", "voltage", "characterize")


def serialize_network(network: PowerSupplyNetwork) -> tuple[tuple[str, float], ...]:
    """A network as a sorted, hashable (field, value) tuple."""
    return tuple(
        sorted(
            (f.name, float(getattr(network, f.name)))
            for f in dataclass_fields(network)
        )
    )


def deserialize_network(
    data: tuple[tuple[str, float], ...] | None,
) -> PowerSupplyNetwork:
    """Rebuild the exact network a spec was created with."""
    if data is None:
        raise SpecError("job spec carries no supply network")
    return PowerSupplyNetwork(**dict(data))


@dataclass(frozen=True)
class JobSpec:
    """One benchmark x configuration x analysis-chain unit of work.

    Attributes
    ----------
    benchmark:
        Workload-model name (``repro.workloads.SPEC2000``).
    cycles / seed / warmup_cycles:
        Simulation interval, stream seed and SimPoint-style preamble —
        the full :func:`~repro.uarch.simulate_benchmark` contract.
    window / threshold:
        Characterization window (cycles, power of two) and the voltage
        control point the §4 estimate targets.
    network:
        Serialized supply network (see :func:`serialize_network`), or
        ``None`` for stages that need no supply model.
    impedance:
        Display label only (the paper's "percent of target impedance");
        never hashed — the concrete ``network`` is what matters.
    stages:
        Ordered analysis stages from the registry
        (:mod:`repro.pipeline.stages`).
    params:
        Sorted (name, value) pairs of stage-specific knobs (control
        scheme, monitor terms, margin, ...), JSON-scalar values only.
    trace:
        Serialized :class:`~repro.store.TraceRef` (see
        :meth:`~repro.store.TraceRef.to_spec`), or ``None``.  When set,
        the ``load_trace`` stage resolves the referenced trace by mmap /
        shared-memory attach instead of re-simulating — the zero-copy
        store path (``docs/STORE.md``).
    """

    benchmark: str
    cycles: int = 32768
    seed: int | None = None
    warmup_cycles: int = 4096
    window: int = 256
    threshold: float = 0.97
    network: tuple[tuple[str, float], ...] | None = None
    impedance: float | None = None
    stages: tuple[str, ...] = DEFAULT_STAGES
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    trace: tuple[tuple[str, object], ...] | None = None

    def __post_init__(self) -> None:
        if not self.benchmark:
            raise SpecError("benchmark must be non-empty")
        if self.cycles <= 0:
            raise SpecError("cycles must be positive")
        if self.warmup_cycles < 0:
            raise SpecError("warmup_cycles must be non-negative")
        if not self.stages:
            raise SpecError("a job needs at least one stage")
        names = [name for name, _ in self.params]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate params: {names}")

    # -- construction ---------------------------------------------------------

    @classmethod
    def make(
        cls,
        benchmark: str,
        *,
        network: PowerSupplyNetwork | None = None,
        params: dict[str, object] | None = None,
        trace: "TraceRef | tuple | None" = None,
        **kwargs,
    ) -> "JobSpec":
        """Build a spec from live objects (network, params, TraceRef)."""
        if isinstance(trace, TraceRef):
            trace = trace.to_spec()
        return cls(
            benchmark=benchmark,
            network=serialize_network(network) if network is not None else None,
            params=tuple(sorted((params or {}).items())),
            trace=trace,
            **kwargs,
        )

    # -- access ---------------------------------------------------------------

    def param(self, name: str, default=None):
        """A stage parameter by name, or ``default``."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def field_value(self, name: str):
        """A hashable field by name — spec attribute, derived identity,
        else param."""
        if name == "params":
            return list(list(p) for p in self.params)
        if name == "trace":
            return _jsonable(self.trace)
        if name == "trace_identity":
            return trace_identity(self)
        if hasattr(self, name):
            value = getattr(self, name)
            return list(list(p) for p in value) if name == "network" and value else value
        return self.param(name)

    def resolve_network(self) -> PowerSupplyNetwork:
        """The live supply network this spec was built against."""
        return deserialize_network(self.network)

    def resolve_trace_ref(self) -> TraceRef:
        """The live :class:`~repro.store.TraceRef` this spec carries."""
        if self.trace is None:
            raise SpecError(
                f"job {self.label} carries no trace ref", job=self.label
            )
        return TraceRef.from_spec(self.trace)

    # -- identity -------------------------------------------------------------

    def canonical(self) -> dict:
        """The spec as a JSON-ready dict (stable field order via sort)."""
        return {
            "benchmark": self.benchmark,
            "cycles": self.cycles,
            "seed": self.seed,
            "warmup_cycles": self.warmup_cycles,
            "window": self.window,
            "threshold": self.threshold,
            "network": self.field_value("network"),
            "stages": list(self.stages),
            "params": self.field_value("params"),
            "trace": self.field_value("trace"),
        }

    def digest(self) -> str:
        """Content hash of the whole spec (includes the code salt)."""
        return hash_payload({"salt": CACHE_SALT, "spec": self.canonical()})

    @property
    def label(self) -> str:
        """Short human label for progress lines."""
        if self.impedance is not None:
            return f"{self.benchmark}@{self.impedance:.0f}%"
        return self.benchmark

    def obs_attrs(self) -> dict:
        """Span attributes identifying this job in telemetry."""
        return {
            "benchmark": self.benchmark,
            "cycles": self.cycles,
            "stages": ",".join(self.stages),
        }


def _jsonable(value):
    """Nested tuples as nested lists, for stable canonical JSON."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


def trace_identity(spec: "JobSpec") -> dict:
    """The content identity of the trace a job consumes (dtype-explicit).

    This is the payload the trace-producing stages (``simulate`` and
    ``load_trace``) hash into their shared cache-key namespace:

    * a spec with no :class:`~repro.store.TraceRef` identifies its trace
      by the full simulator invocation, at the simulator's native
      ``float64``;
    * a ref ingested from that same invocation (full trace, generator
      params recorded, ``float64``) produces the *identical* payload —
      so the stored and the regenerated trace address the same
      downstream cache entries;
    * any other ref (external trace, slice, ``float32``) identifies by
      its dtype-explicit content hash and slice, which can never collide
      with a different dtype of the same samples.
    """
    if spec.trace is not None:
        return spec.resolve_trace_ref().identity()
    scenario = spec.param("scenario")
    if scenario is not None:
        # Scenario jobs identify their trace by the scenario's canonical
        # JSON (cores, schedules, offsets, DVFS edges) plus the compile
        # contract — never by the display name, so an edited catalog
        # entry can't alias a stale cache entry.
        return {
            "kind": "scenario",
            "dtype": "float64",
            "scenario": scenario,
            "cycles": spec.cycles,
            "seed": spec.seed,
            "warmup_cycles": spec.warmup_cycles,
        }
    return {
        "kind": "simulate",
        "dtype": "float64",
        "benchmark": spec.benchmark,
        "cycles": spec.cycles,
        "seed": spec.seed,
        "warmup_cycles": spec.warmup_cycles,
    }


def hash_payload(payload: dict) -> str:
    """SHA-256 of a canonical-JSON payload (the cache-key primitive)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()

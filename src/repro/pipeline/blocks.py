"""Block dispatch: one fused job for N compatible characterization jobs.

The batched kernel tier (``repro.kernels.batched``) only pays off when
the pipeline actually hands it stacks of traces.  This module is that
wiring:

* :func:`group_blocks` partitions a batch's ``(index, spec)`` pairs into
  :class:`BlockSpec` units — specs that share every characterization
  parameter (cycles, window, threshold, network, params, stage chain,
  trace dtype) and whose stage chain ends in ``characterize``.  The
  supervisor then dispatches **one** block job instead of N trace jobs.
* :func:`execute_block` runs a block: every member still executes its
  prefix stages (``simulate``/``load_trace``/``voltage``) and probes its
  **own** per-trace cache key under its **own** ``pipeline.job`` span;
  only the cache-missing members' traces are stacked — zero-copy
  attached when store-backed — into one ``characterize_block`` kernel
  call, whose result is split back into per-member artifacts and cached
  under each member's key.

The fused math is bit-identical per trace to the streaming per-trace
path (every reduction is row-local and split matrices stay
C-contiguous), so a block job and N single jobs produce byte-identical
cache entries — the property ``tests/pipeline/test_blocks.py`` pins.

Failures stay member-granular where possible: a member whose trace
attach or injected fault raises fails alone; only a failure of the fused
pass itself falls back to per-member computation.  The block container
carries telemetry once; retries operate on the whole block (already-
cached members are satisfied from cache on the next attempt).
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..errors import SpecError
from ..obs import trace as obs
from . import executor as _executor
from . import faults
from .executor import JobOutcome
from .spec import CACHE_SALT, JobSpec, hash_payload, trace_identity
from .stages import StageContext, get_stage, stage_cache_keys

__all__ = ["BlockSpec", "BlockOutcome", "block_key", "group_blocks", "execute_block"]

#: Default cap on members per block: bounds worker memory (one float64
#: copy of every stacked trace) and keeps retry granularity reasonable.
DEFAULT_MAX_BLOCK = 32


def block_key(spec: JobSpec) -> tuple:
    """The compatibility key two specs must share to ride one block."""
    ident = trace_identity(spec)
    # The "scenario" param only shapes per-member trace production in
    # the prefix pass (like differing benchmarks under "simulate"); the
    # fused characterize is indifferent to it, so two different
    # scenarios of equal geometry still stack into one block.
    params = tuple(p for p in spec.params if p[0] != "scenario")
    return (
        spec.stages,
        spec.cycles,
        spec.window,
        spec.threshold,
        spec.network,
        params,
        ident.get("dtype"),
        ident.get("samples", spec.cycles),
    )


def _groupable(spec: JobSpec) -> bool:
    # Only chains *ending* in characterize fuse: the prefix stages run
    # per member, the final characterize runs once for the whole stack.
    return spec.stages[-1] == "characterize"


@dataclass(frozen=True)
class BlockSpec:
    """N compatible :class:`JobSpec` dispatched as one supervised unit.

    Carries the members' original batch indices so results (and
    supervisor-synthesized failures) can be fanned back out per trace.
    Opaque to the supervisor, which only needs ``digest()``, ``label``
    and picklability — exactly the :class:`JobSpec` surface.
    """

    members: tuple[JobSpec, ...]
    indices: tuple[int, ...]

    #: Cheap runtime marker so the executor avoids an isinstance import.
    is_block = True

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise SpecError("a block needs at least two members")
        if len(self.indices) != len(self.members):
            raise SpecError("indices and members must be parallel")
        keys = {block_key(m) for m in self.members}
        if len(keys) != 1:
            raise SpecError(
                "block members must share cycles/window/threshold/network/"
                f"params/stages/trace dtype; got {len(keys)} distinct keys"
            )
        if any(not _groupable(m) for m in self.members):
            raise SpecError("block members must end with 'characterize'")

    def digest(self) -> str:
        """Content hash over the member digests (order-sensitive)."""
        return hash_payload(
            {"salt": CACHE_SALT, "block": [m.digest() for m in self.members]}
        )

    @property
    def benchmark(self) -> str:
        first = self.members[0].benchmark
        return f"block:{first}+{len(self.members) - 1}"

    @property
    def label(self) -> str:
        return f"block[{len(self.members)}]({self.members[0].label}…)"

    def obs_attrs(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "cycles": self.members[0].cycles,
            "stages": ",".join(self.members[0].stages),
            "members": len(self.members),
        }


@dataclass
class BlockOutcome(JobOutcome):
    """The container a block job ships back: per-member outcomes inside.

    ``spec`` is the :class:`BlockSpec`; ``members`` pairs each member's
    original batch index with its :class:`JobOutcome`.  Member outcomes
    carry no telemetry payloads of their own — the container ships the
    worker's metric delta and span records exactly once.
    """

    members: list = field(default_factory=list)


def group_blocks(
    indexed_specs: list[tuple[int, JobSpec]],
    max_block: int = DEFAULT_MAX_BLOCK,
) -> list:
    """Partition ``(index, spec)`` pairs into dispatch units.

    Compatible characterization specs become :class:`BlockSpec` chunks
    of at most ``max_block`` members, dispatched at the position of
    their first member; everything else passes through untouched.
    Singleton groups stay plain specs — a block of one buys nothing.
    """
    if max_block < 2:
        return list(indexed_specs)
    groups: dict[tuple, list[tuple[int, JobSpec]]] = {}
    for index, spec in indexed_specs:
        if _groupable(spec):
            groups.setdefault(block_key(spec), []).append((index, spec))
    emitted: set[int] = set()
    units: list = []
    for index, spec in indexed_specs:
        if index in emitted:
            continue
        members = groups.get(block_key(spec)) if _groupable(spec) else None
        if not members or len(members) < 2:
            units.append((index, spec))
            continue
        for start in range(0, len(members), max_block):
            chunk = members[start : start + max_block]
            emitted.update(i for i, _ in chunk)
            if len(chunk) == 1:
                units.append(chunk[0])
            else:
                units.append(
                    (
                        chunk[0][0],
                        BlockSpec(
                            members=tuple(s for _, s in chunk),
                            indices=tuple(i for i, _ in chunk),
                        ),
                    )
                )
    return units


def synthesize_member_failures(outcome: JobOutcome) -> list:
    """Per-member failures for a block that died without member data.

    The supervisor's timeout/crash paths synthesize a bare container
    (``JobOutcome`` around the :class:`BlockSpec`) in the parent — fan
    its error out so every member index still gets an outcome.
    """
    block = outcome.spec
    return [
        (
            index,
            JobOutcome(
                spec=member,
                error=outcome.error,
                error_kind=outcome.error_kind,
                failed_stage=outcome.failed_stage,
                attempts=outcome.attempts,
                elapsed=outcome.elapsed,
                pid=outcome.pid,
            ),
        )
        for index, member in zip(block.indices, block.members)
    ]


class _MemberRun:
    """Executor-side state of one member inside a running block."""

    __slots__ = ("spec", "outcome", "ctx", "keys", "char_done")

    def __init__(self, spec: JobSpec, attempt: int) -> None:
        self.spec = spec
        self.outcome = JobOutcome(
            spec=spec, pid=os.getpid(), attempts=attempt
        )
        self.ctx: StageContext | None = None
        self.keys: dict[str, str] | None = None
        self.char_done = False


def _member_fail(
    run: _MemberRun, stage: str, exc: BaseException, attempt: int
) -> None:
    run.outcome.failed_stage = stage
    run.outcome.error = (
        f"job {run.spec.label}: stage {stage!r} raised "
        f"{type(exc).__name__} on attempt {attempt}\n"
        + traceback.format_exc()
    )
    run.outcome.error_kind = "exception"


def _stage_timing(run: _MemberRun, name: str, seconds: float, hit: bool) -> None:
    run.outcome.timings[name] = run.outcome.timings.get(name, 0.0) + seconds
    run.outcome.cache_hits[name] = hit
    if obs.ENABLED:
        obs.histogram_observe(
            "pipeline_stage_seconds",
            seconds,
            "stage wall time including cache lookups",
            stage=name,
        )


def _member_prefix(spec: JobSpec, cache, attempt: int, plan) -> _MemberRun:
    """Run one member's pre-characterize stages + characterize cache probe.

    Mirrors :func:`~repro.pipeline.executor.execute_job` stage for
    stage — same spans, cache keys, fault points and error text — but
    stops short of computing ``characterize``, which the fused pass
    owns.
    """
    run = _MemberRun(spec, attempt)
    outcome = run.outcome
    t_job = time.perf_counter()
    with obs.span(
        "pipeline.job", attempt=attempt, blocked=1, **spec.obs_attrs()
    ) as job_span:
        try:
            run.keys = stage_cache_keys(spec)
            run.ctx = StageContext(spec)
            for name in spec.stages[:-1]:
                stage = get_stage(name)
                t0 = time.perf_counter()
                hit = False
                try:
                    artifact = None
                    if cache is not None:
                        hit, artifact = cache.get(
                            name, run.keys[name], stage.kind
                        )
                    if not hit:
                        if plan is not None:
                            faults.apply_fault(
                                plan, name, spec.benchmark, attempt
                            )
                        with obs.span(
                            f"stage.{name}", benchmark=spec.benchmark
                        ):
                            artifact = stage.func(run.ctx)
                        if cache is not None:
                            cache.put(
                                name, run.keys[name], stage.kind, artifact
                            )
                finally:
                    _stage_timing(run, name, time.perf_counter() - t0, hit)
                run.ctx.artifacts[name] = artifact
                outcome.artifacts[name] = artifact
            # the final characterize stage: probe the member's own cache
            # key; a miss is deferred to the fused block pass
            name = spec.stages[-1]
            stage = get_stage(name)
            t0 = time.perf_counter()
            hit = False
            artifact = None
            if cache is not None:
                hit, artifact = cache.get(name, run.keys[name], stage.kind)
            if hit:
                _stage_timing(run, name, time.perf_counter() - t0, True)
                run.ctx.artifacts[name] = artifact
                outcome.artifacts[name] = artifact
                run.char_done = True
        except Exception as exc:
            outcome.failed_stage = next(
                (n for n in spec.stages if n not in outcome.artifacts), None
            )
            outcome.error = (
                f"job {spec.label}: stage {outcome.failed_stage!r} raised "
                f"{type(exc).__name__} on attempt {attempt}\n"
                + traceback.format_exc()
            )
            outcome.error_kind = "exception"
    outcome.elapsed = time.perf_counter() - t_job
    outcome.peak_rss_bytes = int(job_span.rss_peak)
    return run


def _split_artifact(probs_row, terms_row, levels: int) -> dict:
    """One member's characterize artifact from its fused result rows.

    Must stay byte-identical to what the streaming per-trace stage
    produces: both rows are C-contiguous, so the sums see the same
    pairwise reduction as the per-trace path.
    """
    count = probs_row.shape[0]
    totals = terms_row.sum(axis=1)
    return {
        "estimated": float(probs_row.sum()) / count,
        "windows": int(count),
        "level_contributions": {
            str(lvl): float(totals[lvl - 1]) / count
            for lvl in range(1, levels + 1)
        },
    }


def _member_characterize_single(run: _MemberRun, cache, attempt: int) -> None:
    """Fallback: run one member's characterize stage the per-trace way."""
    name = run.spec.stages[-1]
    stage = get_stage(name)
    t0 = time.perf_counter()
    try:
        with obs.span(f"stage.{name}", benchmark=run.spec.benchmark):
            artifact = stage.func(run.ctx)
        if cache is not None:
            cache.put(name, run.keys[name], stage.kind, artifact)
    except Exception as exc:
        _stage_timing(run, name, time.perf_counter() - t0, False)
        _member_fail(run, name, exc, attempt)
        return
    _stage_timing(run, name, time.perf_counter() - t0, False)
    run.ctx.artifacts[name] = artifact
    run.outcome.artifacts[name] = artifact
    run.char_done = True


def _fused_characterize(pending: list[_MemberRun], cache, attempt: int, plan) -> None:
    """One ``characterize_block`` kernel call for every cache-miss member."""
    name = pending[0].spec.stages[-1]
    stage = get_stage(name)
    live: list[tuple[_MemberRun, np.ndarray]] = []
    for run in pending:
        t0 = time.perf_counter()
        try:
            if plan is not None:
                faults.apply_fault(plan, name, run.spec.benchmark, attempt)
            trace = run.ctx.current_trace()
        except Exception as exc:
            _stage_timing(run, name, time.perf_counter() - t0, False)
            _member_fail(run, name, exc, attempt)
            continue
        _stage_timing(run, name, time.perf_counter() - t0, False)
        live.append((run, trace))
    if not live:
        return
    estimator = live[0][0].ctx.estimator
    threshold = live[0][0].spec.threshold
    t0 = time.perf_counter()
    try:
        traces = np.stack([trace for _, trace in live])
        with obs.span("stage.characterize_block", members=len(live)):
            probs, terms = estimator.characterize_traces(traces, threshold)
    except Exception:
        # The fused pass itself failed (shape surprise, kernel bug):
        # degrade to the per-trace stage so one bad stack cannot take
        # down every member.
        for run, _ in live:
            _member_characterize_single(run, cache, attempt)
        return
    share = (time.perf_counter() - t0) / len(live)
    for k, (run, _) in enumerate(live):
        artifact = _split_artifact(probs[k], terms[k], estimator.levels)
        if cache is not None:
            cache.put(name, run.keys[name], stage.kind, artifact)
        _stage_timing(run, name, share, False)
        run.ctx.artifacts[name] = artifact
        run.outcome.artifacts[name] = artifact
        run.char_done = True


def execute_block(
    block: BlockSpec, cache=None, attempt: int = 1
) -> BlockOutcome:
    """Run one block, never raising: a container of per-member outcomes.

    Every member keeps its per-trace cache keys, its own
    ``pipeline.job`` span and its own failure entry; the fused
    ``characterize_block`` pass covers exactly the members whose
    characterize artifact was not already cached.  The container's
    ``error`` is set when any member failed, so the existing retry
    machinery re-dispatches the whole block (cached members are
    satisfied from cache on the next attempt).
    """
    container = BlockOutcome(spec=block, pid=os.getpid(), attempts=attempt)
    plan = faults.active_plan()
    snap_before = obs.registry().snapshot() if obs.ENABLED else None
    t_block = time.perf_counter()
    runs: list[tuple[int, _MemberRun]] = []
    with obs.span(
        "pipeline.block", attempt=attempt, **block.obs_attrs()
    ) as block_span:
        for index, spec in zip(block.indices, block.members):
            runs.append((index, _member_prefix(spec, cache, attempt, plan)))
        pending = [
            run
            for _, run in runs
            if run.outcome.ok and not run.char_done
        ]
        if pending:
            _fused_characterize(pending, cache, attempt, plan)
        if obs.ENABLED:
            for _, run in runs:
                obs.counter_inc(
                    "pipeline_jobs_total",
                    1,
                    "job attempts executed by outcome status",
                    status="ok" if run.outcome.ok else "error",
                )
    container.elapsed = time.perf_counter() - t_block
    container.peak_rss_bytes = int(block_span.rss_peak)
    container.members = [(index, run.outcome) for index, run in runs]
    failed = [run for _, run in runs if not run.outcome.ok]
    if failed:
        first = failed[0].outcome
        container.error = (
            f"block {block.label}: {len(failed)} of {len(runs)} members "
            f"failed on attempt {attempt}; first ({failed[0].spec.label}):\n"
            f"{first.error}"
        )
        container.error_kind = first.error_kind or "exception"
        container.failed_stage = first.failed_stage
    if obs.ENABLED:
        obs.counter_inc(
            "pipeline_blocks_total",
            1,
            "fused block jobs executed by outcome status",
            status="ok" if container.ok else "error",
        )
        if _executor._IN_POOL_WORKER:
            total = sum(
                _executor._trace_channel_bytes(run.outcome.artifacts)
                for _, run in runs
            )
            obs.counter_inc(
                "pipeline_trace_pickle_bytes_total",
                total,
                "trace-array bytes pickled through the worker result "
                "channel (zero on the store path)",
            )
        container.metrics = obs.snapshot_delta(snap_before)
        container.obs_records = obs.drain_records()
    return container

"""The supervised worker pool behind the fault-tolerant executor.

Unlike ``multiprocessing.Pool`` — which offers no per-task timeout and
degrades badly when a worker dies — this pool is supervised directly:

* each worker is a dedicated :class:`multiprocessing.Process` with its
  own inbox, so the parent always knows *which* job a worker holds and
  since when;
* the parent's event loop dispatches eligible jobs to idle workers,
  collects results, enforces per-job wall-clock deadlines (a hung worker
  is SIGKILLed and its job requeued), detects dead workers (the job is
  requeued, the pool replenished) and applies the retry policy's
  backoff schedule;
* results are tagged with their attempt number, so a result racing a
  kill is recognized as stale and dropped instead of double-counting.

The module is deliberately free of policy decisions: what to retry and
how long to wait lives in :class:`~repro.pipeline.executor.RetryPolicy`;
what failures *look like* lives in :mod:`repro.errors`; how failures are
manufactured for testing lives in :mod:`repro.pipeline.faults`.
"""

from __future__ import annotations

import heapq
import os
import time
from queue import Empty

from ..errors import RetryExhaustedError, StageTimeoutError, WorkerCrashError
from ..obs import trace as obs
from .cache import ResultCache
from .executor import JobOutcome, RetryPolicy, _pool_context, execute_job, note_retry
from .spec import JobSpec

__all__ = ["run_supervised"]

#: Event-loop tick: the longest the parent sleeps before re-checking
#: deadlines, eligibility and worker liveness.
TICK_S = 0.05


def _worker_main(
    inbox, results, cache_dir, obs_enabled, profile_interval=0.0
) -> None:
    """Worker loop: take ``(index, spec, attempt, trace_ctx)`` until
    ``None``."""
    from . import executor

    executor._IN_POOL_WORKER = True
    obs.worker_mode(obs_enabled, profile_interval=profile_interval)
    cache = ResultCache(cache_dir) if cache_dir else None
    while True:
        item = inbox.get()
        if item is None:
            return
        index, spec, attempt, trace_ctx = item
        # adopt the supervisor's trace context: this worker's root span
        # (pipeline.job) parents on the supervisor's pipeline.batch span
        obs.set_trace_context(trace_ctx)
        outcome = execute_job(spec, cache, attempt=attempt)
        results.put((index, attempt, os.getpid(), outcome))


class _JobState:
    """Supervisor-side view of one job's progress."""

    __slots__ = ("spec", "attempt", "done")

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.attempt = 0  # attempts dispatched so far
        self.done = False


class _Worker:
    """One supervised worker process and its dispatch bookkeeping."""

    __slots__ = ("proc", "inbox", "job_index", "dispatched_at")

    def __init__(
        self, ctx, results, cache_dir, obs_enabled, profile_interval=0.0
    ) -> None:
        self.inbox = ctx.SimpleQueue()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(
                self.inbox,
                results,
                cache_dir,
                obs_enabled,
                profile_interval,
            ),
            daemon=True,
        )
        self.proc.start()
        self.job_index: int | None = None
        self.dispatched_at = 0.0

    def dispatch(
        self, index: int, spec: JobSpec, attempt: int, trace_ctx=None
    ) -> None:
        self.job_index = index
        self.dispatched_at = time.monotonic()
        self.inbox.put((index, spec, attempt, trace_ctx))

    def kill(self) -> None:
        self.proc.kill()
        self.proc.join()


def run_supervised(
    indexed_specs: list[tuple[int, JobSpec]],
    workers: int,
    cache_dir: str | None,
    policy: RetryPolicy,
    collect,
    trace_ctx=None,
    profile_interval: float = 0.0,
) -> None:
    """Run ``indexed_specs`` on a supervised pool, finalizing each job
    exactly once through ``collect(index, outcome)``.

    ``trace_ctx`` is the executor's propagation context (the batch
    span); it rides along with every dispatched job so worker spans join
    the batch's causal tree.  ``profile_interval`` > 0 starts a resource
    profiler in every worker at that period.
    """
    ctx = _pool_context()
    results = ctx.Queue()
    obs_enabled = obs.ENABLED
    jobs = {index: _JobState(spec) for index, spec in indexed_specs}
    ready: list[int] = [index for index, _ in indexed_specs]
    waiting: list[tuple[float, int]] = []  # (eligible_at, index) heap
    open_jobs = len(jobs)
    pool = [
        _Worker(ctx, results, cache_dir, obs_enabled, profile_interval)
        for _ in range(workers)
    ]

    def finalize(index: int, outcome: JobOutcome) -> None:
        nonlocal open_jobs
        jobs[index].done = True
        open_jobs -= 1
        collect(index, outcome)

    def handle_failure(state: _JobState, index: int, outcome: JobOutcome) -> None:
        """Retry a failed attempt, or finalize it as exhausted."""
        kind = outcome.error_kind or "exception"
        if state.attempt < policy.max_attempts:
            delay = policy.delay_before(
                state.attempt + 1, state.spec.digest()
            )
            note_retry(state.spec, state.attempt + 1, kind, delay)
            obs.counter_inc(
                "pipeline_requeues_total",
                1,
                "jobs put back on the queue after a failed attempt",
                kind=kind,
            )
            heapq.heappush(waiting, (time.monotonic() + delay, index))
            return
        if policy.retries_enabled:
            outcome.error = (
                f"{RetryExhaustedError.__name__}: job {state.spec.label} "
                f"failed on all {state.attempt} attempts\n{outcome.error}"
            )
        finalize(index, outcome)

    def synthesized_failure(
        state: _JobState, worker: _Worker, error: str, kind: str
    ) -> JobOutcome:
        return JobOutcome(
            spec=state.spec,
            error=error,
            error_kind=kind,
            attempts=state.attempt,
            elapsed=time.monotonic() - worker.dispatched_at,
            pid=os.getpid(),  # synthesized by the parent
        )

    def replace(worker: _Worker) -> _Worker:
        fresh = _Worker(ctx, results, cache_dir, obs_enabled, profile_interval)
        pool[pool.index(worker)] = fresh
        obs.counter_inc(
            "pipeline_worker_respawns_total",
            1,
            "replacement workers started after a kill or crash",
        )
        return fresh

    try:
        while open_jobs:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                ready.append(heapq.heappop(waiting)[1])
            for worker in pool:
                if worker.job_index is None and ready:
                    index = ready.pop(0)
                    state = jobs[index]
                    state.attempt += 1
                    worker.dispatch(
                        index, state.spec, state.attempt, trace_ctx
                    )

            # Sleep until something can happen: a result, a deadline
            # expiring, or a backoff elapsing.
            timeout = TICK_S
            if waiting:
                timeout = min(timeout, max(waiting[0][0] - now, 0.001))
            if policy.timeout_s is not None:
                for worker in pool:
                    if worker.job_index is not None:
                        left = (
                            worker.dispatched_at + policy.timeout_s - now
                        )
                        timeout = min(timeout, max(left, 0.001))
            try:
                index, attempt, pid, outcome = results.get(timeout=timeout)
            except Empty:
                pass
            else:
                state = jobs.get(index)
                worker = next(
                    (w for w in pool if w.proc.pid == pid), None
                )
                if worker is not None and worker.job_index == index:
                    worker.job_index = None
                if state is None or state.done or attempt != state.attempt:
                    continue  # stale result racing a kill: drop it
                if not outcome.ok and state.attempt < policy.max_attempts:
                    # a retried attempt never reaches collect(); fold its
                    # telemetry in here so no worker metrics are lost
                    if outcome.pid != os.getpid():
                        obs.absorb(outcome.metrics, outcome.obs_records)
                    outcome.metrics = None
                    outcome.obs_records = []
                if outcome.ok:
                    finalize(index, outcome)
                else:
                    handle_failure(state, index, outcome)
                continue  # drain results before re-checking liveness

            now = time.monotonic()
            # deadline enforcement: kill and requeue hung jobs
            if policy.timeout_s is not None:
                for worker in pool:
                    index = worker.job_index
                    if index is None:
                        continue
                    if now - worker.dispatched_at < policy.timeout_s:
                        continue
                    state = jobs[index]
                    err = StageTimeoutError(
                        f"job {state.spec.label} exceeded its "
                        f"{policy.timeout_s:g}s wall-clock budget on "
                        f"attempt {state.attempt}; worker pid "
                        f"{worker.proc.pid} killed",
                        job=state.spec.label,
                        attempt=state.attempt,
                        timeout_s=policy.timeout_s,
                    )
                    obs.counter_inc(
                        "pipeline_timeouts_total",
                        1,
                        "jobs killed for exceeding the wall-clock budget",
                    )
                    obs.event(
                        "job_timeout",
                        job=state.spec.label,
                        attempt=state.attempt,
                        timeout_s=policy.timeout_s,
                    )
                    outcome = synthesized_failure(
                        state,
                        worker,
                        f"{type(err).__name__}: {err}",
                        "timeout",
                    )
                    worker.kill()
                    replace(worker)
                    handle_failure(state, index, outcome)

            # liveness: a dead worker's job is requeued, the pool refilled
            for worker in pool:
                if worker.proc.is_alive():
                    continue
                index = worker.job_index
                exitcode = worker.proc.exitcode
                worker.proc.join()
                fresh = replace(worker)
                if index is None or jobs[index].done:
                    continue
                state = jobs[index]
                detail = (
                    f"signal {-exitcode}" if exitcode and exitcode < 0
                    else f"exit code {exitcode}"
                )
                err = WorkerCrashError(
                    f"worker pid {worker.proc.pid} died ({detail}) while "
                    f"running job {state.spec.label} "
                    f"(attempt {state.attempt}); job requeued, pool "
                    f"replenished with pid {fresh.proc.pid}",
                    job=state.spec.label,
                    attempt=state.attempt,
                    exitcode=exitcode,
                )
                obs.counter_inc(
                    "pipeline_worker_crashes_total",
                    1,
                    "worker processes that died mid-job",
                )
                obs.event(
                    "worker_crash",
                    job=state.spec.label,
                    attempt=state.attempt,
                    exitcode=exitcode,
                )
                outcome = synthesized_failure(
                    state, worker, f"{type(err).__name__}: {err}", "crash"
                )
                handle_failure(state, index, outcome)
    finally:
        for worker in pool:
            if worker.proc.is_alive():
                worker.inbox.put(None)
        for worker in pool:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.kill()

"""Deterministic fault injection for the batch pipeline.

Every recovery path of the fault-tolerant executor — retry after a
transient stage exception, timeout-kill-requeue of a hung job, pool
replenishment after a worker crash — is exercised in CI by *making* the
corresponding failure happen at a named point, instead of trusting that
the code would cope if it ever did.

A **fault plan** is a comma-separated list of directives::

    plan      := directive ("," directive)*
    directive := stage ["@" benchmark] ":" action [":" attempts]
    action    := "raise" | "hang" ["(" seconds ")"] | "kill"
    attempts  := "*" | N | N "-" M      (default: 1 — first attempt only)

Examples::

    simulate:raise              # every simulate stage raises on attempt 1
    simulate@gzip:raise:1-2     # gzip's simulate raises on attempts 1 and 2
    voltage@mcf:hang(5):1       # mcf's voltage stage sleeps 5 s on attempt 1
    characterize@vpr:kill       # vpr's characterize SIGKILLs its worker once

Actions fire *instead of* computing the stage (after the cache lookup
misses), keyed on the executor-supplied job attempt number — so "raise
twice then succeed" is simply ``:1-2`` with a retry budget of two, and
the same plan reproduces the same failures on every run, in every
process, with no shared state.

Activation: the ``REPRO_FAULT_PLAN`` environment variable (which worker
processes inherit) or ``repro pipeline run --inject-faults PLAN``, which
sets it.  ``ci-plan`` is a named alias for the plan the CI fault-smoke
job runs.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass

from ..errors import InjectedFaultError, SpecError
from ..obs import trace as obs

__all__ = [
    "ENV_VAR",
    "NAMED_PLANS",
    "DEFAULT_HANG_S",
    "FaultDirective",
    "FaultPlan",
    "parse_plan",
    "active_plan",
    "apply_fault",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: A hang with no explicit duration sleeps this long — far beyond any
#: sane per-job timeout, so an unguarded hang is loud, not subtle.
DEFAULT_HANG_S = 3600.0

#: Named plans usable anywhere a plan string is (CLI, env var).
#: ``ci-plan`` is one transient raise, one hang and one worker kill,
#: spread over three different stages/benchmarks of a six-job batch.
NAMED_PLANS = {
    "ci-plan": "simulate@gzip:raise:1,voltage@mcf:hang:1,characterize@vpr:kill:1",
}

_ACTIONS = ("raise", "hang", "kill")

_DIRECTIVE_RE = re.compile(
    r"^(?P<stage>[A-Za-z0-9_.-]+)"
    r"(?:@(?P<benchmark>[A-Za-z0-9_.-]+))?"
    r":(?P<action>raise|hang|kill)"
    r"(?:\((?P<seconds>[0-9.]+)\))?"
    r"(?::(?P<attempts>\*|\d+(?:-\d+)?))?$"
)


@dataclass(frozen=True)
class FaultDirective:
    """One parsed fault: where it fires, what it does, on which attempts."""

    stage: str
    benchmark: str | None  # None = every benchmark
    action: str  # "raise" | "hang" | "kill"
    first_attempt: int = 1
    last_attempt: int = 1  # inclusive; 2**31 for "*"
    hang_s: float = DEFAULT_HANG_S

    def matches(self, stage: str, benchmark: str, attempt: int) -> bool:
        return (
            self.stage == stage
            and (self.benchmark is None or self.benchmark == benchmark)
            and self.first_attempt <= attempt <= self.last_attempt
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, fully-parsed fault plan."""

    text: str
    directives: tuple[FaultDirective, ...]

    def directive_for(
        self, stage: str, benchmark: str, attempt: int
    ) -> FaultDirective | None:
        """The first directive firing at this (stage, benchmark, attempt)."""
        for d in self.directives:
            if d.matches(stage, benchmark, attempt):
                return d
        return None

    @property
    def needs_isolation(self) -> bool:
        """True when the plan can only be survived by a worker process
        (a hang needs a timeout-kill, a kill needs pool replenishment)."""
        return any(d.action in ("hang", "kill") for d in self.directives)


def parse_plan(text: str) -> FaultPlan:
    """Parse a plan string (or named-plan alias) into a :class:`FaultPlan`."""
    raw = text.strip()
    expanded = NAMED_PLANS.get(raw, raw)
    directives = []
    for part in expanded.split(","):
        part = part.strip()
        if not part:
            continue
        m = _DIRECTIVE_RE.match(part)
        if m is None:
            raise SpecError(
                f"bad fault directive {part!r}; expected "
                f"stage[@benchmark]:raise|hang[(seconds)]|kill[:attempts] "
                f"or a named plan ({sorted(NAMED_PLANS)})",
                directive=part,
            )
        action = m["action"]
        if m["seconds"] is not None and action != "hang":
            raise SpecError(
                f"{part!r}: only 'hang' takes a duration", directive=part
            )
        attempts = m["attempts"] or "1"
        if attempts == "*":
            first, last = 1, 2**31
        elif "-" in attempts:
            lo, hi = attempts.split("-")
            first, last = int(lo), int(hi)
        else:
            first = last = int(attempts)
        if first < 1 or last < first:
            raise SpecError(
                f"{part!r}: attempts must be a positive N, N-M or '*'",
                directive=part,
            )
        directives.append(
            FaultDirective(
                stage=m["stage"],
                benchmark=m["benchmark"],
                action=action,
                first_attempt=first,
                last_attempt=last,
                hang_s=float(m["seconds"]) if m["seconds"] else DEFAULT_HANG_S,
            )
        )
    if not directives:
        raise SpecError(f"fault plan {text!r} contains no directives")
    return FaultPlan(text=raw, directives=tuple(directives))


# Parsed-plan memo keyed by the raw env value, so the per-stage lookup
# costs one os.environ read + dict hit when injection is active and a
# single env read when (as always in production) it is not.
_CACHE: dict[str, FaultPlan] = {}


def active_plan() -> FaultPlan | None:
    """The plan named by ``REPRO_FAULT_PLAN``, or ``None``."""
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    plan = _CACHE.get(text)
    if plan is None:
        plan = _CACHE[text] = parse_plan(text)
    return plan


def apply_fault(
    plan: FaultPlan, stage: str, benchmark: str, attempt: int
) -> None:
    """Fire the matching directive, if any, at a stage boundary.

    ``raise`` raises :class:`~repro.errors.InjectedFaultError`; ``hang``
    sleeps the directive's duration (then lets the stage proceed — the
    supervising executor is expected to have killed the job long before);
    ``kill`` SIGKILLs the calling process, exactly like a segfault would.
    """
    d = plan.directive_for(stage, benchmark, attempt)
    if d is None:
        return
    obs.event(
        "fault_injected",
        action=d.action,
        stage=stage,
        benchmark=benchmark,
        attempt=attempt,
    )
    if d.action == "raise":
        raise InjectedFaultError(
            f"injected fault: stage {stage!r} of {benchmark!r} "
            f"raising on attempt {attempt}",
            job=benchmark,
            stage=stage,
            attempt=attempt,
        )
    if d.action == "hang":
        time.sleep(d.hang_s)
        return
    # kill: die the way a native crash would — no cleanup, no excuses.
    os.kill(os.getpid(), 9)

"""Continuous wavelet transform (Morlet) for fine-scale scalograms.

The paper's Figure-4 scalogram uses the dyadic DWT, whose scale axis
jumps by octaves.  The CWT trades orthogonality for a *continuous* scale
axis — useful when pinning down exactly where a current trace's energy
sits relative to the supply resonance (e.g. distinguishing a 24-cycle
loop from a 40-cycle one, both of which the DWT lumps into levels 4-5).

Implemented as FFT-domain multiplication with analytic Morlet filters at
log-spaced scales; filters are peak-normalized per scale so a tone of
fixed amplitude produces a scale-independent response magnitude of ~1x
the tone amplitude.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morlet_cwt", "cwt_scale_for_period", "dominant_period"]

#: Morlet centre frequency (cycles per unit time at scale 1).
_OMEGA0 = 6.0


def cwt_scale_for_period(period: float) -> float:
    """The Morlet scale whose response peaks at the given period."""
    if period <= 0:
        raise ValueError("period must be positive")
    # Peak pseudo-frequency of the omega0=6 Morlet: f = omega0 / (2 pi s).
    return period * _OMEGA0 / (2.0 * np.pi)


def morlet_cwt(
    x: np.ndarray,
    periods: np.ndarray | list[float],
) -> np.ndarray:
    """|CWT| magnitudes of ``x`` at the requested periods (in samples).

    Returns a ``(len(periods), len(x))`` non-negative matrix — a
    continuous-scale scalogram.  Periods must be at least 2 samples
    (Nyquist) and shorter than the signal.
    """
    signal = np.asarray(x, dtype=float)
    if signal.ndim != 1 or signal.size < 4:
        raise ValueError("expected a 1-D signal of at least 4 samples")
    period_arr = np.asarray(periods, dtype=float)
    if period_arr.size == 0:
        raise ValueError("need at least one period")
    if np.any(period_arr < 2.0) or np.any(period_arr >= signal.size):
        raise ValueError("periods must lie in [2, len(x))")

    n = signal.size
    spectrum = np.fft.fft(signal - signal.mean())
    omega = 2.0 * np.pi * np.fft.fftfreq(n)
    out = np.empty((period_arr.size, n))
    for row, period in enumerate(period_arr):
        scale = cwt_scale_for_period(float(period))
        # Analytic Morlet: response only to positive frequencies.
        arg = scale * omega - _OMEGA0
        # Peak-normalized analytic filter: a unit-amplitude tone at this
        # scale's period yields |coefficient| ~= 1 regardless of scale.
        window = np.where(omega > 0, 2.0 * np.exp(-0.5 * arg**2), 0.0)
        coeffs = np.fft.ifft(spectrum * window)
        out[row] = np.abs(coeffs)
    return out


def dominant_period(
    x: np.ndarray,
    min_period: float = 4.0,
    max_period: float | None = None,
    voices: int = 48,
) -> float:
    """The oscillation period (samples) carrying the most CWT energy.

    Scans ``voices`` log-spaced periods and returns the one whose mean
    squared CWT magnitude is largest — a sharper tool than picking the
    peak DWT level when calibrating workloads against a supply resonance.
    """
    signal = np.asarray(x, dtype=float)
    if max_period is None:
        max_period = signal.size / 4.0
    if not 2.0 <= min_period < max_period:
        raise ValueError("need 2 <= min_period < max_period")
    periods = np.logspace(
        np.log10(min_period), np.log10(max_period), voices
    )
    mags = morlet_cwt(signal, periods)
    energy = np.mean(mags**2, axis=1)
    return float(periods[int(np.argmax(energy))])

"""Wavelet shrinkage de-noising (Donoho-Johnstone).

The paper's §2 motivates wavelets partly through their de-noising
optimality results [6]; this module provides the classic tooling — soft/
hard coefficient thresholding with the universal threshold
``sigma * sqrt(2 ln N)`` and the MAD noise estimator — so noisy current
measurements (e.g. a probed silicon trace imported via
``repro.uarch.import_current_trace``) can be cleaned before
characterization.
"""

from __future__ import annotations

import numpy as np

from .coefficients import WaveletDecomposition, decompose
from .filters import Wavelet

__all__ = [
    "soft_threshold",
    "hard_threshold",
    "estimate_noise_sigma",
    "universal_threshold",
    "denoise",
]


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Shrink toward zero: ``sign(v) * max(|v| - t, 0)``."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    v = np.asarray(values, dtype=float)
    return np.sign(v) * np.maximum(np.abs(v) - threshold, 0.0)


def hard_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Keep-or-kill: zero everything with ``|v| <= t``."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    v = np.asarray(values, dtype=float)
    return np.where(np.abs(v) > threshold, v, 0.0)


def estimate_noise_sigma(x: np.ndarray, wavelet: str | Wavelet = "haar") -> float:
    """Noise standard deviation from the finest detail scale (MAD/0.6745).

    The finest-scale coefficients of a smooth-plus-white-noise signal are
    almost pure noise; the median absolute deviation is robust to the few
    coefficients carrying real edges.
    """
    signal = np.asarray(x, dtype=float)
    if signal.size < 4:
        raise ValueError("need at least 4 samples")
    dec = decompose(signal[: 2 * (signal.size // 2)], wavelet, level=1)
    detail = dec.detail(1)
    mad = float(np.median(np.abs(detail - np.median(detail))))
    return mad / 0.6745


def universal_threshold(x: np.ndarray, wavelet: str | Wavelet = "haar") -> float:
    """Donoho's universal threshold ``sigma * sqrt(2 ln N)``."""
    signal = np.asarray(x, dtype=float)
    return estimate_noise_sigma(signal, wavelet) * float(
        np.sqrt(2.0 * np.log(max(signal.size, 2)))
    )


def denoise(
    x: np.ndarray,
    wavelet: str | Wavelet = "haar",
    threshold: float | None = None,
    mode: str = "hard",
    level: int | None = None,
) -> np.ndarray:
    """De-noise a signal by detail-coefficient shrinkage.

    The approximation row is left untouched (it carries the trend); every
    detail row is thresholded.  ``threshold=None`` uses the universal
    threshold estimated from the data.  ``hard`` is the default: with the
    (conservative) universal threshold, soft shrinkage biases the large
    edge coefficients that dominate processor current waveforms; pass a
    smaller threshold if soft mode is preferred.
    """
    signal = np.asarray(x, dtype=float)
    if mode not in ("soft", "hard"):
        raise ValueError("mode must be 'soft' or 'hard'")
    if threshold is None:
        threshold = universal_threshold(signal, wavelet)
    shrink = soft_threshold if mode == "soft" else hard_threshold
    dec = decompose(signal, wavelet, level)
    details = [shrink(dec.detail(lvl), threshold) for lvl in dec.levels]
    return WaveletDecomposition(
        dec.approx.copy(), details, dec.wavelet
    ).reconstruct()

"""Wavelet packet transform and Coifman–Wickerhauser best-basis selection.

An extension beyond the paper's Haar DWT: wavelet packets split *every*
node (not just approximations), giving a binary tree of subbands with
uniform frequency resolution at the leaves.  Best-basis search picks the
minimum-entropy cover of the tree — useful for finding the most compact
representation of a current trace when its energy is not dyadically
distributed.
"""

from __future__ import annotations

import numpy as np

from .filters import Wavelet, get_wavelet
from .transform import dwt, idwt, max_level

__all__ = ["WaveletPacketTree", "shannon_entropy", "best_basis"]


def shannon_entropy(x: np.ndarray) -> float:
    """Coifman–Wickerhauser cost: ``-sum p_i log p_i`` of normalized energy.

    Lower is better (more concentrated energy).  A zero vector costs 0.
    """
    e = np.asarray(x, dtype=float) ** 2
    total = e.sum()
    if total <= 0.0:
        return 0.0
    p = e[e > 0] / total
    return float(-(p * np.log(p)).sum())


class WaveletPacketTree:
    """Full wavelet packet decomposition to a given depth.

    Nodes are addressed by ``(depth, position)`` with the root at
    ``(0, 0)``; position uses the natural (Paley) ordering — child
    ``2*pos`` is the low-pass branch, ``2*pos + 1`` the high-pass branch.
    """

    def __init__(
        self, x: np.ndarray, wavelet: str | Wavelet = "haar", depth: int | None = None
    ) -> None:
        signal = np.asarray(x, dtype=float)
        if signal.ndim != 1:
            raise ValueError("expected a 1-D signal")
        self.wavelet = get_wavelet(wavelet)
        limit = max_level(len(signal), self.wavelet)
        self.depth = limit if depth is None else depth
        if self.depth > limit:
            raise ValueError(f"depth {self.depth} exceeds maximum {limit}")
        if self.depth < 0:
            raise ValueError("depth must be non-negative")
        self._nodes: dict[tuple[int, int], np.ndarray] = {(0, 0): signal}
        for d in range(self.depth):
            for pos in range(2**d):
                lo, hi = dwt(self._nodes[(d, pos)], self.wavelet)
                self._nodes[(d + 1, 2 * pos)] = lo
                self._nodes[(d + 1, 2 * pos + 1)] = hi

    def node(self, depth: int, position: int) -> np.ndarray:
        """Coefficients of one packet node."""
        try:
            return self._nodes[(depth, position)]
        except KeyError:
            raise IndexError(f"no node at depth={depth}, position={position}")

    def leaves(self) -> list[np.ndarray]:
        """All nodes at maximum depth, in natural frequency-band order."""
        return [self._nodes[(self.depth, p)] for p in range(2**self.depth)]

    def reconstruct_from(self, nodes: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Invert an arbitrary disjoint cover of the tree back to a signal.

        ``nodes`` maps ``(depth, position)`` to coefficient arrays; the
        cover must tile the root exactly (as produced by
        :func:`best_basis`).
        """
        work = dict(nodes)
        while len(work) > 1 or (0, 0) not in work:
            deepest = max(d for d, _ in work)
            merged = False
            for (d, p) in sorted(work):
                if d == deepest and p % 2 == 0 and (d, p + 1) in work:
                    lo = work.pop((d, p))
                    hi = work.pop((d, p + 1))
                    work[(d - 1, p // 2)] = idwt(lo, hi, self.wavelet)
                    merged = True
                    break
            if not merged:
                raise ValueError("node set is not a disjoint cover of the tree")
        return work[(0, 0)]


def best_basis(
    tree: WaveletPacketTree, cost=shannon_entropy
) -> dict[tuple[int, int], np.ndarray]:
    """Minimum-cost disjoint cover of the packet tree (dynamic programming).

    Classic bottom-up Coifman–Wickerhauser: a parent is kept if its cost
    beats the sum of its children's best costs.
    """
    best_cost: dict[tuple[int, int], float] = {}
    chosen: dict[tuple[int, int], dict[tuple[int, int], np.ndarray]] = {}
    for p in range(2**tree.depth):
        key = (tree.depth, p)
        best_cost[key] = cost(tree.node(*key))
        chosen[key] = {key: tree.node(*key)}
    for d in range(tree.depth - 1, -1, -1):
        for p in range(2**d):
            key = (d, p)
            own = cost(tree.node(*key))
            kids = ((d + 1, 2 * p), (d + 1, 2 * p + 1))
            kid_cost = best_cost[kids[0]] + best_cost[kids[1]]
            if own <= kid_cost:
                best_cost[key] = own
                chosen[key] = {key: tree.node(*key)}
            else:
                best_cost[key] = kid_cost
                chosen[key] = {**chosen[kids[0]], **chosen[kids[1]]}
    return chosen[(0, 0)]

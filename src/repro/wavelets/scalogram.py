"""Scalograms: time-scale magnitude maps of detail coefficients.

Figure 4 of the paper visualizes a 256-cycle gzip current window as a
scalogram — each block is one detail coefficient, darker meaning larger
magnitude, exposing how the frequency composition of the current changes
over time.  This module computes the underlying matrix and renders an
ASCII version for terminal inspection.
"""

from __future__ import annotations

import numpy as np

from .coefficients import WaveletDecomposition, decompose
from .filters import Wavelet

__all__ = ["scalogram", "render_ascii"]

_SHADES = " .:-=+*#%@"


def scalogram(
    x: np.ndarray,
    wavelet: str | Wavelet = "haar",
    level: int | None = None,
    normalize: bool = False,
) -> np.ndarray:
    """Detail-coefficient magnitude map on a common time grid.

    Returns a ``(level, n)`` array: row 0 is the finest scale, and each
    coefficient's magnitude is replicated across the ``2**level`` samples
    it covers, so every row spans the full window like the blocks in
    Figure 4.  With ``normalize`` the map is scaled to peak 1.
    """
    dec = x if isinstance(x, WaveletDecomposition) else decompose(x, wavelet, level)
    n = dec.length
    rows = []
    for lvl in dec.levels:  # finest first
        mags = np.abs(dec.detail(lvl))
        rows.append(np.repeat(mags, 2**lvl)[:n])
    out = np.vstack(rows)
    if normalize:
        peak = out.max()
        if peak > 0:
            out = out / peak
    return out


def render_ascii(mag: np.ndarray, width: int = 64) -> str:
    """Render a scalogram matrix as ASCII art (darker = larger magnitude).

    Rows are printed finest scale first, matching Figure 4's layout.  The
    time axis is resampled to ``width`` columns by block-averaging.
    """
    mag = np.asarray(mag, dtype=float)
    if mag.ndim != 2:
        raise ValueError("expected a 2-D scalogram matrix")
    if width < 1:
        raise ValueError("width must be positive")
    peak = mag.max()
    scaled = mag / peak if peak > 0 else mag
    lines = []
    edges = np.linspace(0, mag.shape[1], width + 1).astype(int)
    for row in scaled:
        cells = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            chunk = row[lo:hi] if hi > lo else row[lo : lo + 1]
            value = float(chunk.mean()) if chunk.size else 0.0
            shade = _SHADES[min(int(value * (len(_SHADES) - 1) + 0.5),
                                len(_SHADES) - 1)]
            cells.append(shade)
        lines.append("".join(cells))
    return "\n".join(lines)

"""Wavelet subbands: projections of coefficient rows back into time signals.

§2.2 of the paper: each scale's coefficients project to a time-domain
*subband* signal (Eqs. 4–5); summing all subbands recreates the original
signal, and dropping irrelevant subbands filters it.  For the dI/dt problem
the supply network is linear, so voltage can be computed per subband and
superposed — the foundation of both the offline estimator (§4) and the
online wavelet-convolution monitor (§5).
"""

from __future__ import annotations

import numpy as np

from .coefficients import WaveletDecomposition, decompose
from .filters import Wavelet

__all__ = [
    "subband_signals",
    "approximation_signal",
    "detail_signal",
    "bandpass_filter",
    "basis_function",
]


def _zeroed_like(dec: WaveletDecomposition) -> tuple[np.ndarray, list[np.ndarray]]:
    approx = np.zeros_like(dec.approx)
    details = [np.zeros_like(dec.detail(lvl)) for lvl in dec.levels]
    return approx, details


def detail_signal(dec: WaveletDecomposition, level: int) -> np.ndarray:
    """Time-domain contribution of one detail scale (Eq. 5).

    Reconstructs with every coefficient outside ``level`` zeroed.
    """
    approx, details = _zeroed_like(dec)
    details[level - 1] = dec.detail(level).copy()
    return WaveletDecomposition(approx, details, dec.wavelet).reconstruct()


def approximation_signal(dec: WaveletDecomposition) -> np.ndarray:
    """Time-domain contribution of the approximation row (Eq. 4)."""
    approx, details = _zeroed_like(dec)
    approx[:] = dec.approx
    return WaveletDecomposition(approx, details, dec.wavelet).reconstruct()


def subband_signals(dec: WaveletDecomposition) -> dict[str, np.ndarray]:
    """All subband signals, keyed ``"a"`` and ``"d1"``.. ``"dJ"``.

    Their sum equals the reconstructed signal exactly (tested as an
    invariant) — the superposition property the paper exploits.
    """
    out: dict[str, np.ndarray] = {"a": approximation_signal(dec)}
    for lvl in dec.levels:
        out[f"d{lvl}"] = detail_signal(dec, lvl)
    return out


def bandpass_filter(
    x: np.ndarray,
    keep_levels: set[int],
    wavelet: str | Wavelet = "haar",
    level: int | None = None,
    keep_approx: bool = False,
) -> np.ndarray:
    """Filter ``x`` by keeping only the chosen detail levels.

    This is the "effectively filtering the original signal" operation of
    §2.2 — e.g. keeping only the levels whose bands straddle the supply
    resonance isolates the dI/dt-relevant current fluctuations.
    """
    dec = decompose(x, wavelet, level)
    bad = [lvl for lvl in keep_levels if not 1 <= lvl <= dec.level]
    if bad:
        raise ValueError(f"levels {bad} out of range [1, {dec.level}]")
    return dec.filter_levels(set(keep_levels), keep_approx).reconstruct()


def basis_function(
    n: int,
    kind: str,
    level: int,
    index: int,
    wavelet: str | Wavelet = "haar",
    total_level: int | None = None,
) -> np.ndarray:
    """The time-domain basis vector behind a single coefficient.

    Setting exactly one coefficient to 1 and inverting yields the
    (periodized) wavelet ``psi_{level,index}`` or scaling function
    ``phi_index``.  The online monitor precomputes the supply network's
    response to each such basis vector (§5.1).
    """
    dec = decompose(np.zeros(n), wavelet, total_level)
    approx, details = _zeroed_like(dec)
    if kind == "a":
        approx[index] = 1.0
    elif kind == "d":
        details[level - 1][index] = 1.0
    else:
        raise ValueError("kind must be 'a' or 'd'")
    return WaveletDecomposition(approx, details, dec.wavelet).reconstruct()

"""From-scratch wavelet analysis library (the paper's §2 substrate).

Provides the discrete wavelet transform (Mallat's fast algorithm), Haar and
Daubechies filter banks, subband projection, scalograms, wavelet variance
statistics, wavelet packets, and the orthonormal subband-convolution
identity that powers the online voltage monitor.
"""

from .coefficients import CoefficientRef, WaveletDecomposition, decompose
from .convolution import WaveletConvolver, convolve_via_subbands, next_pow2
from .filters import Wavelet, daubechies, get_wavelet, haar, qmf
from .cwt import cwt_scale_for_period, dominant_period, morlet_cwt
from .denoise import (
    denoise,
    estimate_noise_sigma,
    hard_threshold,
    soft_threshold,
    universal_threshold,
)
from .modwt import imodwt, modwt, modwt_max_level, modwt_variance
from .packets import WaveletPacketTree, best_basis, shannon_entropy
from .scalogram import render_ascii, scalogram
from .subbands import (
    approximation_signal,
    bandpass_filter,
    basis_function,
    detail_signal,
    subband_signals,
)
from .transform import (
    dwt,
    haar_dwt,
    haar_idwt,
    idwt,
    max_level,
    wavedec,
    waverec,
)
from .variance import (
    adjacent_correlation,
    scale_correlations,
    scale_variance,
    total_variance_from_scales,
    variance_confidence_interval,
    wavelet_variances,
)

__all__ = [
    "CoefficientRef",
    "Wavelet",
    "WaveletConvolver",
    "WaveletDecomposition",
    "WaveletPacketTree",
    "adjacent_correlation",
    "approximation_signal",
    "bandpass_filter",
    "basis_function",
    "best_basis",
    "convolve_via_subbands",
    "cwt_scale_for_period",
    "dominant_period",
    "morlet_cwt",
    "daubechies",
    "decompose",
    "denoise",
    "estimate_noise_sigma",
    "hard_threshold",
    "soft_threshold",
    "universal_threshold",
    "detail_signal",
    "dwt",
    "get_wavelet",
    "haar",
    "haar_dwt",
    "haar_idwt",
    "idwt",
    "imodwt",
    "modwt",
    "modwt_max_level",
    "modwt_variance",
    "max_level",
    "next_pow2",
    "qmf",
    "render_ascii",
    "scale_correlations",
    "scale_variance",
    "scalogram",
    "shannon_entropy",
    "subband_signals",
    "total_variance_from_scales",
    "variance_confidence_interval",
    "wavedec",
    "waverec",
    "wavelet_variances",
]

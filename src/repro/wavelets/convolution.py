"""Wavelet subband convolution (the paper's [22], Vaidyanathan 1993).

The online monitor of §5 rests on one identity: the periodized DWT is an
*orthonormal* change of basis, so inner products are preserved.  A linear
system's output sample is an inner product between the (time-reversed)
input history and the impulse response::

    v(t) = sum_n h[n] * i(t - n) = <u(t), h>,   u(t)[n] = i(t - n)

hence ``v(t) = <DWT(u(t)), DWT(h)>``.  The DWT of the impulse response is a
fixed vector of constants computed offline; the DWT of the current history
is what the shift-register hardware of Figure 14 maintains.  Because the
impulse response of the supply network is energy-concentrated in the
resonant subbands, most of its wavelet coefficients are negligible — so the
sum can be truncated to the K largest-magnitude terms (Figure 13).
"""

from __future__ import annotations

import numpy as np

from .coefficients import CoefficientRef, WaveletDecomposition, decompose
from .filters import Wavelet, get_wavelet
from .transform import max_level

__all__ = [
    "convolve_via_subbands",
    "WaveletConvolver",
    "next_pow2",
]


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (>= 1)."""
    if n < 1:
        raise ValueError("n must be positive")
    p = 1
    while p < n:
        p *= 2
    return p


def convolve_via_subbands(
    x: np.ndarray, h: np.ndarray, wavelet: str | Wavelet = "haar"
) -> np.ndarray:
    """Full linear convolution computed through wavelet subbands.

    Decomposes ``x`` into subband signals, convolves each with ``h`` and
    superposes — the §2.2 procedure for computing per-subband voltage
    waveforms.  Mathematically identical to ``numpy.convolve(x, h)``;
    exists as the executable statement of the linearity argument and is
    tested against direct convolution.

    Edge semantics (pinned by ``tests/kernels/test_properties.py``):
    inputs shorter than the wavelet's filter support still work — the
    signal is zero-padded to a power of two, and when even the padded
    length cannot support one decomposition level the "decomposition"
    degenerates to the approximation row alone, so the result is plain
    convolution.  Empty ``x`` or ``h`` raise ``ValueError`` rather than
    surfacing an obscure padding error.
    """
    from .subbands import subband_signals  # local import avoids cycle

    x = np.asarray(x, dtype=float)
    h = np.asarray(h, dtype=float)
    if x.size == 0:
        raise ValueError("cannot convolve an empty signal")
    if h.size == 0:
        raise ValueError("impulse response must be non-empty")
    n = len(x)
    padded = np.zeros(next_pow2(n))
    padded[:n] = x
    dec = decompose(padded, wavelet)
    out = np.zeros(len(padded) + len(h) - 1)
    for band in subband_signals(dec).values():
        out += np.convolve(band, h)
    return out[: n + len(h) - 1]


class WaveletConvolver:
    """Truncated wavelet-domain evaluation of a linear system (§5.1).

    Parameters
    ----------
    impulse_response:
        The system's impulse response ``h`` (most recent tap first: the
        weight of the current cycle's input).  Zero-padded to a power of
        two internally.
    wavelet:
        Basis for the transform; the paper uses Haar.
    keep:
        Number of wavelet coefficient terms to retain, selected by
        decreasing magnitude of the impulse response's coefficients.
        ``None`` keeps everything (exact convolution).
    """

    def __init__(
        self,
        impulse_response: np.ndarray,
        wavelet: str | Wavelet = "haar",
        keep: int | None = None,
    ) -> None:
        h = np.asarray(impulse_response, dtype=float)
        if h.ndim != 1 or h.size == 0:
            raise ValueError("impulse response must be a non-empty 1-D array")
        self.wavelet = get_wavelet(wavelet)
        self.window = next_pow2(len(h))
        padded = np.zeros(self.window)
        padded[: len(h)] = h
        self.level = max_level(self.window, self.wavelet)
        self._h_dec = decompose(padded, self.wavelet, self.level)
        ranked = sorted(
            self._h_dec.coefficients(), key=lambda rv: -abs(rv[1])
        )
        self.total_terms = len(ranked)
        if keep is None:
            keep = self.total_terms
        if not 0 <= keep <= self.total_terms:
            raise ValueError(f"keep must be in [0, {self.total_terms}]")
        self.keep = keep
        self.terms: list[tuple[CoefficientRef, float]] = ranked[:keep]
        self._dropped: list[tuple[CoefficientRef, float]] = ranked[keep:]
        self._compressed_fir: np.ndarray | None = None

    def compressed_fir(self) -> np.ndarray:
        """The retained terms as a time-domain FIR kernel (cached).

        ``IDWT(truncate(DWT(h)))`` — because the truncated monitor is
        linear, its action on any history equals convolution with this
        kernel, which is what the vectorized ``convolver_apply`` kernel
        applies over whole traces.
        """
        if self._compressed_fir is None:
            self._compressed_fir = (
                self._h_dec.truncate(self.keep).reconstruct()
            )
        return self._compressed_fir

    # -- offline evaluation --------------------------------------------------

    def _history_decomposition(self, history: np.ndarray) -> WaveletDecomposition:
        u = np.asarray(history, dtype=float)
        if len(u) != self.window:
            raise ValueError(
                f"history must have length {self.window} (most recent first)"
            )
        return decompose(u, self.wavelet, self.level)

    def evaluate(self, history: np.ndarray) -> float:
        """Output sample from a history window (most recent sample first).

        ``<DWT(u), DWT(h)>`` restricted to the retained terms.
        """
        dec = self._history_decomposition(history)
        total = 0.0
        for ref, weight in self.terms:
            if ref.kind == "a":
                total += weight * dec.approx[ref.index]
            else:
                total += weight * dec.detail(ref.level)[ref.index]
        return total

    def evaluate_exact(self, history: np.ndarray) -> float:
        """Untruncated reference: plain dot product with the padded ``h``."""
        u = np.asarray(history, dtype=float)
        if len(u) != self.window:
            raise ValueError(f"history must have length {self.window}")
        return float(np.dot(u, self._h_dec.reconstruct()))

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Run a whole input trace through the truncated convolver.

        Produces ``y[t]`` for every t with the history zero-extended before
        the trace begins — the same convention as causal convolution.
        Dispatches through the ``convolver_apply`` kernel: the reference
        backend re-evaluates the wavelet-domain inner product per cycle,
        the vectorized backend applies :meth:`compressed_fir` over the
        whole trace at once.
        """
        from ..kernels import get_kernel  # local import avoids cycle

        return get_kernel("convolver_apply")(self, x)

    # -- error analysis -------------------------------------------------------

    def dropped_weight_norm(self) -> float:
        """L2 norm of the discarded impulse-response coefficients.

        By Cauchy–Schwarz the truncation error is bounded by this norm
        times the history's coefficient norm over the dropped set.
        """
        return float(np.sqrt(sum(v * v for _, v in self._dropped)))

    def error_bound(self, max_input: float) -> float:
        """Worst-case truncation error for inputs bounded by ``max_input``.

        ``|v_err| <= sum_dropped |c_h[m]| * max|c_u[m]|`` and a coefficient
        of a signal bounded by ``B`` is at most ``B * 2^{l/2}`` at detail
        level ``l`` (``B * 2^{J/2}`` for approximations) for Haar.
        """
        bound = 0.0
        for ref, weight in self._dropped:
            scale = self.level if ref.kind == "a" else ref.level
            bound += abs(weight) * max_input * 2.0 ** (scale / 2.0)
        return bound

    def max_error_on(self, x: np.ndarray) -> float:
        """Empirical max |exact - truncated| over a trace (Figure 13).

        The exact branch is causal convolution with the full (padded)
        impulse response; the truncated branch goes through
        :meth:`apply`, so it exercises whichever kernel backend is
        active.
        """
        x = np.asarray(x, dtype=float)
        if x.size == 0:
            return 0.0
        exact = np.convolve(x, self._h_dec.reconstruct())[: len(x)]
        return float(np.max(np.abs(exact - self.apply(x))))

"""Wavelet decomposition container and the paper's coefficient matrix.

Figure 2 of the paper draws a signal's wavelet representation as a matrix:
one row of approximation coefficients ``a[k]`` plus one row of detail
coefficients ``d[j,k]`` per time scale, finer scales holding more
coefficients.  :class:`WaveletDecomposition` is that object: it owns the
coefficients, knows which frequency band each level occupies, and supports
the sparsity operations (top-K truncation) that make the online monitor of
§5 cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .filters import Wavelet, get_wavelet
from .transform import max_level, wavedec, waverec

__all__ = ["WaveletDecomposition", "decompose"]


@dataclass(frozen=True)
class CoefficientRef:
    """Identifies one coefficient: ``("a", 0, k)`` or ``("d", level, k)``."""

    kind: str  # "a" for approximation, "d" for detail
    level: int  # detail level (1 = finest); 0 for approximation
    index: int  # position k within the row

    def __post_init__(self) -> None:
        if self.kind not in ("a", "d"):
            raise ValueError("kind must be 'a' or 'd'")


class WaveletDecomposition:
    """A multilevel periodized DWT of a 1-D signal.

    Levels are numbered 1 (finest detail, highest frequency) through
    ``self.level`` (coarsest).  The paper's scale index ``j`` of Figure 2
    (``j = 0`` finest, decreasing for coarser rows) is available through
    :meth:`paper_scale`.
    """

    def __init__(
        self,
        approx: np.ndarray,
        details: list[np.ndarray],
        wavelet: str | Wavelet = "haar",
    ) -> None:
        self.wavelet = get_wavelet(wavelet)
        self._approx = np.asarray(approx, dtype=float)
        # details[i] is level i+1 (finest first).
        self._details = [np.asarray(d, dtype=float) for d in details]
        for lvl, det in enumerate(self._details, start=1):
            expected = self._approx.size * 2 ** (self.level - lvl)
            if det.size != expected:
                raise ValueError(
                    f"detail level {lvl} has {det.size} coefficients, "
                    f"expected {expected}"
                )

    # -- construction -----------------------------------------------------

    @classmethod
    def from_signal(
        cls,
        x: np.ndarray,
        wavelet: str | Wavelet = "haar",
        level: int | None = None,
    ) -> "WaveletDecomposition":
        """Decompose ``x`` (length must be even at every level taken)."""
        w = get_wavelet(wavelet)
        coeffs = wavedec(x, w, level)
        approx, coarse_to_fine = coeffs[0], coeffs[1:]
        return cls(approx, coarse_to_fine[::-1], w)

    # -- basic structure ---------------------------------------------------

    @property
    def level(self) -> int:
        """Number of detail levels."""
        return len(self._details)

    @property
    def length(self) -> int:
        """Length of the original signal."""
        return self._approx.size * 2**self.level

    @property
    def approx(self) -> np.ndarray:
        """Approximation coefficients ``a[k]`` (coarse trend, Eq. 2)."""
        return self._approx

    def detail(self, level: int) -> np.ndarray:
        """Detail coefficients ``d[level, k]``; level 1 is finest (Eq. 3)."""
        if not 1 <= level <= self.level:
            raise IndexError(f"detail level must be in [1, {self.level}]")
        return self._details[level - 1]

    @property
    def levels(self) -> range:
        """Iterable of valid detail levels, finest first."""
        return range(1, self.level + 1)

    def paper_scale(self, level: int) -> int:
        """Map our level to the paper's Figure-2 scale index ``j``.

        The finest row of Figure 2 is ``j = 0`` and coarser rows go
        negative, so ``j = 1 - level``.
        """
        if not 1 <= level <= self.level:
            raise IndexError(f"detail level must be in [1, {self.level}]")
        return 1 - level

    def scale_period(self, level: int) -> int:
        """Support of one level-``level`` wavelet in samples (Haar: 2^level)."""
        return 2**level

    def scale_frequency(self, level: int, sample_rate: float = 1.0) -> float:
        """Centre frequency of the level's subband.

        The level-``l`` detail band spans ``(fs/2^(l+1), fs/2^l)``; its
        centre ``0.75 * fs / 2^l`` is the conventional pseudo-frequency.
        """
        return 0.75 * sample_rate / 2**level

    # -- conversions -------------------------------------------------------

    def to_list(self) -> list[np.ndarray]:
        """``[aJ, dJ, ..., d1]`` as consumed by :func:`waverec`."""
        return [self._approx] + self._details[::-1]

    def reconstruct(self) -> np.ndarray:
        """Inverse transform back to the time domain."""
        return waverec(self.to_list(), self.wavelet)

    def coefficient_matrix(self) -> np.ndarray:
        """The Figure-2 matrix: rows = scales, NaN-padded to signal length.

        Row 0 is the finest detail scale (paper ``j = 0``), the following
        rows are successively coarser details, and the final row holds the
        approximation coefficients.
        """
        n = self.length
        rows = []
        for det in self._details:  # finest first, as drawn in Figure 2
            row = np.full(n, np.nan)
            row[: det.size] = det
            rows.append(row)
        arow = np.full(n, np.nan)
        arow[: self._approx.size] = self._approx
        rows.append(arow)
        return np.vstack(rows)

    # -- energy and sparsity -----------------------------------------------

    def energy(self) -> float:
        """Total squared coefficient mass (= signal energy, by Parseval)."""
        total = float(np.sum(self._approx**2))
        for det in self._details:
            total += float(np.sum(det**2))
        return total

    def detail_energy(self, level: int) -> float:
        """Energy in one detail subband."""
        return float(np.sum(self.detail(level) ** 2))

    def sparsity(self, threshold: float) -> float:
        """Fraction of coefficients with magnitude below ``threshold``.

        The paper notes (§2.1) that wavelet representations of current
        traces are sparse — most coefficients near zero — which is what
        makes truncated-coefficient voltage monitors viable.
        """
        small = int(np.sum(np.abs(self._approx) < threshold))
        count = self._approx.size
        for det in self._details:
            small += int(np.sum(np.abs(det) < threshold))
            count += det.size
        return small / count

    def coefficients(self) -> list[tuple[CoefficientRef, float]]:
        """All coefficients with their references."""
        out = [
            (CoefficientRef("a", 0, k), float(v))
            for k, v in enumerate(self._approx)
        ]
        for lvl, det in enumerate(self._details, start=1):
            out.extend(
                (CoefficientRef("d", lvl, k), float(v)) for k, v in enumerate(det)
            )
        return out

    def largest(self, count: int) -> list[tuple[CoefficientRef, float]]:
        """The ``count`` largest-magnitude coefficients, descending.

        §5.1: "we order the coefficients by decreasing magnitude" to select
        the terms worth keeping in the hardware monitor.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        ranked = sorted(self.coefficients(), key=lambda rv: -abs(rv[1]))
        return ranked[:count]

    def truncate(self, keep: int) -> "WaveletDecomposition":
        """Zero all but the ``keep`` largest-magnitude coefficients."""
        kept = {(ref.kind, ref.level, ref.index) for ref, _ in self.largest(keep)}
        approx = np.where(
            [("a", 0, k) in kept for k in range(self._approx.size)],
            self._approx,
            0.0,
        )
        details = []
        for lvl, det in enumerate(self._details, start=1):
            mask = np.fromiter(
                (("d", lvl, k) in kept for k in range(det.size)),
                dtype=bool,
                count=det.size,
            )
            details.append(np.where(mask, det, 0.0))
        return WaveletDecomposition(approx, details, self.wavelet)

    def filter_levels(self, keep_levels: set[int], keep_approx: bool = True
                      ) -> "WaveletDecomposition":
        """Zero every detail level not in ``keep_levels`` (subband filter).

        §2.2: ignoring subbands that are irrelevant for dI/dt is
        "effectively filtering the original signal".
        """
        approx = self._approx if keep_approx else np.zeros_like(self._approx)
        details = [
            det if (lvl in keep_levels) else np.zeros_like(det)
            for lvl, det in enumerate(self._details, start=1)
        ]
        return WaveletDecomposition(approx, details, self.wavelet)


def decompose(
    x: np.ndarray, wavelet: str | Wavelet = "haar", level: int | None = None
) -> WaveletDecomposition:
    """Convenience wrapper for :meth:`WaveletDecomposition.from_signal`."""
    if level is None:
        level = max_level(len(np.asarray(x)), wavelet)
    return WaveletDecomposition.from_signal(x, wavelet, level)

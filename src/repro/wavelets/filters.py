"""Orthogonal wavelet filter banks.

The paper uses the Haar basis (Figure 1) because its square pulses match the
sharp discontinuities of microprocessor current waveforms.  For generality the
library also provides the Daubechies family, whose filters are derived here
from first principles by spectral factorization rather than hardcoded tables.

A filter bank is represented by the :class:`Wavelet` dataclass holding the
analysis (decomposition) low/high-pass filters; synthesis filters of an
orthogonal bank are the time-reversed analysis filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb

import numpy as np

__all__ = ["Wavelet", "haar", "daubechies", "get_wavelet"]

_SQRT2 = np.sqrt(2.0)


@dataclass(frozen=True)
class Wavelet:
    """An orthogonal two-channel filter bank.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"haar"`` or ``"db4"``.
    dec_lo:
        Low-pass analysis filter (scaling function coefficients), normalized
        so that ``sum(dec_lo) == sqrt(2)``.
    dec_hi:
        High-pass analysis filter (wavelet function coefficients), the
        quadrature mirror of ``dec_lo``.
    """

    name: str
    dec_lo: np.ndarray
    dec_hi: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        lo = np.asarray(self.dec_lo, dtype=float)
        object.__setattr__(self, "dec_lo", lo)
        if self.dec_hi is None:
            object.__setattr__(self, "dec_hi", qmf(lo))
        else:
            object.__setattr__(self, "dec_hi", np.asarray(self.dec_hi, dtype=float))
        if self.dec_lo.shape != self.dec_hi.shape:
            raise ValueError("low- and high-pass filters must have equal length")
        if len(self.dec_lo) % 2 != 0:
            raise ValueError("orthogonal wavelet filters must have even length")

    @property
    def rec_lo(self) -> np.ndarray:
        """Low-pass synthesis filter (time-reversed analysis filter)."""
        return self.dec_lo[::-1].copy()

    @property
    def rec_hi(self) -> np.ndarray:
        """High-pass synthesis filter (time-reversed analysis filter)."""
        return self.dec_hi[::-1].copy()

    @property
    def length(self) -> int:
        """Filter length (2 for Haar, 2N for dbN)."""
        return len(self.dec_lo)

    def is_orthogonal(self, atol: float = 1e-8) -> bool:
        """Check the orthonormality conditions of the filter bank.

        Verifies unit energy, double-shift orthogonality and cross-channel
        orthogonality — the conditions that make the periodized DWT an
        orthonormal transform (and hence make Parseval's equation hold).
        """
        lo, hi = self.dec_lo, self.dec_hi
        n = len(lo)
        for shift in range(0, n, 2):
            want = 1.0 if shift == 0 else 0.0
            if abs(np.dot(lo[shift:], lo[: n - shift]) - want) > atol:
                return False
            if abs(np.dot(hi[shift:], hi[: n - shift]) - want) > atol:
                return False
            if abs(np.dot(lo[shift:], hi[: n - shift])) > atol:
                return False
            if shift and abs(np.dot(hi[shift:], lo[: n - shift])) > atol:
                return False
        return True

    def vanishing_moments(self, atol: float = 1e-6) -> int:
        """Number of vanishing moments of the wavelet function.

        Counted as the number of leading polynomial moments of ``dec_hi``
        that are (numerically) zero.
        """
        n = np.arange(len(self.dec_hi))
        count = 0
        scale = np.abs(self.dec_hi).sum()
        for p in range(len(self.dec_hi)):
            moment = float(np.dot(self.dec_hi, n**p))
            if abs(moment) > atol * scale * max(1.0, float(n[-1]) ** p):
                break
            count += 1
        return count


def qmf(dec_lo: np.ndarray) -> np.ndarray:
    """Quadrature mirror filter: ``g[n] = (-1)^n h[L-1-n]``."""
    lo = np.asarray(dec_lo, dtype=float)
    signs = np.where(np.arange(len(lo)) % 2 == 0, 1.0, -1.0)
    return signs * lo[::-1]


def haar() -> Wavelet:
    """The Haar wavelet of Figure 1: a one-period square pulse.

    ``dec_lo = [1, 1]/sqrt(2)`` averages pairs of samples; ``dec_hi``
    differences them, exposing sharp discontinuities.
    """
    return Wavelet("haar", np.array([1.0, 1.0]) / _SQRT2)

def daubechies(order: int) -> Wavelet:
    """Daubechies wavelet with ``order`` vanishing moments (db1..db20).

    The filter is constructed by spectral factorization: the Daubechies
    polynomial ``P(y) = sum_k C(order-1+k, k) y^k`` is factored and the
    minimum-phase root set is retained, yielding the classic extremal-phase
    Daubechies filters.  ``db1`` coincides with Haar.
    """
    if order < 1:
        raise ValueError("Daubechies order must be >= 1")
    if order == 1:
        return Wavelet("db1", np.array([1.0, 1.0]) / _SQRT2)
    if order > 20:
        raise ValueError("orders above db20 are numerically unstable here")

    # P(y) with y = sin^2(w/2); roots of P give the non-trivial zeros.
    p_coeffs = [comb(order - 1 + k, k) for k in range(order)]
    # numpy.roots wants highest degree first.
    y_roots = np.roots(list(reversed(p_coeffs)))

    # Map each y-root to z-roots via y = (2 - z - 1/z)/4  =>
    # z^2 - (2 - 4y) z + 1 = 0; keep the root inside the unit circle
    # (minimum phase => extremal-phase Daubechies).
    z_roots = []
    for y in y_roots:
        b = 2.0 - 4.0 * y
        disc = np.sqrt(b * b - 4.0 + 0j)
        for cand in ((b + disc) / 2.0, (b - disc) / 2.0):
            if abs(cand) < 1.0:
                z_roots.append(cand)
                break

    # H(z) = sqrt(2) * ((1+z^-1)/2)^order * prod (1 - z_i z^-1)/(1 - z_i);
    # keeping the zeros of H(z^-1=.) inside the unit circle gives the
    # minimum-phase (extremal-phase) Daubechies convention.
    poly = np.array([1.0 + 0j])
    for _ in range(order):
        poly = np.convolve(poly, [0.5, 0.5])
    for z in z_roots:
        poly = np.convolve(poly, np.array([1.0, -z]) / (1.0 - z))
    coeffs = np.real(poly) * _SQRT2
    # Normalize exactly: numerical noise from root finding is rescaled away.
    coeffs *= _SQRT2 / coeffs.sum()
    return Wavelet(f"db{order}", coeffs)


def get_wavelet(name: str | Wavelet) -> Wavelet:
    """Resolve a wavelet by name (``"haar"``, ``"db4"``) or pass through."""
    if isinstance(name, Wavelet):
        return name
    key = name.strip().lower()
    if key == "haar":
        return haar()
    if key.startswith("db"):
        try:
            order = int(key[2:])
        except ValueError as exc:
            raise ValueError(f"unknown wavelet {name!r}") from exc
        return daubechies(order)
    raise ValueError(f"unknown wavelet {name!r}")

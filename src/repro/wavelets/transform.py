"""The discrete wavelet transform (Mallat's fast wavelet transform).

Implements the periodized orthogonal DWT used throughout the paper: a
256-cycle current window decomposes into 8 dyadic levels whose detail
subbands correspond to the frequency bands relevant for dI/dt (§2.1).

Conventions
-----------
``dwt`` splits a length-``N`` signal (``N`` even) into approximation and
detail halves of length ``N/2``::

    a[k] = sum_n dec_lo[n] * x[(2k + n) mod N]
    d[k] = sum_n dec_hi[n] * x[(2k + n) mod N]

With an orthogonal filter bank this is an orthonormal change of basis, so
energy is preserved at every level (Parseval) and ``idwt`` reconstructs
exactly.  Levels are numbered like PyWavelets: level 1 is the *finest*
detail (highest frequency), level ``J`` the coarsest.  The paper's scale
index ``j`` (larger = finer, Figure 2) maps to ``level = J - j``.
"""

from __future__ import annotations

import numpy as np

from .filters import Wavelet, get_wavelet

__all__ = [
    "dwt",
    "idwt",
    "wavedec",
    "waverec",
    "max_level",
    "haar_dwt",
    "haar_idwt",
]


def _as_signal(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError("expected a 1-D signal")
    return arr


def max_level(n: int, wavelet: str | Wavelet = "haar") -> int:
    """Deepest useful decomposition level for a length-``n`` signal.

    For the periodized transform a level is useful while the working length
    stays even; for a power of two this is ``log2(n)`` with Haar.
    """
    w = get_wavelet(wavelet)
    level = 0
    # Each level needs an even working length at least as long as the
    # filter: for n >= L the periodized rows wrap at most once and stay
    # orthonormal; below that the transform is no longer invertible.
    while n % 2 == 0 and n >= w.length:
        n //= 2
        level += 1
    return level


def dwt(x: np.ndarray, wavelet: str | Wavelet = "haar") -> tuple[np.ndarray, np.ndarray]:
    """One level of the periodized DWT.

    Parameters
    ----------
    x:
        Signal of even length.
    wavelet:
        Wavelet name or :class:`~repro.wavelets.filters.Wavelet`.

    Returns
    -------
    (approx, detail):
        Each of length ``len(x) // 2``.
    """
    x = _as_signal(x)
    n = len(x)
    if n % 2 != 0:
        raise ValueError("periodized DWT requires an even-length signal")
    if n == 0:
        raise ValueError("cannot transform an empty signal")
    w = get_wavelet(wavelet)
    half = n // 2
    # Gather x[(2k + m) mod n] for k in [0, half), m in [0, L): a (half, L)
    # matrix of periodized samples, then one matmul per channel.
    k2 = 2 * np.arange(half)[:, None]
    idx = (k2 + np.arange(w.length)[None, :]) % n
    windows = x[idx]
    return windows @ w.dec_lo, windows @ w.dec_hi


def idwt(
    approx: np.ndarray, detail: np.ndarray, wavelet: str | Wavelet = "haar"
) -> np.ndarray:
    """Invert one level of the periodized DWT.

    Reconstructs ``x[m] = sum_k a[k] h[(m - 2k) mod n] + d[k] g[(m - 2k) mod n]``.
    """
    a = _as_signal(approx)
    d = _as_signal(detail)
    if len(a) != len(d):
        raise ValueError("approximation and detail must have equal length")
    if len(a) == 0:
        raise ValueError("cannot invert an empty decomposition")
    w = get_wavelet(wavelet)
    half = len(a)
    n = 2 * half
    x = np.zeros(n)
    k2 = 2 * np.arange(half)[:, None]
    idx = (k2 + np.arange(w.length)[None, :]) % n
    np.add.at(x, idx, a[:, None] * w.dec_lo[None, :])
    np.add.at(x, idx, d[:, None] * w.dec_hi[None, :])
    return x


def wavedec(
    x: np.ndarray, wavelet: str | Wavelet = "haar", level: int | None = None
) -> list[np.ndarray]:
    """Multilevel DWT (the fast wavelet transform, O(N)).

    Returns ``[aJ, dJ, dJ-1, ..., d1]`` — coarsest approximation first, then
    details from coarsest (level ``J``) to finest (level 1), mirroring the
    coefficient matrix of Figure 2 read top-to-bottom after the first row.
    """
    x = _as_signal(x)
    w = get_wavelet(wavelet)
    limit = max_level(len(x), w)
    if level is None:
        level = limit
    if level < 0:
        raise ValueError("level must be non-negative")
    if level > limit:
        raise ValueError(
            f"level {level} too deep for signal of length {len(x)} (max {limit})"
        )
    details: list[np.ndarray] = []
    approx = x
    for _ in range(level):
        approx, det = dwt(approx, w)
        details.append(det)
    return [approx] + details[::-1]


def waverec(coeffs: list[np.ndarray], wavelet: str | Wavelet = "haar") -> np.ndarray:
    """Invert :func:`wavedec`."""
    if not coeffs:
        raise ValueError("empty coefficient list")
    w = get_wavelet(wavelet)
    approx = _as_signal(coeffs[0])
    for det in coeffs[1:]:
        approx = idwt(approx, _as_signal(det), w)
    return approx


def haar_dwt(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Single-level Haar DWT without the generic filter machinery.

    The closed form ``a[k] = (x[2k] + x[2k+1])/sqrt(2)``,
    ``d[k] = (x[2k] - x[2k+1])/sqrt(2)`` is what the shift-register hardware
    of Figure 14 computes; this fast path exists so the hardware model and
    the online monitor can be validated against an independent reference.
    """
    x = _as_signal(x)
    if len(x) % 2 != 0:
        raise ValueError("Haar DWT requires an even-length signal")
    even, odd = x[0::2], x[1::2]
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    return (even + odd) * inv_sqrt2, (even - odd) * inv_sqrt2


def haar_idwt(approx: np.ndarray, detail: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_dwt`."""
    a = _as_signal(approx)
    d = _as_signal(detail)
    if len(a) != len(d):
        raise ValueError("approximation and detail must have equal length")
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    out = np.empty(2 * len(a))
    out[0::2] = (a + d) * inv_sqrt2
    out[1::2] = (a - d) * inv_sqrt2
    return out

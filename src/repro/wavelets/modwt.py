"""Maximal-overlap DWT (MODWT) and unbiased wavelet variance.

The paper grounds its wavelet-variance methodology in Serroukh, Walden &
Percival's estimator theory (its reference [19]), which is formulated for
the *maximal-overlap* DWT: an undecimated, shift-equivariant transform
with one coefficient per sample at every level.  This module provides it
as an extension — the MODWT pyramid, its exact inverse, and the unbiased
wavelet-variance estimator that discards boundary-affected coefficients —
so variance analyses that must not depend on where a window happens to
start can use it in place of the decimated DWT.

Conventions match :mod:`repro.wavelets.transform`: periodized filtering,
filters read forward, ``W[j][t] = sum_l g~[l] V[j-1][(t + 2^(j-1) l) % N]``
with the MODWT filters ``h~ = dec_lo / sqrt(2)``, ``g~ = dec_hi / sqrt(2)``.
"""

from __future__ import annotations

import numpy as np

from .filters import Wavelet, get_wavelet

__all__ = ["modwt", "imodwt", "modwt_variance", "modwt_max_level"]


def modwt_max_level(n: int, wavelet: str | Wavelet = "haar") -> int:
    """Deepest level with at least one boundary-free coefficient."""
    w = get_wavelet(wavelet)
    level = 0
    while (2 ** (level + 1) - 1) * (w.length - 1) + 1 <= n:
        level += 1
    return level


def _filter_periodic(v: np.ndarray, taps: np.ndarray, stride: int) -> np.ndarray:
    """``out[t] = sum_l taps[l] * v[(t + stride*l) % N]`` for all t."""
    n = len(v)
    out = np.zeros(n)
    for l, tap in enumerate(taps):
        out += tap * np.roll(v, -stride * l)
    return out


def modwt(
    x: np.ndarray, wavelet: str | Wavelet = "haar", level: int | None = None
) -> tuple[list[np.ndarray], np.ndarray]:
    """Maximal-overlap DWT.

    Returns ``(details, approx)`` where ``details[j-1]`` holds level-``j``
    coefficients (finest first) and every array has the input's length.
    Unlike the decimated DWT, the result is shift-equivariant: shifting
    the input circularly shifts every coefficient series identically.
    """
    v = np.asarray(x, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise ValueError("expected a non-empty 1-D signal")
    w = get_wavelet(wavelet)
    limit = modwt_max_level(len(v), w)
    if level is None:
        level = limit
    if not 0 <= level <= limit:
        raise ValueError(f"level must be in [0, {limit}] for this signal")
    h = w.dec_lo / np.sqrt(2.0)
    g = w.dec_hi / np.sqrt(2.0)
    details: list[np.ndarray] = []
    for j in range(1, level + 1):
        stride = 2 ** (j - 1)
        details.append(_filter_periodic(v, g, stride))
        v = _filter_periodic(v, h, stride)
    return details, v


def imodwt(
    details: list[np.ndarray],
    approx: np.ndarray,
    wavelet: str | Wavelet = "haar",
) -> np.ndarray:
    """Invert :func:`modwt` exactly."""
    w = get_wavelet(wavelet)
    h = w.dec_lo / np.sqrt(2.0)
    g = w.dec_hi / np.sqrt(2.0)
    v = np.asarray(approx, dtype=float)
    for j in range(len(details), 0, -1):
        stride = 2 ** (j - 1)
        d = np.asarray(details[j - 1], dtype=float)
        if d.shape != v.shape:
            raise ValueError("detail/approx length mismatch")
        # Adjoint filtering: out[t] = sum_l taps[l] * c[(t - stride*l) % N].
        n = len(v)
        out = np.zeros(n)
        for l, tap in enumerate(h):
            out += tap * np.roll(v, stride * l)
        for l, tap in enumerate(g):
            out += tap * np.roll(d, stride * l)
        v = out
    return v


def modwt_variance(
    x: np.ndarray,
    wavelet: str | Wavelet = "haar",
    level: int | None = None,
    unbiased: bool = True,
) -> dict[int, float]:
    """Per-scale wavelet variance, the Serroukh/Walden/Percival way.

    The level-``j`` estimate averages squared MODWT coefficients; with
    ``unbiased`` the boundary-affected coefficients (those whose filter
    support wraps around the ends) are discarded, removing the
    periodization bias the decimated estimator carries.  For a zero-mean
    stationary series the estimates sum (over all levels, biased form) to
    the signal variance.
    """
    series = np.asarray(x, dtype=float)
    details, _ = modwt(series, wavelet, level)
    w = get_wavelet(wavelet)
    out: dict[int, float] = {}
    n = series.size
    for j, d in enumerate(details, start=1):
        if unbiased:
            boundary = (2**j - 1) * (w.length - 1)
            good = d[boundary:] if boundary < n else d[:0]
            if good.size == 0:
                raise ValueError(
                    f"no boundary-free coefficients at level {j}; "
                    f"use a longer series or fewer levels"
                )
            out[j] = float(np.mean(good**2))
        else:
            out[j] = float(np.mean(d**2))
    return out

"""Wavelet variance and adjacent-coefficient correlation.

§4.1 of the paper builds its offline estimator on two statistics of the
detail coefficients:

* the per-scale *wavelet variance* — by Parseval's equation the variance a
  subband contributes to the signal equals the mean of its squared detail
  coefficients, and
* the lag-1 *adjacent-coefficient correlation* per scale — strong positive
  or negative correlation between neighbouring coefficients marks pulse
  trains that can build constructive interference in the supply network.

Confidence intervals follow Serroukh/Walden/Percival (the paper's [19]).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sstats

from .coefficients import WaveletDecomposition, decompose
from .filters import Wavelet

__all__ = [
    "scale_variance",
    "wavelet_variances",
    "adjacent_correlation",
    "scale_correlations",
    "variance_confidence_interval",
    "total_variance_from_scales",
]


def _decomposition(
    x, wavelet: str | Wavelet = "haar", level: int | None = None
) -> WaveletDecomposition:
    if isinstance(x, WaveletDecomposition):
        return x
    return decompose(x, wavelet, level)


def scale_variance(dec_or_signal, level: int, wavelet: str | Wavelet = "haar") -> float:
    """Variance contributed by one detail scale.

    Parseval: ``var_j = sum_k d[j,k]^2 / N`` where ``N`` is the original
    signal length.  Summed over all detail scales this recovers the total
    variance of the (mean-removed) signal exactly — the identity §4.1
    step 2 relies on.
    """
    dec = _decomposition(dec_or_signal, wavelet)
    det = dec.detail(level)
    return float(np.sum(det**2)) / dec.length


def wavelet_variances(
    dec_or_signal, wavelet: str | Wavelet = "haar", level: int | None = None
) -> dict[int, float]:
    """Per-scale variances for every detail level, keyed by level."""
    dec = _decomposition(dec_or_signal, wavelet, level)
    return {lvl: scale_variance(dec, lvl) for lvl in dec.levels}


def total_variance_from_scales(variances: dict[int, float]) -> float:
    """Sum the per-scale contributions back into a total signal variance."""
    return float(sum(variances.values()))


def adjacent_correlation(coefficients: np.ndarray) -> float:
    """Lag-1 autocorrelation of a coefficient row (§4.1 step 3).

    Returns 0 for rows too short or too flat to define a correlation, which
    is the neutral value for the voltage-variance model (no resonant pulse
    pattern detected).
    """
    c = np.asarray(coefficients, dtype=float)
    if c.size < 3:
        return 0.0
    a, b = c[:-1], c[1:]
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    corr = float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))
    # Guard against numerical overshoot.
    return float(np.clip(corr, -1.0, 1.0))


def scale_correlations(
    dec_or_signal, wavelet: str | Wavelet = "haar", level: int | None = None
) -> dict[int, float]:
    """Adjacent-coefficient correlation for every detail level."""
    dec = _decomposition(dec_or_signal, wavelet, level)
    return {lvl: adjacent_correlation(dec.detail(lvl)) for lvl in dec.levels}


def variance_confidence_interval(
    detail: np.ndarray, confidence: float = 0.95
) -> tuple[float, float]:
    """Chi-squared confidence interval for a subband's variance estimate.

    Treats the ``M`` detail coefficients of a scale as approximately
    independent Gaussians (exact under the Gaussian-window model of §4.1),
    so ``M * var_hat / var ~ chi2(M)``.
    """
    d = np.asarray(detail, dtype=float)
    m = d.size
    if m < 2:
        raise ValueError("need at least two coefficients")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    est = float(np.mean(d**2))
    alpha = 1.0 - confidence
    lo_q = sstats.chi2.ppf(1.0 - alpha / 2.0, df=m)
    hi_q = sstats.chi2.ppf(alpha / 2.0, df=m)
    return m * est / lo_q, m * est / hi_q

"""Shared-memory trace publication: RAM-only zero-copy sharing.

The mmap store covers traces that live on disk; this module covers the
other half of the ISSUE-6 data path — a trace that exists only in the
producing process's memory (a just-finished simulation, an in-flight
service request) shared with pool workers without writing a file and
without pickling the array:

* :func:`publish_shared` copies the samples once into a
  ``multiprocessing.shared_memory`` segment and returns a
  :class:`SharedTrace` handle plus a ``shm://``-schemed
  :class:`~repro.store.TraceRef` that travels through a JobSpec;
* workers resolve the ref via :func:`attach_shared`, which maps the
  segment read-only — every process sees the same physical pages.

The publisher owns the segment's lifetime: ``close()`` detaches,
``unlink()`` frees the backing memory (a context manager does both).
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory

import numpy as np

from ..errors import SpecError
from ..obs import trace as obs
from .format import DTYPES, content_hash
from .ref import SHM_SCHEME, TraceRef

__all__ = ["SharedTrace", "publish_shared", "attach_shared"]

#: Attached segments by name: keeps the buffer alive for the views
#: handed out, and makes repeated attaches in one process free.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}

#: Segments this process (or, via fork, an ancestor) published.  Their
#: resource-tracker registration belongs to the publisher and must not
#: be clobbered by the attach-side workaround below.
_PUBLISHED: set[str] = set()


def attach_shared(name: str, dtype: str, cycles: int) -> np.ndarray:
    """A read-only zero-copy view of a published segment's samples."""
    if dtype not in DTYPES:
        raise SpecError(f"unsupported trace dtype {dtype!r}", dtype=dtype)
    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise SpecError(
                f"shared trace segment {name!r} does not exist "
                "(publisher gone or already unlinked)",
                segment=name,
            ) from None
        # Attaching registers with the resource tracker on POSIX
        # (python/cpython#82300), so a spawn-started worker's tracker
        # would unlink the segment when the worker exits — out from
        # under the publisher.  Unregister the attach-side entry, except
        # when this process tree published the segment itself: then the
        # registration is the publisher's own and must survive until
        # ``unlink``.
        if name not in _PUBLISHED:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        _ATTACHED[name] = shm
    view = np.frombuffer(shm.buf, dtype=DTYPES[dtype], count=cycles)
    view.setflags(write=False)
    obs.counter_inc(
        "store_shm_attaches_total", 1, "shared-memory trace attaches"
    )
    obs.counter_inc(
        "store_attached_bytes_total",
        view.nbytes,
        "trace bytes exposed through mmap views (never copied)",
    )
    return view


class SharedTrace:
    """Publisher-side handle of one shared-memory trace segment."""

    def __init__(self, benchmark: str, current: np.ndarray,
                 dtype: str | None = None) -> None:
        current = np.asarray(current)
        if current.ndim != 1:
            raise SpecError("a trace must be a 1-D sample array")
        if dtype is None:
            dtype = (
                str(current.dtype)
                if str(current.dtype) in DTYPES
                else "float64"
            )
        data = np.ascontiguousarray(current, dtype=DTYPES[dtype])
        name = f"repro-trace-{secrets.token_hex(6)}"
        nbytes = max(data.nbytes, 1)  # zero-byte segments are invalid
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=nbytes
        )
        _PUBLISHED.add(self._shm.name)
        self._shm.buf[: data.nbytes] = data.tobytes()
        self.benchmark = benchmark
        self.dtype = dtype
        self.cycles = int(data.size)
        self.sha256 = content_hash(data)
        obs.counter_inc(
            "store_shm_published_bytes_total",
            data.nbytes,
            "trace bytes published to shared-memory segments",
        )

    @property
    def name(self) -> str:
        return self._shm.name

    def ref(self, start: int = 0, stop: int | None = None) -> TraceRef:
        """A ``shm://`` ref to this segment, spec-embeddable."""
        return TraceRef(
            store=f"{SHM_SCHEME}{self.name}",
            trace_id=self.sha256[:16],
            dtype=self.dtype,
            cycles=self.cycles,
            sha256=self.sha256,
            start=start,
            stop=stop,
        )

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Free the backing memory (call exactly once, publisher-side)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        _PUBLISHED.discard(self._shm.name)
        # Any attach-side memo entry stays: views handed out may still
        # reference the buffer, and POSIX keeps unlinked mapped pages
        # alive until the process exits.

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def publish_shared(
    benchmark: str, current: np.ndarray, dtype: str | None = None
) -> SharedTrace:
    """Publish ``current`` as a shared-memory trace segment."""
    return SharedTrace(benchmark, current, dtype=dtype)

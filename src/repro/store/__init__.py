"""Zero-copy trace store: an mmap-backed columnar corpus of current
traces with shared-memory worker attach.

The data path behind corpus-scale dI/dt sweeps (ROADMAP item 2): traces
are ingested once into an append-only store — chunked float32/float64
columns plus a JSON-lines metadata index — and every later pipeline job
carries only a :class:`TraceRef` (store path + trace id + slice).
Workers resolve the ref by memory-mapping the chunk (or attaching a
``shm://`` shared-memory segment) and run kernels in place, so no trace
bytes ever cross the job pickle channel; the per-trace dtype-explicit
content hashes plug straight into the pipeline cache keys, deduping a
stored trace against a regenerated one.

Quickstart::

    from repro.store import TraceStore
    from repro.uarch import simulate_benchmark

    store = TraceStore(".trace-store", mode="a")
    result = simulate_benchmark("gzip", cycles=65536)
    record = store.ingest(
        result.current, "gzip",
        generator={"benchmark": "gzip", "cycles": 65536,
                   "seed": None, "warmup_cycles": 4096},
    )
    trace = store.attach(record)      # zero-copy read-only mmap view
    ref = store.ref(record)           # travels through a JobSpec

See ``docs/STORE.md`` for the on-disk format and recovery semantics,
``repro store ingest|ls|verify|gc`` for the CLI surface, and
``repro bench --store`` for the throughput benchmark
(``BENCH_store.json``).
"""

from .format import (
    DEFAULT_CHUNK_BYTES,
    DTYPES,
    FORMAT_NAME,
    FORMAT_VERSION,
    TraceRecord,
    content_hash,
)
from .ref import TraceRef, ref_for
from .shm import SharedTrace, attach_shared, publish_shared
from .store import TraceStore, open_store
from .bench import run_store_bench

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "DTYPES",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SharedTrace",
    "TraceRecord",
    "TraceRef",
    "TraceStore",
    "attach_shared",
    "content_hash",
    "open_store",
    "publish_shared",
    "ref_for",
    "run_store_bench",
]

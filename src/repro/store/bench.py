"""Store throughput benchmarks: ``repro bench --store``.

Three numbers, written to ``BENCH_store.json``:

* **ingest** — GB/s appending synthetic float32 traces to a fresh store
  (chunk write + hash + index append);
* **scan** — GB/s reading every stored trace back through the zero-copy
  mmap attach (one full reduction per trace forces the page reads);
* **end_to_end** — characterize-from-store vs. the regenerate baseline,
  in traces/sec: the same benchmarks through the same pipeline stages,
  once resolving :class:`~repro.store.TraceRef`\\ s against the store
  (``load_trace > voltage > characterize``) and once re-simulating
  (``simulate > voltage > characterize``, the pickle-era hot path, with
  the in-process simulation memo cleared between repeats so the baseline
  pays what it always paid).

``--quick`` shrinks sizes to CI-smoke scale.  The acceptance gate is
``end_to_end.speedup >= 1``: reading the corpus must never be slower
than regenerating it.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from ..obs import trace as obs
from .store import TraceStore

__all__ = ["run_store_bench", "format_store_results", "DEFAULT_STORE_OUTPUT"]

DEFAULT_STORE_OUTPUT = "BENCH_store.json"

#: Input sizing per mode: (full, quick).
_SIZES = {
    "ingest_traces": (16, 4),
    "ingest_samples": (1 << 22, 1 << 18),  # per trace, float32
    "e2e_benchmarks": (8, 3),
    "e2e_cycles": (1 << 15, 1 << 13),
    "repeats": (3, 2),
}


def _size(key: str, quick: bool) -> int:
    full, small = _SIZES[key]
    return small if quick else full


def _synthetic_trace(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    base = 40.0 + 8.0 * np.sin(2 * np.pi * t / 4096.0)
    return (base + rng.normal(0.0, 5.0, n)).astype(np.float32)


def _bench_ingest(root: Path, quick: bool) -> dict:
    traces = [
        _synthetic_trace(_size("ingest_samples", quick), seed)
        for seed in range(_size("ingest_traces", quick))
    ]
    total = sum(t.nbytes for t in traces)
    store = TraceStore(root, mode="a")
    with obs.span("store.bench.ingest", nbytes=total):
        t0 = time.perf_counter()
        for i, trace in enumerate(traces):
            store.ingest(trace, f"synthetic-{i}")
        elapsed = time.perf_counter() - t0
    return {
        "traces": len(traces),
        "bytes": total,
        "seconds": elapsed,
        "gb_per_s": total / elapsed / 1e9 if elapsed > 0 else float("inf"),
    }


def _bench_scan(root: Path, repeats: int) -> dict:
    store = TraceStore(root, mode="r")
    records = store.records()
    total = sum(r.nbytes for r in records)

    def scan() -> float:
        acc = 0.0
        for record in records:
            acc += float(np.add.reduce(store.attach(record)))
        return acc

    with obs.span("store.bench.scan", nbytes=total):
        scan()  # warm the page cache: steady-state scan is what sweeps see
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            scan()
            best = min(best, time.perf_counter() - t0)
    return {
        "traces": len(records),
        "bytes": total,
        "seconds": best,
        "gb_per_s": total / best / 1e9 if best > 0 else float("inf"),
    }


def _bench_end_to_end(root: Path, quick: bool, repeats: int) -> dict:
    from ..core import calibrated_supply
    from ..pipeline import (
        BatchOptions,
        build_characterization_jobs,
        build_store_jobs,
        submit,
    )
    from ..uarch import simulate_benchmark, simulator
    from ..workloads import SPEC2000

    count = _size("e2e_benchmarks", quick)
    cycles = _size("e2e_cycles", quick)
    names = tuple(sorted(SPEC2000))[:count]
    network = calibrated_supply(150)

    store = TraceStore(root, mode="a")
    for name in names:
        result = simulate_benchmark(name, cycles=cycles)
        store.ingest(
            result.current,
            name,
            generator={
                "benchmark": name,
                "cycles": cycles,
                "seed": None,
                "warmup_cycles": 4096,
            },
        )

    store_jobs = build_store_jobs(store, network, benchmarks=names)
    baseline_jobs = build_characterization_jobs(
        names, network, cycles=cycles
    )

    def run_store() -> None:
        submit(store_jobs, BatchOptions(jobs=1))

    def run_baseline() -> None:
        # The memo would hand the baseline its traces for free after the
        # warm-up above; clear it so every repeat re-simulates, exactly
        # like a fresh sweep does.
        simulator._CACHE.clear()
        submit(baseline_jobs, BatchOptions(jobs=1))

    with obs.span(
        "store.bench.end_to_end", benchmarks=count, cycles=cycles
    ):
        store_s, baseline_s = float("inf"), float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_store()
            store_s = min(store_s, time.perf_counter() - t0)
        for _ in range(max(repeats - 1, 1)):
            t0 = time.perf_counter()
            run_baseline()
            baseline_s = min(baseline_s, time.perf_counter() - t0)
    return {
        "benchmarks": count,
        "cycles": cycles,
        "store_s": store_s,
        "baseline_s": baseline_s,
        "store_traces_per_s": count / store_s if store_s > 0 else float("inf"),
        "baseline_traces_per_s": (
            count / baseline_s if baseline_s > 0 else float("inf")
        ),
        "speedup": baseline_s / store_s if store_s > 0 else float("inf"),
    }


def run_store_bench(
    quick: bool = False,
    output: str | Path | None = DEFAULT_STORE_OUTPUT,
    store_dir: str | Path | None = None,
) -> dict:
    """Run the three store benchmarks; returns (and writes) the results.

    ``store_dir`` reuses an existing directory for the bench stores
    (useful to bench a specific disk); by default everything happens in
    a temp directory that is removed afterwards.
    """
    tmp = None
    if store_dir is None:
        tmp = tempfile.mkdtemp(prefix="repro-store-bench-")
        base = Path(tmp)
    else:
        base = Path(store_dir)
        base.mkdir(parents=True, exist_ok=True)
    repeats = _size("repeats", quick)
    try:
        results = {
            "quick": quick,
            "ingest": _bench_ingest(base / "ingest", quick),
            "scan": _bench_scan(base / "ingest", repeats),
            "end_to_end": _bench_end_to_end(
                base / "e2e", quick, repeats
            ),
        }
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
    if output is not None:
        Path(output).write_text(json.dumps(results, indent=2) + "\n")
    return results


def format_store_results(results: dict) -> str:
    """Human-readable summary of one :func:`run_store_bench` dict."""
    ing, scan, e2e = results["ingest"], results["scan"], results["end_to_end"]
    return "\n".join(
        [
            f"store benchmarks ({'quick' if results['quick'] else 'full'} "
            "mode):",
            f"  ingest : {ing['bytes'] / 1e6:8.1f} MB in "
            f"{ing['seconds'] * 1e3:8.1f}ms  "
            f"({ing['gb_per_s']:.2f} GB/s, {ing['traces']} traces)",
            f"  scan   : {scan['bytes'] / 1e6:8.1f} MB in "
            f"{scan['seconds'] * 1e3:8.1f}ms  "
            f"({scan['gb_per_s']:.2f} GB/s, mmap attach)",
            f"  end-to-end characterize ({e2e['benchmarks']} benchmarks x "
            f"{e2e['cycles']} cycles):",
            f"    from store : {e2e['store_traces_per_s']:8.2f} traces/s",
            f"    regenerate : {e2e['baseline_traces_per_s']:8.2f} traces/s",
            f"    speedup    : {e2e['speedup']:8.1f}x",
        ]
    )

"""On-disk format of the trace store: manifest, chunks, index records.

A store is a directory::

    <root>/
      manifest.json            {"format": ..., "version": 1, "chunk_bytes": N}
      index.jsonl              one JSON record (or tombstone) per line
      chunks/chunk-000000.bin  raw little-endian sample bytes, append-only

Sample data lives in *chunk files*: flat, uncompressed, concatenated
float32/float64 columns.  A trace is a contiguous ``(chunk, offset,
nbytes)`` byte range, so readers memory-map a chunk once and slice —
no parsing, no decompression, no copies.  The metadata index is JSON
lines (append one line per ingest), so a crashed writer loses at most
the record it was appending and ``repro store verify``/``gc`` can always
re-derive a consistent view from what is on disk.

The index is append-only: a deletion is a *tombstone* line
(``{"op": "remove", ...}``) applied in file order, and ``gc`` compacts
chunks and index together.  Everything here is layout and (de)serial-
ization; behavior lives in :mod:`repro.store.store`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..errors import SpecError

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "DEFAULT_CHUNK_BYTES",
    "DTYPES",
    "TraceRecord",
    "canonical_hash",
    "content_hash",
    "read_index",
    "chunk_filename",
]

FORMAT_NAME = "repro-trace-store"
FORMAT_VERSION = 1

#: Roll to a new chunk file once the current one exceeds this many bytes
#: (per-store override via the manifest).  Large enough that a multi-
#: million-cycle sweep shares mappings; small enough that ``gc`` never
#: rewrites more than one file per live region.
DEFAULT_CHUNK_BYTES = 256 * 1024 * 1024

#: Storable sample dtypes.  Everything is little-endian on disk; the
#: dtype string in the index is authoritative.
DTYPES = {"float32": np.dtype("<f4"), "float64": np.dtype("<f8")}


def canonical_hash(payload: dict) -> str:
    """SHA-256 of a canonical-JSON payload (same recipe as the pipeline
    cache keys, duplicated here so the store stays pipeline-free)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def content_hash(current: np.ndarray) -> str:
    """Dtype-explicit content hash of a trace's samples.

    The dtype tag is folded into the digest so a float32 trace and its
    float64 widening can never hash alike — the property the pipeline
    cache keys rely on (see ISSUE 6 / ``CACHE_SCHEMA_VERSION`` 3).
    """
    arr = np.ascontiguousarray(current)
    h = hashlib.sha256()
    h.update(arr.dtype.str.encode() + b"\0")
    h.update(arr.tobytes())
    return h.hexdigest()


def chunk_filename(chunk: int) -> str:
    """The chunk file name for chunk number ``chunk``."""
    return f"chunk-{chunk:06d}.bin"


@dataclass(frozen=True)
class TraceRecord:
    """One trace's index entry: where its bytes live and what they are.

    ``generator``, when present, names the exact simulator invocation
    that produced the trace (``benchmark``/``cycles``/``seed``/
    ``warmup_cycles``) — the key to deduping a stored trace against a
    regenerated one in the pipeline cache.  ``meta`` is free-form
    provenance (source file, probe id, ...), never hashed.
    """

    trace_id: str
    benchmark: str
    dtype: str
    cycles: int  # sample count
    chunk: int
    offset: int  # byte offset within the chunk file
    nbytes: int
    sha256: str  # dtype-explicit content hash (see content_hash)
    generator: dict | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise SpecError(
                f"unsupported trace dtype {self.dtype!r}; "
                f"supported: {sorted(DTYPES)}",
                dtype=self.dtype,
            )
        if self.cycles < 0 or self.offset < 0 or self.chunk < 0:
            raise SpecError("trace record fields must be non-negative")
        if self.nbytes != self.cycles * DTYPES[self.dtype].itemsize:
            raise SpecError(
                f"trace {self.trace_id}: {self.nbytes} bytes is not "
                f"{self.cycles} x {self.dtype} samples",
                trace_id=self.trace_id,
            )

    @property
    def itemsize(self) -> int:
        return DTYPES[self.dtype].itemsize

    def to_json(self) -> str:
        """The record as one index line."""
        d = asdict(self)
        if d["generator"] is None:
            del d["generator"]
        if not d["meta"]:
            del d["meta"]
        return json.dumps(d, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        return cls(**json.loads(line))


def make_trace_id(
    sha256: str, benchmark: str, dtype: str, generator: dict | None
) -> str:
    """Deterministic trace id: identical (content, metadata) ingests
    collapse to the same id, which is what makes ingest idempotent."""
    return canonical_hash(
        {
            "sha256": sha256,
            "benchmark": benchmark,
            "dtype": dtype,
            "generator": generator,
        }
    )[:16]


def read_index(path: str | Path) -> dict[str, TraceRecord]:
    """Read an index file, applying tombstones in order.

    A trailing partially-written line (a crashed appender) is ignored
    rather than failing the whole store; ``verify`` reports it.
    """
    records: dict[str, TraceRecord] = {}
    path = Path(path)
    if not path.is_file():
        return records
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn tail line; verify() surfaces it
            if data.get("op") == "remove":
                records.pop(data.get("trace_id"), None)
                continue
            record = TraceRecord(**data)
            records[record.trace_id] = record
    return records

"""`TraceRef`: the lightweight handle that travels instead of the trace.

A :class:`TraceRef` names a (slice of a) stored trace — store locator,
trace id, slice bounds — plus everything the pipeline needs to compute
cache keys *without* opening the store: the dtype-explicit content hash
and, when the trace came from our simulator, the exact generator
parameters.  A ref pickles in a few hundred bytes, so putting one in a
:class:`~repro.pipeline.JobSpec` (its ``trace`` field) eliminates trace
serialization from the job channel entirely; the worker resolves the ref
by memory-mapping the chunk in place.

Two locator schemes:

* a filesystem path — resolved through the memoized
  :func:`~repro.store.store.open_store` mmap attach;
* ``shm://<name>`` — a ``multiprocessing.shared_memory`` segment
  published by :func:`repro.store.shm.publish_shared`, for sharing a
  trace that was never written to disk.

``identity()`` is the cache-key payload: generator-backed full-trace
refs hash exactly like the equivalent ``simulate`` stage invocation
(same dtype, same parameters), which is what makes a stored trace and a
regenerated trace dedupe to the same downstream cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from .format import DTYPES

__all__ = ["TraceRef", "SHM_SCHEME"]

SHM_SCHEME = "shm://"

#: Fields of a generator dict, mirroring the ``simulate`` stage's spec
#: fields — identity dedup requires exactly this vocabulary.
GENERATOR_FIELDS = ("benchmark", "cycles", "seed", "warmup_cycles")


@dataclass(frozen=True)
class TraceRef:
    """A pickling-cheap reference to (a slice of) a stored trace."""

    store: str  # store directory path, or "shm://<segment-name>"
    trace_id: str
    dtype: str
    cycles: int  # full stored length (samples), before slicing
    sha256: str
    start: int = 0
    stop: int | None = None
    generator: tuple[tuple[str, object], ...] | None = None

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise SpecError(
                f"unsupported trace dtype {self.dtype!r}", dtype=self.dtype
            )
        if self.generator is not None:
            names = tuple(name for name, _ in self.generator)
            if sorted(names) != sorted(GENERATOR_FIELDS):
                raise SpecError(
                    f"generator params must be exactly {GENERATOR_FIELDS}, "
                    f"got {names}"
                )

    # -- slicing / identity ----------------------------------------------------

    @property
    def bounds(self) -> tuple[int, int]:
        """Concrete (start, stop) after normalizing against ``cycles``."""
        lo, hi, _ = slice(self.start, self.stop).indices(self.cycles)
        return lo, max(hi, lo)

    @property
    def samples(self) -> int:
        lo, hi = self.bounds
        return hi - lo

    @property
    def whole(self) -> bool:
        return self.bounds == (0, self.cycles)

    def identity(self) -> dict:
        """The trace's content identity for pipeline cache keys.

        A full-length ref with generator params is *the same trace* a
        ``simulate`` stage with those params would produce, so it hashes
        identically (dedupe); anything else hashes by dtype-explicit
        content hash plus slice bounds.
        """
        if self.generator is not None and self.whole:
            return {
                "kind": "simulate",
                "dtype": self.dtype,
                **dict(self.generator),
            }
        return {
            "kind": "content",
            "dtype": self.dtype,
            "sha256": self.sha256,
            "slice": list(self.bounds),
        }

    # -- spec embedding --------------------------------------------------------

    def to_spec(self) -> tuple[tuple[str, object], ...]:
        """The ref as the sorted, hashable pair-tuple a JobSpec carries."""
        return tuple(
            sorted(
                {
                    "store": self.store,
                    "trace_id": self.trace_id,
                    "dtype": self.dtype,
                    "cycles": self.cycles,
                    "sha256": self.sha256,
                    "start": self.start,
                    "stop": self.stop,
                    "generator": self.generator,
                }.items()
            )
        )

    @classmethod
    def from_spec(cls, data) -> "TraceRef":
        """Rebuild a ref from a spec's ``trace`` field (tuples or the
        nested lists a JSON round-trip produces)."""
        fields = {str(k): v for k, v in data}
        generator = fields.get("generator")
        if generator is not None:
            fields["generator"] = tuple(
                (str(k), v) for k, v in generator
            )
        return cls(**fields)

    # -- resolution ------------------------------------------------------------

    def resolve(self) -> np.ndarray:
        """The referenced samples as a zero-copy read-only view.

        Filesystem refs attach through the per-process store/mmap memo;
        ``shm://`` refs attach the shared-memory segment.  Either way no
        sample bytes are copied.
        """
        lo, hi = self.bounds
        if self.store.startswith(SHM_SCHEME):
            from .shm import attach_shared

            return attach_shared(
                self.store[len(SHM_SCHEME):], self.dtype, self.cycles
            )[lo:hi]
        from .store import open_store

        store = open_store(self.store)
        record = store.get(self.trace_id)
        if record.sha256 != self.sha256:
            raise SpecError(
                f"trace {self.trace_id} in {self.store} has hash "
                f"{record.sha256[:12]}..., ref expects "
                f"{self.sha256[:12]}... (store rewritten since the ref "
                "was built?)",
                trace_id=self.trace_id,
                store=self.store,
            )
        return store.attach(record, lo, hi)


def ref_for(
    store_root: str, record, start: int = 0, stop: int | None = None
) -> TraceRef:
    """Build a ref to ``record`` in the store at ``store_root``."""
    generator = None
    if record.generator:
        generator = tuple(sorted(record.generator.items()))
    return TraceRef(
        store=str(store_root),
        trace_id=record.trace_id,
        dtype=record.dtype,
        cycles=record.cycles,
        sha256=record.sha256,
        start=start,
        stop=stop,
        generator=generator,
    )

"""The append-only, mmap-backed columnar trace store.

:class:`TraceStore` owns one store directory (see
:mod:`repro.store.format` for the layout) and exposes the full
lifecycle:

* ``ingest`` appends a trace's raw samples to the current chunk file and
  its metadata to the JSON-lines index — idempotently: re-ingesting
  identical content with identical metadata returns the existing record
  without writing a byte;
* ``attach`` memory-maps the trace's chunk (one shared read-only mapping
  per chunk per process) and returns a zero-copy ``numpy`` view of the
  samples — the hot path workers use to run kernels in place;
* ``verify`` re-hashes every record's bytes against the index and
  reports corruption, truncation and torn index lines;
* ``gc`` compacts: tombstoned traces and orphaned bytes (a crashed
  appender's tail) are dropped by rewriting chunks and index together.

Writes append data *before* index, so a crash can orphan bytes but never
index a trace whose bytes are missing; ``gc`` reclaims orphans.  Readers
in other processes attach through :func:`open_store`, which memoizes
read-only stores per path — the cheap operation a
:class:`~repro.store.TraceRef` resolution performs inside every worker.
"""

from __future__ import annotations

import json
import mmap
import os
from pathlib import Path

import numpy as np

from ..errors import SpecError, UsageError
from ..obs import trace as obs
from .format import (
    DEFAULT_CHUNK_BYTES,
    DTYPES,
    FORMAT_NAME,
    FORMAT_VERSION,
    TraceRecord,
    chunk_filename,
    content_hash,
    make_trace_id,
    read_index,
)

__all__ = ["TraceStore", "open_store"]

#: Process-wide chunk mappings: (resolved store root, chunk) -> mmap.
#: Shared across every store instance and every trace in a chunk, and
#: inherited for free by forked pool workers.
_CHUNK_MAPS: dict[tuple[str, int], mmap.mmap] = {}

#: Process-wide read-only store memo for TraceRef resolution.
_STORES: dict[str, "TraceStore"] = {}


def open_store(root: str | Path) -> "TraceStore":
    """A (memoized) read-only store for ``root`` — the worker-side entry
    point a :class:`~repro.store.TraceRef` resolves through."""
    key = str(Path(root).resolve())
    store = _STORES.get(key)
    if store is None:
        store = _STORES[key] = TraceStore(root, mode="r")
    return store


class TraceStore:
    """One trace-store directory, readable (``"r"``) or appendable
    (``"a"``; creates the directory and manifest when absent)."""

    def __init__(
        self,
        root: str | Path,
        mode: str = "r",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if mode not in ("r", "a"):
            raise UsageError(f"store mode must be 'r' or 'a', got {mode!r}")
        self.root = Path(root)
        self.mode = mode
        manifest_path = self.root / "manifest.json"
        if mode == "a":
            (self.root / "chunks").mkdir(parents=True, exist_ok=True)
            if not manifest_path.is_file():
                manifest = {
                    "format": FORMAT_NAME,
                    "version": FORMAT_VERSION,
                    "chunk_bytes": int(chunk_bytes),
                }
                tmp = manifest_path.with_suffix(f".{os.getpid()}.tmp")
                tmp.write_text(json.dumps(manifest, sort_keys=True) + "\n")
                os.replace(tmp, manifest_path)
        if not manifest_path.is_file():
            raise SpecError(
                f"{self.root} is not a trace store (no manifest.json)",
                store=str(self.root),
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != FORMAT_NAME:
            raise SpecError(
                f"{self.root} is not a {FORMAT_NAME} store",
                store=str(self.root),
            )
        if int(manifest.get("version", 0)) > FORMAT_VERSION:
            raise SpecError(
                f"{self.root} uses store version {manifest['version']}; "
                f"this library reads up to {FORMAT_VERSION}",
                store=str(self.root),
            )
        self.chunk_bytes = int(manifest.get("chunk_bytes", chunk_bytes))
        self._index: dict[str, TraceRecord] | None = None

    # -- paths / index ---------------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    def chunk_path(self, chunk: int) -> Path:
        return self.root / "chunks" / chunk_filename(chunk)

    def _load_index(self) -> dict[str, TraceRecord]:
        self._index = read_index(self.index_path)
        return self._index

    def records(self) -> list[TraceRecord]:
        """Every live trace record, in index order."""
        return list(self._load_index().values())

    def get(self, trace_id: str) -> TraceRecord:
        """One record by id; re-reads the index on a miss, so a reader
        opened before an ingest still sees the new trace."""
        index = self._index if self._index is not None else self._load_index()
        record = index.get(trace_id)
        if record is None:
            record = self._load_index().get(trace_id)
        if record is None:
            raise SpecError(
                f"no trace {trace_id!r} in store {self.root}",
                trace_id=trace_id,
                store=str(self.root),
            )
        return record

    def __len__(self) -> int:
        return len(self._load_index())

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._load_index()

    # -- ingest ----------------------------------------------------------------

    def _append_chunk(self) -> tuple[int, Path]:
        """The chunk file new bytes go to (the highest-numbered one)."""
        chunks = sorted(
            int(p.stem.split("-")[1])
            for p in (self.root / "chunks").glob("chunk-*.bin")
        )
        chunk = chunks[-1] if chunks else 0
        return chunk, self.chunk_path(chunk)

    def ingest(
        self,
        current: np.ndarray,
        benchmark: str,
        *,
        dtype: str | None = None,
        generator: dict | None = None,
        meta: dict | None = None,
    ) -> TraceRecord:
        """Append one trace; returns its (possibly pre-existing) record.

        ``dtype`` selects the stored sample width (default: keep the
        array's own dtype when storable, else float64).  ``generator``
        records the exact simulator invocation so the pipeline can dedupe
        this trace against a regenerated one; pass ``None`` for external
        traces.  Ingest is idempotent: identical (content, benchmark,
        dtype, generator) collapses to the existing record.
        """
        if self.mode != "a":
            raise UsageError(
                f"store {self.root} is opened read-only; "
                "open with mode='a' to ingest"
            )
        current = np.asarray(current)
        if current.ndim != 1:
            raise SpecError("a trace must be a 1-D sample array")
        if dtype is None:
            dtype = (
                str(current.dtype)
                if str(current.dtype) in DTYPES
                else "float64"
            )
        data = np.ascontiguousarray(current, dtype=DTYPES[dtype])
        if not np.isfinite(data).all():
            bad = int(np.flatnonzero(~np.isfinite(data))[0])
            raise SpecError(
                f"trace {benchmark!r} has a non-finite sample at index "
                f"{bad}; sanitize before ingest "
                "(see repro.uarch.sanitize_current)",
                benchmark=benchmark,
                index=bad,
            )
        sha = content_hash(data)
        trace_id = make_trace_id(sha, benchmark, dtype, generator)
        index = self._load_index()
        existing = index.get(trace_id)
        if existing is not None:
            obs.counter_inc(
                "store_ingest_dedups_total",
                1,
                "ingests satisfied by an existing identical trace",
            )
            return existing

        with obs.span(
            "store.ingest", benchmark=benchmark, nbytes=data.nbytes
        ):
            chunk, path = self._append_chunk()
            size = path.stat().st_size if path.is_file() else 0
            if size and size + data.nbytes > self.chunk_bytes:
                chunk += 1
                path = self.chunk_path(chunk)
                size = 0
            record = TraceRecord(
                trace_id=trace_id,
                benchmark=benchmark,
                dtype=dtype,
                cycles=int(data.size),
                chunk=chunk,
                offset=size,
                nbytes=int(data.nbytes),
                sha256=sha,
                generator=dict(generator) if generator else None,
                meta=dict(meta) if meta else {},
            )
            # Data first, index second: a crash here orphans bytes that
            # gc() reclaims, but never indexes a trace with no bytes.
            with open(path, "ab") as fh:
                fh.write(data.tobytes())
                fh.flush()
                os.fsync(fh.fileno())
            with open(self.index_path, "a", encoding="utf-8") as fh:
                fh.write(record.to_json() + "\n")
                fh.flush()
        index[trace_id] = record
        obs.counter_inc("store_ingests_total", 1, "traces ingested")
        obs.counter_inc(
            "store_ingested_bytes_total",
            data.nbytes,
            "sample bytes appended to chunk files",
        )
        return record

    def remove(self, trace_id: str) -> None:
        """Tombstone a trace (bytes are reclaimed by the next ``gc``)."""
        if self.mode != "a":
            raise UsageError(f"store {self.root} is opened read-only")
        self.get(trace_id)  # raise on unknown id
        line = json.dumps({"op": "remove", "trace_id": trace_id})
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        self._load_index()

    # -- attach (the zero-copy read path) --------------------------------------

    def _chunk_map(self, chunk: int, needed: int) -> mmap.mmap:
        """The shared read-only mapping of one chunk file, remapped when
        the file has grown past the existing mapping."""
        key = (str(self.root.resolve()), chunk)
        m = _CHUNK_MAPS.get(key)
        if m is None or m.closed or len(m) < needed:
            path = self.chunk_path(chunk)
            if not path.is_file():
                raise SpecError(
                    f"store {self.root} is missing {path.name}",
                    store=str(self.root),
                    chunk=chunk,
                )
            with open(path, "rb") as fh:
                m = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            _CHUNK_MAPS[key] = m
        return m

    def attach(
        self,
        trace_id: str | TraceRecord,
        start: int = 0,
        stop: int | None = None,
    ) -> np.ndarray:
        """A zero-copy, read-only view of (a slice of) one trace.

        The underlying chunk file is memory-mapped once per process and
        shared by every trace in it; the returned array is a
        ``frombuffer`` view into that mapping — no sample bytes are
        copied, and the OS page cache shares the physical pages across
        every attached process.
        """
        record = (
            trace_id
            if isinstance(trace_id, TraceRecord)
            else self.get(trace_id)
        )
        lo, hi, _ = slice(start, stop).indices(record.cycles)
        count = max(hi - lo, 0)
        dt = DTYPES[record.dtype]
        if count == 0:
            view = np.empty(0, dtype=dt)
        else:
            m = self._chunk_map(record.chunk, record.offset + record.nbytes)
            view = np.frombuffer(
                m,
                dtype=dt,
                count=count,
                offset=record.offset + lo * dt.itemsize,
            )
        obs.counter_inc("store_attaches_total", 1, "zero-copy trace attaches")
        obs.counter_inc(
            "store_attached_bytes_total",
            view.nbytes,
            "trace bytes exposed through mmap views (never copied)",
        )
        return view

    def ref(
        self,
        trace_id: str | TraceRecord,
        start: int = 0,
        stop: int | None = None,
    ):
        """A spec-embeddable :class:`~repro.store.TraceRef` to one trace."""
        from .ref import ref_for

        record = (
            trace_id
            if isinstance(trace_id, TraceRecord)
            else self.get(trace_id)
        )
        return ref_for(str(self.root), record, start, stop)

    # -- integrity -------------------------------------------------------------

    def verify(self) -> list[dict]:
        """Re-check every record against its bytes; returns problems.

        Each problem is a dict with a ``problem`` key (``missing-chunk``,
        ``truncated``, ``corrupt``, ``torn-index-line``) plus identifying
        context.  An empty list means the store is fully intact.
        """
        problems: list[dict] = []
        with obs.span("store.verify", store=str(self.root)):
            if self.index_path.is_file():
                with open(self.index_path, encoding="utf-8") as fh:
                    for lineno, line in enumerate(fh, 1):
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            json.loads(line)
                        except ValueError:
                            problems.append(
                                {"problem": "torn-index-line", "line": lineno}
                            )
            for record in self.records():
                path = self.chunk_path(record.chunk)
                if not path.is_file():
                    problems.append(
                        {
                            "problem": "missing-chunk",
                            "trace_id": record.trace_id,
                            "chunk": record.chunk,
                        }
                    )
                    continue
                if path.stat().st_size < record.offset + record.nbytes:
                    problems.append(
                        {
                            "problem": "truncated",
                            "trace_id": record.trace_id,
                            "chunk": record.chunk,
                        }
                    )
                    continue
                data = self.attach(record)
                if content_hash(data) != record.sha256:
                    problems.append(
                        {
                            "problem": "corrupt",
                            "trace_id": record.trace_id,
                            "benchmark": record.benchmark,
                            "chunk": record.chunk,
                        }
                    )
        if problems:
            obs.counter_inc(
                "store_verify_failures_total",
                len(problems),
                "integrity problems found by store verify",
            )
        return problems

    def gc(self) -> dict:
        """Compact the store: drop tombstoned traces and orphaned bytes.

        Rewrites chunk files and index atomically from the live records.
        Requires exclusive access (concurrent readers must re-attach
        afterwards — existing mappings keep reading the *old* bytes
        safely until then, since POSIX keeps mapped pages alive).
        Returns ``{"live", "reclaimed_bytes"}``.
        """
        if self.mode != "a":
            raise UsageError(f"store {self.root} is opened read-only")
        live = self.records()
        before = sum(
            p.stat().st_size
            for p in (self.root / "chunks").glob("chunk-*.bin")
        )
        chunks_dir = self.root / "chunks"
        tmp_paths: list[Path] = []
        new_records: list[TraceRecord] = []
        chunk, offset, out = 0, 0, None
        try:
            for record in live:
                data = self.attach(record)
                if out is None or (
                    offset and offset + record.nbytes > self.chunk_bytes
                ):
                    if out is not None:
                        out.close()
                    if out is not None:
                        chunk += 1
                    offset = 0
                    tmp = chunks_dir / f".gc-{os.getpid()}-{chunk}.bin"
                    tmp_paths.append(tmp)
                    out = open(tmp, "wb")
                out.write(np.ascontiguousarray(data).tobytes())
                new_records.append(
                    TraceRecord(
                        **{
                            **record.__dict__,
                            "chunk": chunk,
                            "offset": offset,
                        }
                    )
                )
                offset += record.nbytes
            if out is not None:
                out.close()
                out = None
            index_tmp = self.root / f".index-{os.getpid()}.tmp"
            with open(index_tmp, "w", encoding="utf-8") as fh:
                for record in new_records:
                    fh.write(record.to_json() + "\n")
            # Point of no return: replace index first (it only references
            # tmp chunks after the renames below complete; a crash in
            # between is repaired by verify/gc re-run reading old chunks).
            for old in chunks_dir.glob("chunk-*.bin"):
                old.unlink()
            for i, tmp in enumerate(tmp_paths):
                os.replace(tmp, self.chunk_path(i))
            os.replace(index_tmp, self.index_path)
        finally:
            if out is not None:
                out.close()
            for tmp in tmp_paths:
                tmp.unlink(missing_ok=True)
        # Old mappings describe deleted files; drop this process's memos.
        root_key = str(self.root.resolve())
        for key in [k for k in _CHUNK_MAPS if k[0] == root_key]:
            del _CHUNK_MAPS[key]
        self._load_index()
        after = sum(
            p.stat().st_size for p in chunks_dir.glob("chunk-*.bin")
        )
        reclaimed = max(before - after, 0)
        obs.counter_inc(
            "store_gc_reclaimed_bytes_total",
            reclaimed,
            "bytes reclaimed by store compaction",
        )
        return {"live": len(new_records), "reclaimed_bytes": reclaimed}

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Footprint summary for ``repro store ls``."""
        records = self.records()
        chunk_files = sorted((self.root / "chunks").glob("chunk-*.bin"))
        chunk_bytes = sum(p.stat().st_size for p in chunk_files)
        live_bytes = sum(r.nbytes for r in records)
        by_dtype: dict[str, int] = {}
        for r in records:
            by_dtype[r.dtype] = by_dtype.get(r.dtype, 0) + 1
        return {
            "root": str(self.root),
            "traces": len(records),
            "cycles": sum(r.cycles for r in records),
            "live_bytes": live_bytes,
            "chunk_files": len(chunk_files),
            "chunk_bytes": chunk_bytes,
            "reclaimable_bytes": max(chunk_bytes - live_bytes, 0),
            "by_dtype": by_dtype,
        }
